"""Beyond the paper: scheduling under per-site memory capacities.

The paper assumes unlimited memory (A1) and names non-preemptable
resources — memory first — as the open problem (Section 8).  This example
exercises the `repro.memory` extension: the same 12-join query is
scheduled under progressively tighter per-site buffer capacities, showing
the two-stage response of the memory-aware scheduler:

1. **spread** — raise a build's degree so each site holds a thinner
   hash-table partition (cheap: more partitioned parallelism);
2. **spill**  — once even the widest spread does not fit, spill a
   fraction of both join inputs hybrid-hash style, paying write+re-read
   I/O priced by the Table 2 cost model.

The memory ledger is printed for the tightest configuration so the
per-site residency accounting is visible.

Run:  python examples/memory_constrained.py
"""

import numpy as np

from repro import (
    PAPER_PARAMETERS,
    ConvexCombinationOverlap,
    MemoryModel,
    annotate_plan,
    generate_query,
    memory_aware_tree_schedule,
    tree_schedule,
)

P = 16


def main() -> None:
    query = generate_query(12, np.random.default_rng(31))
    annotate_plan(query.operator_tree, PAPER_PARAMETERS)
    comm = PAPER_PARAMETERS.communication_model()
    overlap = ConvexCombinationOverlap(0.5)

    baseline = tree_schedule(
        query.operator_tree, query.task_tree, p=P,
        comm=comm, overlap=overlap, f=0.7,
    )
    print(f"Unconstrained TREESCHEDULE (assumption A1): "
          f"{baseline.response_time:.3f} s")
    print()

    print(f"{'capacity/site':>14s} {'response':>10s} {'slowdown':>9s} "
          f"{'spilled joins':>14s} {'worst q':>8s}")
    last = None
    for cap_mb in (1000.0, 4.0, 1.0, 0.5, 0.25, 0.1):
        result = memory_aware_tree_schedule(
            query.operator_tree, query.task_tree, p=P,
            comm=comm, overlap=overlap,
            memory=MemoryModel(capacity_bytes=cap_mb * 1e6),
            params=PAPER_PARAMETERS, f=0.7,
        )
        worst_q = max(result.spill_fractions.values(), default=0.0)
        print(
            f"{cap_mb:11.2f} MB {result.response_time:8.3f} s "
            f"{result.response_time / baseline.response_time:8.3f}x "
            f"{result.total_spilled_joins:14d} {worst_q:8.2f}"
        )
        last = result
    print()

    # Peek at the ledger of the tightest run.
    assert last is not None
    print("Memory ledger at 0.10 MB/site (resident hash tables):")
    for commitment in last.ledger.commitments[:8]:
        sites = ",".join(map(str, commitment.site_indices[:6]))
        more = ",..." if len(commitment.site_indices) > 6 else ""
        print(
            f"  table {commitment.join_id:4s} phases "
            f"{commitment.build_phase}-{commitment.release_phase}  "
            f"{commitment.bytes_per_site / 1e3:7.1f} kB/site on "
            f"[{sites}{more}]"
        )
    peak = max(
        last.ledger.peak_live_bytes(ph)
        for ph in range(last.phased_schedule.num_phases)
    )
    print(f"  peak residency on any site: {peak / 1e3:.1f} kB "
          f"(capacity 100.0 kB) — ledger-validated")


if __name__ == "__main__":
    main()
