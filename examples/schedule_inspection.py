"""Inspecting workloads and schedules: stats, site tables, load bars.

Shows the library's introspection surface: per-plan structural statistics
(:func:`repro.describe_query`), the aggregate resource mix of a workload
(:func:`repro.resource_mix` — the footnote 4 "balanced system" check),
and ASCII renderings of a schedule (per-site tables, load bars, per-phase
summary) from :mod:`repro.render`.

Run:  python examples/schedule_inspection.py
"""

import numpy as np

from repro import (
    PAPER_PARAMETERS,
    ConvexCombinationOverlap,
    annotate_plan,
    describe_query,
    generate_query,
    resource_mix,
    tree_schedule,
)
from repro.render import render_load_bars, render_phased, render_schedule


def main() -> None:
    query = generate_query(9, np.random.default_rng(5))
    annotate_plan(query.operator_tree, PAPER_PARAMETERS)

    stats = describe_query(query)
    print("Workload statistics:")
    print(f"  joins={stats.num_joins}  operators={stats.num_operators}  "
          f"tasks={stats.num_tasks}")
    print(f"  plan height={stats.plan_height}  "
          f"bushiness={stats.bushiness:.2f}  "
          f"phases={len(stats.phase_widths)} (widths {list(stats.phase_widths)})")
    print(f"  base tuples={stats.total_base_tuples:,}  "
          f"largest intermediate={stats.largest_intermediate_tuples:,}")
    print()

    mix = resource_mix(query.operator_tree)
    print("Resource mix (zero-communication work, seconds):")
    for kind in ("scan", "build", "probe", "total"):
        w = mix[kind]
        print(f"  {kind:6s} cpu={w[0]:8.2f}  disk={w[1]:8.2f}  net={w[2]:8.2f}")
    balance = mix["total"][1] / mix["total"][0]
    print(f"  disk/cpu balance ratio: {balance:.2f}  (footnote 4: 'relatively balanced')")
    print()

    result = tree_schedule(
        query.operator_tree,
        query.task_tree,
        p=10,
        comm=PAPER_PARAMETERS.communication_model(),
        overlap=ConvexCombinationOverlap(0.4),
        f=0.7,
    )

    print("Per-phase summary:")
    print(render_phased(result.phased_schedule))
    print()

    busiest = max(
        range(result.num_phases),
        key=lambda i: result.phased_schedule.phases[i].makespan(),
    )
    schedule = result.phased_schedule.phases[busiest]
    print(f"Busiest phase ({busiest}) placement:")
    print(render_schedule(schedule))
    print()
    print(render_load_bars(schedule, width=30))


if __name__ == "__main__":
    main()
