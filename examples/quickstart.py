"""Quickstart: schedule a random bushy join query on a shared-nothing system.

Walks the paper's full pipeline in ~40 lines of API calls:

1. draw a random 10-join tree query with a bushy hash-join plan;
2. macro-expand it into the operator tree and query task tree (Figure 1);
3. estimate every operator's multi-dimensional work vector with the
   Table 2 cost model;
4. run TREESCHEDULE on 24 three-resource sites;
5. inspect the result: phases, makespans, homes, degrees.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    PAPER_PARAMETERS,
    ConvexCombinationOverlap,
    annotate_plan,
    generate_query,
    tree_schedule,
)


def main() -> None:
    # 1-2. A random 10-join query (seeded, hence reproducible).
    query = generate_query(10, np.random.default_rng(2024))
    print("Execution plan:")
    print(query.plan.pretty())
    print()
    print(f"Operator tree: {query.operator_tree}")
    print(f"Task tree:     {query.task_tree}")
    print()

    # 3. Attach Table 2 work vectors and interconnect data volumes.
    annotate_plan(query.operator_tree, PAPER_PARAMETERS)

    # 4. Schedule on P = 24 sites: one CPU, one disk, one network
    #    interface each, 50% resource overlap, granularity f = 0.7.
    result = tree_schedule(
        query.operator_tree,
        query.task_tree,
        p=24,
        comm=PAPER_PARAMETERS.communication_model(),
        overlap=ConvexCombinationOverlap(0.5),
        f=0.7,
    )

    # 5. Inspect.
    print(f"Scheduled in {result.num_phases} synchronized phases:")
    for label, makespan in zip(
        result.phase_labels, result.phased_schedule.phase_makespans()
    ):
        print(f"  [{label:30s}] makespan = {makespan:8.3f} s")
    print(f"Total response time: {result.response_time:.3f} s")
    print()

    print("Operator homes (degree = number of clones):")
    for name in sorted(result.homes):
        home = result.homes[name]
        sites = ",".join(map(str, home.site_indices[:8]))
        suffix = ",..." if home.degree > 8 else ""
        print(f"  {name:14s} degree={home.degree:3d} sites=[{sites}{suffix}]")


if __name__ == "__main__":
    main()
