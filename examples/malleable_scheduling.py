"""Section 7 walkthrough: malleable scheduling of independent operators.

When the coarse-granularity condition is dropped, the scheduler itself
chooses every operator's degree of parallelism.  This example builds a
mixed batch of independent operators (think: concurrent scans and
aggregations from different queries), then

1. enumerates the greedy family of candidate parallelizations
   (Turek-Wolf-Yu adaptation: always grow the slowest operator),
2. shows how ``h(N̄)`` (slowest operator) and ``l(S(N̄))/P`` (congestion)
   trade off along the family,
3. schedules the LB-selected candidate (the paper's rule, Theorem 7.1)
   and the makespan-selected one (this library's extension),
4. compares both against the coarse-grain (CG_0.7) scheduler.

Run:  python examples/malleable_scheduling.py
"""

from repro import (
    PAPER_PARAMETERS,
    ConvexCombinationOverlap,
    OperatorSpec,
    WorkVector,
    candidate_parallelizations,
    malleable_schedule,
    operator_schedule,
)

P = 12


def build_operator_batch():
    """Six independent operators with deliberately mixed resource needs."""
    mix = [
        ("scan-orders", 40.0, 55.0, 4.0e6),   # disk-heavy table scan
        ("scan-lines", 25.0, 35.0, 2.5e6),    # second scan
        ("agg-sales", 60.0, 5.0, 1.0e6),      # CPU-heavy aggregation
        ("agg-returns", 30.0, 2.0, 0.5e6),    # smaller aggregation
        ("sort-keys", 18.0, 12.0, 1.5e6),     # balanced sort pass
        ("filter-log", 6.0, 9.0, 0.8e6),      # small filter
    ]
    return [
        OperatorSpec(name=name, work=WorkVector([cpu, disk, 0.0]), data_volume=d)
        for name, cpu, disk, d in mix
    ]


def main() -> None:
    specs = build_operator_batch()
    comm = PAPER_PARAMETERS.communication_model()
    overlap = ConvexCombinationOverlap(0.5)

    print(f"Greedy family of parallelizations on P={P} sites")
    print(f"{'step':>4s} {'h(N) slowest':>13s} {'l(S)/P':>8s} {'LB(N)':>8s}  degrees")
    best_lb = float("inf")
    for step, cand in enumerate(
        candidate_parallelizations(specs, P, comm, overlap)
    ):
        marker = ""
        if cand.lower_bound < best_lb:
            best_lb = cand.lower_bound
            marker = "  <- new best LB"
        if step % 5 == 0 or marker:
            degrees = ",".join(str(cand.degrees[s.name]) for s in specs)
            print(
                f"{step:4d} {cand.h:11.2f} s {cand.congestion:6.2f} s "
                f"{cand.lower_bound:6.2f} s  ({degrees}){marker}"
            )
    print()

    by_lb = malleable_schedule(specs, p=P, comm=comm, overlap=overlap)
    by_makespan = malleable_schedule(
        specs, p=P, comm=comm, overlap=overlap, selection="makespan"
    )
    coarse = operator_schedule(specs, p=P, comm=comm, overlap=overlap, f=0.7)

    print("Schedules:")
    print(
        f"  malleable, LB selection (paper) : {by_lb.makespan:7.2f} s  "
        f"(LB {by_lb.lower_bound:.2f}, guarantee {by_lb.guarantee:.0f}x, "
        f"{by_lb.candidates_examined} candidates)"
    )
    print(
        f"  malleable, makespan selection   : {by_makespan.makespan:7.2f} s"
    )
    print(f"  coarse-grain CG_0.7 scheduler   : {coarse.makespan:7.2f} s")
    print()
    print("Selected degrees (LB selection):")
    for spec in specs:
        print(f"  {spec.name:12s} N = {by_lb.candidate.degrees[spec.name]}")


if __name__ == "__main__":
    main()
