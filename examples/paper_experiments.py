"""Regenerate all four evaluation figures of the paper at reduced scale.

Equivalent to ``repro-experiments all --quick`` but shown as library
calls, so it doubles as an example of driving the experiment harness
programmatically (custom sweeps, custom rendering).

Run:  python examples/paper_experiments.py
(The paper-scale sweep is `repro-experiments all`; it takes minutes.)
"""

import time

from repro.experiments import (
    figure5a,
    figure5b,
    figure6a,
    figure6b,
    improvement_summary,
    quick_config,
    render_figure,
    render_parameters,
)


def main() -> None:
    config = quick_config(n_queries=3, site_counts=(10, 40, 80, 140))
    print(render_parameters(config.params))
    print()

    for builder, kwargs in (
        (figure5a, {"n_joins": 20, "epsilon": 0.3}),
        (figure5b, {"n_joins": 20}),
        (figure6a, {"p_values": (20, 80)}),
        (figure6b, {"query_sizes": (10, 20)}),
    ):
        start = time.perf_counter()
        figure = builder(config, **kwargs)
        elapsed = time.perf_counter() - start
        print(render_figure(figure))
        if figure.figure_id == "fig5a":
            print(
                improvement_summary(
                    figure,
                    better=f"TreeSchedule f={config.f_values[-1]:g}",
                    worse="Synchronous",
                )
            )
        print(f"(regenerated in {elapsed:.1f} s)")
        print()


if __name__ == "__main__":
    main()
