"""Domain scenario: scheduling a warehouse star-join against the 1-D baseline.

The paper's motivation: database operators load *multiple* resources
(CPU, disk, network), and one-dimensional schedulers waste the idle
capacity that complementary operators could share.  This example builds a
classic decision-support shape by hand — a large fact table joined with
four small dimension tables — and compares:

* TREESCHEDULE (multi-dimensional list scheduling with resource sharing),
* SYNCHRONOUS  (synchronous-execution-time + minimax, disjoint sites),
* OPTBOUND     (the lower bound on any coarse-grain execution),

across system sizes, printing the response times and where each schedule
is congestion- vs. operator-bound.

Run:  python examples/warehouse_star_join.py
"""

from repro import (
    PAPER_PARAMETERS,
    BaseRelationNode,
    ConvexCombinationOverlap,
    JoinNode,
    Relation,
    annotate_plan,
    build_task_tree,
    expand_plan,
    opt_bound,
    synchronous_schedule,
    tree_schedule,
)


def build_star_plan():
    """FACT (200k tuples) joined with four dimensions (1k-8k tuples).

    Each dimension is hashed (build side); the fact stream probes the
    four tables in one long pipeline — a right-deep plan, the textbook
    shape for star joins [Sch90, CLYY92].
    """
    fact = BaseRelationNode(Relation("fact", 200_000))
    plan = fact
    for i, size in enumerate((1_000, 2_000, 4_000, 8_000)):
        dim = BaseRelationNode(Relation(f"dim{i}", size))
        plan = JoinNode(f"J{i}", dim, plan)  # dimension builds, fact probes
    return plan


def main() -> None:
    plan = build_star_plan()
    print("Star-join plan:")
    print(plan.pretty())
    print()

    op_tree = expand_plan(plan)
    task_tree = build_task_tree(op_tree)
    annotate_plan(op_tree, PAPER_PARAMETERS)
    print(f"{op_tree}")
    print(f"{task_tree}  (dimension builds run concurrently in phase 0)")
    print()

    comm = PAPER_PARAMETERS.communication_model()
    overlap = ConvexCombinationOverlap(0.3)

    header = f"{'P':>4s} {'TreeSchedule':>14s} {'Synchronous':>14s} {'OptBound':>10s} {'TS vs SY':>9s}"
    print(header)
    print("-" * len(header))
    for p in (4, 8, 16, 32, 64):
        ts = tree_schedule(
            op_tree, task_tree, p=p, comm=comm, overlap=overlap, f=0.7
        )
        sy = synchronous_schedule(
            op_tree, task_tree, p=p, comm=comm, overlap=overlap
        )
        lb = opt_bound(
            op_tree, task_tree, p=p, f=0.7, comm=comm, overlap=overlap
        )
        gain = (sy.response_time - ts.response_time) / sy.response_time
        print(
            f"{p:4d} {ts.response_time:12.2f} s {sy.response_time:12.2f} s "
            f"{lb:8.2f} s {gain * 100:7.1f}%"
        )
    print()

    # Where does the time go?  Decompose the final probe phase.
    ts = tree_schedule(op_tree, task_tree, p=16, comm=comm, overlap=overlap, f=0.7)
    last = ts.phased_schedule.phases[-1]
    bottleneck = last.bottleneck_site()
    print(f"Final phase on P=16: makespan {last.makespan():.2f} s")
    print(
        f"  bound by {'resource congestion' if last.is_congestion_bound() else 'the slowest operator'}; "
        f"bottleneck site {bottleneck.index} hosts "
        f"{sorted(bottleneck.operators)}"
    )
    util = last.average_utilization()
    print(
        f"  system utilization at makespan: CPU {util[0] * 100:.0f}%, "
        f"disk {util[1] * 100:.0f}%, network {util[2] * 100:.0f}%"
    )


if __name__ == "__main__":
    main()
