"""Executing a schedule: the fluid simulator and the A2/A3 idealization.

The paper's response-time model (Equations 2-3) assumes ideal preemptive
time-sharing: zero slicing overhead (A2) and uniform demand (A3).  This
example makes that assumption *executable*: it schedules a query with
TREESCHEDULE, then runs the schedule in the fluid simulator under three
sharing policies and reports

* OPTIMAL_STRETCH — the idealized scheduler; reproduces Equation (3)
  exactly (this is asserted),
* FAIR_SHARE — a realistic equal-throttle processor-sharing discipline,
* SERIAL — no time-sharing at all (what a one-at-a-time runtime would do),

plus a per-site trace of the bottleneck site.

Run:  python examples/simulator_validation.py
"""

import numpy as np

from repro import (
    PAPER_PARAMETERS,
    ConvexCombinationOverlap,
    SharingPolicy,
    annotate_plan,
    generate_query,
    sharing_policy_report,
    simulate_phased,
    tree_schedule,
    validate_phased_schedule,
)


def main() -> None:
    query = generate_query(12, np.random.default_rng(7))
    annotate_plan(query.operator_tree, PAPER_PARAMETERS)
    result = tree_schedule(
        query.operator_tree,
        query.task_tree,
        p=16,
        comm=PAPER_PARAMETERS.communication_model(),
        overlap=ConvexCombinationOverlap(0.4),
        f=0.7,
    )
    phased = result.phased_schedule
    print(f"Schedule: {result.num_phases} phases, "
          f"analytic response {result.response_time:.3f} s")
    print()

    # The analytic model is executable: ideal stretching reproduces it.
    sim = validate_phased_schedule(phased)
    print(f"OPTIMAL_STRETCH simulation: {sim.response_time:.3f} s "
          f"(slowdown {sim.slowdown:.6f}) — matches Equation (3)")

    report = sharing_policy_report(phased)
    print(f"FAIR_SHARE simulation:      {report.fair_share:.3f} s "
          f"(+{report.fair_share_penalty * 100:.1f}% over ideal)")
    print(f"SERIAL (no sharing):        {report.serial:.3f} s "
          f"(sharing buys {report.sharing_benefit:.2f}x)")
    print()

    # Zoom into the bottleneck site of the longest phase.
    fair = simulate_phased(phased, SharingPolicy.FAIR_SHARE)
    phase_idx = max(
        range(len(fair.phases)), key=lambda i: fair.phases[i].makespan
    )
    phase = fair.phases[phase_idx]
    site = max(phase.sites, key=lambda s: s.completion_time)
    print(
        f"Bottleneck: phase {phase_idx}, site {site.site_index} "
        f"(analytic {site.analytic_time:.3f} s, simulated "
        f"{site.completion_time:.3f} s under FAIR_SHARE)"
    )
    print("  piecewise-constant intervals (throttle = common progress rate):")
    for interval in site.intervals[:6]:
        rates = ", ".join(f"{r:.2f}" for r in interval.resource_rates)
        print(
            f"    [{interval.start:7.3f}, {interval.end:7.3f}) "
            f"{len(interval.active):2d} clones  throttle {interval.throttle:.3f}  "
            f"resource rates [{rates}]"
        )
    if len(site.intervals) > 6:
        print(f"    ... {len(site.intervals) - 6} more intervals")
    print("  clone stretches (observed / stand-alone time):")
    for trace in sorted(site.traces, key=lambda t: -t.nominal_t_seq)[:5]:
        print(
            f"    {trace.operator:14s} T_seq {trace.nominal_t_seq:7.3f} s "
            f"finished {trace.finish:7.3f} s (stretch {trace.stretch:.2f}x)"
        )


if __name__ == "__main__":
    main()
