"""Experiment abl-sim — sharing-policy ablation on the execution simulator.

Runs the Figure 6(b) workload through the fluid simulator under all three
sharing policies, prints the analytic-vs-simulated comparison (how
optimistic are assumptions A2/A3, and how much is resource sharing worth),
and benchmarks a FAIR_SHARE simulation of a full phased schedule.
"""

from __future__ import annotations

import math

import pytest

from repro import (
    ConvexCombinationOverlap,
    SharingPolicy,
    sharing_policy_report,
    simulate_phased,
    tree_schedule,
)
from repro.experiments import prepare_workload

from _helpers import BENCH_CONFIG, publish

N_JOINS = 20
P = 40


@pytest.fixture(scope="module")
def schedules():
    queries = prepare_workload(N_JOINS, BENCH_CONFIG.n_queries, BENCH_CONFIG.seed)
    comm = BENCH_CONFIG.params.communication_model()
    overlap = ConvexCombinationOverlap(BENCH_CONFIG.default_epsilon)
    return [
        tree_schedule(
            q.operator_tree, q.task_tree, p=P, comm=comm, overlap=overlap,
            f=BENCH_CONFIG.default_f,
        ).phased_schedule
        for q in queries
    ]


@pytest.fixture(scope="module")
def reports(schedules):
    return [sharing_policy_report(s) for s in schedules]


def test_bench_ablsim_regenerate(reports, schedules, benchmark):
    """Print the policy ablation; benchmark one FAIR_SHARE simulation."""
    def mean(xs):
        xs = list(xs)
        return math.fsum(xs) / len(xs)

    lines = [
        "== abl-sim: sharing-policy ablation (A2/A3 realism) ==",
        f"workload: {len(reports)} x {N_JOINS}-join plans on P={P} "
        f"(eps={BENCH_CONFIG.default_epsilon}, f={BENCH_CONFIG.default_f})",
        f"analytic (Eq.3) response  : {mean(r.analytic for r in reports):9.3f} s",
        f"OPTIMAL_STRETCH simulated : {mean(r.optimal_stretch for r in reports):9.3f} s  (== analytic)",
        f"FAIR_SHARE simulated      : {mean(r.fair_share for r in reports):9.3f} s  "
        f"(penalty {mean(r.fair_share_penalty for r in reports) * 100:.1f}%)",
        f"SERIAL (no sharing)       : {mean(r.serial for r in reports):9.3f} s  "
        f"(sharing buys {mean(r.sharing_benefit for r in reports):.2f}x)",
        "note: the analytic model is exact under ideal stretching; a",
        "realistic equal-throttle scheduler costs only a modest premium,",
        "while forgoing time-sharing entirely forfeits the paper's gains.",
    ]
    publish("abl_sim", "\n".join(lines))

    benchmark(lambda: simulate_phased(schedules[0], SharingPolicy.FAIR_SHARE))


def test_ablsim_stretch_matches_analytic(reports):
    for r in reports:
        assert r.optimal_stretch == pytest.approx(r.analytic, rel=1e-9)


def test_ablsim_policy_ordering(reports):
    for r in reports:
        assert r.analytic <= r.fair_share * (1 + 1e-9)
        assert r.fair_share <= r.serial * (1 + 1e-9)


def test_ablsim_sharing_is_worth_something(reports):
    assert all(r.sharing_benefit > 1.0 for r in reports)
