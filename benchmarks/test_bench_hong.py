"""Experiment abl-hong — pairwise (XPRS-style) vs. global resource sharing.

Section 2 credits Hong's XPRS method [Hon92] as the one prior approach
exploiting resource sharing (pairing one I/O-bound with one CPU-bound
pipeline).  This ablation decomposes TREESCHEDULE's advantage over the
1-D baseline into a pairwise-sharing part (captured by the static XPRS
analog) and a global-sharing part (the remainder).
"""

from __future__ import annotations

import math

import pytest

from repro import (
    ConvexCombinationOverlap,
    hong_schedule,
    synchronous_schedule,
    tree_schedule,
)
from repro.experiments import prepare_workload

from _helpers import BENCH_CONFIG, publish

N_JOINS = 15
P_VALUES = (10, 40, 80)


@pytest.fixture(scope="module")
def comparison():
    queries = prepare_workload(N_JOINS, BENCH_CONFIG.n_queries, BENCH_CONFIG.seed)
    comm = BENCH_CONFIG.params.communication_model()
    overlap = ConvexCombinationOverlap(0.3)

    def mean(xs):
        xs = list(xs)
        return math.fsum(xs) / len(xs)

    rows = []
    for p in P_VALUES:
        ts = mean(
            tree_schedule(
                q.operator_tree, q.task_tree, p=p, comm=comm, overlap=overlap,
                f=BENCH_CONFIG.default_f,
            ).response_time
            for q in queries
        )
        hg = mean(
            hong_schedule(
                q.operator_tree, q.task_tree, p=p, comm=comm, overlap=overlap,
                f=BENCH_CONFIG.default_f,
            ).response_time
            for q in queries
        )
        sy = mean(
            synchronous_schedule(
                q.operator_tree, q.task_tree, p=p, comm=comm, overlap=overlap
            ).response_time
            for q in queries
        )
        rows.append((p, ts, hg, sy))
    return rows


def test_bench_ablhong_regenerate(comparison, benchmark):
    """Print the three-way comparison; benchmark one Hong call."""
    lines = [
        "== abl-hong: pairwise (XPRS [Hon92]) vs global sharing ==",
        f"{BENCH_CONFIG.n_queries} x {N_JOINS}-join plans (eps=0.3); avg response (s)",
        f"{'P':>4s} {'TreeSchedule':>13s} {'Hong-pair':>10s} {'Synchronous':>12s} "
        f"{'pair share of gain':>19s}",
    ]
    for p, ts, hg, sy in comparison:
        captured = (sy - hg) / (sy - ts) if sy > ts else float("nan")
        lines.append(
            f"{p:4d} {ts:11.3f} s {hg:8.3f} s {sy:10.3f} s {captured * 100:17.0f}%"
        )
    lines.append(
        "note: pairing one IO-bound with one CPU-bound task recovers part"
    )
    lines.append(
        "of the sharing benefit; global multi-dimensional packing the rest."
    )
    publish("abl_hong", "\n".join(lines))

    queries = prepare_workload(N_JOINS, BENCH_CONFIG.n_queries, BENCH_CONFIG.seed)
    comm = BENCH_CONFIG.params.communication_model()
    overlap = ConvexCombinationOverlap(0.3)
    q = queries[0]
    benchmark(
        lambda: hong_schedule(
            q.operator_tree, q.task_tree, p=40, comm=comm, overlap=overlap,
            f=BENCH_CONFIG.default_f,
        )
    )


def test_ablhong_strict_ordering(comparison):
    for p, ts, hg, sy in comparison:
        assert ts < hg < sy, f"ordering broken at P={p}"


def test_ablhong_pairing_captures_meaningful_share(comparison):
    shares = [(sy - hg) / (sy - ts) for _, ts, hg, sy in comparison]
    assert all(0.0 < s < 1.0 for s in shares)
    assert max(shares) > 0.3
