"""Experiment mem — memory-constrained scheduling (Section 8 future work).

Sweeps per-site buffer capacity on a fixed workload and prints the
response-time degradation curve (spread first, spill second), then
benchmarks one memory-aware scheduling call.
"""

from __future__ import annotations

import pytest

from repro import (
    ConvexCombinationOverlap,
    MemoryModel,
    memory_aware_tree_schedule,
    tree_schedule,
)
from repro.experiments import prepare_workload

from _helpers import BENCH_CONFIG, publish

N_JOINS = 10
P = 16
CAPACITIES_MB = (1000.0, 10.0, 1.0, 0.5, 0.2, 0.1)


@pytest.fixture(scope="module")
def sweep():
    queries = prepare_workload(N_JOINS, BENCH_CONFIG.n_queries, BENCH_CONFIG.seed)
    comm = BENCH_CONFIG.params.communication_model()
    overlap = ConvexCombinationOverlap(BENCH_CONFIG.default_epsilon)
    rows = []
    for cap_mb in CAPACITIES_MB:
        times = []
        spilled = 0
        for q in queries:
            result = memory_aware_tree_schedule(
                q.operator_tree, q.task_tree, p=P, comm=comm, overlap=overlap,
                memory=MemoryModel(capacity_bytes=cap_mb * 1e6),
                params=BENCH_CONFIG.params, f=BENCH_CONFIG.default_f,
            )
            times.append(result.response_time)
            spilled += result.total_spilled_joins
        rows.append((cap_mb, sum(times) / len(times), spilled))
    baseline = sum(
        tree_schedule(
            q.operator_tree, q.task_tree, p=P, comm=comm, overlap=overlap,
            f=BENCH_CONFIG.default_f,
        ).response_time
        for q in queries
    ) / len(queries)
    return rows, baseline


def test_bench_mem_regenerate(sweep, benchmark):
    """Print the capacity sweep; benchmark one constrained call."""
    rows, baseline = sweep
    lines = [
        "== mem: memory-constrained scheduling (Section 8 extension) ==",
        f"workload: {BENCH_CONFIG.n_queries} x {N_JOINS}-join plans on P={P}; "
        f"A1 (unconstrained) baseline {baseline:.3f} s",
        f"{'capacity/site':>14s} {'avg response':>13s} {'spilled joins':>14s}",
    ]
    for cap_mb, avg_time, spilled in rows:
        lines.append(f"{cap_mb:11.1f} MB {avg_time:11.3f} s {spilled:14d}")
    lines.append(
        "note: ample memory reproduces TREESCHEDULE exactly; shrinking"
    )
    lines.append(
        "capacity first widens build degrees, then spills hybrid-hash style."
    )
    publish("mem", "\n".join(lines))

    queries = prepare_workload(N_JOINS, BENCH_CONFIG.n_queries, BENCH_CONFIG.seed)
    comm = BENCH_CONFIG.params.communication_model()
    overlap = ConvexCombinationOverlap(BENCH_CONFIG.default_epsilon)
    query = queries[0]
    benchmark(
        lambda: memory_aware_tree_schedule(
            query.operator_tree, query.task_tree, p=P, comm=comm,
            overlap=overlap, memory=MemoryModel(capacity_bytes=0.5e6),
            params=BENCH_CONFIG.params, f=BENCH_CONFIG.default_f,
        )
    )


def test_mem_ample_equals_baseline(sweep):
    rows, baseline = sweep
    assert rows[0][1] == pytest.approx(baseline)
    assert rows[0][2] == 0


def test_mem_degradation_monotone(sweep):
    rows, _ = sweep
    times = [t for _, t, _ in rows]
    assert all(t2 >= t1 - 1e-9 for t1, t2 in zip(times, times[1:]))
    assert times[-1] > times[0]


def test_mem_spills_increase_under_pressure(sweep):
    rows, _ = sweep
    spilled = [s for _, _, s in rows]
    assert spilled[-1] > 0
    assert spilled == sorted(spilled)
