"""Shared utilities for the benchmark harness.

Each benchmark module regenerates one paper table/figure (printing the
series exactly as EXPERIMENTS.md records them) and times the core
computation with ``pytest-benchmark``.  Regenerated reports are also
written under ``benchmarks/results/`` so they survive non-verbose runs.
"""

from __future__ import annotations

import pathlib

from repro.experiments import PAPER_CONFIG

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Reduced sweep used by the benchmarks: the paper's parameter values with
#: fewer samples so every figure regenerates in seconds.  Shapes (who
#: wins, where the curves bend) are preserved; EXPERIMENTS.md records the
#: correspondence.
BENCH_CONFIG = PAPER_CONFIG.with_overrides(
    n_queries=3,
    site_counts=(10, 40, 80, 140),
    query_sizes=(10, 20, 40),
    f_values=(0.05, 0.2, 0.7),
    epsilon_values=(0.1, 0.4, 0.7),
)


def publish(name: str, text: str) -> None:
    """Print a regenerated report and persist it under results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
