"""Experiment plansearch — schedule-aware plan search with pruning.

How much of the bushy-plan space does the lower-bound screen discard
before TREESCHEDULE ever runs, and what does that buy?  Runs the
exhaustive scorer and the pruned search on the guard-point query of
``benchmarks/plansearch_bench.py`` (8-relation chain, plan space 429),
verifies the winner is invariant, and reports the pruning ledger plus
the warm-store round trip.
"""

from __future__ import annotations

import tempfile

import pytest

from repro.search import search_plans
from repro.store import NO_STORE, ArtifactStore

from _helpers import publish
from plansearch_bench import P, SEARCH_KW, make_query


@pytest.fixture(scope="module")
def searches():
    graph, catalog = make_query()
    exhaustive = search_plans(
        graph, catalog, p=P, prune=False, store=NO_STORE, **SEARCH_KW
    )
    pruned = search_plans(graph, catalog, p=P, store=NO_STORE, **SEARCH_KW)
    with tempfile.TemporaryDirectory(prefix="repro-plansearch-test-") as tmp:
        store = ArtifactStore(tmp)
        cold = search_plans(graph, catalog, p=P, store=store, **SEARCH_KW)
        warm = search_plans(graph, catalog, p=P, store=store, **SEARCH_KW)
    return exhaustive, pruned, cold, warm


def test_bench_plansearch_regenerate(searches, benchmark):
    """Print the pruning ledger; benchmark one pruned search."""
    exhaustive, pruned, cold, warm = searches
    lines = [
        "== plansearch: schedule-aware plan search ==",
        f"8-relation chain, plan space {exhaustive.stats.unique}, P={P}",
        f"exhaustive scorer   : {exhaustive.stats.scored} plans scheduled",
        f"pruned search       : {pruned.stats.scored} scheduled, "
        f"{pruned.stats.pruned} pruned by lower bound "
        f"({pruned.stats.prune_rate:.0%})",
        f"winner              : {pruned.winner.key[:12]} "
        f"response={pruned.winner.response_time:.4f} "
        f"(identical with and without pruning)",
        f"warm re-search      : {warm.stats.store_misses} cold candidates, "
        f"{warm.stats.store_hits} store hits "
        f"({warm.stats.hit_rate:.0%} hit rate)",
        "note: the screen's bounds are valid, so pruning is provably",
        "winner-invariant; the canonical plan hash makes scores reusable",
        "across searches through the artifact store.",
    ]
    publish("plansearch", "\n".join(lines))

    graph, catalog = make_query()
    benchmark(
        lambda: search_plans(graph, catalog, p=P, store=NO_STORE, **SEARCH_KW)
    )


def test_plansearch_prune_is_winner_invariant(searches):
    exhaustive, pruned, _, _ = searches
    assert pruned.winner.key == exhaustive.winner.key
    assert pruned.winner.response_time == exhaustive.winner.response_time
    assert pruned.stats.pruned > 0
    assert pruned.stats.scored < exhaustive.stats.scored


def test_plansearch_prunes_most_of_the_space(searches):
    _, pruned, _, _ = searches
    # The committed BENCH baseline schedules 8 of 429; allow slack but
    # demand the screen keeps doing the heavy lifting.
    assert pruned.stats.prune_rate > 0.8


def test_plansearch_warm_store_schedules_nothing(searches):
    _, pruned, cold, warm = searches
    assert cold.stats.store_misses == cold.stats.scored + 1
    assert warm.stats.store_misses == 0
    assert warm.stats.store_hits == warm.stats.scored + 1
    assert warm.winner.key == pruned.winner.key


def test_plansearch_rankings_consistent(searches):
    for result in searches:
        times = [sp.response_time for sp in result.candidates]
        assert times == sorted(times)
        assert result.winner.key == result.candidates[0].key
