"""Plan-search benchmark: pruned+memoized search vs exhaustive scoring.

Measures the two perf claims of the schedule-aware plan searcher on a
fixed 8-relation tree query (plan space 429, exhaustively enumerated):

* **prune** — the batched lower-bound screen orders candidates by bound
  and schedules them in fixed chunks against an incumbent, so only a
  small fraction of the space is ever TREESCHEDULE-scored.  The guard
  compares against the serial exhaustive scorer (``prune=False``) on
  the same space and demands a >= 3x wall-clock speedup *with an
  identical winner* (pruning is provably winner-invariant: a pruned
  candidate's valid lower bound exceeds the incumbent's exact score).
* **memoize** — candidate scores and the winner schedule are keyed by
  canonical plan payload in the content-addressed artifact store; a
  warm re-search must schedule **zero** cold candidates (exact check:
  ``store_misses == 0``).

Medians land in ``BENCH_plansearch.json`` at the repository root.

Usage::

    python benchmarks/plansearch_bench.py --write      # refresh baseline
    python benchmarks/plansearch_bench.py --check [--threshold 3.0]
        # regression gate: fail when the pruned search is less than
        # threshold x faster than exhaustive scoring, when pruning
        # changes the winner, or when a warm re-search schedules any
        # cold candidate

The speedup gate compares two timings from the *same* process on the
same machine, so CI noise largely cancels; the winner-equality and
warm-store checks are exact — every run is deterministic.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.plans.query_graph import QueryGraph  # noqa: E402
from repro.plans.relations import Catalog, Relation  # noqa: E402
from repro.search import search_plans  # noqa: E402
from repro.store import NO_STORE, ArtifactStore  # noqa: E402

BENCH_PATH = REPO_ROOT / "BENCH_plansearch.json"
SCHEMA = "repro-bench-plansearch/1"

#: The guard-point query: an 8-relation chain with skewed cardinalities.
#: Plan space = Catalan(7) = 429 bushy plans, all exhaustively enumerated.
CARDS = {
    "A": 180_000, "B": 3_500, "C": 64_000, "D": 900,
    "E": 41_000, "F": 7_200, "G": 150_000, "H": 2_100,
}
NAMES = list(CARDS)
JOINS = [(NAMES[i], NAMES[i + 1]) for i in range(len(NAMES) - 1)]
P = 16
REPS = 3
#: Smaller-than-default chunks tighten the incumbent earlier, which
#: prunes harder on this instance (the winner is chunk-size-invariant).
SEARCH_KW = {"chunk_size": 8}


def make_query() -> tuple[QueryGraph, Catalog]:
    catalog = Catalog([Relation(name, tuples) for name, tuples in CARDS.items()])
    return QueryGraph(list(CARDS), JOINS), catalog


def timed_search(reps: int = REPS, **kw):
    """Median wall seconds and the (deterministic) last result."""
    graph, catalog = make_query()
    times = []
    result = None
    for _ in range(reps):
        start = time.perf_counter()
        result = search_plans(graph, catalog, p=P, **SEARCH_KW, **kw)
        times.append(time.perf_counter() - start)
    return statistics.median(times), result


def run_bench() -> dict:
    exhaustive_s, exhaustive = timed_search(prune=False, store=NO_STORE)
    pruned_s, pruned = timed_search(prune=True, store=NO_STORE)
    assert pruned.winner.key == exhaustive.winner.key, "pruning changed the winner"
    assert pruned.winner.response_time == exhaustive.winner.response_time

    with tempfile.TemporaryDirectory(prefix="repro-plansearch-bench-") as tmp:
        store = ArtifactStore(tmp)
        cold_s, cold = timed_search(reps=1, prune=True, store=store)
        warm_s, warm = timed_search(reps=1, prune=True, store=store)
    assert warm.winner.key == pruned.winner.key, "store changed the winner"

    def stats_row(result):
        s = result.stats
        return {
            "enumerated": s.enumerated,
            "unique": s.unique,
            "pruned": s.pruned,
            "scored": s.scored,
            "store_hits": s.store_hits,
            "store_misses": s.store_misses,
        }

    return {
        "schema": SCHEMA,
        "query": (
            f"8-relation tree, plan space {exhaustive.stats.unique}, "
            f"p={P}, shelf=min"
        ),
        "generated_by": "benchmarks/plansearch_bench.py --write",
        "exhaustive": {"seconds": exhaustive_s, **stats_row(exhaustive)},
        "pruned": {"seconds": pruned_s, **stats_row(pruned)},
        "speedup_vs_exhaustive": exhaustive_s / pruned_s,
        "cold": {"seconds": cold_s, **stats_row(cold)},
        "warm": {"seconds": warm_s, **stats_row(warm)},
        "winner": {
            "key": pruned.winner.key,
            "response_time": pruned.winner.response_time,
            "num_phases": pruned.winner.num_phases,
        },
    }


def write_bench(path: pathlib.Path = BENCH_PATH) -> dict:
    payload = run_bench()
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def check_regression(
    threshold: float, path: pathlib.Path = BENCH_PATH
) -> tuple[bool, str]:
    """Fresh run: speedup, winner-invariance and warm-store gates."""
    try:
        committed = json.loads(path.read_text())
    except FileNotFoundError:
        return False, f"no committed baseline at {path}; run --write first"
    payload = run_bench()
    ok = True
    lines = []

    speedup = payload["speedup_vs_exhaustive"]
    lines.append(
        f"pruned search: {payload['pruned']['seconds']:.4f}s vs exhaustive "
        f"{payload['exhaustive']['seconds']:.4f}s = {speedup:.1f}x "
        f"(threshold {threshold:.1f}x; committed "
        f"{committed['speedup_vs_exhaustive']:.1f}x)"
    )
    if speedup < threshold:
        ok = False
        lines.append("PERF REGRESSION: pruned search lost its speedup")

    scored = payload["pruned"]["scored"]
    budget = committed["pruned"]["scored"]
    lines.append(
        f"candidates scored: {scored}/{payload['pruned']['unique']} "
        f"(committed baseline {budget})"
    )
    if scored > 2 * budget:
        ok = False
        lines.append(
            "PRUNE REGRESSION: search scheduled more than twice the "
            "committed candidate budget"
        )

    warm = payload["warm"]
    if warm["store_misses"] != 0:
        ok = False
        lines.append(
            f"CACHE REGRESSION: warm re-search scheduled "
            f"{warm['store_misses']} cold candidates (must be 0)"
        )
    else:
        lines.append(
            f"warm re-search: 0 cold candidates "
            f"({warm['store_hits']} store hits, {warm['seconds']:.4f}s)"
        )

    if payload["winner"]["key"] != committed["winner"]["key"]:
        ok = False
        lines.append(
            "DETERMINISM REGRESSION: winner differs from committed baseline"
        )
    return ok, "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--write", action="store_true", help="refresh BENCH_plansearch.json"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail when the pruned search loses its speedup or determinism",
    )
    parser.add_argument("--threshold", type=float, default=3.0)
    args = parser.parse_args(argv)
    if not (args.write or args.check):
        parser.error("choose --write and/or --check")
    status = 0
    if args.write:
        payload = write_bench()
        print(
            f"exhaustive {payload['exhaustive']['seconds']:.4f}s "
            f"({payload['exhaustive']['scored']} scored) -> pruned "
            f"{payload['pruned']['seconds']:.4f}s "
            f"({payload['pruned']['scored']} scored), "
            f"{payload['speedup_vs_exhaustive']:.1f}x faster"
        )
        print(
            f"warm re-search: {payload['warm']['store_misses']} cold "
            f"candidates, {payload['warm']['store_hits']} hits"
        )
        print(f"wrote {BENCH_PATH}")
    if args.check:
        ok, message = check_regression(args.threshold)
        print(message)
        if not ok:
            status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
