"""Experiment thm51 — Theorem 5.1 bound check (Section 5.3).

Not a paper figure: an empirical audit of the analytical guarantee.  Runs
OPERATORSCHEDULE over a grid of random independent-operator instances,
records the observed makespan / lower-bound ratios, prints the worst
cases, and benchmarks one OPERATORSCHEDULE invocation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ConvexCombinationOverlap,
    OperatorSpec,
    PAPER_PARAMETERS,
    WorkVector,
    certify,
    operator_schedule,
    theorem51_fixed_degree_bound,
)

from _helpers import publish

COMM = PAPER_PARAMETERS.communication_model()
OVERLAP = ConvexCombinationOverlap(0.5)


def random_specs(rng, m):
    specs = []
    for i in range(m):
        cpu = float(rng.uniform(0.1, 60.0))
        disk = float(rng.uniform(0.0, 60.0))
        data = float(rng.uniform(0.0, 2e7))
        specs.append(
            OperatorSpec(
                name=f"op{i}", work=WorkVector([cpu, disk, 0.0]), data_volume=data
            )
        )
    return specs


@pytest.fixture(scope="module")
def audit():
    rng = np.random.default_rng(5_1)
    rows = []
    for _ in range(60):
        m = int(rng.integers(2, 14))
        p = int(rng.integers(2, 32))
        specs = random_specs(rng, m)
        result = operator_schedule(specs, p=p, comm=COMM, overlap=OVERLAP, f=0.7)
        cert = certify(result.makespan, specs, result.degrees, p, COMM, OVERLAP)
        rows.append((m, p, cert))
    return rows


def test_bench_thm51_audit(audit, benchmark):
    """Print the bound audit and benchmark one scheduler call."""
    ratios = sorted((cert.ratio for _, _, cert in audit), reverse=True)
    guarantee = theorem51_fixed_degree_bound(3)
    lines = [
        "== thm51: Theorem 5.1(a) empirical audit ==",
        f"instances: {len(audit)}   guarantee (2d+1): {guarantee:.0f}",
        f"worst observed ratio : {ratios[0]:.4f}",
        f"median observed ratio: {ratios[len(ratios) // 2]:.4f}",
        "note: Section 5.5 predicts average ratios near 1 (vector-packing",
        "heuristics waste little capacity on random instances [KLMS84]).",
    ]
    publish("thm51", "\n".join(lines))

    rng = np.random.default_rng(99)
    specs = random_specs(rng, 12)
    benchmark(
        lambda: operator_schedule(specs, p=24, comm=COMM, overlap=OVERLAP, f=0.7)
    )


def test_thm51_guarantee_never_violated(audit):
    assert all(cert.satisfied for _, _, cert in audit)


def test_thm51_average_far_below_guarantee(audit):
    ratios = [cert.ratio for _, _, cert in audit]
    assert sum(ratios) / len(ratios) < 2.0
