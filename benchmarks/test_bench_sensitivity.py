"""Experiment abl-params — hardware-parameter sensitivity (footnote 4).

The paper calibrated CPU speed and disk service rate so the system is
"relatively balanced".  This ablation sweeps the CPU speed and the disk
service time around their Table 2 values and reports how the
multi-dimensional advantage depends on that balance.
"""

from __future__ import annotations

import pytest

from repro.experiments import parameter_sensitivity, render_figure
from repro.experiments.config import PAPER_CONFIG

from _helpers import publish

CFG = PAPER_CONFIG.with_overrides(n_queries=3)
MULTIPLIERS = (0.1, 0.5, 1.0, 2.0, 10.0)


@pytest.fixture(scope="module")
def cpu_fig():
    return parameter_sensitivity("cpu_mips", MULTIPLIERS, CFG, n_joins=15, p=24)


@pytest.fixture(scope="module")
def disk_fig():
    return parameter_sensitivity(
        "disk_seconds_per_page", MULTIPLIERS, CFG, n_joins=15, p=24
    )


def test_bench_ablparams_regenerate(cpu_fig, disk_fig, benchmark):
    """Print both sensitivity sweeps; benchmark a small sweep."""
    gains_cpu = [
        (sy - ts) / sy
        for ts, sy in zip(
            cpu_fig.series_by_label("TreeSchedule").ys,
            cpu_fig.series_by_label("Synchronous").ys,
        )
    ]
    text = "\n".join(
        [
            render_figure(cpu_fig),
            f"advantage by multiplier: "
            + " ".join(f"{g * 100:.0f}%" for g in gains_cpu),
            "",
            render_figure(disk_fig),
        ]
    )
    publish("abl_params", text)

    benchmark(
        lambda: parameter_sensitivity(
            "cpu_mips",
            (1.0,),
            CFG.with_overrides(n_queries=1),
            n_joins=6,
            p=8,
        )
    )


def test_ablparams_treeschedule_wins_at_table2_calibration(cpu_fig, disk_fig):
    for fig in (cpu_fig, disk_fig):
        ts = fig.series_by_label("TreeSchedule")
        sy = fig.series_by_label("Synchronous")
        i = ts.xs.index(1.0)
        assert ts.ys[i] < sy.ys[i]

    # And the advantage at calibration is substantial.
    ts = cpu_fig.series_by_label("TreeSchedule")
    sy = cpu_fig.series_by_label("Synchronous")
    i = ts.xs.index(1.0)
    assert (sy.ys[i] - ts.ys[i]) / sy.ys[i] > 0.2


def test_ablparams_faster_cpu_monotone_for_synchronous(cpu_fig):
    """Synchronous (which ignores the granularity condition) speeds up
    monotonically with CPU speed.  TreeSchedule does NOT: at extreme CPU
    speeds the processing areas shrink until the CG_f condition
    (Prop. 4.1 has N_max ∝ f*W_p) throttles parallelism — a genuine
    property of the coarse-grain model, recorded in EXPERIMENTS.md."""
    sy = cpu_fig.series_by_label("Synchronous")
    assert all(b <= a * (1 + 1e-6) for a, b in zip(sy.ys, sy.ys[1:]))
    # TreeSchedule is monotone over the moderate range (<= 2x)...
    ts = cpu_fig.series_by_label("TreeSchedule")
    moderate = [y for x, y in zip(ts.xs, ts.ys) if x <= 2.0]
    assert all(b <= a * (1 + 1e-6) for a, b in zip(moderate, moderate[1:]))
    # ...and demonstrably throttled at the 10x extreme.
    assert ts.ys[-1] > min(ts.ys)


def test_ablparams_slower_disk_monotone(disk_fig):
    for s in disk_fig.series:
        assert all(b >= a * (1 - 1e-3) for a, b in zip(s.ys, s.ys[1:]))


def test_ablparams_advantage_survives_moderate_imbalance(cpu_fig, disk_fig):
    """TreeSchedule wins across the moderate range (0.1x-2x on either
    axis); only the extreme 10x-CPU point flips, via CG_f throttling."""
    for fig in (cpu_fig, disk_fig):
        ts = fig.series_by_label("TreeSchedule")
        sy = fig.series_by_label("Synchronous")
        for x, t, s in zip(ts.xs, ts.ys, sy.ys):
            if fig is cpu_fig and x > 2.0:
                continue
            assert t < s, f"lost at multiplier {x} in {fig.figure_id}"
