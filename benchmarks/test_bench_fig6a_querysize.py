"""Experiment fig6a — Figure 6(a): effect of query size.

Regenerates both algorithms at two system sizes over the join-count axis
(eps = 0.5, f = 0.7), prints the table, asserts the paper's monotone
relative-improvement shape, and times TREESCHEDULE on the largest query
size in the sweep.
"""

from __future__ import annotations

import pytest

from repro import ConvexCombinationOverlap, tree_schedule
from repro.experiments import figure6a, prepare_workload, render_figure

from _helpers import BENCH_CONFIG, publish

P_VALUES = (20, 80)


@pytest.fixture(scope="module")
def figure():
    return figure6a(BENCH_CONFIG, p_values=P_VALUES)


def test_bench_fig6a_regenerate(figure, benchmark):
    """Regenerate and print Figure 6(a); benchmark the largest query."""
    publish("fig6a", render_figure(figure))

    largest = BENCH_CONFIG.query_sizes[-1]
    queries = prepare_workload(largest, BENCH_CONFIG.n_queries, BENCH_CONFIG.seed)
    comm = BENCH_CONFIG.params.communication_model()
    overlap = ConvexCombinationOverlap(BENCH_CONFIG.default_epsilon)
    query = queries[0]

    benchmark(
        lambda: tree_schedule(
            query.operator_tree, query.task_tree, p=P_VALUES[0],
            comm=comm, overlap=overlap, f=BENCH_CONFIG.default_f,
        )
    )


def test_fig6a_shape_treeschedule_wins_at_every_size(figure):
    for p in P_VALUES:
        ts = figure.series_by_label(f"TreeSchedule P={p}")
        sy = figure.series_by_label(f"Synchronous P={p}")
        assert all(t < s for t, s in zip(ts.ys, sy.ys))


def test_fig6a_shape_improvement_grows_with_query_size(figure):
    """Paper: 'for a given system size, the relative improvement obtained
    with TREESCHEDULE increases monotonically with the query size'.

    On the reduced cohort this holds cleanly where parallelism choices
    matter (the larger system); at the small system every 40-join plan
    saturates all sites, so we assert the robust form there: substantial
    improvement (>30%) at every size.
    """
    p = max(P_VALUES)
    ts = figure.series_by_label(f"TreeSchedule P={p}")
    sy = figure.series_by_label(f"Synchronous P={p}")
    gains = [(s - t) / s for t, s in zip(ts.ys, sy.ys)]
    assert gains[-1] > gains[0], f"improvement shrank with size at P={p}"

    p_small = min(P_VALUES)
    ts = figure.series_by_label(f"TreeSchedule P={p_small}")
    sy = figure.series_by_label(f"Synchronous P={p_small}")
    gains = [(s - t) / s for t, s in zip(ts.ys, sy.ys)]
    assert all(g > 0.3 for g in gains)


def test_fig6a_shape_larger_queries_cost_more(figure):
    for s in figure.series:
        assert s.ys[-1] > s.ys[0]
