"""Artifact-store benchmark: cold vs warm fig-6a sweep + deepcopy removal.

Runs the Figure 6(a) sweep grid (query size x algorithm x system size)
twice against one content-addressed :class:`repro.store.ArtifactStore`:

* **cold** — empty cache directory: every point is evaluated and
  persisted, and every evaluated point schedules its whole query cohort;
* **warm** — same directory: every point is answered from the store, so
  the sweep schedules (at least) 10x fewer operators than the cold run —
  zero, in fact, which is the resumability claim in its strongest form.

It also measures the deepcopy elimination on the workload hot path: the
historical ``prepare_workload`` deep-copied the query cohort on every
call; the current one returns the shared structural cohort paired with
an immutable annotation view.  The bench times one ``copy.deepcopy`` of
the cohort (the old per-call cost, still measurable live) against the
current warm ``prepare_workload`` call.

Medians land in ``BENCH_store.json`` at the repository root.

Usage::

    python benchmarks/store_bench.py --write             # refresh BENCH_store.json
    python benchmarks/store_bench.py --check [--threshold 10.0]
        # regression gate: fail when the warm sweep exceeds threshold x
        # the committed warm median, or when the warm sweep schedules
        # more than a tenth of the cold run's operators

The timing threshold is deliberately generous (CI machines are noisy);
the operator-count check is exact — both runs are deterministic.
"""

from __future__ import annotations

import argparse
import copy
import json
import pathlib
import statistics
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.engine.metrics import MetricsRecorder  # noqa: E402
from repro.experiments import prepare_workload, quick_config  # noqa: E402
from repro.experiments.parallel import ParallelRunner, SweepPoint  # noqa: E402
from repro.store import NO_STORE, ArtifactStore  # noqa: E402

BENCH_PATH = REPO_ROOT / "BENCH_store.json"
SCHEMA = "repro-bench-store/1"

#: The fig-6a sweep of the bench: reduced sizes so the cold run stays in
#: seconds, same grid shape as repro.experiments.figures.figure6a.
CONFIG = quick_config(n_queries=3, query_sizes=(10, 20))
P_VALUES = (8, 32)
DEEPCOPY_COHORT = (20, 5, CONFIG.seed)  # n_joins, n_queries, seed


def sweep_points() -> list[SweepPoint]:
    """The Figure 6(a) grid (query size x algorithm x system size)."""
    return [
        SweepPoint(
            algorithm, size, CONFIG.n_queries, CONFIG.seed,
            p, CONFIG.default_f, CONFIG.default_epsilon, CONFIG.params,
        )
        for p in P_VALUES
        for algorithm in ("treeschedule", "synchronous")
        for size in CONFIG.query_sizes
    ]


def operators_per_point(point: SweepPoint) -> int:
    """Operators one evaluated sweep point hands to its scheduler."""
    cohort = prepare_workload(
        point.n_joins, point.n_queries, point.seed, point.params, store=NO_STORE
    )
    return sum(len(list(q.operator_tree.operators)) for q in cohort)


def run_sweep(store: ArtifactStore) -> dict:
    """Evaluate the grid against ``store`` and account for the work done."""
    points = sweep_points()
    metrics = MetricsRecorder()
    started = time.perf_counter()
    values = ParallelRunner(metrics=metrics, store=store).run(points)
    elapsed = time.perf_counter() - started
    evaluated = int(metrics.counters.get("points_evaluated", 0.0))
    # Both runs see the same deterministic grid, and the store either
    # answers a point entirely or not at all, so the operators scheduled
    # are exactly those of the evaluated points (the grid is uniform per
    # size; evaluation order does not matter for the total).
    per_point = [operators_per_point(point) for point in points]
    if evaluated == len(points):
        operators = sum(per_point)
    elif evaluated == 0:
        operators = 0
    else:  # partial warm run: conservative upper bound
        operators = sum(sorted(per_point, reverse=True)[:evaluated])
    return {
        "seconds": elapsed,
        "points": len(points),
        "points_evaluated": evaluated,
        "operators_scheduled": operators,
        "store": store.stats.snapshot(),
        "checksum": round(sum(values), 6),
    }


def run_deepcopy_comparison(reps: int = 5) -> dict:
    """Old per-call deepcopy cost vs the current shared warm path."""
    n_joins, n_queries, seed = DEEPCOPY_COHORT
    cohort = prepare_workload(n_joins, n_queries, seed, store=NO_STORE)

    def timed(fn) -> float:
        times = []
        for _ in range(reps):
            start = time.perf_counter()
            fn()
            times.append(time.perf_counter() - start)
        return statistics.median(times)

    deepcopy_s = timed(lambda: copy.deepcopy([q.query for q in cohort]))
    shared_s = timed(
        lambda: prepare_workload(n_joins, n_queries, seed, store=NO_STORE)
    )
    return {
        "cohort": {"n_joins": n_joins, "n_queries": n_queries, "seed": seed},
        "deepcopy_s": deepcopy_s,
        "shared_prepare_s": shared_s,
        "speedup": deepcopy_s / shared_s if shared_s else float("inf"),
    }


def run_bench() -> dict:
    with tempfile.TemporaryDirectory(prefix="repro-store-bench-") as tmp:
        cold = run_sweep(ArtifactStore(tmp))
        warm = run_sweep(ArtifactStore(tmp))  # fresh stats, same directory
    assert warm["checksum"] == cold["checksum"], "warm sweep changed values"
    return {
        "schema": SCHEMA,
        "sweep": (
            f"fig6a grid: sizes={CONFIG.query_sizes} x "
            f"(treeschedule, synchronous) x P={P_VALUES}, "
            f"{CONFIG.n_queries} queries/point"
        ),
        "generated_by": "benchmarks/store_bench.py --write",
        "cold": cold,
        "warm": warm,
        "speedup_cold_vs_warm": cold["seconds"] / warm["seconds"],
        "operator_reduction": (
            cold["operators_scheduled"] / max(warm["operators_scheduled"], 1)
        ),
        "deepcopy_elimination": run_deepcopy_comparison(),
    }


def write_bench(path: pathlib.Path = BENCH_PATH) -> dict:
    payload = run_bench()
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def check_regression(
    threshold: float, path: pathlib.Path = BENCH_PATH
) -> tuple[bool, str]:
    """Fresh cold+warm run against the committed warm baseline."""
    try:
        committed = json.loads(path.read_text())
    except FileNotFoundError:
        return False, f"no committed baseline at {path}; run --write first"
    payload = run_bench()
    cold, warm = payload["cold"], payload["warm"]
    ok = True
    lines = []
    baseline = committed["warm"]["seconds"]
    ratio = warm["seconds"] / baseline
    lines.append(
        f"warm fig6a sweep: current={warm['seconds']:.4f}s "
        f"baseline={baseline:.4f}s ratio={ratio:.2f}x (threshold {threshold:.1f}x)"
    )
    if ratio > threshold:
        ok = False
        lines.append("PERF REGRESSION: warm sweep exceeded threshold")
    if warm["operators_scheduled"] * 10 > cold["operators_scheduled"]:
        ok = False
        lines.append(
            "CACHE REGRESSION: warm sweep scheduled "
            f"{warm['operators_scheduled']} operators "
            f"(cold: {cold['operators_scheduled']}; must be <= 1/10)"
        )
    else:
        lines.append(
            f"operators scheduled: cold={cold['operators_scheduled']} "
            f"warm={warm['operators_scheduled']} (>=10x reduction holds)"
        )
    return ok, "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--write", action="store_true", help="refresh BENCH_store.json"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail when the warm sweep regresses past --threshold",
    )
    parser.add_argument("--threshold", type=float, default=10.0)
    args = parser.parse_args(argv)
    if not (args.write or args.check):
        parser.error("choose --write and/or --check")
    status = 0
    if args.write:
        payload = write_bench()
        print(
            f"cold {payload['cold']['seconds']:.4f}s "
            f"({payload['cold']['operators_scheduled']} operators) -> "
            f"warm {payload['warm']['seconds']:.4f}s "
            f"({payload['warm']['operators_scheduled']} operators), "
            f"{payload['speedup_cold_vs_warm']:.1f}x faster"
        )
        dc = payload["deepcopy_elimination"]
        print(
            f"deepcopy elimination: {dc['deepcopy_s']:.6f}s copied vs "
            f"{dc['shared_prepare_s']:.6f}s shared ({dc['speedup']:.1f}x)"
        )
        print(f"wrote {BENCH_PATH}")
    if args.check:
        ok, message = check_regression(args.threshold)
        print(message)
        if not ok:
            status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
