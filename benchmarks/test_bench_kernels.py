"""Experiment bench-kernels — scheduling-kernel wall-clock trajectory.

Regenerates ``BENCH_kernels.json`` (repo root) with the median
``pack_vectors`` wall-clock on the n × p grid, so every benchmark run
extends the perf trajectory started in PR 2.  Asserts the two properties
the optimization is sold on:

* the optimized kernel is at least 3x faster than the frozen pre-PR 2
  baseline at the guard point (n=1000, p=64, d=3);
* heap placement and incremental loads change nothing about the output —
  the packing is byte-identical to the naive reference kernel;
* the batched shelf packer clears the scale point (n=10^4 clones over
  p=10^3 sites) warm in well under a second;
* repairing a 3-site failure via incremental rescheduling beats a cold
  re-pack by at least 4x at the guard point's size.
"""

from __future__ import annotations

import json

from repro import ConvexCombinationOverlap, pack_vectors, pack_vectors_reference
from repro.serialization import schedule_to_dict

from _helpers import publish
from kernel_bench import (
    GUARD_POINT,
    PRE_PR2_SECONDS,
    RESCHEDULE_N,
    RESCHEDULE_P,
    SCALE_POINT,
    make_items,
    write_bench,
)

OVERLAP = ConvexCombinationOverlap(0.5)


def test_bench_kernels_trajectory(benchmark):
    """Refresh BENCH_kernels.json and benchmark the guard point."""
    payload = write_bench()
    lines = [
        "== bench-kernels: pack_vectors wall-clock (median seconds) ==",
        f"{'point':14s} {'pre-PR2':>10s} {'reference':>10s} {'optimized':>10s} {'speedup':>8s}",
    ]
    for key, entry in sorted(payload["points"].items()):
        pre = entry.get("pre_pr2_s")
        ref = entry.get("reference_s")
        lines.append(
            f"{key:14s} {pre if pre is not None else float('nan'):10.6f} "
            f"{ref if ref is not None else float('nan'):10.6f} "
            f"{entry['optimized_s']:10.6f} "
            f"{entry.get('speedup_vs_pre_pr2', float('nan')):7.1f}x"
        )
    scale = payload["scale"][SCALE_POINT]
    resched = payload["reschedule"][f"n={RESCHEDULE_N},p={RESCHEDULE_P}"]
    lines.append(
        f"{SCALE_POINT:14s} {'':10s} {'':10s} "
        f"{scale['optimized_s']:10.6f}    warm"
    )
    lines.append(
        f"reschedule n={RESCHEDULE_N},p={RESCHEDULE_P}: "
        f"repair {resched['reschedule_s']:.6f}s vs cold "
        f"{resched['cold_repack_s']:.6f}s "
        f"({resched['speedup_vs_cold_repack']:.1f}x, "
        f"{int(resched['removed_sites'])} sites removed)"
    )
    publish("bench_kernels", "\n".join(lines))

    items = make_items(1000)
    benchmark(lambda: pack_vectors(items, p=64, overlap=OVERLAP))

    guard = payload["points"][GUARD_POINT]
    assert guard["pre_pr2_s"] == PRE_PR2_SECONDS[GUARD_POINT]
    # Acceptance criterion of PR 2: >= 3x on the guard point.
    assert guard["speedup_vs_pre_pr2"] >= 3.0
    # Acceptance criteria of the batched-kernel refactor.  Both bounds
    # are far looser than typical measurements (~0.08 s and ~10-14x) to
    # absorb CI noise while still catching order-of-magnitude breaks.
    assert scale["optimized_s"] < 1.0
    assert resched["speedup_vs_cold_repack"] >= 4.0


def test_kernels_guard_point_output_unchanged():
    """The optimized kernel's packing is byte-identical to the reference."""
    items = make_items(1000)
    fast = pack_vectors(items, p=64, overlap=OVERLAP)
    slow = pack_vectors_reference(items, p=64, overlap=OVERLAP)
    assert json.dumps(schedule_to_dict(fast)) == json.dumps(schedule_to_dict(slow))
