"""Kernel micro-benchmark: pack_vectors wall-clock trajectory.

Times the optimized ``pack_vectors`` kernel (lazy heap + cached vector
stats + incremental site loads) and the retained naive reference kernel
(``pack_vectors_reference``: full allowable-list rescan with loads
recomputed from the placed clones) on the grid

    n ∈ {100, 1000, 5000} clones × p ∈ {8, 64} sites, d = 3,

and writes the medians to ``BENCH_kernels.json`` at the repository root
so the perf trajectory is recorded commit over commit.  The committed
file also carries the frozen pre-optimization (PR 1) measurements of the
original kernel, taken on the same grid before this refactor landed —
the "before" of the before/after speedup claim.

Usage::

    python benchmarks/kernel_bench.py --write            # refresh BENCH_kernels.json
    python benchmarks/kernel_bench.py --check [--threshold 5.0]
        # regression gate: fail when the optimized kernel at the guard
        # point (n=1000, p=64) exceeds threshold x the committed median

The check threshold is deliberately generous (CI machines are noisy);
it exists to catch order-of-magnitude regressions — e.g. losing the
heap, or reintroducing per-query load recomputation — not 20%% drift.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import statistics
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import (  # noqa: E402
    CloneItem,
    ConvexCombinationOverlap,
    WorkVector,
    pack_vectors,
    pack_vectors_reference,
)

BENCH_PATH = REPO_ROOT / "BENCH_kernels.json"
SCHEMA = "repro-bench-kernels/1"
D = 3
SIZES = (100, 1000, 5000)
SITE_COUNTS = (8, 64)
#: The guard point of the CI perf-smoke check.
GUARD_POINT = "n=1000,p=64"
OVERLAP = ConvexCombinationOverlap(0.5)

#: Median pack_vectors wall-clock of the ORIGINAL kernel (PR 1, commit
#: 1094e8d: linear allowable-list scan, uncached WorkVector.length/total,
#: recomputed min per clone), measured on this container before the PR 2
#: refactor.  Frozen here because the original code no longer exists in
#: the tree; the live "before" proxy is pack_vectors_reference.
PRE_PR2_SECONDS = {
    "n=100,p=8": 0.0013712,
    "n=100,p=64": 0.0049045,
    "n=1000,p=8": 0.0172445,
    "n=1000,p=64": 0.0562569,
    "n=5000,p=8": 0.0891891,
    "n=5000,p=64": 0.2898753,
}

#: The naive reference recomputes site loads from every placed clone on
#: every scan, so it is O(n^2·d) per site sweep — timing it above this
#: clone count adds minutes for no extra information.
REFERENCE_MAX_N = 1000


def make_items(n: int, d: int = D, seed: int = 0) -> list[CloneItem]:
    """Deterministic mixed-resource clone set (one clone per operator)."""
    rng = random.Random(seed)
    return [
        CloneItem(
            operator=f"op{i}",
            clone_index=0,
            work=WorkVector([rng.uniform(0.1, 10.0) for _ in range(d)]),
        )
        for i in range(n)
    ]


def _median_seconds(fn, reps: int) -> float:
    times = []
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def run_grid(include_reference: bool = True) -> dict[str, dict[str, float]]:
    """Time the kernel grid; returns per-point medians and speedups."""
    points: dict[str, dict[str, float]] = {}
    for n in SIZES:
        items = make_items(n)
        reps = 5 if n <= 1000 else 3
        for p in SITE_COUNTS:
            key = f"n={n},p={p}"
            entry: dict[str, float] = {
                "optimized_s": _median_seconds(
                    lambda: pack_vectors(items, p=p, overlap=OVERLAP), reps
                )
            }
            if include_reference and n <= REFERENCE_MAX_N:
                entry["reference_s"] = _median_seconds(
                    lambda: pack_vectors_reference(items, p=p, overlap=OVERLAP), reps
                )
                entry["speedup_vs_reference"] = (
                    entry["reference_s"] / entry["optimized_s"]
                )
            if key in PRE_PR2_SECONDS:
                entry["pre_pr2_s"] = PRE_PR2_SECONDS[key]
                entry["speedup_vs_pre_pr2"] = (
                    PRE_PR2_SECONDS[key] / entry["optimized_s"]
                )
            points[key] = entry
    return points


def write_bench(path: pathlib.Path = BENCH_PATH) -> dict:
    payload = {
        "schema": SCHEMA,
        "kernel": "pack_vectors (sort=MAX_COMPONENT, rule=LEAST_LOADED_LENGTH)",
        "d": D,
        "guard_point": GUARD_POINT,
        "generated_by": "benchmarks/kernel_bench.py --write",
        "points": run_grid(),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def check_regression(
    threshold: float, path: pathlib.Path = BENCH_PATH
) -> tuple[bool, str]:
    """Compare a fresh guard-point timing against the committed baseline."""
    try:
        committed = json.loads(path.read_text())
    except FileNotFoundError:
        return False, f"no committed baseline at {path}; run --write first"
    baseline = committed["points"][GUARD_POINT]["optimized_s"]
    n, p = 1000, 64
    items = make_items(n)
    current = _median_seconds(lambda: pack_vectors(items, p=p, overlap=OVERLAP), 5)
    ratio = current / baseline
    message = (
        f"pack_vectors {GUARD_POINT}: current={current:.6f}s "
        f"baseline={baseline:.6f}s ratio={ratio:.2f}x (threshold {threshold:.1f}x)"
    )
    return ratio <= threshold, message


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--write", action="store_true", help="refresh BENCH_kernels.json"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail when the guard point regresses past --threshold",
    )
    parser.add_argument("--threshold", type=float, default=5.0)
    args = parser.parse_args(argv)
    if not (args.write or args.check):
        parser.error("choose --write and/or --check")
    status = 0
    if args.write:
        payload = write_bench()
        for key, entry in sorted(payload["points"].items()):
            speed = entry.get("speedup_vs_pre_pr2")
            extra = f"  ({speed:.1f}x vs pre-PR2)" if speed else ""
            print(f"{key:14s} optimized {entry['optimized_s']:.6f}s{extra}")
        print(f"wrote {BENCH_PATH}")
    if args.check:
        ok, message = check_regression(args.threshold)
        print(message)
        if not ok:
            print("PERF REGRESSION: guard point exceeded threshold", file=sys.stderr)
            status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
