"""Kernel micro-benchmark: pack_vectors wall-clock trajectory.

Times the optimized ``pack_vectors`` kernel (batched numpy shelf packer
above the cutover, lazy heap below it, cached vector stats, incremental
site loads) and the retained naive reference kernel
(``pack_vectors_reference``: full allowable-list rescan with loads
recomputed from the placed clones) on the grid

    n ∈ {100, 1000, 5000} clones × p ∈ {8, 64} sites, d = 3,

plus two headline cases introduced with the batched-kernel refactor:

* the **scale point** ``n=10000, p=1000`` — the paper's problem sizes
  times ten, timed warm (one untimed warm-up rep first) through the
  batched shelf packer;
* the **heterogeneous scale point** — the same ``n=10000, p=1000``
  problem over three site classes (``fast:200:4.0`` / ``std:600:1.0``
  / ``slow:200:0.5``), exercising the capacity-normalized argmin of
  the batched kernel; the PR 9 target is a warm pack under 150 ms;
* the **reschedule case** at ``n=1000, p=64`` — repairing a 3-site
  failure via :func:`repro.core.reschedule.reschedule_schedule` on a
  fresh copy per rep (the copy is taken outside the timed region)
  versus cold re-packing the full shelf.

Medians land in ``BENCH_kernels.json`` at the repository root so the
perf trajectory is recorded commit over commit.  The committed file also
carries the frozen pre-optimization (PR 1) measurements of the original
kernel, taken on the same grid before this refactor landed — the
"before" of the before/after speedup claim.

Usage::

    python benchmarks/kernel_bench.py --write            # refresh BENCH_kernels.json
    python benchmarks/kernel_bench.py --check [--threshold 5.0]
        [--reschedule-floor 4.0]
        # regression gate: fail when the optimized kernel at the guard
        # point (n=1000, p=64) or the scale point (n=10000, p=1000)
        # exceeds threshold x the committed median, or when the repair
        # speedup over a cold re-pack falls below the floor

The check threshold is deliberately generous (CI machines are noisy);
it exists to catch order-of-magnitude regressions — e.g. losing the
heap, or reintroducing per-query load recomputation — not 20%% drift.
The reschedule floor is likewise far below the typically measured ~10x
for the same reason.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import statistics
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import (  # noqa: E402
    CloneItem,
    ConvexCombinationOverlap,
    ScheduleDelta,
    WorkVector,
    pack_vectors,
    pack_vectors_reference,
    parse_cluster_spec,
    reschedule_schedule,
)

BENCH_PATH = REPO_ROOT / "BENCH_kernels.json"
SCHEMA = "repro-bench-kernels/3"
D = 3
SIZES = (100, 1000, 5000)
SITE_COUNTS = (8, 64)
#: The guard point of the CI perf-smoke check.
GUARD_POINT = "n=1000,p=64"
#: The batched-kernel scale target: 10^4 clones over 10^3 sites, warm.
SCALE_POINT = "n=10000,p=1000"
SCALE_N, SCALE_P = 10_000, 1_000
#: The heterogeneous scale target: same size over three site classes.
HETERO_SCALE_POINT = "n=10000,p=1000,classes=3"
HETERO_CLUSTER = "fast:200:4.0,std:600:1.0,slow:200:0.5"
#: PR 9 acceptance: the heterogeneous warm pack stays under this bound
#: (checked against wall time directly, with --threshold slack for CI
#: host noise).
HETERO_BUDGET_S = 0.150
#: The reschedule case repairs this delta at the guard point's size.
RESCHEDULE_N, RESCHEDULE_P = 1000, 64
RESCHEDULE_REMOVED_SITES = (3, 17, 42)
OVERLAP = ConvexCombinationOverlap(0.5)

#: Median pack_vectors wall-clock of the ORIGINAL kernel (PR 1, commit
#: 1094e8d: linear allowable-list scan, uncached WorkVector.length/total,
#: recomputed min per clone), measured on this container before the PR 2
#: refactor.  Frozen here because the original code no longer exists in
#: the tree; the live "before" proxy is pack_vectors_reference.
PRE_PR2_SECONDS = {
    "n=100,p=8": 0.0013712,
    "n=100,p=64": 0.0049045,
    "n=1000,p=8": 0.0172445,
    "n=1000,p=64": 0.0562569,
    "n=5000,p=8": 0.0891891,
    "n=5000,p=64": 0.2898753,
}

#: The naive reference recomputes site loads from every placed clone on
#: every scan, so it is O(n^2·d) per site sweep — timing it above this
#: clone count adds minutes for no extra information.
REFERENCE_MAX_N = 1000


def make_items(n: int, d: int = D, seed: int = 0) -> list[CloneItem]:
    """Deterministic mixed-resource clone set (one clone per operator)."""
    rng = random.Random(seed)
    return [
        CloneItem(
            operator=f"op{i}",
            clone_index=0,
            work=WorkVector([rng.uniform(0.1, 10.0) for _ in range(d)]),
        )
        for i in range(n)
    ]


def _median_seconds(fn, reps: int) -> float:
    times = []
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def run_grid(include_reference: bool = True) -> dict[str, dict[str, float]]:
    """Time the kernel grid; returns per-point medians and speedups."""
    points: dict[str, dict[str, float]] = {}
    for n in SIZES:
        items = make_items(n)
        reps = 5 if n <= 1000 else 3
        for p in SITE_COUNTS:
            key = f"n={n},p={p}"
            entry: dict[str, float] = {
                "optimized_s": _median_seconds(
                    lambda: pack_vectors(items, p=p, overlap=OVERLAP), reps
                )
            }
            if include_reference and n <= REFERENCE_MAX_N:
                entry["reference_s"] = _median_seconds(
                    lambda: pack_vectors_reference(items, p=p, overlap=OVERLAP), reps
                )
                entry["speedup_vs_reference"] = (
                    entry["reference_s"] / entry["optimized_s"]
                )
            if key in PRE_PR2_SECONDS:
                entry["pre_pr2_s"] = PRE_PR2_SECONDS[key]
                entry["speedup_vs_pre_pr2"] = (
                    PRE_PR2_SECONDS[key] / entry["optimized_s"]
                )
            points[key] = entry
    return points


def run_scale(reps: int = 5) -> dict[str, float]:
    """Time the warm scale point (one untimed warm-up rep first).

    The warm-up pays numpy initialization and fills allocator pools so
    the recorded medians reflect steady-state shelf packing, which is
    what the "<0.1 s at n=10^4, p=10^3" target is stated against.
    """
    items = make_items(SCALE_N)
    pack_vectors(items, p=SCALE_P, overlap=OVERLAP)  # warm-up, untimed
    return {
        "optimized_s": _median_seconds(
            lambda: pack_vectors(items, p=SCALE_P, overlap=OVERLAP), reps
        )
    }


def run_scale_hetero(reps: int = 5) -> dict[str, float]:
    """Time the warm heterogeneous scale point (three site classes).

    Same problem size as :func:`run_scale`, but the 10^3 sites span a
    4.0/1.0/0.5 capacity spread, so every placement goes through the
    capacity-normalized argmin instead of the plain least-loaded one.
    """
    spec = parse_cluster_spec(HETERO_CLUSTER)
    assert spec.p == SCALE_P
    capacities = spec.capacities()
    items = make_items(SCALE_N)
    pack_vectors(
        items, p=SCALE_P, overlap=OVERLAP, capacities=capacities
    )  # warm-up, untimed
    return {
        "cluster": HETERO_CLUSTER,
        "optimized_s": _median_seconds(
            lambda: pack_vectors(
                items, p=SCALE_P, overlap=OVERLAP, capacities=capacities
            ),
            reps,
        ),
    }


def run_reschedule(reps: int = 5) -> dict[str, float]:
    """Repair-vs-cold-repack at the guard point's problem size.

    Each repair rep runs on a fresh copy of the packed base schedule;
    the copy is taken *outside* the timed region, so ``reschedule_s``
    is the cost of the repair itself (drain + re-place of the displaced
    clones), the quantity the O(moved · log p) claim is about.
    """
    items = make_items(RESCHEDULE_N)
    base = pack_vectors(items, p=RESCHEDULE_P, overlap=OVERLAP)
    delta = ScheduleDelta(remove_sites=RESCHEDULE_REMOVED_SITES)
    cold_s = _median_seconds(
        lambda: pack_vectors(items, p=RESCHEDULE_P, overlap=OVERLAP), reps
    )
    times = []
    for _ in range(reps):
        copy = base.copy()  # untimed: repair cost only
        start = time.perf_counter()
        reschedule_schedule(copy, delta, overlap=OVERLAP)
        times.append(time.perf_counter() - start)
    reschedule_s = statistics.median(times)
    return {
        "cold_repack_s": cold_s,
        "reschedule_s": reschedule_s,
        "removed_sites": len(RESCHEDULE_REMOVED_SITES),
        "speedup_vs_cold_repack": cold_s / reschedule_s,
    }


def write_bench(path: pathlib.Path = BENCH_PATH) -> dict:
    payload = {
        "schema": SCHEMA,
        "kernel": "pack_vectors (sort=MAX_COMPONENT, rule=LEAST_LOADED_LENGTH)",
        "d": D,
        "guard_point": GUARD_POINT,
        "scale_point": SCALE_POINT,
        "generated_by": "benchmarks/kernel_bench.py --write",
        "points": run_grid(),
        "scale": {
            SCALE_POINT: run_scale(),
            HETERO_SCALE_POINT: run_scale_hetero(),
        },
        "reschedule": {
            f"n={RESCHEDULE_N},p={RESCHEDULE_P}": run_reschedule()
        },
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def check_regression(
    threshold: float,
    reschedule_floor: float = 4.0,
    path: pathlib.Path = BENCH_PATH,
) -> tuple[bool, str]:
    """Compare fresh guard/scale/reschedule numbers against the baseline."""
    try:
        committed = json.loads(path.read_text())
    except FileNotFoundError:
        return False, f"no committed baseline at {path}; run --write first"
    ok = True
    lines = []

    baseline = committed["points"][GUARD_POINT]["optimized_s"]
    items = make_items(1000)
    current = _median_seconds(lambda: pack_vectors(items, p=64, overlap=OVERLAP), 5)
    ratio = current / baseline
    ok &= ratio <= threshold
    lines.append(
        f"pack_vectors {GUARD_POINT}: current={current:.6f}s "
        f"baseline={baseline:.6f}s ratio={ratio:.2f}x (threshold {threshold:.1f}x)"
    )

    scale_baseline = committed["scale"][SCALE_POINT]["optimized_s"]
    scale_current = run_scale(reps=3)["optimized_s"]
    scale_ratio = scale_current / scale_baseline
    ok &= scale_ratio <= threshold
    lines.append(
        f"pack_vectors {SCALE_POINT} (warm): current={scale_current:.6f}s "
        f"baseline={scale_baseline:.6f}s ratio={scale_ratio:.2f}x "
        f"(threshold {threshold:.1f}x)"
    )

    hetero_current = run_scale_hetero(reps=3)["optimized_s"]
    hetero_budget = HETERO_BUDGET_S * threshold
    ok &= hetero_current <= hetero_budget
    lines.append(
        f"pack_vectors {HETERO_SCALE_POINT} (warm): "
        f"current={hetero_current:.6f}s "
        f"budget={HETERO_BUDGET_S:.3f}s x {threshold:.1f} noise allowance"
    )

    fresh = run_reschedule(reps=3)
    speedup = fresh["speedup_vs_cold_repack"]
    ok &= speedup >= reschedule_floor
    lines.append(
        f"reschedule n={RESCHEDULE_N},p={RESCHEDULE_P}: "
        f"repair={fresh['reschedule_s']:.6f}s "
        f"cold={fresh['cold_repack_s']:.6f}s speedup={speedup:.1f}x "
        f"(floor {reschedule_floor:.1f}x)"
    )
    return ok, "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--write", action="store_true", help="refresh BENCH_kernels.json"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail when the guard point regresses past --threshold",
    )
    parser.add_argument("--threshold", type=float, default=5.0)
    parser.add_argument(
        "--reschedule-floor",
        type=float,
        default=4.0,
        help="minimum acceptable repair speedup over a cold re-pack",
    )
    args = parser.parse_args(argv)
    if not (args.write or args.check):
        parser.error("choose --write and/or --check")
    status = 0
    if args.write:
        payload = write_bench()
        for key, entry in sorted(payload["points"].items()):
            speed = entry.get("speedup_vs_pre_pr2")
            extra = f"  ({speed:.1f}x vs pre-PR2)" if speed else ""
            print(f"{key:14s} optimized {entry['optimized_s']:.6f}s{extra}")
        scale = payload["scale"][SCALE_POINT]
        print(f"{SCALE_POINT:14s} optimized {scale['optimized_s']:.6f}s (warm)")
        hetero = payload["scale"][HETERO_SCALE_POINT]
        print(
            f"{HETERO_SCALE_POINT} optimized {hetero['optimized_s']:.6f}s "
            f"(warm, {HETERO_CLUSTER})"
        )
        resched = payload["reschedule"][f"n={RESCHEDULE_N},p={RESCHEDULE_P}"]
        print(
            f"reschedule n={RESCHEDULE_N},p={RESCHEDULE_P}: "
            f"repair {resched['reschedule_s']:.6f}s vs cold "
            f"{resched['cold_repack_s']:.6f}s "
            f"({resched['speedup_vs_cold_repack']:.1f}x)"
        )
        print(f"wrote {BENCH_PATH}")
    if args.check:
        ok, message = check_regression(args.threshold, args.reschedule_floor)
        print(message)
        if not ok:
            print("PERF REGRESSION: guard point exceeded threshold", file=sys.stderr)
            status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
