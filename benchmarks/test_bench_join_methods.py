"""Experiment abl-method — hash vs. sort-merge plans (generality check).

The paper's testbed is pure hash joins but TREESCHEDULE "can be applied
to any bushy plan" (§6.1).  This ablation runs identical plan *shapes*
under both physical join methods and a 50/50 mix, checking that the
scheduler handles the sort-merge blocking structure (two blocking
producers per join, taller task trees) and that the cost model orders
the methods sensibly (hash wins under A1's unlimited memory — no run
I/O).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import (
    BaseRelationNode,
    ConvexCombinationOverlap,
    JoinMethod,
    JoinNode,
    PAPER_PARAMETERS,
    annotate_plan,
    build_task_tree,
    expand_plan,
    tree_schedule,
)
from repro.experiments import prepare_workload

from _helpers import BENCH_CONFIG, publish

N_JOINS = 12
P = 24
COMM = PAPER_PARAMETERS.communication_model()
OVERLAP = ConvexCombinationOverlap(0.5)


def convert(node, method_for):
    """Rebuild a plan with per-join methods chosen by ``method_for``."""
    if isinstance(node, BaseRelationNode):
        return node
    return JoinNode(
        node.join_id,
        convert(node.build_side, method_for),
        convert(node.probe_side, method_for),
        method=method_for(node.join_id),
    )


@pytest.fixture(scope="module")
def comparison():
    queries = prepare_workload(N_JOINS, BENCH_CONFIG.n_queries, BENCH_CONFIG.seed)
    rng = np.random.default_rng(424242)

    def schedule(plan):
        tree = expand_plan(plan)
        annotate_plan(tree, PAPER_PARAMETERS)
        tasks = build_task_tree(tree)
        result = tree_schedule(
            tree, tasks, p=P, comm=COMM, overlap=OVERLAP, f=BENCH_CONFIG.default_f
        )
        return result.response_time, result.num_phases

    rows = []
    for q in queries:
        hash_time, hash_phases = schedule(
            convert(q.plan, lambda _j: JoinMethod.HASH)
        )
        merge_time, merge_phases = schedule(
            convert(q.plan, lambda _j: JoinMethod.SORT_MERGE)
        )
        mixed_choice = {
            j.join_id: (
                JoinMethod.SORT_MERGE if rng.random() < 0.5 else JoinMethod.HASH
            )
            for j in q.plan.joins()
        }
        mixed_time, _ = schedule(convert(q.plan, mixed_choice.__getitem__))
        rows.append(
            (hash_time, merge_time, mixed_time, hash_phases, merge_phases)
        )
    return rows


def test_bench_ablmethod_regenerate(comparison, benchmark):
    """Print the method comparison; benchmark scheduling a merge plan."""
    def mean(xs):
        xs = list(xs)
        return math.fsum(xs) / len(xs)

    lines = [
        "== abl-method: hash vs sort-merge on identical plan shapes ==",
        f"{BENCH_CONFIG.n_queries} x {N_JOINS}-join plans on P={P} "
        f"(eps=0.5, f={BENCH_CONFIG.default_f}); avg over cohort",
        f"  hash        : {mean(r[0] for r in comparison):8.3f} s "
        f"({mean(r[3] for r in comparison):.1f} phases)",
        f"  sort-merge  : {mean(r[1] for r in comparison):8.3f} s "
        f"({mean(r[4] for r in comparison):.1f} phases)",
        f"  50/50 mixed : {mean(r[2] for r in comparison):8.3f} s",
        "note: with A1 memory the hash method dominates (no run I/O);",
        "sort-merge exercises the two-blocking-producer task structure.",
    ]
    publish("abl_method", "\n".join(lines))

    queries = prepare_workload(N_JOINS, BENCH_CONFIG.n_queries, BENCH_CONFIG.seed)
    plan = convert(queries[0].plan, lambda _j: JoinMethod.SORT_MERGE)
    tree = expand_plan(plan)
    annotate_plan(tree, PAPER_PARAMETERS)
    tasks = build_task_tree(tree)
    benchmark(
        lambda: tree_schedule(
            tree, tasks, p=P, comm=COMM, overlap=OVERLAP, f=BENCH_CONFIG.default_f
        )
    )


def test_ablmethod_hash_wins_under_a1(comparison):
    for hash_time, merge_time, _, _, _ in comparison:
        assert hash_time < merge_time


def test_ablmethod_mixed_between_pure_methods_on_average(comparison):
    import math

    mean_hash = math.fsum(r[0] for r in comparison) / len(comparison)
    mean_merge = math.fsum(r[1] for r in comparison) / len(comparison)
    mean_mixed = math.fsum(r[2] for r in comparison) / len(comparison)
    assert mean_hash <= mean_mixed <= mean_merge * 1.05
