"""Experiment abl-serialize — pipeline serialization under memory pressure.

Hsiao et al. (§2) motivate serializing deep plans.  This ablation tests
whether breaking long probe chains with materialization points ever pays
in our model: a deep right-deep plan is run as one pipeline and as
serialized segments, across per-site memory capacities, under the
memory-aware scheduler.

**Finding (negative, recorded honestly):** serialization *does* stagger
hash-table residency — it consistently spills fewer joins — but at the
Table 2 calibration the saved spill I/O never covers the added
store/rescan I/O; its relative penalty merely shrinks as memory
tightens.  The [HCY94] motivation for serialization (infeasibility /
thrashing beyond a residency point) needs a harder memory model than
graceful hybrid-hash spilling.
"""

from __future__ import annotations

import pytest

from repro import (
    BaseRelationNode,
    ConvexCombinationOverlap,
    JoinNode,
    MemoryModel,
    PAPER_PARAMETERS,
    Relation,
    annotate_plan,
    auto_materialize,
    build_task_tree,
    expand_plan,
    memory_aware_tree_schedule,
)

from _helpers import publish

COMM = PAPER_PARAMETERS.communication_model()
OVERLAP = ConvexCombinationOverlap(0.5)
P = 16
CAPS_MB = (1000.0, 1.0, 0.5, 0.25, 0.12)


def deep_plan():
    node = BaseRelationNode(Relation("R0", 80_000))
    for i in range(8):
        inner = BaseRelationNode(Relation(f"B{i}", 40_000))
        node = JoinNode(f"J{i}", inner, node)
    return node


@pytest.fixture(scope="module")
def tradeoff():
    pipeline = deep_plan()
    serialized = auto_materialize(deep_plan(), max_chain=2)
    variants = {}
    for name, plan in (("pipeline", pipeline), ("serialized", serialized)):
        tree = expand_plan(plan)
        annotate_plan(tree, PAPER_PARAMETERS)
        variants[name] = (tree, build_task_tree(tree))
    rows = []
    for cap_mb in CAPS_MB:
        memory = MemoryModel(capacity_bytes=cap_mb * 1e6)
        cells = {}
        for name, (tree, tasks) in variants.items():
            result = memory_aware_tree_schedule(
                tree, tasks, p=P, comm=COMM, overlap=OVERLAP,
                memory=memory, params=PAPER_PARAMETERS, f=0.7,
            )
            cells[name] = (result.response_time, result.total_spilled_joins)
        rows.append((cap_mb, cells["pipeline"], cells["serialized"]))
    return rows


def test_bench_ablserialize_regenerate(tradeoff, benchmark):
    """Print the serialization trade-off; benchmark the serialized run."""
    lines = [
        "== abl-serialize: deep-pipeline serialization vs memory pressure ==",
        f"8-join right-deep plan on P={P}; memory-aware scheduler",
        f"{'capacity':>10s} {'pipeline':>18s} {'serialized':>18s} {'ser/pipe':>9s}",
    ]
    for cap_mb, (t0, s0), (t1, s1) in tradeoff:
        lines.append(
            f"{cap_mb:7.2f} MB {t0:9.2f} s ({s0:2d} sp) {t1:9.2f} s ({s1:2d} sp) "
            f"{t1 / t0:8.3f}x"
        )
    lines.append(
        "finding: serialization spills fewer joins but never wins outright"
    )
    lines.append(
        "here — the saved spill I/O stays below the added store/rescan I/O."
    )
    publish("abl_serialize", "\n".join(lines))

    serialized = auto_materialize(deep_plan(), max_chain=2)
    tree = expand_plan(serialized)
    annotate_plan(tree, PAPER_PARAMETERS)
    tasks = build_task_tree(tree)
    memory = MemoryModel(capacity_bytes=0.5e6)
    benchmark(
        lambda: memory_aware_tree_schedule(
            tree, tasks, p=P, comm=COMM, overlap=OVERLAP,
            memory=memory, params=PAPER_PARAMETERS, f=0.7,
        )
    )


def test_ablserialize_staggers_residency(tradeoff):
    """Under pressure the serialized plan spills no more joins than the
    pipeline, and strictly fewer somewhere."""
    pressured = [row for row in tradeoff if row[0] < 100]
    assert all(s1 <= s0 for _, (_, s0), (_, s1) in pressured)
    assert any(s1 < s0 for _, (_, s0), (_, s1) in pressured)


def test_ablserialize_penalty_shrinks_under_pressure(tradeoff):
    """Serialization's relative penalty is smaller under tight memory
    than with unlimited memory (the staggering does help — just not
    enough to win)."""
    ample = tradeoff[0]
    tightest = tradeoff[-1]
    penalty_ample = ample[2][0] / ample[1][0]
    penalty_tight = tightest[2][0] / tightest[1][0]
    assert penalty_tight < penalty_ample


def test_ablserialize_pipeline_wins_throughout(tradeoff):
    for _, (t0, _), (t1, _) in tradeoff:
        assert t0 < t1


def test_ablserialize_strict_mode_makes_serialization_necessary():
    """Without the hybrid-hash fallback (``allow_spill=False``) there is a
    capacity window where the pipeline plan is *infeasible* and only the
    serialized plan runs — the [HCY94] regime the graceful-spill model
    hides."""
    from repro import memory_aware_tree_schedule
    from repro.exceptions import InfeasibleScheduleError

    kwargs = dict(
        p=P, comm=COMM, overlap=OVERLAP,
        memory=MemoryModel(capacity_bytes=2e6),
        params=PAPER_PARAMETERS, f=0.7, allow_spill=False,
    )
    pipe = expand_plan(deep_plan())
    annotate_plan(pipe, PAPER_PARAMETERS)
    with pytest.raises(InfeasibleScheduleError):
        memory_aware_tree_schedule(pipe, build_task_tree(pipe), **kwargs)

    ser = expand_plan(auto_materialize(deep_plan(), max_chain=2))
    annotate_plan(ser, PAPER_PARAMETERS)
    result = memory_aware_tree_schedule(ser, build_task_tree(ser), **kwargs)
    assert result.total_spilled_joins == 0
