"""Online scheduler service benchmark: throughput/latency vs offered load.

Runs the serve layer's :class:`~repro.serve.SchedulerService` at three
offered-load levels (open Poisson arrivals with the default diurnal
curve) on a 20-site pool and records, per level, the completed
throughput (queries per virtual second) and the end-to-end latency
percentiles p50/p95/p99.  A fourth run repeats the high-load level with
the degree governor pinned to ``FIXED`` max degree — the baseline the
adaptive governor must beat: at granularity ``f = 0.1`` total work
``k·T0(k)`` grows with the clone degree ``k``, so scheduling narrow
under pressure sustains strictly more throughput than always scheduling
wide.  A fifth run repeats the high-load level with a mid-run elastic
capacity script (quadruple four sites a quarter in, drop them back at
three quarters) — the PR 9 elasticity primitive driven end-to-end
through :class:`~repro.serve.pool.SitePool.set_capacity` repair deltas,
recorded with the same exact virtual-time fields.  A sixth run repeats
the high-load level with the PR 10 telemetry plane attached (sampler
task, SLO monitor, fleet accumulators) — its virtual-time fields must
be *byte-identical* to the plain high-load run, because telemetry is
read-only observation, and its wall time must stay within a loose
multiple of the uninstrumented run (the overhead gate).

Everything executes in virtual time on a single event loop, so the
recorded throughput/latency figures are deterministic functions of the
seed — byte-stable across machines and worker counts.  Only the
``wall_s`` fields (how long the simulation itself took) vary per host,
and the ``--check`` gate guards them loosely.

Usage::

    python benchmarks/serve_bench.py --write            # refresh BENCH_serve.json
    python benchmarks/serve_bench.py --check [--wall-budget 120.0]
        # CI gate: re-runs the bench fresh and fails when
        #   (a) two fresh high-load runs disagree (determinism broke),
        #   (b) adaptive throughput at high load does not strictly beat
        #       the fixed-max-degree baseline (the governor claim),
        #   (c) the elastic run applies fewer capacity changes than its
        #       script (mid-run resizes stopped reaching the pool),
        #   (d) qps/percentiles diverge from the committed baseline
        #       (the virtual-time results are exact, not timing-based),
        #   (e) total bench wall time exceeds --wall-budget seconds,
        #   (f) the telemetry run's virtual-time fields differ from the
        #       plain high-load run (observation perturbed the service)
        #       or its wall time blows past the overhead multiple.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve import (  # noqa: E402
    GovernorConfig,
    GovernorPolicy,
    SchedulerService,
    ServeConfig,
    TelemetryConfig,
    WorkloadSpec,
)

BENCH_PATH = REPO_ROOT / "BENCH_serve.json"
SCHEMA = "repro-bench-serve/3"

P = 20
MAX_CORESIDENT = 3
F = 0.1
SEED = 42
DURATION = 600.0
#: Offered-load levels in queries per virtual second: roughly 15%, 45%,
#: and well past 100% of what the pool drains at max degree.
LOAD_LEVELS = {"low": 0.02, "mid": 0.06, "high": 0.15}

#: Elastic script for the fifth run: quadruple sites 0-3 a quarter of
#: the way in, return them to unit capacity at three quarters.
ELASTIC_EVENTS = tuple(
    (DURATION * 0.25, site, 4.0) for site in range(4)
) + tuple((DURATION * 0.75, site, 1.0) for site in range(4))

#: Loose wall-overhead gate for the telemetry run: sampling every 5
#: virtual seconds must not multiply the simulation's wall cost.
TELEMETRY_WALL_FACTOR = 2.5
TELEMETRY_WALL_SLACK_S = 1.0


def _service(
    rate: float,
    policy: GovernorPolicy,
    capacity_events: tuple = (),
    telemetry: bool = False,
) -> SchedulerService:
    return SchedulerService(
        ServeConfig(
            p=P,
            f=F,
            max_coresident=MAX_CORESIDENT,
            workload=WorkloadSpec(
                duration=DURATION,
                rate=rate,
                seed=SEED,
                template_pool=6,
                query_sizes=(4, 6, 8),
                diurnal_amplitude=0.3,
            ),
            governor=GovernorConfig(
                policy=policy, max_degree=8, min_degree=1, pressure_step=4
            ),
            capacity_events=capacity_events,
            telemetry=TelemetryConfig() if telemetry else None,
        )
    )


def run_level(
    rate: float,
    policy: GovernorPolicy,
    capacity_events: tuple = (),
    telemetry: bool = False,
) -> dict:
    """One service run; virtual-time results plus host wall time."""
    start = time.perf_counter()
    service = _service(rate, policy, capacity_events, telemetry)
    summary = service.run().summary()
    wall = time.perf_counter() - start
    lat = summary["latency"]["all"]
    entry = {
        "rate": rate,
        "offered": summary["offered"],
        "completed": lat["completed"],
        "qps": summary["qps"],
        "p50": lat["p50"],
        "p95": lat["p95"],
        "p99": lat["p99"],
        "mean_wait": lat["mean_wait"],
        "mean_slowdown": summary["mean_slowdown"],
        "site_utilization": summary["pool"]["site_utilization"],
        "mean_degree": summary["degrees"]["mean"],
        "sites_resized": summary["pool"].get("sites_resized", 0),
        "wall_s": round(wall, 4),
    }
    if telemetry:
        entry["telemetry_samples"] = int(
            service.metrics.counters.get("telemetry_samples", 0)
        )
        entry["slo_breaches"] = len(service.telemetry.breaches)
    return entry


def run_bench() -> dict:
    levels = {
        name: run_level(rate, GovernorPolicy.ADAPTIVE)
        for name, rate in LOAD_LEVELS.items()
    }
    fixed_high = run_level(LOAD_LEVELS["high"], GovernorPolicy.FIXED)
    elastic_high = run_level(
        LOAD_LEVELS["high"], GovernorPolicy.ADAPTIVE, ELASTIC_EVENTS
    )
    telemetry_high = run_level(
        LOAD_LEVELS["high"], GovernorPolicy.ADAPTIVE, telemetry=True
    )
    return {
        "schema": SCHEMA,
        "config": {
            "p": P,
            "f": F,
            "max_coresident": MAX_CORESIDENT,
            "seed": SEED,
            "duration": DURATION,
            "governor": "adaptive(max=8, min=1, step=4)",
            "workload": "open Poisson, diurnal 0.3, 6 templates of 4/6/8 joins",
        },
        "generated_by": "benchmarks/serve_bench.py --write",
        "levels": levels,
        "fixed_baseline_high": fixed_high,
        "elastic_high": elastic_high,
        "telemetry_high": telemetry_high,
        "governor_speedup_high": round(
            levels["high"]["qps"] / fixed_high["qps"], 4
        ),
    }


#: Virtual-time fields that must match the committed baseline exactly
#: (the simulation is deterministic; only wall_s is host-dependent).
EXACT_FIELDS = (
    "rate",
    "offered",
    "completed",
    "qps",
    "p50",
    "p95",
    "p99",
    "mean_wait",
    "mean_slowdown",
    "site_utilization",
    "mean_degree",
    "sites_resized",
)


def _virtual(entry: dict) -> dict:
    return {k: entry[k] for k in EXACT_FIELDS}


def check_regression(
    wall_budget: float, path: pathlib.Path = BENCH_PATH
) -> tuple[bool, str]:
    """Re-run fresh and compare against the committed baseline."""
    try:
        committed = json.loads(path.read_text())
    except FileNotFoundError:
        return False, f"no committed baseline at {path}; run --write first"
    ok = True
    lines = []

    start = time.perf_counter()
    fresh = run_bench()

    # (a) determinism: a second fresh high-load run must agree exactly.
    repeat = run_level(LOAD_LEVELS["high"], GovernorPolicy.ADAPTIVE)
    deterministic = _virtual(repeat) == _virtual(fresh["levels"]["high"])
    ok &= deterministic
    lines.append(f"high-load determinism (two fresh runs): {'OK' if deterministic else 'FAIL'}")

    # (b) the governor claim: adaptive strictly out-throughputs fixed.
    adaptive_qps = fresh["levels"]["high"]["qps"]
    fixed_qps = fresh["fixed_baseline_high"]["qps"]
    governed = adaptive_qps > fixed_qps
    ok &= governed
    lines.append(
        f"governor at high load: adaptive {adaptive_qps:.6g} qps vs fixed "
        f"{fixed_qps:.6g} qps ({adaptive_qps / fixed_qps:.2f}x, must be > 1)"
    )

    # (c) the elastic script really reached the pool: every scripted
    # capacity event applied, mid-run, through a repair delta.
    resized = fresh["elastic_high"]["sites_resized"]
    elastic_ok = resized == len(ELASTIC_EVENTS)
    ok &= elastic_ok
    lines.append(
        f"elastic high load: {resized} capacity changes applied "
        f"(expected {len(ELASTIC_EVENTS)}) "
        f"{'OK' if elastic_ok else 'FAIL'}"
    )

    # (d) virtual-time results match the committed file exactly.
    for name in (*LOAD_LEVELS, "fixed_baseline_high", "elastic_high", "telemetry_high"):
        fresh_entry = (
            fresh[name] if name in fresh else fresh["levels"][name]
        )
        committed_entry = (
            committed[name] if name in committed else committed["levels"][name]
        )
        match = _virtual(fresh_entry) == _virtual(committed_entry)
        ok &= match
        lines.append(
            f"level {name}: qps={fresh_entry['qps']:.6g} "
            f"p95={fresh_entry['p95']:.6g} "
            f"{'matches baseline' if match else 'DIVERGES from baseline'}"
        )

    # (f) telemetry is a pure observer: the instrumented high-load run
    # reports the exact same virtual-time results as the plain one, its
    # deterministic sample/breach counts match the committed file, and
    # the sampler's wall overhead stays inside the loose multiple.
    telemetry = fresh["telemetry_high"]
    plain = fresh["levels"]["high"]
    readonly = _virtual(telemetry) == _virtual(plain)
    ok &= readonly
    lines.append(
        "telemetry high load: virtual-time fields "
        + ("identical to plain run" if readonly else "DIVERGE from plain run")
    )
    committed_telemetry = committed["telemetry_high"]
    counts_match = (
        telemetry["telemetry_samples"] == committed_telemetry["telemetry_samples"]
        and telemetry["slo_breaches"] == committed_telemetry["slo_breaches"]
    )
    ok &= counts_match
    lines.append(
        f"telemetry high load: {telemetry['telemetry_samples']} samples, "
        f"{telemetry['slo_breaches']} breaches "
        f"{'match baseline' if counts_match else 'DIVERGE from baseline'}"
    )
    wall_cap = plain["wall_s"] * TELEMETRY_WALL_FACTOR + TELEMETRY_WALL_SLACK_S
    overhead_ok = telemetry["wall_s"] <= wall_cap
    ok &= overhead_ok
    lines.append(
        f"telemetry overhead: {telemetry['wall_s']:.2f}s vs plain "
        f"{plain['wall_s']:.2f}s (cap {wall_cap:.2f}s)"
        + ("" if overhead_ok else " EXCEEDED")
    )

    # (e) the whole bench stays inside the wall budget.
    wall = time.perf_counter() - start
    in_budget = wall <= wall_budget
    ok &= in_budget
    lines.append(
        f"bench wall time {wall:.2f}s (budget {wall_budget:.0f}s)"
        + ("" if in_budget else " EXCEEDED")
    )
    return ok, "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--write", action="store_true", help="refresh BENCH_serve.json"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail on lost determinism, a beaten governor, or drifted results",
    )
    parser.add_argument(
        "--wall-budget",
        type=float,
        default=120.0,
        help="maximum acceptable --check wall time in seconds",
    )
    args = parser.parse_args(argv)
    if not (args.write or args.check):
        parser.error("choose --write and/or --check")
    status = 0
    if args.write:
        payload = run_bench()
        BENCH_PATH.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        for name in LOAD_LEVELS:
            entry = payload["levels"][name]
            print(
                f"{name:5s} rate={entry['rate']:.3g}: qps={entry['qps']:.6g} "
                f"p50={entry['p50']:.6g} p95={entry['p95']:.6g} "
                f"p99={entry['p99']:.6g} ({entry['wall_s']:.2f}s wall)"
            )
        fixed = payload["fixed_baseline_high"]
        print(
            f"fixed baseline at high load: qps={fixed['qps']:.6g} "
            f"-> adaptive speedup {payload['governor_speedup_high']:.2f}x"
        )
        elastic = payload["elastic_high"]
        print(
            f"elastic high load: qps={elastic['qps']:.6g} "
            f"p95={elastic['p95']:.6g} "
            f"({elastic['sites_resized']} capacity changes)"
        )
        telemetry = payload["telemetry_high"]
        print(
            f"telemetry high load: qps={telemetry['qps']:.6g} "
            f"({telemetry['telemetry_samples']} samples, "
            f"{telemetry['slo_breaches']} breaches, "
            f"{telemetry['wall_s']:.2f}s wall)"
        )
        print(f"wrote {BENCH_PATH}")
    if args.check:
        ok, message = check_regression(args.wall_budget)
        print(message)
        if not ok:
            print(
                "PERF REGRESSION: serve bench failed its gate", file=sys.stderr
            )
            status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
