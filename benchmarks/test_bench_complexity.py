"""Experiment prop52 — empirical complexity scaling (Propositions 5.1/5.2).

Proposition 5.2 bounds TREESCHEDULE at ``O(J P (J + log P))`` for a
``J``-node plan on ``P`` sites.  This benchmark measures wall-clock
scaling along both axes and checks that growth stays comfortably inside
the quadratic envelope (superlinear blow-ups would indicate an
implementation regression, not a model property).
"""

from __future__ import annotations

import time

import pytest

from repro import ConvexCombinationOverlap, tree_schedule
from repro.experiments import prepare_workload

from _helpers import BENCH_CONFIG, publish

JOIN_SIZES = (10, 20, 40)
SITE_SIZES = (20, 40, 80, 160)


def _time_once(query, p, comm, overlap):
    start = time.perf_counter()
    tree_schedule(
        query.operator_tree, query.task_tree, p=p, comm=comm, overlap=overlap,
        f=BENCH_CONFIG.default_f,
    )
    return time.perf_counter() - start


@pytest.fixture(scope="module")
def scaling():
    comm = BENCH_CONFIG.params.communication_model()
    overlap = ConvexCombinationOverlap(BENCH_CONFIG.default_epsilon)
    by_joins = []
    for j in JOIN_SIZES:
        query = prepare_workload(j, 1, BENCH_CONFIG.seed)[0]
        elapsed = min(_time_once(query, 40, comm, overlap) for _ in range(3))
        by_joins.append((j, elapsed))
    by_sites = []
    query = prepare_workload(20, 1, BENCH_CONFIG.seed)[0]
    for p in SITE_SIZES:
        elapsed = min(_time_once(query, p, comm, overlap) for _ in range(3))
        by_sites.append((p, elapsed))
    return by_joins, by_sites


def test_bench_prop52_regenerate(scaling, benchmark):
    """Print the scaling table; benchmark the largest configuration."""
    by_joins, by_sites = scaling
    lines = [
        "== prop52: TREESCHEDULE runtime scaling (O(J P (J + log P))) ==",
        "joins axis (P=40):",
    ]
    for j, t in by_joins:
        lines.append(f"  J={j:3d}  {t * 1e3:8.2f} ms")
    lines.append("sites axis (J=20):")
    for p, t in by_sites:
        lines.append(f"  P={p:3d}  {t * 1e3:8.2f} ms")
    publish("prop52", "\n".join(lines))

    comm = BENCH_CONFIG.params.communication_model()
    overlap = ConvexCombinationOverlap(BENCH_CONFIG.default_epsilon)
    query = prepare_workload(JOIN_SIZES[-1], 1, BENCH_CONFIG.seed)[0]
    benchmark(
        lambda: tree_schedule(
            query.operator_tree, query.task_tree, p=SITE_SIZES[-1],
            comm=comm, overlap=overlap, f=BENCH_CONFIG.default_f,
        )
    )


def test_prop52_join_axis_within_quadratic_envelope(scaling):
    by_joins, _ = scaling
    (j1, t1), (_, _), (j3, t3) = by_joins
    observed = t3 / t1
    # Proposition 5.2 predicts ~ (J3/J1)^2 here; allow generous headroom
    # for constant factors and timer noise.
    envelope = 3.0 * (j3 / j1) ** 2
    assert observed < envelope, f"join-axis growth {observed:.1f}x exceeds envelope"


def test_prop52_site_axis_within_superlinear_envelope(scaling):
    _, by_sites = scaling
    (p1, t1), *_, (p4, t4) = by_sites
    observed = t4 / t1
    envelope = 3.0 * (p4 / p1) ** 1.5  # O(P log P)-ish with headroom
    assert observed < envelope, f"site-axis growth {observed:.1f}x exceeds envelope"
