"""Experiment abl-shelf — MinShelf vs. eager shelf policy ([TL93], §5.4).

The paper adopts Tan & Lu's MinShelf policy (each task as late as its
precedence constraints allow).  This ablation compares it against the
as-early-as-possible alternative on the same workloads and checks that
MinShelf is the right default.
"""

from __future__ import annotations

import math

import pytest

from repro import ConvexCombinationOverlap, tree_schedule
from repro.experiments import prepare_workload

from _helpers import BENCH_CONFIG, publish

N_JOINS = 20
P_VALUES = (10, 40, 140)


@pytest.fixture(scope="module")
def comparison():
    queries = prepare_workload(N_JOINS, BENCH_CONFIG.n_queries, BENCH_CONFIG.seed)
    comm = BENCH_CONFIG.params.communication_model()
    overlap = ConvexCombinationOverlap(BENCH_CONFIG.default_epsilon)

    def mean(xs):
        xs = list(xs)
        return math.fsum(xs) / len(xs)

    rows = []
    for p in P_VALUES:
        lazy = mean(
            tree_schedule(
                q.operator_tree, q.task_tree, p=p, comm=comm, overlap=overlap,
                f=BENCH_CONFIG.default_f, shelf="min",
            ).response_time
            for q in queries
        )
        eager = mean(
            tree_schedule(
                q.operator_tree, q.task_tree, p=p, comm=comm, overlap=overlap,
                f=BENCH_CONFIG.default_f, shelf="eager",
            ).response_time
            for q in queries
        )
        rows.append((p, lazy, eager))
    return rows


def test_bench_ablshelf_regenerate(comparison, benchmark):
    """Print the shelf-policy comparison; benchmark the eager variant."""
    lines = [
        "== abl-shelf: MinShelf vs eager shelf policy ([TL93]) ==",
        f"{BENCH_CONFIG.n_queries} x {N_JOINS}-join plans; avg response (s)",
        f"{'P':>4s} {'MinShelf':>10s} {'eager':>10s} {'eager/min':>10s}",
    ]
    for p, lazy, eager in comparison:
        lines.append(f"{p:4d} {lazy:8.3f} s {eager:8.3f} s {eager / lazy:9.3f}x")
    lines.append(
        "note: eager front-loads shallow tasks into crowded early phases;"
    )
    lines.append(
        "MinShelf keeps each task next to its parent, balancing the shelves."
    )
    publish("abl_shelf", "\n".join(lines))

    queries = prepare_workload(N_JOINS, BENCH_CONFIG.n_queries, BENCH_CONFIG.seed)
    comm = BENCH_CONFIG.params.communication_model()
    overlap = ConvexCombinationOverlap(BENCH_CONFIG.default_epsilon)
    q = queries[0]
    benchmark(
        lambda: tree_schedule(
            q.operator_tree, q.task_tree, p=40, comm=comm, overlap=overlap,
            f=BENCH_CONFIG.default_f, shelf="eager",
        )
    )


def test_ablshelf_minshelf_no_worse_on_average(comparison):
    """MinShelf should match or beat eager on average across the sweep."""
    mean_ratio = math.fsum(eager / lazy for _, lazy, eager in comparison) / len(
        comparison
    )
    assert mean_ratio >= 0.98  # eager should not be meaningfully better
