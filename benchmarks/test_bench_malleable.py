"""Experiment thm71 — Section 7: malleable vs. coarse-grain scheduling.

Compares the malleable scheduler (greedy parallelization family, no CG_f
restriction) against OPERATORSCHEDULE with the coarse-grain degree rule on
random independent-operator instances, prints the comparison, verifies the
Theorem 7.1 guarantee, and benchmarks the full malleable pipeline
(family generation + selection + list scheduling).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import (
    ConvexCombinationOverlap,
    OperatorSpec,
    PAPER_PARAMETERS,
    WorkVector,
    malleable_schedule,
    operator_schedule,
)

from _helpers import publish

COMM = PAPER_PARAMETERS.communication_model()
OVERLAP = ConvexCombinationOverlap(0.5)


def random_specs(rng, m):
    return [
        OperatorSpec(
            name=f"op{i}",
            work=WorkVector(
                [float(rng.uniform(0.1, 40.0)), float(rng.uniform(0.0, 40.0)), 0.0]
            ),
            data_volume=float(rng.uniform(0.0, 1e7)),
        )
        for i in range(m)
    ]


@pytest.fixture(scope="module")
def comparison():
    rng = np.random.default_rng(7_1)
    rows = []
    for _ in range(30):
        m = int(rng.integers(2, 10))
        p = int(rng.integers(2, 24))
        specs = random_specs(rng, m)
        mall = malleable_schedule(specs, p=p, comm=COMM, overlap=OVERLAP)
        mall_ms = malleable_schedule(
            specs, p=p, comm=COMM, overlap=OVERLAP, selection="makespan"
        )
        cg = operator_schedule(specs, p=p, comm=COMM, overlap=OVERLAP, f=0.7)
        rows.append((m, p, mall, mall_ms, cg))
    return rows


def test_bench_thm71_regenerate(comparison, benchmark):
    """Print the malleable-vs-CG_f comparison; benchmark the pipeline."""
    def mean(xs):
        xs = list(xs)
        return math.fsum(xs) / len(xs)

    lb_ratio = mean(m1.makespan / cg.makespan for _, _, m1, _, cg in comparison)
    ms_ratio = mean(m2.makespan / cg.makespan for _, _, _, m2, cg in comparison)
    bound_worst = max(
        m1.makespan / m1.lower_bound
        for _, _, m1, _, _ in comparison
        if m1.lower_bound > 0
    )
    family = mean(m1.candidates_examined for _, _, m1, _, _ in comparison)
    lines = [
        "== thm71: malleable scheduling (Section 7) ==",
        f"instances: {len(comparison)}",
        f"makespan vs CG_0.7 — LB selection (paper):     mean {lb_ratio:.3f}x",
        f"makespan vs CG_0.7 — makespan selection (ext): mean {ms_ratio:.3f}x",
        f"makespan/LB (Theorem 7.1 guarantee 7): worst={bound_worst:.3f}",
        f"family size examined: mean={family:.1f} (bound 1+M(P-1))",
        "note: selecting the family member by LB (the analyzed rule) is",
        "cheap but can trail the A4-capped CG rule on makespan; evaluating",
        "the whole family (same guarantee) closes the gap.",
    ]
    publish("thm71", "\n".join(lines))

    rng = np.random.default_rng(88)
    specs = random_specs(rng, 10)
    benchmark(lambda: malleable_schedule(specs, p=24, comm=COMM, overlap=OVERLAP))


def test_thm71_guarantee_holds(comparison):
    for _, _, m1, m2, _ in comparison:
        for mall in (m1, m2):
            if mall.lower_bound > 0:
                assert mall.makespan <= mall.guarantee * mall.lower_bound * (1 + 1e-9)


def test_thm71_family_size_within_bound(comparison):
    for m, p, m1, m2, _ in comparison:
        assert m1.candidates_examined <= 1 + m * (p - 1)
        assert m2.candidates_examined <= 1 + m * (p - 1)


def test_thm71_makespan_selection_dominates_lb_selection(comparison):
    for _, _, m1, m2, _ in comparison:
        assert m2.makespan <= m1.makespan * (1 + 1e-9)


def test_thm71_makespan_selection_competitive_with_coarse_grain(comparison):
    """Evaluating the whole family should come close to the fixed-f rule.

    The greedy family only grows the currently slowest operator, so the
    per-operator-optimal degrees the A4-capped CG rule picks need not be
    members; a modest residual gap is expected and recorded in
    EXPERIMENTS.md.  Assert the gap stays within 15% on average and that
    the exhaustive selection meaningfully improves on the LB selection.
    """
    ms = [m2.makespan / cg.makespan for _, _, _, m2, cg in comparison]
    lb = [m1.makespan / cg.makespan for _, _, m1, _, cg in comparison]
    assert sum(ms) / len(ms) <= 1.15
    assert sum(ms) / len(ms) < sum(lb) / len(lb)
