"""Experiment fig6b — Figure 6(b): TREESCHEDULE vs. the optimal lower bound.

Regenerates TREESCHEDULE and OPTBOUND curves for 20- and 40-join queries
(f = 0.7, eps = 0.5), prints them, asserts that the average performance is
far inside the worst-case Theorem 5.1 factor, and times the OPTBOUND
computation.
"""

from __future__ import annotations

import pytest

from repro import ConvexCombinationOverlap, opt_bound, theorem51_fixed_degree_bound
from repro.experiments import figure6b, prepare_workload, render_figure

from _helpers import BENCH_CONFIG, publish

QUERY_SIZES = (20, 40)


@pytest.fixture(scope="module")
def figure():
    return figure6b(BENCH_CONFIG, query_sizes=QUERY_SIZES)


def test_bench_fig6b_regenerate(figure, benchmark):
    """Regenerate and print Figure 6(b); benchmark one OPTBOUND call."""
    publish("fig6b", render_figure(figure))

    queries = prepare_workload(QUERY_SIZES[-1], BENCH_CONFIG.n_queries, BENCH_CONFIG.seed)
    comm = BENCH_CONFIG.params.communication_model()
    overlap = ConvexCombinationOverlap(BENCH_CONFIG.default_epsilon)
    query = queries[0]

    benchmark(
        lambda: opt_bound(
            query.operator_tree, query.task_tree, p=80, f=BENCH_CONFIG.default_f,
            comm=comm, overlap=overlap,
        )
    )


def test_fig6b_shape_bound_respected_pointwise(figure):
    for size in QUERY_SIZES:
        ts = figure.series_by_label(f"TreeSchedule {size} joins")
        lb = figure.series_by_label(f"OptBound {size} joins")
        assert all(t >= b - 1e-9 for t, b in zip(ts.ys, lb.ys))


def test_fig6b_shape_average_far_inside_worst_case(figure):
    """Paper: 'the average performance of TREESCHEDULE is much closer to
    optimal than what we would expect from the worst-case bound' (2d+1 = 7
    per phase at d = 3).  We assert the average ratio stays under 2.5 and
    the small-P ratio under 1.3."""
    guarantee = theorem51_fixed_degree_bound(3)
    for size in QUERY_SIZES:
        ts = figure.series_by_label(f"TreeSchedule {size} joins")
        lb = figure.series_by_label(f"OptBound {size} joins")
        ratios = [t / b for t, b in zip(ts.ys, lb.ys)]
        assert ratios[0] < 1.3
        assert sum(ratios) / len(ratios) < 2.5
        assert max(ratios) < guarantee


def test_fig6b_shape_bound_tightest_when_resource_limited(figure):
    """At small P the congestion term l(S)/P dominates both the bound and
    the schedule, so the gap is smallest there."""
    for size in QUERY_SIZES:
        ts = figure.series_by_label(f"TreeSchedule {size} joins")
        lb = figure.series_by_label(f"OptBound {size} joins")
        ratios = [t / b for t, b in zip(ts.ys, lb.ys)]
        assert ratios[0] <= ratios[-1]
