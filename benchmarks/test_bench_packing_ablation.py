"""Experiment abl-pack — vector-packing rule ablation (Section 5.5).

Section 5.5 argues the list-scheduling rule's strength is per-resource
load balancing and cites [KLMS84] for why simple vector-packing rules do
well on average.  This ablation runs the full grid of sort keys x
placement rules on random clone sets, prints the average makespan of each
combination relative to the paper's rule, and benchmarks the paper's rule
itself.
"""

from __future__ import annotations

import math
import random

import numpy as np
import pytest

from repro import (
    CloneItem,
    ConvexCombinationOverlap,
    PlacementRule,
    SortKey,
    WorkVector,
    pack_vectors,
)

from _helpers import publish

OVERLAP = ConvexCombinationOverlap(0.5)
P = 12


def random_items(rng, n):
    items = []
    for i in range(n):
        kind = rng.integers(0, 3)
        cpu = float(rng.uniform(0.1, 10.0)) if kind != 1 else float(rng.uniform(0.0, 1.0))
        disk = float(rng.uniform(0.1, 10.0)) if kind != 0 else float(rng.uniform(0.0, 1.0))
        items.append(
            CloneItem(
                operator=f"op{i}", clone_index=0, work=WorkVector([cpu, disk, 0.0])
            )
        )
    return items


GRID = [
    (SortKey.MAX_COMPONENT, PlacementRule.LEAST_LOADED_LENGTH),  # the paper
    (SortKey.MAX_COMPONENT, PlacementRule.MIN_RESULTING_LENGTH),
    (SortKey.TOTAL, PlacementRule.LEAST_LOADED_LENGTH),
    (SortKey.INPUT_ORDER, PlacementRule.FIRST_FIT),
    (SortKey.INPUT_ORDER, PlacementRule.ROUND_ROBIN),
    (SortKey.RANDOM, PlacementRule.RANDOM),
]


@pytest.fixture(scope="module")
def grid_results():
    rng = np.random.default_rng(55)
    instances = [random_items(rng, int(rng.integers(12, 40))) for _ in range(25)]
    results = {}
    for sort, rule in GRID:
        spans = []
        for k, items in enumerate(instances):
            schedule = pack_vectors(
                items, p=P, overlap=OVERLAP, sort=sort, rule=rule,
                rng=random.Random(k),
            )
            spans.append(schedule.makespan())
        results[(sort, rule)] = math.fsum(spans) / len(spans)
    return results


def test_bench_ablpack_regenerate(grid_results, benchmark):
    """Print the packing-rule grid; benchmark the paper's rule."""
    paper = grid_results[(SortKey.MAX_COMPONENT, PlacementRule.LEAST_LOADED_LENGTH)]
    lines = [
        "== abl-pack: packing-rule ablation (Section 5.5) ==",
        f"{P} sites, random mixed-resource clone sets; mean makespan",
        f"{'sort':14s} {'placement':22s} {'mean':>8s} {'vs paper':>9s}",
    ]
    for (sort, rule), span in grid_results.items():
        lines.append(
            f"{sort.value:14s} {rule.value:22s} {span:8.3f} {span / paper:8.3f}x"
        )
    publish("abl_pack", "\n".join(lines))

    rng = np.random.default_rng(77)
    items = random_items(rng, 40)
    benchmark(lambda: pack_vectors(items, p=P, overlap=OVERLAP))


def test_ablpack_paper_rule_beats_naive_rules(grid_results):
    paper = grid_results[(SortKey.MAX_COMPONENT, PlacementRule.LEAST_LOADED_LENGTH)]
    naive_ff = grid_results[(SortKey.INPUT_ORDER, PlacementRule.FIRST_FIT)]
    rand = grid_results[(SortKey.RANDOM, PlacementRule.RANDOM)]
    assert paper < naive_ff
    assert paper < rand


def test_ablpack_paper_rule_near_best_of_grid(grid_results):
    paper = grid_results[(SortKey.MAX_COMPONENT, PlacementRule.LEAST_LOADED_LENGTH)]
    best = min(grid_results.values())
    assert paper <= best * 1.1
