"""Experiment fig5a — Figure 5(a): effect of the granularity parameter f.

Regenerates the paper's series (TREESCHEDULE for each f, SYNCHRONOUS as
the horizontal reference) over the number of sites, prints them in the
paper's layout, asserts the reported shape, and times one full
TREESCHEDULE invocation on the Figure 5 workload (40-join bushy plans).
"""

from __future__ import annotations

import pytest

from repro import ConvexCombinationOverlap, tree_schedule
from repro.experiments import figure5a, improvement_summary, prepare_workload, render_figure

from _helpers import BENCH_CONFIG, publish

EPSILON = 0.3
N_JOINS = 40


@pytest.fixture(scope="module")
def figure():
    return figure5a(BENCH_CONFIG, n_joins=N_JOINS, epsilon=EPSILON)


def test_bench_fig5a_regenerate(figure, benchmark):
    """Regenerate and print Figure 5(a); benchmark one scheduler call."""
    text = render_figure(figure)
    text += "\n" + improvement_summary(
        figure, better=f"TreeSchedule f={BENCH_CONFIG.f_values[-1]:g}", worse="Synchronous"
    )
    publish("fig5a", text)

    queries = prepare_workload(N_JOINS, BENCH_CONFIG.n_queries, BENCH_CONFIG.seed)
    comm = BENCH_CONFIG.params.communication_model()
    overlap = ConvexCombinationOverlap(EPSILON)
    query = queries[0]

    benchmark(
        lambda: tree_schedule(
            query.operator_tree, query.task_tree, p=80,
            comm=comm, overlap=overlap, f=0.7,
        )
    )


def test_fig5a_shape_small_f_restrictive(figure):
    """Paper: 'for small values of f the coarse granularity condition is
    too restrictive' — the smallest-f curve lies above the largest-f one."""
    smallest = figure.series_by_label(f"TreeSchedule f={BENCH_CONFIG.f_values[0]:g}")
    largest = figure.series_by_label(f"TreeSchedule f={BENCH_CONFIG.f_values[-1]:g}")
    assert all(a >= b - 1e-9 for a, b in zip(smallest.ys, largest.ys))
    assert smallest.ys[-1] > largest.ys[-1]


def test_fig5a_shape_treeschedule_wins_at_large_f(figure):
    """Paper: 'for sufficiently large values of f, our algorithm
    outperformed its one-dimensional adversary in the entire range of
    system sizes'."""
    ts = figure.series_by_label(f"TreeSchedule f={BENCH_CONFIG.f_values[-1]:g}")
    sy = figure.series_by_label("Synchronous")
    assert all(t < s for t, s in zip(ts.ys, sy.ys))


def test_fig5a_shape_substantial_gains_when_resource_limited(figure):
    """Paper: 'the advantages of resource sharing are most evident for
    resource-limited situations'.  Robust form on the reduced cohort: the
    improvement over SYNCHRONOUS is substantial (>25%) in the
    resource-limited half of the sweep and positive everywhere."""
    ts = figure.series_by_label(f"TreeSchedule f={BENCH_CONFIG.f_values[-1]:g}")
    sy = figure.series_by_label("Synchronous")
    gains = [(s - t) / s for t, s in zip(ts.ys, sy.ys)]
    assert all(g > 0 for g in gains)
    limited = gains[: max(1, len(gains) // 2)]
    assert max(limited) > 0.25
