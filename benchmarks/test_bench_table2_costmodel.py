"""Experiment table2 — Table 2: parameter settings and cost-model primitives.

Prints the Table 2 configuration exactly as the paper tabulates it and
micro-benchmarks the cost-model annotation of a full 50-join operator
tree (the largest workload in the paper's sweep).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import PAPER_PARAMETERS, annotate_plan, generate_query
from repro.experiments import render_parameters

from _helpers import publish


@pytest.fixture(scope="module")
def big_query():
    return generate_query(50, np.random.default_rng(19960604))


def test_bench_table2_regenerate(big_query, benchmark):
    """Print Table 2 and benchmark full-plan cost annotation."""
    publish("table2", render_parameters(PAPER_PARAMETERS))
    benchmark(lambda: annotate_plan(big_query.operator_tree, PAPER_PARAMETERS))


def test_table2_balanced_system(big_query):
    """Footnote 4: parameters were chosen so the system is relatively
    balanced — aggregate CPU and disk demand of a random workload are the
    same order of magnitude."""
    annotate_plan(big_query.operator_tree, PAPER_PARAMETERS)
    cpu = sum(op.spec.work[0] for op in big_query.operator_tree.operators)
    disk = sum(op.spec.work[1] for op in big_query.operator_tree.operators)
    assert 0.1 < disk / cpu < 10.0


def test_table2_communication_parameters_flow_through(big_query):
    comm = PAPER_PARAMETERS.communication_model()
    assert comm.alpha == 0.015
    assert comm.beta == 0.6e-6
