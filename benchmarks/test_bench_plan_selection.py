"""Experiment abl-plansel — scheduling-aware plan selection.

How much response time does a scheduling-blind optimizer leave on the
table?  For each query graph, sample k random bushy plans, schedule all
of them, and compare the best against the median (a stand-in for "some
reasonable plan chosen without consulting the scheduler").
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import PAPER_PARAMETERS, random_catalog, random_tree_query
from repro.core.resource_model import ConvexCombinationOverlap
from repro.experiments import select_best_plan

from _helpers import BENCH_CONFIG, publish

N_JOINS = 15
P = 24
K = 8
COMM = PAPER_PARAMETERS.communication_model()
OVERLAP = ConvexCombinationOverlap(0.5)


@pytest.fixture(scope="module")
def selections():
    rng = np.random.default_rng(BENCH_CONFIG.seed)
    results = []
    for _ in range(BENCH_CONFIG.n_queries):
        catalog = random_catalog(N_JOINS + 1, rng)
        graph = random_tree_query(catalog, rng)
        ranking, _ = select_best_plan(
            graph, catalog, k=K, seed=int(rng.integers(0, 2**31)), p=P,
            params=PAPER_PARAMETERS, comm=COMM, overlap=OVERLAP,
            f=BENCH_CONFIG.default_f,
        )
        results.append(ranking)
    return results


def test_bench_ablplansel_regenerate(selections, benchmark):
    """Print the selection-gain summary; benchmark one selection run."""
    def mean(xs):
        xs = list(xs)
        return math.fsum(xs) / len(xs)

    gains = [r.selection_gain for r in selections]
    worst_over_best = [
        r.candidates[-1].response_time / r.best.response_time for r in selections
    ]
    lines = [
        "== abl-plansel: scheduling-aware plan selection ==",
        f"{len(selections)} query graphs x {K} sampled bushy plans "
        f"({N_JOINS} joins, P={P})",
        f"best-vs-median gain : mean {mean(gains) * 100:.1f}%  "
        f"max {max(gains) * 100:.1f}%",
        f"worst/best spread   : mean {mean(worst_over_best):.2f}x  "
        f"max {max(worst_over_best):.2f}x",
        "note: plan shape matters to parallelization; consulting the",
        "scheduler during plan choice recovers this gap for free.",
    ]
    publish("abl_plansel", "\n".join(lines))

    rng = np.random.default_rng(1)
    catalog = random_catalog(N_JOINS + 1, rng)
    graph = random_tree_query(catalog, rng)
    benchmark(
        lambda: select_best_plan(
            graph, catalog, k=4, seed=5, p=P,
            params=PAPER_PARAMETERS, comm=COMM, overlap=OVERLAP,
            f=BENCH_CONFIG.default_f,
        )
    )


def test_ablplansel_gains_exist(selections):
    gains = [r.selection_gain for r in selections]
    assert all(g >= 0.0 for g in gains)
    assert max(g for g in gains) > 0.05  # plan shape matters


def test_ablplansel_rankings_internally_consistent(selections):
    for ranking in selections:
        times = [c.response_time for c in ranking.candidates]
        assert times == sorted(times)
        assert ranking.sampled == K
        assert 1 <= len(times) <= K  # duplicates collapse before scoring
