"""Experiment abl-skew — execution-skew sensitivity (EA1 relaxation).

Plans are produced under EA1 (perfect distribution), then *evaluated*
under Zipf(theta) clone weights: clone 0 of each operator receives the
largest share at its planned site.  Prints the degradation of both
TREESCHEDULE and SYNCHRONOUS plans and checks the trends.
"""

from __future__ import annotations

import math

import pytest

from repro import (
    ConvexCombinationOverlap,
    skewed_response_time,
    synchronous_schedule,
    tree_schedule,
)
from repro.experiments import prepare_workload

from _helpers import BENCH_CONFIG, publish

N_JOINS = 15
P = 24
THETAS = (0.0, 0.3, 0.6, 1.0, 1.5)


@pytest.fixture(scope="module")
def sweep():
    queries = prepare_workload(N_JOINS, BENCH_CONFIG.n_queries, BENCH_CONFIG.seed)
    comm = BENCH_CONFIG.params.communication_model()
    overlap = ConvexCombinationOverlap(BENCH_CONFIG.default_epsilon)

    def mean(xs):
        xs = list(xs)
        return math.fsum(xs) / len(xs)

    plans = []
    for q in queries:
        specs = {op.name: op.spec for op in q.operator_tree.operators}
        ts = tree_schedule(
            q.operator_tree, q.task_tree, p=P, comm=comm, overlap=overlap,
            f=BENCH_CONFIG.default_f,
        ).phased_schedule
        sy = synchronous_schedule(
            q.operator_tree, q.task_tree, p=P, comm=comm, overlap=overlap
        ).phased_schedule
        plans.append((specs, ts, sy))

    rows = []
    for theta in THETAS:
        ts_avg = mean(
            skewed_response_time(ts, specs, theta, comm, overlap)
            for specs, ts, _ in plans
        )
        sy_avg = mean(
            skewed_response_time(sy, specs, theta, comm, overlap)
            for specs, _, sy in plans
        )
        rows.append((theta, ts_avg, sy_avg))
    return rows


def test_bench_ablskew_regenerate(sweep, benchmark):
    """Print the skew sweep; benchmark one skewed evaluation."""
    lines = [
        "== abl-skew: execution-skew sensitivity (EA1 relaxation) ==",
        f"{BENCH_CONFIG.n_queries} x {N_JOINS}-join plans on P={P}; "
        "plans made under EA1, evaluated under Zipf(theta) clone weights",
        f"{'theta':>6s} {'TreeSchedule':>13s} {'Synchronous':>12s} {'TS/SY':>7s}",
    ]
    for theta, ts, sy in sweep:
        lines.append(f"{theta:6.1f} {ts:11.3f} s {sy:10.3f} s {ts / sy:7.3f}")
    lines.append(
        "note: skew inflates every plan; the multi-dimensional plan keeps"
    )
    lines.append("its advantage across the sweep.")
    publish("abl_skew", "\n".join(lines))

    queries = prepare_workload(N_JOINS, BENCH_CONFIG.n_queries, BENCH_CONFIG.seed)
    comm = BENCH_CONFIG.params.communication_model()
    overlap = ConvexCombinationOverlap(BENCH_CONFIG.default_epsilon)
    q = queries[0]
    specs = {op.name: op.spec for op in q.operator_tree.operators}
    phased = tree_schedule(
        q.operator_tree, q.task_tree, p=P, comm=comm, overlap=overlap,
        f=BENCH_CONFIG.default_f,
    ).phased_schedule
    benchmark(lambda: skewed_response_time(phased, specs, 1.0, comm, overlap))


def test_ablskew_monotone_degradation(sweep):
    ts_times = [ts for _, ts, _ in sweep]
    sy_times = [sy for _, _, sy in sweep]
    assert all(b >= a - 1e-9 for a, b in zip(ts_times, ts_times[1:]))
    assert all(b >= a - 1e-9 for a, b in zip(sy_times, sy_times[1:]))


def test_ablskew_advantage_survives_skew(sweep):
    for theta, ts, sy in sweep:
        assert ts < sy, f"TreeSchedule lost under skew theta={theta}"
