"""Experiment abl-preempt — degrees of preemptability (Section 8 concern).

Quantifies the paper's closing caveat — "slicing a disk among many tasks
can reduce the disk's effective bandwidth" — by simulating TREESCHEDULE's
output under progressively less preemptable disks, and contrasts how the
multi-dimensional schedule (which co-locates many operators per site) and
the SYNCHRONOUS schedule (disjoint sites, few users per disk) degrade.
"""

from __future__ import annotations

import math

import pytest

from repro import (
    ConvexCombinationOverlap,
    PreemptabilityModel,
    simulate_phased_degraded,
    synchronous_schedule,
    tree_schedule,
)
from repro.experiments import prepare_workload

from _helpers import BENCH_CONFIG, publish

N_JOINS = 15
P = 24
SIGMAS = (1.0, 0.8, 0.5, 0.2, 0.0)


@pytest.fixture(scope="module")
def degradation():
    queries = prepare_workload(N_JOINS, BENCH_CONFIG.n_queries, BENCH_CONFIG.seed)
    comm = BENCH_CONFIG.params.communication_model()
    overlap = ConvexCombinationOverlap(BENCH_CONFIG.default_epsilon)

    def mean(xs):
        xs = list(xs)
        return math.fsum(xs) / len(xs)

    rows = []
    ts_scheds = [
        tree_schedule(
            q.operator_tree, q.task_tree, p=P, comm=comm, overlap=overlap,
            f=BENCH_CONFIG.default_f,
        ).phased_schedule
        for q in queries
    ]
    sy_scheds = [
        synchronous_schedule(
            q.operator_tree, q.task_tree, p=P, comm=comm, overlap=overlap
        ).phased_schedule
        for q in queries
    ]
    for sigma in SIGMAS:
        model = PreemptabilityModel.sticky_disk(3, sigma_disk=sigma)
        ts = mean(
            simulate_phased_degraded(s, model).response_time for s in ts_scheds
        )
        sy = mean(
            simulate_phased_degraded(s, model).response_time for s in sy_scheds
        )
        rows.append((sigma, ts, sy))
    return rows


def test_bench_ablpreempt_regenerate(degradation, benchmark):
    """Print the preemptability sweep; benchmark one degraded simulation."""
    lines = [
        "== abl-preempt: disk preemptability sweep (Section 8 concern) ==",
        f"{BENCH_CONFIG.n_queries} x {N_JOINS}-join plans on P={P}; simulated "
        "response times (s)",
        f"{'sigma(disk)':>12s} {'TreeSchedule':>13s} {'Synchronous':>12s} {'TS/SY':>7s}",
    ]
    for sigma, ts, sy in degradation:
        lines.append(f"{sigma:12.1f} {ts:11.3f} s {sy:10.3f} s {ts / sy:7.3f}")
    lines.append(
        "note: sigma=1 is assumption A2; lower sigma penalizes co-locating"
    )
    lines.append(
        "disk users, eroding (but, here, not erasing) the sharing advantage."
    )
    publish("abl_preempt", "\n".join(lines))

    queries = prepare_workload(N_JOINS, BENCH_CONFIG.n_queries, BENCH_CONFIG.seed)
    comm = BENCH_CONFIG.params.communication_model()
    overlap = ConvexCombinationOverlap(BENCH_CONFIG.default_epsilon)
    sched = tree_schedule(
        queries[0].operator_tree, queries[0].task_tree, p=P, comm=comm,
        overlap=overlap, f=BENCH_CONFIG.default_f,
    ).phased_schedule
    model = PreemptabilityModel.sticky_disk(3, sigma_disk=0.5)
    benchmark(lambda: simulate_phased_degraded(sched, model))


def test_ablpreempt_monotone_in_sigma(degradation):
    ts_times = [ts for _, ts, _ in degradation]
    sy_times = [sy for _, _, sy in degradation]
    assert all(b >= a - 1e-9 for a, b in zip(ts_times, ts_times[1:]))
    assert all(b >= a - 1e-9 for a, b in zip(sy_times, sy_times[1:]))


def test_ablpreempt_sharing_schedule_hit_harder(degradation):
    """TreeSchedule co-locates more disk users per site, so its relative
    degradation from sigma=1 to sigma=0 is at least Synchronous's."""
    sigma1 = degradation[0]
    sigma0 = degradation[-1]
    ts_hit = sigma0[1] / sigma1[1]
    sy_hit = sigma0[2] / sigma1[2]
    assert ts_hit >= sy_hit * 0.95  # allow a little noise, document trend
