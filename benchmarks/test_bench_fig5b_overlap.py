"""Experiment fig5b — Figure 5(b): effect of the resource-overlap parameter.

Regenerates both algorithms' curves for each epsilon (f fixed at 0.7),
prints them, asserts the paper's shapes, and times the SYNCHRONOUS
adversary on the same workload (so both schedulers' costs appear in the
benchmark table).
"""

from __future__ import annotations

import pytest

from repro import ConvexCombinationOverlap, synchronous_schedule
from repro.experiments import figure5b, prepare_workload, render_figure

from _helpers import BENCH_CONFIG, publish

N_JOINS = 40


@pytest.fixture(scope="module")
def figure():
    return figure5b(BENCH_CONFIG, n_joins=N_JOINS)


def test_bench_fig5b_regenerate(figure, benchmark):
    """Regenerate and print Figure 5(b); benchmark one SYNCHRONOUS call."""
    publish("fig5b", render_figure(figure))

    queries = prepare_workload(N_JOINS, BENCH_CONFIG.n_queries, BENCH_CONFIG.seed)
    comm = BENCH_CONFIG.params.communication_model()
    overlap = ConvexCombinationOverlap(0.4)
    query = queries[0]

    benchmark(
        lambda: synchronous_schedule(
            query.operator_tree, query.task_tree, p=80, comm=comm, overlap=overlap
        )
    )


def test_fig5b_shape_treeschedule_wins_for_every_epsilon(figure):
    """Paper: 'TREESCHEDULE consistently outperformed the Synchronous
    algorithm' across overlap values."""
    for eps in BENCH_CONFIG.epsilon_values:
        ts = figure.series_by_label(f"TreeSchedule eps={eps:g}")
        sy = figure.series_by_label(f"Synchronous eps={eps:g}")
        assert all(t < s for t, s in zip(ts.ys, sy.ys)), f"lost at eps={eps}"


def test_fig5b_shape_benefit_larger_at_low_overlap(figure):
    """Paper: 'the benefits of multi-dimensional scheduling are more
    significant for smaller values of the overlap parameter' — lower
    overlap leaves longer idle periods to exploit via time-sharing."""
    def mean_gain(eps):
        ts = figure.series_by_label(f"TreeSchedule eps={eps:g}")
        sy = figure.series_by_label(f"Synchronous eps={eps:g}")
        gains = [(s - t) / s for t, s in zip(ts.ys, sy.ys)]
        return sum(gains) / len(gains)

    low = mean_gain(BENCH_CONFIG.epsilon_values[0])
    high = mean_gain(BENCH_CONFIG.epsilon_values[-1])
    assert low > high


def test_fig5b_shape_more_overlap_never_hurts(figure):
    """T_seq is non-increasing in epsilon, so each algorithm's curve for
    higher overlap lies at or below its lower-overlap curve."""
    for algo in ("TreeSchedule", "Synchronous"):
        lo = figure.series_by_label(f"{algo} eps={BENCH_CONFIG.epsilon_values[0]:g}")
        hi = figure.series_by_label(f"{algo} eps={BENCH_CONFIG.epsilon_values[-1]:g}")
        assert all(h <= l * 1.02 for h, l in zip(hi.ys, lo.ys))
