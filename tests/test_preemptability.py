"""Tests for the partial-preemptability simulation (A2 relaxation)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    ConfigurationError,
    ConvexCombinationOverlap,
    PlacedClone,
    PreemptabilityModel,
    SharingPolicy,
    Site,
    SimulationError,
    WorkVector,
    simulate_phased,
    simulate_phased_degraded,
    tree_schedule,
)
from repro.sim.preemptability import simulate_site_degraded
from repro.sim.simulator import simulate_site

OVERLAP = ConvexCombinationOverlap(0.5)


def site_with(clone_defs, d=2):
    site = Site(0, d)
    for i, comps in enumerate(clone_defs):
        w = WorkVector(comps)
        site.place(
            PlacedClone(
                operator=f"op{i}", clone_index=0, work=w, t_seq=OVERLAP.t_seq(w)
            )
        )
    return site


class TestModel:
    def test_capacity_formula(self):
        model = PreemptabilityModel((1.0, 0.5))
        assert model.effective_capacity(0, 5) == 1.0
        assert model.effective_capacity(1, 1) == 1.0
        # k=3 users at sigma=0.5: 1 / (1 + 2*0.5) = 0.5.
        assert model.effective_capacity(1, 3) == pytest.approx(0.5)

    def test_sigma_zero_is_one_over_k(self):
        model = PreemptabilityModel((0.0,))
        assert model.effective_capacity(0, 4) == pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PreemptabilityModel(())
        with pytest.raises(ConfigurationError):
            PreemptabilityModel((1.5,))
        with pytest.raises(ConfigurationError):
            PreemptabilityModel((1.0,)).effective_capacity(0, -1)

    def test_factories(self):
        assert PreemptabilityModel.perfect(3).sigmas == (1.0, 1.0, 1.0)
        sticky = PreemptabilityModel.sticky_disk(3, disk_axis=1, sigma_disk=0.4)
        assert sticky.sigmas == (1.0, 0.4, 1.0)


class TestSiteSimulation:
    def test_perfect_matches_fair_share(self):
        site = site_with([[10.0, 2.0], [3.0, 9.0], [5.0, 5.0]])
        fair = simulate_site(site, SharingPolicy.FAIR_SHARE)
        degraded = simulate_site_degraded(site, PreemptabilityModel.perfect(2))
        assert degraded.completion_time == pytest.approx(fair.completion_time)

    def test_degradation_slows_down(self):
        site = site_with([[2.0, 8.0], [3.0, 7.0], [1.0, 9.0]])
        perfect = simulate_site_degraded(site, PreemptabilityModel.perfect(2))
        sticky = simulate_site_degraded(site, PreemptabilityModel((1.0, 0.3)))
        assert sticky.completion_time > perfect.completion_time

    def test_monotone_in_sigma(self):
        site = site_with([[2.0, 8.0], [3.0, 7.0], [1.0, 9.0]])
        times = [
            simulate_site_degraded(site, PreemptabilityModel((1.0, s))).completion_time
            for s in (1.0, 0.7, 0.4, 0.1)
        ]
        assert all(t2 >= t1 - 1e-9 for t1, t2 in zip(times, times[1:]))

    def test_single_clone_unaffected(self):
        site = site_with([[4.0, 6.0]])
        degraded = simulate_site_degraded(site, PreemptabilityModel((0.0, 0.0)))
        assert degraded.completion_time == pytest.approx(OVERLAP.t_seq(WorkVector([4.0, 6.0])))

    def test_untouched_resource_irrelevant(self):
        # Clones using only the CPU: disk preemptability must not matter.
        site = site_with([[4.0, 0.0], [3.0, 0.0]])
        a = simulate_site_degraded(site, PreemptabilityModel((1.0, 1.0)))
        b = simulate_site_degraded(site, PreemptabilityModel((1.0, 0.0)))
        assert a.completion_time == pytest.approx(b.completion_time)

    def test_dimension_mismatch(self):
        site = site_with([[1.0, 1.0]])
        with pytest.raises(SimulationError):
            simulate_site_degraded(site, PreemptabilityModel((1.0,)))

    @settings(max_examples=25)
    @given(
        st.lists(
            st.lists(st.floats(min_value=0.0, max_value=30.0), min_size=2, max_size=2),
            min_size=1,
            max_size=5,
        ),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_intervals_feasible_under_degraded_capacity(self, clone_defs, sigma):
        site = site_with(clone_defs)
        model = PreemptabilityModel((1.0, sigma))
        result = simulate_site_degraded(site, model)
        # Only clones that actually demand the degraded resource count as
        # its users (an idle resource costs no switching overhead).  The
        # rate is derived exactly as the simulator derives it, so that
        # denormal work amounts that underflow to a zero rate agree.
        uses_disk = set()
        for i, comps in enumerate(clone_defs):
            t = OVERLAP.t_seq(WorkVector(comps))
            if t > 0.0 and comps[1] / t > 0.0:
                uses_disk.add(f"op{i}#0")
        for interval in result.intervals:
            users = sum(1 for label in interval.active if label in uses_disk)
            assert interval.resource_rates[1] <= model.effective_capacity(1, users) + 1e-6


class TestPhased:
    def test_perfect_model_matches_fair_share(self, annotated_query, comm, overlap):
        ts = tree_schedule(
            annotated_query.operator_tree, annotated_query.task_tree,
            p=8, comm=comm, overlap=overlap, f=0.7,
        )
        fair = simulate_phased(ts.phased_schedule, SharingPolicy.FAIR_SHARE)
        degraded = simulate_phased_degraded(
            ts.phased_schedule, PreemptabilityModel.perfect(3)
        )
        assert degraded.response_time == pytest.approx(fair.response_time)

    def test_sticky_disk_costs_time(self, annotated_query, comm, overlap):
        ts = tree_schedule(
            annotated_query.operator_tree, annotated_query.task_tree,
            p=8, comm=comm, overlap=overlap, f=0.7,
        )
        perfect = simulate_phased_degraded(
            ts.phased_schedule, PreemptabilityModel.perfect(3)
        )
        sticky = simulate_phased_degraded(
            ts.phased_schedule, PreemptabilityModel.sticky_disk(3, sigma_disk=0.2)
        )
        assert sticky.response_time > perfect.response_time
        assert sticky.slowdown >= 1.0
