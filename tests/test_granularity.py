"""Tests for coarse-grain parallelism quantification (Section 4, Prop. 4.1)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro import (
    CommunicationModel,
    ConfigurationError,
    WorkVector,
    granularity_ratio,
    is_coarse_grain,
    processing_area,
)


class TestProcessingArea:
    def test_is_component_sum(self):
        assert processing_area(WorkVector([1.0, 2.0, 3.0])) == 6.0

    def test_zero_vector(self):
        assert processing_area(WorkVector.zeros(3)) == 0.0


class TestCommunicationModel:
    def test_area_formula(self):
        # W_c(op, N) = alpha*N + beta*D (Section 4.3).
        model = CommunicationModel(alpha=0.015, beta=0.6e-6)
        assert math.isclose(model.communication_area(10, 1e6), 0.15 + 0.6)

    def test_components(self):
        model = CommunicationModel(alpha=0.015, beta=0.6e-6)
        assert math.isclose(model.startup_cost(4), 0.06)
        assert math.isclose(model.transfer_cost(2e6), 1.2)

    def test_negative_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            CommunicationModel(alpha=-1.0, beta=0.0)
        with pytest.raises(ConfigurationError):
            CommunicationModel(alpha=0.0, beta=-1.0)

    def test_bad_degree_rejected(self):
        model = CommunicationModel(alpha=0.015, beta=0.6e-6)
        with pytest.raises(ConfigurationError):
            model.communication_area(0, 1e6)
        with pytest.raises(ConfigurationError):
            model.startup_cost(0)

    def test_negative_volume_rejected(self):
        model = CommunicationModel(alpha=0.015, beta=0.6e-6)
        with pytest.raises(ConfigurationError):
            model.communication_area(1, -1.0)
        with pytest.raises(ConfigurationError):
            model.transfer_cost(-1.0)


class TestNMax:
    def test_proposition_4_1_formula(self):
        model = CommunicationModel(alpha=0.015, beta=0.6e-6)
        # N_max = floor((f*W_p - beta*D)/alpha)
        f, w_p, d_bytes = 0.7, 30.0, 1e6
        expected = math.floor((0.7 * 30.0 - 0.6) / 0.015)
        assert model.n_max(f, w_p, d_bytes) == expected

    def test_floor_at_one(self):
        model = CommunicationModel(alpha=0.015, beta=0.6e-6)
        # Tiny processing area: communication dominates, degree clamps to 1.
        assert model.n_max(0.5, 0.001, 1e6) == 1

    def test_zero_alpha_sentinel(self):
        model = CommunicationModel(alpha=0.0, beta=0.6e-6)
        assert model.n_max(0.7, 10.0, 1e3) == 2**31
        assert model.n_max(0.7, 0.0, 1e6) == 1

    def test_invalid_f(self):
        model = CommunicationModel(alpha=0.015, beta=0.6e-6)
        with pytest.raises(ConfigurationError):
            model.n_max(0.0, 10.0, 0.0)
        with pytest.raises(ConfigurationError):
            model.n_max(-0.5, 10.0, 0.0)

    def test_negative_processing_area(self):
        model = CommunicationModel(alpha=0.015, beta=0.6e-6)
        with pytest.raises(ConfigurationError):
            model.n_max(0.7, -1.0, 0.0)

    @given(
        st.floats(min_value=0.05, max_value=2.0),
        st.floats(min_value=0.0, max_value=1e3),
        st.floats(min_value=0.0, max_value=1e7),
    )
    def test_n_max_execution_is_coarse_grain(self, f, w_p, d_bytes):
        """The degree returned by Prop 4.1 satisfies Definition 4.1...

        ...whenever any degree above 1 does (the clamp to 1 exists exactly
        because some operators admit no coarse-grain parallel execution).
        """
        model = CommunicationModel(alpha=0.015, beta=0.6e-6)
        n = model.n_max(f, w_p, d_bytes)
        if n > 1:
            # A hair of slack absorbs the floor()'s floating-point edge
            # (f*w_p - beta*D landing exactly on a multiple of alpha).
            area = model.communication_area(n, d_bytes)
            assert area <= f * w_p * (1 + 1e-9) + 1e-12
            # And n is maximal: n+1 violates the condition.
            assert not is_coarse_grain(
                w_p, model.communication_area(n + 1, d_bytes), f
            )

    @given(
        st.floats(min_value=0.05, max_value=1.0),
        st.floats(min_value=0.05, max_value=1.0),
        st.floats(min_value=0.0, max_value=1e3),
        st.floats(min_value=0.0, max_value=1e7),
    )
    def test_n_max_monotone_in_f(self, f1, f2, w_p, d_bytes):
        model = CommunicationModel(alpha=0.015, beta=0.6e-6)
        lo, hi = sorted([f1, f2])
        assert model.n_max(lo, w_p, d_bytes) <= model.n_max(hi, w_p, d_bytes)


class TestGranularityPredicates:
    def test_ratio(self):
        assert granularity_ratio(10.0, 5.0) == 0.5

    def test_ratio_zero_processing(self):
        assert granularity_ratio(0.0, 5.0) == math.inf
        assert granularity_ratio(0.0, 0.0) == 0.0

    def test_is_coarse_grain_definition(self):
        # Definition 4.1: W_c <= f * W_p.
        assert is_coarse_grain(10.0, 6.9, 0.7)
        assert is_coarse_grain(10.0, 7.0, 0.7)
        assert not is_coarse_grain(10.0, 7.1, 0.7)

    def test_is_coarse_grain_invalid_f(self):
        with pytest.raises(ConfigurationError):
            is_coarse_grain(10.0, 5.0, 0.0)
