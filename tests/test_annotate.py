"""Tests for cost annotation of operator trees.

Annotation is immutable (DESIGN.md §2.4): :func:`annotate_plan` returns
a frozen :class:`PlanAnnotation` side table and attaches each spec to
its node exactly once; re-annotating a tree under different parameters
goes through the detached :meth:`PlanAnnotation.with_params` view and
never rewrites attached specs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    PAPER_PARAMETERS,
    ImmutableAnnotationError,
    OperatorKind,
    PlanAnnotation,
    annotate_operator,
    annotate_plan,
    build_work_vector,
    compute_plan_annotation,
    generate_query,
    operator_data_volume,
    probe_work_vector,
    scan_work_vector,
)
from repro.cost.annotate import AnnotatedQuery

P = PAPER_PARAMETERS


class TestAnnotatePlan:
    def test_all_operators_annotated(self):
        query = generate_query(10, np.random.default_rng(0))
        annotate_plan(query.operator_tree, P)
        assert all(op.annotated for op in query.operator_tree.operators)

    def test_returns_frozen_view(self):
        query = generate_query(3, np.random.default_rng(0))
        annotation = annotate_plan(query.operator_tree, P)
        assert isinstance(annotation, PlanAnnotation)
        assert annotation.op_tree is query.operator_tree
        assert annotation.params == P
        assert set(annotation) == {
            op.name for op in query.operator_tree.operators
        }
        for op in query.operator_tree.operators:
            assert annotation[op.name] == op.spec
            assert annotation.spec_of(op) == op.spec

    def test_view_is_immutable(self):
        query = generate_query(3, np.random.default_rng(0))
        annotation = annotate_plan(query.operator_tree, P)
        name = query.operator_tree.root.name
        with pytest.raises(TypeError):
            annotation.specs[name] = annotation[name]

    def test_specs_match_cost_model(self):
        query = generate_query(6, np.random.default_rng(1))
        tree = query.operator_tree
        annotation = annotate_plan(tree, P)
        for op in tree.operators:
            spec = annotation[op.name]
            assert spec.name == op.name
            assert spec.data_volume == operator_data_volume(op, tree, P)
            if op.kind is OperatorKind.SCAN:
                assert spec.work == scan_work_vector(op.output_tuples, P)
            elif op.kind is OperatorKind.BUILD:
                assert spec.work == build_work_vector(op.input_tuples, P)
            else:
                assert spec.work == probe_work_vector(
                    op.input_tuples, op.output_tuples, P
                )

    def test_idempotent_reannotation(self):
        query = generate_query(4, np.random.default_rng(2))
        annotate_plan(query.operator_tree, P)
        first = {op.name: op.spec for op in query.operator_tree.operators}
        annotate_plan(query.operator_tree, P)
        second = {op.name: op.spec for op in query.operator_tree.operators}
        assert first == second

    def test_reannotation_with_new_params_raises(self):
        query = generate_query(4, np.random.default_rng(2))
        annotate_plan(query.operator_tree, P)
        before = {op.name: op.spec for op in query.operator_tree.operators}
        with pytest.raises(ImmutableAnnotationError):
            annotate_plan(query.operator_tree, P.scaled(cpu_mips=100.0))
        after = {op.name: op.spec for op in query.operator_tree.operators}
        assert before == after  # failed re-annotation leaves no trace

    def test_with_params_gives_detached_view(self):
        query = generate_query(4, np.random.default_rng(2))
        annotation = annotate_plan(query.operator_tree, P)
        fast = annotation.with_params(cpu_mips=100.0)
        assert fast is not annotation
        assert fast.params == P.scaled(cpu_mips=100.0)
        assert any(fast[name].work != annotation[name].work for name in annotation)
        # the attached specs (and the original view) are untouched
        for op in query.operator_tree.operators:
            assert op.spec == annotation[op.name]

    def test_with_params_identity_on_equal_params(self):
        query = generate_query(3, np.random.default_rng(5))
        annotation = compute_plan_annotation(query.operator_tree, P)
        assert annotation.with_params(P) is annotation
        assert annotation.with_params() is annotation

    def test_compute_plan_annotation_leaves_tree_unannotated(self):
        query = generate_query(3, np.random.default_rng(6))
        annotation = compute_plan_annotation(query.operator_tree, P)
        assert len(annotation) == len(list(query.operator_tree.operators))
        assert all(not op.annotated for op in query.operator_tree.operators)

    def test_activate_resolves_specs_without_attachment(self):
        query = generate_query(3, np.random.default_rng(7))
        annotation = compute_plan_annotation(query.operator_tree, P)
        op = query.operator_tree.root
        with annotation.activate():
            assert op.require_spec() == annotation[op.name]
        assert not op.annotated

    def test_annotate_single_operator(self):
        query = generate_query(2, np.random.default_rng(3))
        op = query.operator_tree.root
        spec = annotate_operator(op, query.operator_tree, P)
        assert op.spec is spec

    def test_three_dimensional_vectors(self):
        query = generate_query(5, np.random.default_rng(4))
        annotation = annotate_plan(query.operator_tree, P)
        assert all(spec.d == 3 for spec in annotation.values())

    def test_nonzero_processing_areas(self):
        query = generate_query(5, np.random.default_rng(4))
        annotation = annotate_plan(query.operator_tree, P)
        assert all(spec.processing_area > 0 for spec in annotation.values())


class TestAnnotatedQuery:
    def test_delegates_structure(self):
        query = generate_query(4, np.random.default_rng(8))
        annotated = AnnotatedQuery(
            query=query, annotation=compute_plan_annotation(query.operator_tree, P)
        )
        assert annotated.operator_tree is query.operator_tree
        assert annotated.task_tree is query.task_tree
        assert annotated.num_joins == query.num_joins

    def test_with_params_shares_structure(self):
        query = generate_query(4, np.random.default_rng(8))
        annotated = AnnotatedQuery(
            query=query, annotation=compute_plan_annotation(query.operator_tree, P)
        )
        scaled = annotated.with_params(cpu_mips=10.0)
        assert scaled.query is annotated.query
        assert scaled.annotation.params == P.scaled(cpu_mips=10.0)
