"""Tests for cost annotation of operator trees."""

from __future__ import annotations

import numpy as np

from repro import (
    PAPER_PARAMETERS,
    OperatorKind,
    annotate_operator,
    annotate_plan,
    build_work_vector,
    generate_query,
    operator_data_volume,
    probe_work_vector,
    scan_work_vector,
)

P = PAPER_PARAMETERS


class TestAnnotatePlan:
    def test_all_operators_annotated(self):
        query = generate_query(10, np.random.default_rng(0))
        annotate_plan(query.operator_tree, P)
        assert all(op.annotated for op in query.operator_tree.operators)

    def test_returns_tree(self):
        query = generate_query(3, np.random.default_rng(0))
        assert annotate_plan(query.operator_tree, P) is query.operator_tree

    def test_specs_match_cost_model(self):
        query = generate_query(6, np.random.default_rng(1))
        tree = annotate_plan(query.operator_tree, P)
        for op in tree.operators:
            spec = op.spec
            assert spec.name == op.name
            assert spec.data_volume == operator_data_volume(op, tree, P)
            if op.kind is OperatorKind.SCAN:
                assert spec.work == scan_work_vector(op.output_tuples, P)
            elif op.kind is OperatorKind.BUILD:
                assert spec.work == build_work_vector(op.input_tuples, P)
            else:
                assert spec.work == probe_work_vector(
                    op.input_tuples, op.output_tuples, P
                )

    def test_idempotent_reannotation(self):
        query = generate_query(4, np.random.default_rng(2))
        annotate_plan(query.operator_tree, P)
        first = {op.name: op.spec for op in query.operator_tree.operators}
        annotate_plan(query.operator_tree, P)
        second = {op.name: op.spec for op in query.operator_tree.operators}
        assert first == second

    def test_reannotation_with_new_params_changes_specs(self):
        query = generate_query(4, np.random.default_rng(2))
        annotate_plan(query.operator_tree, P)
        before = {op.name: op.spec.work for op in query.operator_tree.operators}
        annotate_plan(query.operator_tree, P.scaled(cpu_mips=100.0))
        after = {op.name: op.spec.work for op in query.operator_tree.operators}
        assert any(before[name] != after[name] for name in before)

    def test_annotate_single_operator(self):
        query = generate_query(2, np.random.default_rng(3))
        op = query.operator_tree.root
        spec = annotate_operator(op, query.operator_tree, P)
        assert op.spec is spec

    def test_three_dimensional_vectors(self):
        query = generate_query(5, np.random.default_rng(4))
        annotate_plan(query.operator_tree, P)
        assert all(op.spec.d == 3 for op in query.operator_tree.operators)

    def test_nonzero_processing_areas(self):
        query = generate_query(5, np.random.default_rng(4))
        annotate_plan(query.operator_tree, P)
        assert all(
            op.spec.processing_area > 0 for op in query.operator_tree.operators
        )
