"""Tests for the memory model, ledger, and spill cost functions."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro import (
    PAPER_PARAMETERS,
    ConfigurationError,
    MemoryLedger,
    MemoryModel,
    Resource,
    SchedulingError,
    TableCommitment,
    spill_fraction,
)
from repro.memory.spill import build_spill_work, probe_spill_work

P = PAPER_PARAMETERS


class TestMemoryModel:
    def test_table_bytes(self):
        model = MemoryModel(capacity_bytes=1e6, hash_table_overhead=1.2)
        assert model.table_bytes(1000, 128) == pytest.approx(1.2 * 1000 * 128)

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            MemoryModel(capacity_bytes=0)

    def test_invalid_overhead(self):
        with pytest.raises(ConfigurationError):
            MemoryModel(capacity_bytes=1e6, hash_table_overhead=0.9)

    def test_negative_tuples(self):
        with pytest.raises(ConfigurationError):
            MemoryModel(capacity_bytes=1e6).table_bytes(-1, 128)


class TestLedger:
    def _ledger(self, cap=1000.0):
        return MemoryLedger(4, MemoryModel(capacity_bytes=cap))

    def test_live_bytes_window(self):
        ledger = self._ledger()
        ledger.commit(
            TableCommitment("J0", (0, 1), bytes_per_site=300.0, build_phase=1, release_phase=2)
        )
        assert ledger.live_bytes(0, 0) == 0.0
        assert ledger.live_bytes(0, 1) == 300.0
        assert ledger.live_bytes(0, 2) == 300.0
        assert ledger.live_bytes(0, 3) == 0.0
        assert ledger.live_bytes(2, 1) == 0.0

    def test_stacking(self):
        ledger = self._ledger()
        ledger.commit(TableCommitment("J0", (0,), 300.0, 0, 2))
        ledger.commit(TableCommitment("J1", (0,), 400.0, 1, 1))
        assert ledger.live_bytes(0, 1) == 700.0
        assert ledger.peak_live_bytes(1) == 700.0
        assert ledger.available(0, 1) == 300.0
        assert ledger.min_available(1) == 300.0

    def test_validate_detects_overflow(self):
        ledger = self._ledger(cap=500.0)
        ledger.commit(TableCommitment("J0", (0,), 300.0, 0, 1))
        ledger.commit(TableCommitment("J1", (0,), 300.0, 1, 1))
        with pytest.raises(SchedulingError):
            ledger.validate(2)

    def test_validate_passes_within_capacity(self):
        ledger = self._ledger(cap=500.0)
        ledger.commit(TableCommitment("J0", (0,), 300.0, 0, 0))
        ledger.commit(TableCommitment("J1", (0,), 300.0, 1, 1))
        ledger.validate(2)

    def test_bad_site_rejected(self):
        ledger = self._ledger()
        with pytest.raises(SchedulingError):
            ledger.commit(TableCommitment("J0", (9,), 1.0, 0, 0))

    def test_bad_interval_rejected(self):
        ledger = self._ledger()
        with pytest.raises(SchedulingError):
            ledger.commit(TableCommitment("J0", (0,), 1.0, 2, 1))

    def test_negative_footprint_rejected(self):
        ledger = self._ledger()
        with pytest.raises(SchedulingError):
            ledger.commit(TableCommitment("J0", (0,), -1.0, 0, 1))

    def test_bad_p(self):
        with pytest.raises(SchedulingError):
            MemoryLedger(0, MemoryModel(capacity_bytes=1.0))


class TestSpillFraction:
    def test_fits_entirely(self):
        assert spill_fraction(100.0, 200.0) == 0.0
        assert spill_fraction(100.0, 100.0) == 0.0

    def test_partial(self):
        assert spill_fraction(200.0, 100.0) == pytest.approx(0.5)

    def test_no_budget(self):
        assert spill_fraction(100.0, 0.0) == 1.0
        assert spill_fraction(100.0, -5.0) == 1.0

    def test_empty_table(self):
        assert spill_fraction(0.0, 0.0) == 0.0

    def test_negative_table_rejected(self):
        with pytest.raises(ConfigurationError):
            spill_fraction(-1.0, 10.0)

    @given(
        st.floats(min_value=0.0, max_value=1e9),
        st.floats(min_value=-1e6, max_value=1e9),
    )
    def test_always_in_unit_interval(self, table, budget):
        assert 0.0 <= spill_fraction(table, budget) <= 1.0


class TestSpillWork:
    def test_no_spill_no_work(self):
        assert build_spill_work(0.0, 10_000, P).is_zero()
        assert probe_spill_work(0.0, 10_000, 20_000, P).is_zero()

    def test_build_spill_components(self):
        w = build_spill_work(0.5, 8_000, P)
        pages = 0.5 * P.pages(8_000)
        assert w[Resource.DISK] == pytest.approx(pages * P.disk_seconds_per_page)
        assert w[Resource.CPU] == pytest.approx(P.cpu_seconds(pages * P.instr_write_page))
        assert w[Resource.NETWORK] == 0.0

    def test_probe_spill_exceeds_build_spill(self):
        # The probe side writes, re-reads both inputs, and re-hashes.
        b = build_spill_work(0.5, 8_000, P)
        pr = probe_spill_work(0.5, 8_000, 8_000, P)
        assert pr[Resource.DISK] > b[Resource.DISK]
        assert pr[Resource.CPU] > b[Resource.CPU]

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            build_spill_work(1.5, 100, P)
        with pytest.raises(ConfigurationError):
            probe_spill_work(-0.1, 100, 100, P)

    @given(st.floats(min_value=0.0, max_value=1.0), st.integers(min_value=0, max_value=10**5))
    def test_monotone_in_fraction(self, q, tuples):
        lo = build_spill_work(q * 0.5, tuples, P)
        hi = build_spill_work(q, tuples, P)
        assert hi.dominates(lo)
