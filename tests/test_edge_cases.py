"""Edge cases across the pipeline: degenerate plans, tiny systems.

Single-relation queries (no joins), single-site systems, empty phases,
and other boundary conditions that individual module tests don't chain
together.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    MemoryModel,
    PAPER_PARAMETERS,
    annotate_plan,
    describe_query,
    generate_query,
    hong_schedule,
    memory_aware_tree_schedule,
    opt_bound,
    sharing_policy_report,
    synchronous_schedule,
    tree_schedule,
    validate_phased_schedule,
)

COMM = PAPER_PARAMETERS.communication_model()


@pytest.fixture
def scan_only_query():
    """A zero-join query: the plan is a single base-relation scan."""
    query = generate_query(0, np.random.default_rng(4))
    annotate_plan(query.operator_tree, PAPER_PARAMETERS)
    return query


class TestZeroJoinQuery:
    def test_tree_schedule(self, scan_only_query, overlap):
        result = tree_schedule(
            scan_only_query.operator_tree, scan_only_query.task_tree,
            p=8, comm=COMM, overlap=overlap, f=0.7,
        )
        assert result.num_phases == 1
        assert len(result.homes) == 1
        assert result.response_time > 0

    def test_synchronous(self, scan_only_query, overlap):
        result = synchronous_schedule(
            scan_only_query.operator_tree, scan_only_query.task_tree,
            p=8, comm=COMM, overlap=overlap,
        )
        assert result.response_time > 0

    def test_hong(self, scan_only_query, overlap):
        result = hong_schedule(
            scan_only_query.operator_tree, scan_only_query.task_tree,
            p=8, comm=COMM, overlap=overlap, f=0.7,
        )
        assert result.response_time > 0

    def test_opt_bound_below_all(self, scan_only_query, overlap):
        lb = opt_bound(
            scan_only_query.operator_tree, scan_only_query.task_tree,
            p=8, f=0.7, comm=COMM, overlap=overlap,
        )
        ts = tree_schedule(
            scan_only_query.operator_tree, scan_only_query.task_tree,
            p=8, comm=COMM, overlap=overlap, f=0.7,
        ).response_time
        assert lb <= ts * (1 + 1e-9)

    def test_memory_scheduler_no_builds(self, scan_only_query, overlap):
        result = memory_aware_tree_schedule(
            scan_only_query.operator_tree, scan_only_query.task_tree,
            p=8, comm=COMM, overlap=overlap,
            memory=MemoryModel(capacity_bytes=1.0),  # tiny; no tables exist
            params=PAPER_PARAMETERS, f=0.7,
        )
        assert result.total_spilled_joins == 0

    def test_simulator(self, scan_only_query, overlap):
        result = tree_schedule(
            scan_only_query.operator_tree, scan_only_query.task_tree,
            p=8, comm=COMM, overlap=overlap, f=0.7,
        )
        validate_phased_schedule(result.phased_schedule)
        report = sharing_policy_report(result.phased_schedule)
        assert report.serial >= report.analytic * (1 - 1e-9)

    def test_stats(self, scan_only_query):
        stats = describe_query(scan_only_query)
        assert stats.num_joins == 0
        assert stats.num_operators == 1
        assert stats.num_tasks == 1
        assert stats.bushiness == 1.0


class TestSingleSiteSystems:
    @pytest.mark.parametrize("joins", [0, 1, 5])
    def test_everything_on_one_site(self, joins, overlap):
        query = generate_query(joins, np.random.default_rng(joins))
        annotate_plan(query.operator_tree, PAPER_PARAMETERS)
        ts = tree_schedule(
            query.operator_tree, query.task_tree, p=1,
            comm=COMM, overlap=overlap, f=0.7,
        )
        assert all(h.degree == 1 for h in ts.homes.values())
        # On one site the makespan is the per-phase Equation (2) value.
        validate_phased_schedule(ts.phased_schedule)

    def test_all_algorithms_agree_on_degenerate_instance(self, overlap):
        """One site + one operator: nothing to decide; all algorithms
        produce the same (only possible) schedule."""
        query = generate_query(0, np.random.default_rng(1))
        annotate_plan(query.operator_tree, PAPER_PARAMETERS)
        ts = tree_schedule(
            query.operator_tree, query.task_tree, p=1,
            comm=COMM, overlap=overlap, f=0.7,
        ).response_time
        sy = synchronous_schedule(
            query.operator_tree, query.task_tree, p=1, comm=COMM, overlap=overlap
        ).response_time
        hg = hong_schedule(
            query.operator_tree, query.task_tree, p=1,
            comm=COMM, overlap=overlap, f=0.7,
        ).response_time
        assert ts == pytest.approx(sy)
        assert ts == pytest.approx(hg)


class TestExtremeGranularity:
    def test_very_small_f_still_schedules(self, annotated_query, comm, overlap):
        result = tree_schedule(
            annotated_query.operator_tree, annotated_query.task_tree,
            p=16, comm=comm, overlap=overlap, f=1e-6,
        )
        # Degrees collapse toward 1 but the schedule remains valid.
        result.phased_schedule.validate()
        assert max(result.degrees.values()) <= 16

    def test_huge_f_caps_at_response_optimum(self, annotated_query, comm, overlap):
        loose = tree_schedule(
            annotated_query.operator_tree, annotated_query.task_tree,
            p=16, comm=comm, overlap=overlap, f=1e6,
        )
        moderate = tree_schedule(
            annotated_query.operator_tree, annotated_query.task_tree,
            p=16, comm=comm, overlap=overlap, f=0.9,
        )
        # Past the A4 cap, more granularity budget changes nothing much.
        assert loose.response_time <= moderate.response_time * 1.01


class TestTinyRelations:
    def test_one_tuple_relations(self, overlap):
        query = generate_query(3, np.random.default_rng(0), min_tuples=1, max_tuples=2)
        annotate_plan(query.operator_tree, PAPER_PARAMETERS)
        result = tree_schedule(
            query.operator_tree, query.task_tree, p=4,
            comm=COMM, overlap=overlap, f=0.7,
        )
        assert result.response_time > 0
        validate_phased_schedule(result.phased_schedule)
