"""Tests for hardware-parameter sensitivity sweeps."""

from __future__ import annotations

import pytest

from repro import ConfigurationError
from repro.experiments import PAPER_CONFIG, parameter_sensitivity
from repro.experiments.sensitivity import SWEEPABLE_FIELDS

TINY = PAPER_CONFIG.with_overrides(n_queries=2)


class TestValidation:
    def test_unknown_field(self):
        with pytest.raises(ConfigurationError):
            parameter_sensitivity("tuple_bytes", (1.0,), TINY)

    def test_bad_multipliers(self):
        with pytest.raises(ConfigurationError):
            parameter_sensitivity("cpu_mips", (), TINY)
        with pytest.raises(ConfigurationError):
            parameter_sensitivity("cpu_mips", (0.0, 1.0), TINY)

    def test_sweepable_fields_exist(self):
        from repro import PAPER_PARAMETERS

        for field in SWEEPABLE_FIELDS:
            assert hasattr(PAPER_PARAMETERS, field)


class TestSweep:
    @pytest.fixture(scope="class")
    def cpu_sweep(self):
        return parameter_sensitivity(
            "cpu_mips", (0.25, 1.0, 4.0), TINY, n_joins=6, p=8
        )

    def test_structure(self, cpu_sweep):
        assert cpu_sweep.figure_id == "sens-cpu_mips"
        labels = {s.label for s in cpu_sweep.series}
        assert labels == {"TreeSchedule", "Synchronous"}
        for s in cpu_sweep.series:
            assert s.xs == (0.25, 1.0, 4.0)
            assert all(y > 0 for y in s.ys)

    def test_faster_cpu_never_slower(self, cpu_sweep):
        for s in cpu_sweep.series:
            assert all(b <= a + 1e-9 for a, b in zip(s.ys, s.ys[1:]))

    def test_treeschedule_wins_at_baseline(self, cpu_sweep):
        ts = cpu_sweep.series_by_label("TreeSchedule")
        sy = cpu_sweep.series_by_label("Synchronous")
        i = ts.xs.index(1.0)
        assert ts.ys[i] < sy.ys[i]

    def test_startup_sweep_slows_everything(self):
        fig = parameter_sensitivity(
            "alpha_startup_seconds", (1.0, 20.0), TINY, n_joins=6, p=8
        )
        for s in fig.series:
            assert s.ys[1] >= s.ys[0] - 1e-9
