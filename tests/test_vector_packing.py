"""Tests for the generic d-dimensional packing heuristics (ablation grid)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    CloneItem,
    ConvexCombinationOverlap,
    InfeasibleScheduleError,
    PERFECT_OVERLAP,
    PlacementRule,
    SchedulingError,
    SortKey,
    WorkVector,
    pack_vectors,
)

OVERLAP = ConvexCombinationOverlap(0.5)


def item(op, comps, k=0):
    return CloneItem(operator=op, clone_index=k, work=WorkVector(comps))


items_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=5),
        st.lists(st.floats(min_value=0.0, max_value=50.0), min_size=2, max_size=2),
    ),
    min_size=1,
    max_size=10,
).map(
    lambda raw: [
        item(f"op{op}-{i}", comps, k=0) for i, (op, comps) in enumerate(raw)
    ]
)


class TestPaperRule:
    def test_reproduces_figure3_packing(self):
        """MAX_COMPONENT + LEAST_LOADED_LENGTH equals the paper's rule."""
        items = [
            item("a", [10.0, 0.0]),
            item("b", [8.0, 0.0]),
            item("c", [6.0, 0.0]),
            item("d", [4.0, 0.0]),
        ]
        schedule = pack_vectors(items, p=2, overlap=PERFECT_OVERLAP)
        lengths = sorted(site.length() for site in schedule.sites)
        # LPT: {10, 4} and {8, 6}.
        assert lengths == [14.0, 14.0]

    def test_constraint_a_respected(self):
        items = [item("a", [1.0, 1.0], k=0), item("a", [1.0, 1.0], k=1)]
        schedule = pack_vectors(items, p=2, overlap=OVERLAP)
        sites = {schedule.home("a").site_indices}
        assert len(schedule.home("a").site_indices) == 2

    def test_infeasible_when_degree_exceeds_sites(self):
        items = [item("a", [1.0, 1.0], k=0), item("a", [1.0, 1.0], k=1)]
        with pytest.raises(InfeasibleScheduleError):
            pack_vectors(items, p=1, overlap=OVERLAP)


class TestSortKeys:
    def test_total_sort(self):
        items = [item("a", [5.0, 0.0]), item("b", [3.0, 3.0])]
        schedule = pack_vectors(
            items, p=2, overlap=OVERLAP, sort=SortKey.TOTAL
        )
        assert schedule.clone_count() == 2

    def test_input_order(self):
        items = [item("a", [1.0, 0.0]), item("b", [9.0, 0.0])]
        schedule = pack_vectors(
            items, p=2, overlap=OVERLAP, sort=SortKey.INPUT_ORDER,
            rule=PlacementRule.FIRST_FIT,
        )
        # First fit with input order: 'a' lands on site 0 first.
        assert schedule.home("a").site_indices == (0,)

    def test_random_needs_rng(self):
        with pytest.raises(SchedulingError):
            pack_vectors([item("a", [1.0, 1.0])], p=1, overlap=OVERLAP, sort=SortKey.RANDOM)

    def test_random_with_rng(self):
        rng = random.Random(5)
        schedule = pack_vectors(
            [item(f"op{i}", [1.0, 1.0]) for i in range(5)],
            p=2,
            overlap=OVERLAP,
            sort=SortKey.RANDOM,
            rng=rng,
        )
        assert schedule.clone_count() == 5


class TestPlacementRules:
    def test_round_robin_cycles(self):
        items = [item(f"op{i}", [1.0, 0.0]) for i in range(4)]
        schedule = pack_vectors(
            items, p=2, overlap=OVERLAP, rule=PlacementRule.ROUND_ROBIN
        )
        assert [len(site) for site in schedule.sites] == [2, 2]

    def test_first_fit_piles_up(self):
        items = [item(f"op{i}", [1.0, 0.0]) for i in range(3)]
        schedule = pack_vectors(
            items, p=3, overlap=OVERLAP, rule=PlacementRule.FIRST_FIT
        )
        assert len(schedule.site(0)) == 3

    def test_min_resulting_length_avoids_congestion(self):
        # One site already holds disk work; a disk-heavy item should go to
        # the other site under MIN_RESULTING_LENGTH even if that site has
        # a larger current length.
        items = [
            item("base", [0.0, 6.0]),   # placed first (largest component)
            item("cpuish", [5.0, 0.0]),
            item("diskish", [0.0, 5.0]),
        ]
        schedule = pack_vectors(
            items, p=2, overlap=PERFECT_OVERLAP, rule=PlacementRule.MIN_RESULTING_LENGTH
        )
        # diskish must avoid the site holding base.
        base_site = schedule.home("base").site_indices[0]
        disk_site = schedule.home("diskish").site_indices[0]
        assert base_site != disk_site

    def test_random_rule_needs_rng(self):
        with pytest.raises(SchedulingError):
            pack_vectors([item("a", [1.0, 1.0])], p=1, overlap=OVERLAP, rule=PlacementRule.RANDOM)

    def test_round_robin_skips_conflicts(self):
        items = [item("a", [1.0, 0.0], k=0), item("a", [1.0, 0.0], k=1)]
        schedule = pack_vectors(
            items, p=2, overlap=OVERLAP, rule=PlacementRule.ROUND_ROBIN
        )
        assert schedule.home("a").degree == 2


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(SchedulingError):
            pack_vectors([], p=2, overlap=OVERLAP)

    def test_dimension_mismatch_rejected(self):
        items = [item("a", [1.0, 1.0]), item("b", [1.0, 1.0, 1.0])]
        with pytest.raises(SchedulingError):
            pack_vectors(items, p=2, overlap=OVERLAP)

    @settings(max_examples=30)
    @given(items_strategy, st.integers(min_value=6, max_value=10))
    def test_all_rules_produce_valid_schedules(self, items, p):
        for rule in PlacementRule:
            rng = random.Random(0)
            schedule = pack_vectors(
                items, p=p, overlap=OVERLAP, rule=rule, rng=rng
            )
            schedule.validate()
            assert schedule.clone_count() == len(items)

    @settings(max_examples=30)
    @given(items_strategy, st.integers(min_value=6, max_value=10))
    def test_paper_rule_never_worse_than_random_by_bound(self, items, p):
        """The paper's rule obeys the same (2d+1)-style LB relation."""
        schedule = pack_vectors(items, p=p, overlap=OVERLAP)
        total = WorkVector.zeros(2)
        for it in items:
            total = total + it.work
        lb = max(
            total.length() / p,
            max(OVERLAP.t_seq(it.work) for it in items),
        )
        d = 2
        assert schedule.makespan() <= (2 * d + 1) * lb + 1e-9
