"""Tests for the Lo et al. two-phase minimax allocation primitive."""

from __future__ import annotations

import itertools
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro import SchedulingError, minimax_allocation, minimax_time


def brute_force_minimax(works, n, caps=None):
    """Reference: enumerate all feasible integer allocations."""
    m = len(works)
    best = math.inf
    for combo in itertools.product(range(1, n + 1), repeat=m):
        if sum(combo) != n:
            continue
        if caps is not None and any(a > c for a, c in zip(combo, caps)):
            continue
        best = min(best, max(w / a for w, a in zip(works, combo)))
    return best


class TestBasics:
    def test_equal_works_split_evenly(self):
        assert minimax_allocation([10.0, 10.0], 4) == [2, 2]

    def test_proportional_tendency(self):
        alloc = minimax_allocation([30.0, 10.0], 4)
        assert alloc == [3, 1]

    def test_every_stage_gets_one(self):
        alloc = minimax_allocation([100.0, 0.001, 0.001], 3)
        assert alloc == [1, 1, 1]

    def test_sums_to_n(self):
        alloc = minimax_allocation([5.0, 3.0, 2.0], 17)
        assert sum(alloc) == 17

    def test_zero_work_stage(self):
        alloc = minimax_allocation([0.0, 10.0], 5)
        assert alloc[0] == 1
        assert alloc[1] == 4

    def test_single_stage(self):
        assert minimax_allocation([7.0], 9) == [9]


class TestValidation:
    def test_insufficient_processors(self):
        with pytest.raises(SchedulingError):
            minimax_allocation([1.0, 2.0], 1)

    def test_empty_stages(self):
        with pytest.raises(SchedulingError):
            minimax_allocation([], 3)

    def test_negative_work(self):
        with pytest.raises(SchedulingError):
            minimax_allocation([-1.0], 2)

    def test_caps_length_mismatch(self):
        with pytest.raises(SchedulingError):
            minimax_allocation([1.0, 2.0], 4, caps=[2])

    def test_caps_below_one(self):
        with pytest.raises(SchedulingError):
            minimax_allocation([1.0], 2, caps=[0])


class TestCaps:
    def test_cap_binds(self):
        alloc = minimax_allocation([100.0, 1.0], 6, caps=[2, 4])
        assert alloc[0] == 2

    def test_all_capped_leaves_leftover(self):
        alloc = minimax_allocation([10.0, 10.0], 10, caps=[2, 2])
        assert alloc == [2, 2]  # 6 processors idle

    def test_caps_never_exceeded(self):
        alloc = minimax_allocation([5.0, 9.0, 2.0], 12, caps=[3, 5, 2])
        assert all(a <= c for a, c in zip(alloc, [3, 5, 2]))


class TestOptimality:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=4),
        st.integers(min_value=0, max_value=6),
    )
    def test_water_filling_is_optimal(self, works, extra):
        n = len(works) + extra
        alloc = minimax_allocation(works, n)
        got = minimax_time(works, alloc)
        best = brute_force_minimax(works, n)
        assert math.isclose(got, best, rel_tol=1e-12, abs_tol=1e-12)

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=1, max_size=3),
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=1, max_value=4),
    )
    def test_optimal_with_caps(self, works, extra, cap):
        n = len(works) + extra
        caps = [cap] * len(works)
        alloc = minimax_allocation(works, n, caps=caps)
        if sum(caps) >= n:
            best = brute_force_minimax(works, n, caps=caps)
            assert math.isclose(minimax_time(works, alloc), best, rel_tol=1e-12)


class TestMinimaxTime:
    def test_formula(self):
        assert minimax_time([6.0, 4.0], [2, 1]) == 4.0

    def test_length_mismatch(self):
        with pytest.raises(SchedulingError):
            minimax_time([1.0], [1, 1])

    def test_zero_allocation_rejected(self):
        with pytest.raises(SchedulingError):
            minimax_time([1.0], [0])
