"""End-to-end tests of the service telemetry plane (numpy required).

Full virtual-time runs with the sampler task attached, checking the
load-bearing invariants of :mod:`repro.serve.telemetry`: the summary is
byte-identical with telemetry on or off, the exported streams are
deterministic, and the final samples reconcile exactly with
:meth:`ServiceReport.summary`.  Listed in ``conftest.collect_ignore``
for the no-numpy CI job (workload generation needs numpy).
"""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.obs import (
    unknown_instant_names,
    validate_metrics_payload,
    validate_trace_events,
)
from repro.obs.metrics_stream import parse_metrics_jsonl
from repro.serve import (
    GovernorConfig,
    SchedulerService,
    ServeConfig,
    SLOTarget,
    TelemetryConfig,
    WorkloadSpec,
)
from repro.serve.service import _percentile
from repro.serve.telemetry import INSTANT_SLO_BREACH

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def _config(**overrides) -> ServeConfig:
    """The same bench-calibrated shape test_serve_service.py uses."""
    workload = overrides.pop(
        "workload",
        WorkloadSpec(
            duration=300.0,
            rate=0.15,
            seed=42,
            template_pool=6,
            query_sizes=(4, 6, 8),
            diurnal_amplitude=0.3,
        ),
    )
    governor = overrides.pop(
        "governor",
        GovernorConfig(max_degree=8, min_degree=1, pressure_step=4),
    )
    return ServeConfig(
        p=20,
        f=0.1,
        max_coresident=3,
        workload=workload,
        governor=governor,
        **overrides,
    )


@pytest.fixture(scope="module")
def observed():
    """One telemetry-enabled run: (service, summary)."""
    service = SchedulerService(_config(telemetry=TelemetryConfig()))
    report = service.run()
    return service, report.summary()


class TestReadOnlyInvariant:
    def test_summary_identical_with_and_without_telemetry(self, observed):
        _, with_telemetry = observed
        without = SchedulerService(_config()).run().summary()
        assert with_telemetry == without

    def test_streams_deterministic_across_runs(self, observed):
        service, _ = observed
        again = SchedulerService(_config(telemetry=TelemetryConfig()))
        again.run()
        assert (
            again.telemetry.registry.jsonl()
            == service.telemetry.registry.jsonl()
        )
        assert (
            again.telemetry.registry.prometheus_text()
            == service.telemetry.registry.prometheus_text()
        )
        assert again.telemetry.timeline_events() == service.telemetry.timeline_events()


class TestReconciliation:
    def test_final_qps_and_utilization_match_summary_exactly(self, observed):
        service, summary = observed
        registry = service.telemetry.registry
        assert registry.series("serve_qps")[-1]["value"] == summary["qps"]
        assert (
            registry.series("serve_pool_utilization")[-1]["value"]
            == summary["pool"]["site_utilization"]
        )

    def test_final_counter_mirrors_match_summary(self, observed):
        service, summary = observed
        registry = service.telemetry.registry
        assert (
            registry.series("serve_completed_total")[-1]["value"]
            == summary["outcomes"]["completed"]
        )
        assert registry.series("serve_offered_total")[-1]["value"] == summary["offered"]

    def test_sketch_p95_within_one_growth_factor_of_summary(self, observed):
        service, summary = observed
        registry = service.telemetry.registry
        growth = 2.0 ** 0.25
        for cls, block_key in (("latency", "latency_class"), ("batch", "batch_class")):
            block = summary["latency"][block_key]
            if block["completed"] == 0:
                continue
            record = registry.series(f"serve_latency_seconds_{cls}")[-1]
            assert record["count"] == block["completed"]
            exact = block["p95"]
            sketch = record["quantiles"]["p95"]
            assert exact <= sketch <= exact * growth * (1.0 + 1e-9)

    def test_sample_counts_line_up(self, observed):
        service, _ = observed
        registry = service.telemetry.registry
        ticks = service.metrics.counters["telemetry_samples"]
        assert ticks > 10
        instruments = 16 + 6 + 3  # gauges + counter mirrors + histograms
        assert len(registry.samples) == int(ticks) * instruments


class TestStreamsAndTimeline:
    def test_jsonl_stream_validates(self, observed):
        service, _ = observed
        records = parse_metrics_jsonl(service.telemetry.registry.jsonl().splitlines())
        assert validate_metrics_payload(records) == []

    def test_prometheus_text_has_every_instrument(self, observed):
        service, _ = observed
        text = service.telemetry.registry.prometheus_text()
        for needle in (
            "serve_qps",
            "serve_pool_utilization",
            "serve_slo_burn_rate_latency",
            'serve_latency_seconds_batch_bucket{le="+Inf"}',
        ):
            assert needle in text

    def test_fleet_timeline_is_valid_and_shaped(self, observed):
        service, summary = observed
        events = service.telemetry.timeline_events()
        payload = {"traceEvents": events}
        assert validate_trace_events(payload) == []
        assert unknown_instant_names(payload) == set()
        tracks = {e["name"] for e in events if e.get("ph") == "C"}
        assert len(tracks) >= 3
        lanes = {
            e["tid"]
            for e in events
            if e.get("ph") == "X" and e.get("cat") == "resident"
        }
        assert lanes
        assert all(1 <= tid <= service.config.p for tid in lanes)
        # One closed lane per host site per completed query.
        completed = summary["outcomes"]["completed"]
        residents = [e for e in events if e.get("ph") == "X" and e.get("cat") == "resident"]
        assert len(residents) >= completed

    def test_breach_accounting_is_consistent(self, observed):
        service, _ = observed
        telemetry = service.telemetry
        breaches = len(telemetry.breaches)
        assert breaches > 0  # rate 0.15 at p=20/f=0.1 misses some SLOs
        assert service.metrics.counters["slo_breaches"] == breaches
        registry_total = telemetry.registry.series("serve_slo_breaches_total")[-1]["value"]
        assert registry_total == breaches
        instants = [
            e
            for e in telemetry.timeline_events()
            if e.get("ph") == "i" and e["name"] == INSTANT_SLO_BREACH
        ]
        assert len(instants) == breaches

    def test_burn_rate_definition(self, observed):
        service, _ = observed
        telemetry = service.telemetry
        for cls, target in telemetry.config.targets().items():
            expected = (1.0 - telemetry.attainment(cls)) / (1.0 - target.objective)
            assert telemetry.burn_rate(cls) == pytest.approx(expected)
            assert 0.0 <= telemetry.attainment(cls) <= 1.0


class TestConfigValidation:
    def test_slo_target_bounds(self):
        with pytest.raises(ConfigurationError):
            SLOTarget(target=0.0)
        with pytest.raises(ConfigurationError):
            SLOTarget(target=10.0, objective=1.0)
        with pytest.raises(ConfigurationError):
            SLOTarget(target=10.0, objective=0.0)

    def test_telemetry_config_bounds(self):
        with pytest.raises(ConfigurationError):
            TelemetryConfig(interval=0.0)
        with pytest.raises(ConfigurationError):
            TelemetryConfig(interval=float("nan"))
        with pytest.raises(ConfigurationError):
            TelemetryConfig(window=0)
        targets = TelemetryConfig().targets()
        assert set(targets) == {"latency", "batch"}


class TestPercentileEdges:
    """Satellite: ``_percentile`` must be total over its edge inputs."""

    def test_empty_returns_zero_sentinel(self):
        assert _percentile([], 50.0) == 0.0
        assert _percentile([], 99.0) == 0.0

    def test_single_element_is_every_percentile(self):
        for q in (0.0, 50.0, 95.0, 99.0, 100.0):
            assert _percentile([7.5], q) == 7.5

    def test_rank_clamps_at_both_ends(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert _percentile(values, 0.0) == 1.0  # rank floor
        assert _percentile(values, 100.0) == 4.0
        assert _percentile(values, 100.0 + 1e-9) == 4.0  # float noise past 100
        assert _percentile(values, 50.0) == 2.0  # nearest rank, no interpolation

    def test_summary_with_zero_completions_uses_sentinels(self):
        # A duration too short for any placement to finish: the latency
        # blocks must come back whole, all-zero, without IndexError.
        spec = WorkloadSpec(duration=1.0, rate=0.01, seed=3, template_pool=2)
        summary = SchedulerService(_config(workload=spec)).run().summary()
        block = summary["latency"]["all"]
        assert block["completed"] == 0
        assert block["p50"] == block["p95"] == block["p99"] == 0.0
        assert summary["qps"] == 0.0
        assert summary["mean_slowdown"] == 0.0
