"""Tests for the malleable scheduling extension (Section 7)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    CommunicationModel,
    ConvexCombinationOverlap,
    OperatorSpec,
    SchedulingError,
    WorkVector,
    candidate_parallelizations,
    lower_bound,
    malleable_schedule,
    optimal_malleable_makespan,
    parallel_time,
    select_parallelization,
)

COMM = CommunicationModel(alpha=0.015, beta=0.6e-6)
OVERLAP = ConvexCombinationOverlap(0.5)


def spec(name, cpu, disk, data=0.0):
    return OperatorSpec(name=name, work=WorkVector([cpu, disk, 0.0]), data_volume=data)


spec_lists = st.lists(
    st.tuples(
        st.floats(min_value=0.1, max_value=50.0),
        st.floats(min_value=0.0, max_value=50.0),
        st.floats(min_value=0.0, max_value=1e6),
    ),
    min_size=1,
    max_size=5,
).map(
    lambda raw: [
        spec(f"op{i}", cpu, disk, data) for i, (cpu, disk, data) in enumerate(raw)
    ]
)


class TestCandidateGeneration:
    def test_first_candidate_is_all_ones(self):
        specs = [spec("a", 10.0, 0.0), spec("b", 5.0, 5.0)]
        first = next(candidate_parallelizations(specs, 4, COMM, OVERLAP))
        assert first.degrees == {"a": 1, "b": 1}

    def test_each_step_increments_slowest(self):
        specs = [spec("a", 50.0, 0.0), spec("b", 1.0, 0.0)]
        gen = candidate_parallelizations(specs, 4, COMM, OVERLAP)
        c0 = next(gen)
        c1 = next(gen)
        # "a" is the slowest; its degree grows first.
        assert c1.degrees["a"] == 2
        assert c1.degrees["b"] == 1
        assert c0.h >= c1.h - 1e-9 or True  # h may go either way; just no crash

    def test_family_size_bound(self):
        # At most 1 + M(P-1) candidates (Section 7).
        specs = [spec(f"op{i}", 5.0 + i, 2.0) for i in range(3)]
        p = 5
        family = list(candidate_parallelizations(specs, p, COMM, OVERLAP))
        assert 1 <= len(family) <= 1 + len(specs) * (p - 1)

    def test_terminates_when_slowest_saturated(self):
        specs = [spec("a", 50.0, 0.0)]
        family = list(candidate_parallelizations(specs, 3, COMM, OVERLAP))
        assert family[-1].degrees["a"] == 3

    def test_h_matches_recomputation(self):
        specs = [spec("a", 10.0, 5.0, 1e5), spec("b", 3.0, 3.0)]
        for cand in candidate_parallelizations(specs, 4, COMM, OVERLAP):
            expected = max(
                parallel_time(s, cand.degrees[s.name], COMM, OVERLAP) for s in specs
            )
            assert math.isclose(cand.h, expected, rel_tol=1e-9)

    def test_congestion_matches_lower_bound(self):
        specs = [spec("a", 10.0, 5.0, 1e5), spec("b", 3.0, 3.0)]
        p = 4
        for cand in candidate_parallelizations(specs, p, COMM, OVERLAP):
            assert math.isclose(
                cand.lower_bound,
                lower_bound(specs, cand.degrees, p, COMM, OVERLAP),
                rel_tol=1e-9,
            )

    def test_duplicate_names_rejected(self):
        specs = [spec("a", 1.0, 0.0), spec("a", 2.0, 0.0)]
        with pytest.raises(SchedulingError):
            list(candidate_parallelizations(specs, 2, COMM, OVERLAP))

    def test_empty_is_empty(self):
        assert list(candidate_parallelizations([], 2, COMM, OVERLAP)) == []

    def test_bad_p(self):
        with pytest.raises(SchedulingError):
            list(candidate_parallelizations([spec("a", 1.0, 0.0)], 0, COMM, OVERLAP))


class TestSelection:
    def test_selected_minimizes_lb(self):
        specs = [spec("a", 20.0, 5.0, 1e6), spec("b", 5.0, 15.0)]
        best, examined = select_parallelization(specs, 6, COMM, OVERLAP)
        family = list(candidate_parallelizations(specs, 6, COMM, OVERLAP))
        assert examined == len(family)
        assert all(best.lower_bound <= c.lower_bound + 1e-12 for c in family)

    def test_empty_rejected(self):
        with pytest.raises(SchedulingError):
            select_parallelization([], 2, COMM, OVERLAP)


class TestMalleableSchedule:
    def test_result_structure(self):
        specs = [spec("a", 20.0, 5.0, 1e6), spec("b", 5.0, 15.0)]
        result = malleable_schedule(specs, p=6, comm=COMM, overlap=OVERLAP)
        assert result.guarantee == 7.0  # 2d+1 for d=3
        assert result.makespan >= result.lower_bound - 1e-9
        result.schedule_result.schedule.validate(result.schedule_result.degrees)

    def test_empty_rejected(self):
        with pytest.raises(SchedulingError):
            malleable_schedule([], p=2, comm=COMM, overlap=OVERLAP)

    @settings(max_examples=25, deadline=None)
    @given(spec_lists, st.integers(min_value=1, max_value=10))
    def test_theorem_71_bound_vs_lb(self, specs, p):
        """Makespan within (2d+1) of LB of the selected parallelization.

        LB of the selected candidate lower-bounds the global optimum
        (Lemma 7.2), so this checks Theorem 7.1's guarantee.
        """
        result = malleable_schedule(specs, p=p, comm=COMM, overlap=OVERLAP)
        if result.lower_bound > 0:
            assert result.makespan <= result.guarantee * result.lower_bound * (1 + 1e-9)

    @settings(max_examples=8, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.5, max_value=20.0),
                st.floats(min_value=0.0, max_value=20.0),
            ),
            min_size=1,
            max_size=2,
        ),
        st.integers(min_value=1, max_value=3),
    )
    def test_theorem_71_versus_exhaustive_optimum(self, raw, p):
        specs = [spec(f"op{i}", cpu, disk) for i, (cpu, disk) in enumerate(raw)]
        result = malleable_schedule(specs, p=p, comm=COMM, overlap=OVERLAP)
        optimum = optimal_malleable_makespan(specs, p=p, comm=COMM, overlap=OVERLAP)
        d = specs[0].d
        assert result.makespan <= (2 * d + 1) * optimum + 1e-9
        assert result.makespan >= optimum - 1e-9

    def test_beats_or_matches_all_ones_often(self):
        # Malleable scheduling should never be (much) worse than the naive
        # sequential parallelization when there are spare sites.
        specs = [spec("big", 40.0, 40.0), spec("small", 1.0, 1.0)]
        result = malleable_schedule(specs, p=8, comm=COMM, overlap=OVERLAP)
        assert result.candidate.degrees["big"] > 1


class TestBatchedFamily:
    """enumerate_candidate_family / select_parallelization_batched are
    byte-identical to the generator-based reference (tentpole contract)."""

    CASES = [
        ([("a", 10.0, 0.0, 0.0), ("b", 5.0, 5.0, 0.0)], 4),
        ([("a", 50.0, 0.0, 0.0)], 3),
        ([(f"op{i}", 5.0 + i, 2.0, 1e4 * i) for i in range(5)], 6),
        ([(f"op{i}", 1.0 + 0.1 * i, 3.0, 0.0) for i in range(8)], 3),
        ([("solo", 7.0, 7.0, 1e6)], 1),
    ]

    @staticmethod
    def _specs(raw):
        return [spec(name, cpu, disk, data) for name, cpu, disk, data in raw]

    @pytest.mark.parametrize("raw,p", CASES)
    def test_members_match_generator(self, raw, p):
        from repro import CandidateFamily, enumerate_candidate_family

        specs = self._specs(raw)
        family = enumerate_candidate_family(specs, p, COMM, OVERLAP)
        assert isinstance(family, CandidateFamily)
        reference = list(candidate_parallelizations(specs, p, COMM, OVERLAP))
        assert family.size == len(reference)
        for k, cand in enumerate(reference):
            got = family.candidate_at(k)
            assert got.degrees == cand.degrees
            assert got.h == cand.h                    # exact, not approx
            assert got.congestion == cand.congestion  # exact, not approx

    @pytest.mark.parametrize("raw,p", CASES)
    def test_selection_matches_reference(self, raw, p):
        from repro import select_parallelization_batched

        specs = self._specs(raw)
        ref_cand, ref_size = select_parallelization(specs, p, COMM, OVERLAP)
        got_cand, got_size = select_parallelization_batched(
            specs, p, COMM, OVERLAP
        )
        assert got_size == ref_size
        assert got_cand.degrees == ref_cand.degrees
        assert got_cand.h == ref_cand.h
        assert got_cand.congestion == ref_cand.congestion

    def test_lower_bounds_match_candidates(self):
        from repro import enumerate_candidate_family

        specs = self._specs(self.CASES[2][0])
        family = enumerate_candidate_family(specs, 6, COMM, OVERLAP)
        for k, lb in enumerate(family.lower_bounds()):
            assert lb == family.candidate_at(k).lower_bound

    def test_numpy_and_python_congestions_agree(self, monkeypatch):
        from repro.core import batch
        from repro import enumerate_candidate_family

        if not batch.HAVE_NUMPY:
            pytest.skip("numpy unavailable")
        specs = self._specs(self.CASES[3][0])
        monkeypatch.setattr(batch, "NUMPY_CUTOVER", 0)
        fam_np = enumerate_candidate_family(specs, 3, COMM, OVERLAP)
        monkeypatch.setattr(batch, "HAVE_NUMPY", False)
        fam_py = enumerate_candidate_family(specs, 3, COMM, OVERLAP)
        assert fam_np == fam_py

    def test_empty_specs(self):
        from repro import enumerate_candidate_family, select_parallelization_batched

        family = enumerate_candidate_family([], 4, COMM, OVERLAP)
        assert family.size == 0
        with pytest.raises(SchedulingError):
            select_parallelization_batched([], 4, COMM, OVERLAP)

    def test_duplicate_names_rejected(self):
        from repro import enumerate_candidate_family

        specs = [spec("dup", 1.0, 1.0), spec("dup", 2.0, 2.0)]
        with pytest.raises(SchedulingError):
            enumerate_candidate_family(specs, 4, COMM, OVERLAP)

    def test_degrees_at_bounds_checked(self):
        from repro import enumerate_candidate_family

        family = enumerate_candidate_family(
            self._specs(self.CASES[0][0]), 4, COMM, OVERLAP
        )
        with pytest.raises(SchedulingError):
            family.degrees_at(family.size)

    def test_malleable_schedule_uses_batched_selection(self):
        # The "lower_bound" strategy routes through the batched selector;
        # results must be unchanged vs the generator-based oracle.
        specs = self._specs(self.CASES[2][0])
        result = malleable_schedule(specs, p=6, comm=COMM, overlap=OVERLAP)
        ref_cand, _ = select_parallelization(specs, 6, COMM, OVERLAP)
        assert result.candidate.degrees == ref_cand.degrees
