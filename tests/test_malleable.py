"""Tests for the malleable scheduling extension (Section 7)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    CommunicationModel,
    ConvexCombinationOverlap,
    OperatorSpec,
    SchedulingError,
    WorkVector,
    candidate_parallelizations,
    lower_bound,
    malleable_schedule,
    optimal_malleable_makespan,
    parallel_time,
    select_parallelization,
)

COMM = CommunicationModel(alpha=0.015, beta=0.6e-6)
OVERLAP = ConvexCombinationOverlap(0.5)


def spec(name, cpu, disk, data=0.0):
    return OperatorSpec(name=name, work=WorkVector([cpu, disk, 0.0]), data_volume=data)


spec_lists = st.lists(
    st.tuples(
        st.floats(min_value=0.1, max_value=50.0),
        st.floats(min_value=0.0, max_value=50.0),
        st.floats(min_value=0.0, max_value=1e6),
    ),
    min_size=1,
    max_size=5,
).map(
    lambda raw: [
        spec(f"op{i}", cpu, disk, data) for i, (cpu, disk, data) in enumerate(raw)
    ]
)


class TestCandidateGeneration:
    def test_first_candidate_is_all_ones(self):
        specs = [spec("a", 10.0, 0.0), spec("b", 5.0, 5.0)]
        first = next(candidate_parallelizations(specs, 4, COMM, OVERLAP))
        assert first.degrees == {"a": 1, "b": 1}

    def test_each_step_increments_slowest(self):
        specs = [spec("a", 50.0, 0.0), spec("b", 1.0, 0.0)]
        gen = candidate_parallelizations(specs, 4, COMM, OVERLAP)
        c0 = next(gen)
        c1 = next(gen)
        # "a" is the slowest; its degree grows first.
        assert c1.degrees["a"] == 2
        assert c1.degrees["b"] == 1
        assert c0.h >= c1.h - 1e-9 or True  # h may go either way; just no crash

    def test_family_size_bound(self):
        # At most 1 + M(P-1) candidates (Section 7).
        specs = [spec(f"op{i}", 5.0 + i, 2.0) for i in range(3)]
        p = 5
        family = list(candidate_parallelizations(specs, p, COMM, OVERLAP))
        assert 1 <= len(family) <= 1 + len(specs) * (p - 1)

    def test_terminates_when_slowest_saturated(self):
        specs = [spec("a", 50.0, 0.0)]
        family = list(candidate_parallelizations(specs, 3, COMM, OVERLAP))
        assert family[-1].degrees["a"] == 3

    def test_h_matches_recomputation(self):
        specs = [spec("a", 10.0, 5.0, 1e5), spec("b", 3.0, 3.0)]
        for cand in candidate_parallelizations(specs, 4, COMM, OVERLAP):
            expected = max(
                parallel_time(s, cand.degrees[s.name], COMM, OVERLAP) for s in specs
            )
            assert math.isclose(cand.h, expected, rel_tol=1e-9)

    def test_congestion_matches_lower_bound(self):
        specs = [spec("a", 10.0, 5.0, 1e5), spec("b", 3.0, 3.0)]
        p = 4
        for cand in candidate_parallelizations(specs, p, COMM, OVERLAP):
            assert math.isclose(
                cand.lower_bound,
                lower_bound(specs, cand.degrees, p, COMM, OVERLAP),
                rel_tol=1e-9,
            )

    def test_duplicate_names_rejected(self):
        specs = [spec("a", 1.0, 0.0), spec("a", 2.0, 0.0)]
        with pytest.raises(SchedulingError):
            list(candidate_parallelizations(specs, 2, COMM, OVERLAP))

    def test_empty_is_empty(self):
        assert list(candidate_parallelizations([], 2, COMM, OVERLAP)) == []

    def test_bad_p(self):
        with pytest.raises(SchedulingError):
            list(candidate_parallelizations([spec("a", 1.0, 0.0)], 0, COMM, OVERLAP))


class TestSelection:
    def test_selected_minimizes_lb(self):
        specs = [spec("a", 20.0, 5.0, 1e6), spec("b", 5.0, 15.0)]
        best, examined = select_parallelization(specs, 6, COMM, OVERLAP)
        family = list(candidate_parallelizations(specs, 6, COMM, OVERLAP))
        assert examined == len(family)
        assert all(best.lower_bound <= c.lower_bound + 1e-12 for c in family)

    def test_empty_rejected(self):
        with pytest.raises(SchedulingError):
            select_parallelization([], 2, COMM, OVERLAP)


class TestMalleableSchedule:
    def test_result_structure(self):
        specs = [spec("a", 20.0, 5.0, 1e6), spec("b", 5.0, 15.0)]
        result = malleable_schedule(specs, p=6, comm=COMM, overlap=OVERLAP)
        assert result.guarantee == 7.0  # 2d+1 for d=3
        assert result.makespan >= result.lower_bound - 1e-9
        result.schedule_result.schedule.validate(result.schedule_result.degrees)

    def test_empty_rejected(self):
        with pytest.raises(SchedulingError):
            malleable_schedule([], p=2, comm=COMM, overlap=OVERLAP)

    @settings(max_examples=25, deadline=None)
    @given(spec_lists, st.integers(min_value=1, max_value=10))
    def test_theorem_71_bound_vs_lb(self, specs, p):
        """Makespan within (2d+1) of LB of the selected parallelization.

        LB of the selected candidate lower-bounds the global optimum
        (Lemma 7.2), so this checks Theorem 7.1's guarantee.
        """
        result = malleable_schedule(specs, p=p, comm=COMM, overlap=OVERLAP)
        if result.lower_bound > 0:
            assert result.makespan <= result.guarantee * result.lower_bound * (1 + 1e-9)

    @settings(max_examples=8, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.5, max_value=20.0),
                st.floats(min_value=0.0, max_value=20.0),
            ),
            min_size=1,
            max_size=2,
        ),
        st.integers(min_value=1, max_value=3),
    )
    def test_theorem_71_versus_exhaustive_optimum(self, raw, p):
        specs = [spec(f"op{i}", cpu, disk) for i, (cpu, disk) in enumerate(raw)]
        result = malleable_schedule(specs, p=p, comm=COMM, overlap=OVERLAP)
        optimum = optimal_malleable_makespan(specs, p=p, comm=COMM, overlap=OVERLAP)
        d = specs[0].d
        assert result.makespan <= (2 * d + 1) * optimum + 1e-9
        assert result.makespan >= optimum - 1e-9

    def test_beats_or_matches_all_ones_often(self):
        # Malleable scheduling should never be (much) worse than the naive
        # sequential parallelization when there are spare sites.
        specs = [spec("big", 40.0, 40.0), spec("small", 1.0, 1.0)]
        result = malleable_schedule(specs, p=8, comm=COMM, overlap=OVERLAP)
        assert result.candidate.degrees["big"] > 1
