"""Tests for tree query graphs."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import Catalog, PlanStructureError, QueryGraph, Relation, random_catalog, random_tree_query


def catalog(n):
    return Catalog([Relation(f"R{i}", 1000) for i in range(n)])


class TestQueryGraph:
    def test_basic_tree(self):
        g = QueryGraph(["A", "B", "C"], [("A", "B"), ("B", "C")])
        assert g.num_joins == 2
        assert set(g.relations) == {"A", "B", "C"}
        assert g.has_join("A", "B")
        assert not g.has_join("A", "C")
        assert set(g.neighbors("B")) == {"A", "C"}

    def test_single_relation(self):
        g = QueryGraph(["A"], [])
        assert g.num_joins == 0

    def test_empty_rejected(self):
        with pytest.raises(PlanStructureError):
            QueryGraph([], [])

    def test_cycle_rejected(self):
        with pytest.raises(PlanStructureError):
            QueryGraph(["A", "B", "C"], [("A", "B"), ("B", "C"), ("C", "A")])

    def test_disconnected_rejected(self):
        with pytest.raises(PlanStructureError):
            QueryGraph(["A", "B", "C"], [("A", "B")])

    def test_self_join_rejected(self):
        with pytest.raises(PlanStructureError):
            QueryGraph(["A", "B"], [("A", "A"), ("A", "B")])

    def test_duplicate_edge_rejected(self):
        with pytest.raises(PlanStructureError):
            QueryGraph(["A", "B"], [("A", "B"), ("B", "A")])

    def test_unknown_relation_rejected(self):
        with pytest.raises(PlanStructureError):
            QueryGraph(["A", "B"], [("A", "Z"), ("A", "B")])

    def test_unknown_neighbor_lookup(self):
        g = QueryGraph(["A", "B"], [("A", "B")])
        with pytest.raises(PlanStructureError):
            g.neighbors("Z")

    def test_to_networkx_is_copy(self):
        g = QueryGraph(["A", "B"], [("A", "B")])
        nx_graph = g.to_networkx()
        nx_graph.remove_edge("A", "B")
        assert g.has_join("A", "B")

    def test_joins_sorted_pairs(self):
        g = QueryGraph(["B", "A"], [("B", "A")])
        assert g.joins == [("A", "B")]


class TestRandomTreeQuery:
    def test_is_tree_over_catalog(self):
        rng = np.random.default_rng(3)
        g = random_tree_query(catalog(12), rng)
        assert g.num_joins == 11
        assert set(g.relations) == {f"R{i}" for i in range(12)}

    def test_one_and_two_relations(self):
        rng = np.random.default_rng(0)
        assert random_tree_query(catalog(1), rng).num_joins == 0
        assert random_tree_query(catalog(2), rng).num_joins == 1

    def test_deterministic(self):
        a = random_tree_query(catalog(10), np.random.default_rng(42))
        b = random_tree_query(catalog(10), np.random.default_rng(42))
        assert sorted(a.joins) == sorted(b.joins)

    def test_varies_with_seed(self):
        shapes = {
            tuple(sorted(random_tree_query(catalog(10), np.random.default_rng(s)).joins))
            for s in range(12)
        }
        assert len(shapes) > 1

    def test_empty_catalog_rejected(self):
        with pytest.raises(PlanStructureError):
            random_tree_query(Catalog(), np.random.default_rng(0))

    @settings(max_examples=20)
    @given(st.integers(min_value=1, max_value=30), st.integers(min_value=0, max_value=10_000))
    def test_always_valid_tree(self, n, seed):
        g = random_tree_query(catalog(n), np.random.default_rng(seed))
        assert g.num_joins == n - 1
