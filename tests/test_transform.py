"""Tests for the auto-materialization plan transformation."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BaseRelationNode,
    ConfigurationError,
    JoinMethod,
    JoinNode,
    Relation,
    auto_materialize,
    build_task_tree,
    expand_plan,
    generate_query,
)


def right_deep(k, inner_tuples=5_000, outer_tuples=20_000):
    node = BaseRelationNode(Relation("R0", outer_tuples))
    for i in range(k):
        inner = BaseRelationNode(Relation(f"B{i}", inner_tuples))
        node = JoinNode(f"J{i}", inner, node)
    return node


class TestAutoMaterialize:
    def test_breaks_long_probe_chains(self):
        plan = auto_materialize(right_deep(8), max_chain=3)
        tree = expand_plan(plan)
        tasks = build_task_tree(tree)
        assert max(len(t) for t in tasks.tasks) <= 2 * 3 + 3  # bounded pipelines
        flags = [j.materialize_output for j in plan.joins()]
        assert any(flags)

    def test_chain_bound_respected(self):
        for max_chain in (1, 2, 4):
            plan = auto_materialize(right_deep(9), max_chain=max_chain)
            tree = expand_plan(plan)
            tasks = build_task_tree(tree)
            # Each task holds at most max_chain probes.
            from repro import OperatorKind

            for task in tasks.tasks:
                probes = sum(
                    1 for op in task.operators if op.kind is OperatorKind.PROBE
                )
                assert probes <= max_chain

    def test_short_plans_untouched(self):
        plan = auto_materialize(right_deep(2), max_chain=3)
        assert not any(j.materialize_output for j in plan.joins())

    def test_input_not_mutated(self):
        original = right_deep(8)
        auto_materialize(original, max_chain=2)
        assert not any(j.materialize_output for j in original.joins())

    def test_structure_preserved(self):
        original = right_deep(6)
        rebuilt = auto_materialize(original, max_chain=2)
        assert rebuilt.num_joins == original.num_joins
        assert rebuilt.output_tuples == original.output_tuples
        assert sorted(j.join_id for j in rebuilt.joins()) == sorted(
            j.join_id for j in original.joins()
        )

    def test_existing_flags_preserved_and_reset_chains(self):
        plan = right_deep(6)
        # Pre-materialize the middle join by hand.
        mid = [j for j in plan.joins() if j.join_id == "J2"][0]
        mid.materialize_output = True
        rebuilt = auto_materialize(plan, max_chain=4)
        rebuilt_mid = [j for j in rebuilt.joins() if j.join_id == "J2"][0]
        assert rebuilt_mid.materialize_output

    def test_methods_preserved(self):
        a = BaseRelationNode(Relation("A", 1_000))
        b = BaseRelationNode(Relation("B", 2_000))
        c = BaseRelationNode(Relation("C", 3_000))
        plan = JoinNode(
            "J1", a, JoinNode("J0", b, c, method=JoinMethod.SORT_MERGE)
        )
        rebuilt = auto_materialize(plan, max_chain=1)
        inner = [j for j in rebuilt.joins() if j.join_id == "J0"][0]
        assert inner.method is JoinMethod.SORT_MERGE

    def test_invalid_max_chain(self):
        with pytest.raises(ConfigurationError):
            auto_materialize(right_deep(3), max_chain=0)

    def test_random_plans_expand_after_transform(self):
        for seed in range(4):
            query = generate_query(12, np.random.default_rng(seed))
            rebuilt = auto_materialize(query.plan, max_chain=2)
            tree = expand_plan(rebuilt)
            tree.validate()
            build_task_tree(tree)
