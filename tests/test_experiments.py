"""Tests for the Section 6 experiment harness (config, runner, figures)."""

from __future__ import annotations

import pytest

from repro import ConfigurationError
from repro.experiments import (
    PAPER_CONFIG,
    average_response_time,
    figure5a,
    figure5b,
    figure6a,
    figure6b,
    prepare_workload,
    quick_config,
    response_time,
)
from repro.experiments.config import ExperimentConfig

# A deliberately tiny sweep so figure builders run in well under a second.
TINY = PAPER_CONFIG.with_overrides(
    n_queries=2,
    site_counts=(4, 16),
    query_sizes=(4, 8),
    f_values=(0.1, 0.7),
    epsilon_values=(0.1, 0.7),
)


class TestConfig:
    def test_paper_defaults(self):
        assert PAPER_CONFIG.n_queries == 20
        assert PAPER_CONFIG.query_sizes == (10, 20, 30, 40, 50)
        assert PAPER_CONFIG.default_f == 0.7
        assert PAPER_CONFIG.default_epsilon == 0.5
        assert min(PAPER_CONFIG.site_counts) >= 10
        assert max(PAPER_CONFIG.site_counts) <= 140

    def test_quick_is_smaller(self):
        q = quick_config()
        assert q.n_queries < PAPER_CONFIG.n_queries
        assert len(q.site_counts) < len(PAPER_CONFIG.site_counts)

    def test_overrides(self):
        cfg = PAPER_CONFIG.with_overrides(seed=1, n_queries=3)
        assert cfg.seed == 1
        assert cfg.n_queries == 3
        assert PAPER_CONFIG.seed != 1 or True  # original frozen

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(n_queries=0)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(site_counts=())
        with pytest.raises(ConfigurationError):
            ExperimentConfig(epsilon_values=(1.5,))
        with pytest.raises(ConfigurationError):
            ExperimentConfig(f_values=(0.0,))


class TestRunner:
    def test_prepare_workload_annotates(self):
        cohort = prepare_workload(4, 2, seed=1)
        assert len(cohort) == 2
        for q in cohort:
            assert set(q.annotation) == {
                op.name for op in q.operator_tree.operators
            }

    def test_prepare_workload_shares_structure(self):
        """The structural cohort is cached and *shared* (no deepcopy on
        the hot path); the annotations are immutable side tables, so the
        sharing is safe."""
        a = prepare_workload(4, 2, seed=1)
        b = prepare_workload(4, 2, seed=1)
        for qa, qb in zip(a, b):
            assert qa.query is qb.query
            assert qa.operator_tree is qb.operator_tree
            assert qa.annotation.spec_of(qa.operator_tree.root) == (
                qb.annotation.spec_of(qb.operator_tree.root)
            )

    def test_prepare_workload_mutation_does_not_leak(self):
        """Golden no-leak test: re-annotating the shared cohort under
        different hardware can neither change another caller's specs nor
        its schedules — the write-once contract turns the old silent
        aliasing bug into a loud error, and per-params annotations are
        independent views over the same trees."""
        from dataclasses import replace

        from repro.cost.params import PAPER_PARAMETERS
        from repro.exceptions import ImmutableAnnotationError

        a = prepare_workload(4, 2, seed=1)
        before_spec = a[0].annotation.spec_of(a[0].operator_tree.root)
        before_time = response_time(
            "treeschedule", a[0], p=8, f=0.7, epsilon=0.5
        )
        scaled = replace(PAPER_PARAMETERS, cpu_mips=PAPER_PARAMETERS.cpu_mips * 100)
        # The supported path: a detached annotation for the same trees.
        b = prepare_workload(4, 2, seed=1, params=scaled)
        assert b[0].query is a[0].query  # structure shared...
        assert b[0].annotation.spec_of(b[0].operator_tree.root) != before_spec
        # ...while a's view and a's schedules are untouched.
        assert a[0].annotation.spec_of(a[0].operator_tree.root) == before_spec
        assert (
            response_time("treeschedule", a[0], p=8, f=0.7, epsilon=0.5)
            == before_time
        )
        # The unsupported path — rewriting attached specs in place —
        # fails loudly instead of leaking.
        from repro.cost.annotate import annotate_plan

        annotate_plan(a[0].operator_tree, PAPER_PARAMETERS)
        with pytest.raises(ImmutableAnnotationError):
            annotate_plan(a[0].operator_tree, scaled)

    def test_prepare_workload_with_store_roundtrip(self, tmp_path):
        """Cohort annotations round-trip through the artifact store."""
        from repro.store import ArtifactStore

        store = ArtifactStore(tmp_path / "cache")
        a = prepare_workload(7, 2, seed=9, store=store)
        assert store.stats.writes >= 1
        # Clear the in-process caches so the next call must hit disk.
        from repro.experiments import runner as runner_mod

        runner_mod._ANNOTATION_CACHE.clear()
        b = prepare_workload(7, 2, seed=9, store=store)
        assert store.stats.hits >= 1
        for qa, qb in zip(a, b):
            for op in qa.operator_tree.operators:
                assert qa.annotation[op.name] == qb.annotation[op.name]

    def test_prepare_workload_copy_preserves_tree_sharing(self):
        """The operator objects referenced by the task tree must be the
        same objects as in the operator tree (rooted scheduling relies on
        shared specs)."""
        (query, _) = prepare_workload(4, 2, seed=1)
        op_ids = {id(op) for op in query.operator_tree.operators}
        task_op_ids = {
            id(op) for task in query.task_tree.tasks for op in task.operators
        }
        assert task_op_ids <= op_ids

    def test_response_time_algorithms(self):
        (query, _) = prepare_workload(4, 2, seed=1)
        ts = response_time("treeschedule", query, p=8, f=0.7, epsilon=0.5)
        sy = response_time("synchronous", query, p=8, f=0.7, epsilon=0.5)
        lb = response_time("optbound", query, p=8, f=0.7, epsilon=0.5)
        assert ts > 0 and sy > 0
        assert lb <= ts + 1e-9
        assert lb <= sy + 1e-9

    def test_unknown_algorithm(self):
        (query, _) = prepare_workload(4, 2, seed=1)
        with pytest.raises(ConfigurationError):
            response_time("magic", query, p=8, f=0.7, epsilon=0.5)

    def test_average(self):
        cohort = prepare_workload(4, 3, seed=2)
        avg = average_response_time("treeschedule", cohort, p=8, f=0.7, epsilon=0.5)
        singles = [
            response_time("treeschedule", q, p=8, f=0.7, epsilon=0.5) for q in cohort
        ]
        assert avg == pytest.approx(sum(singles) / len(singles))

    def test_average_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            average_response_time("treeschedule", [], p=8, f=0.7, epsilon=0.5)


class TestFigures:
    def test_fig5a_structure(self):
        fig = figure5a(TINY, n_joins=6, epsilon=0.3)
        assert fig.figure_id == "fig5a"
        labels = [s.label for s in fig.series]
        assert "Synchronous" in labels
        assert any(label.startswith("TreeSchedule f=") for label in labels)
        for s in fig.series:
            assert s.xs == tuple(TINY.site_counts)
            assert all(y > 0 for y in s.ys)

    def test_fig5a_small_f_worse(self):
        fig = figure5a(TINY, n_joins=6, epsilon=0.3)
        tight = fig.series_by_label("TreeSchedule f=0.1")
        loose = fig.series_by_label("TreeSchedule f=0.7")
        # The coarse-granularity restriction binds: f=0.1 never beats f=0.7.
        assert all(a >= b - 1e-9 for a, b in zip(tight.ys, loose.ys))

    def test_fig5b_structure(self):
        fig = figure5b(TINY, n_joins=6)
        assert fig.figure_id == "fig5b"
        assert len(fig.series) == 2 * len(TINY.epsilon_values)

    def test_fig6a_structure(self):
        fig = figure6a(TINY, p_values=(4, 16))
        assert fig.figure_id == "fig6a"
        assert len(fig.series) == 4
        for s in fig.series:
            assert s.xs == tuple(float(j) for j in TINY.query_sizes)

    def test_fig6b_structure_and_bound(self):
        fig = figure6b(TINY, query_sizes=(6,))
        ts = fig.series_by_label("TreeSchedule 6 joins")
        lb = fig.series_by_label("OptBound 6 joins")
        assert all(t >= b - 1e-9 for t, b in zip(ts.ys, lb.ys))

    def test_series_lookup_missing(self):
        fig = figure6b(TINY, query_sizes=(6,))
        with pytest.raises(KeyError):
            fig.series_by_label("nope")
