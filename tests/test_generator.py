"""Tests for the seeded workload generator (Section 6.1 methodology)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ConfigurationError, generate_query, generate_workload


class TestGenerateQuery:
    def test_structure_sizes(self):
        q = generate_query(10, np.random.default_rng(0))
        assert q.num_joins == 10
        assert len(q.catalog) == 11
        assert len(q.operator_tree) == 11 + 10 + 10
        assert q.graph.num_joins == 10

    def test_zero_joins(self):
        q = generate_query(0, np.random.default_rng(0))
        assert q.num_joins == 0
        assert len(q.operator_tree) == 1
        assert len(q.task_tree) == 1

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_query(-1, np.random.default_rng(0))

    def test_cardinality_range(self):
        q = generate_query(30, np.random.default_rng(5), min_tuples=500, max_tuples=2_000)
        for rel in q.catalog:
            assert 500 <= rel.tuples <= 2_000

    def test_unannotated_by_default(self):
        q = generate_query(3, np.random.default_rng(0))
        assert all(not op.annotated for op in q.operator_tree.operators)

    def test_repr_compact(self):
        q = generate_query(3, np.random.default_rng(0))
        assert "joins=3" in repr(q)


class TestGenerateWorkload:
    def test_cohort_size(self):
        cohort = generate_workload(5, 4, seed=9)
        assert len(cohort) == 4
        assert all(q.num_joins == 5 for q in cohort)

    def test_reproducible(self):
        a = generate_workload(8, 3, seed=123)
        b = generate_workload(8, 3, seed=123)
        for qa, qb in zip(a, b):
            assert qa.plan.pretty() == qb.plan.pretty()
            assert [r.tuples for r in qa.catalog] == [r.tuples for r in qb.catalog]

    def test_seed_changes_workload(self):
        a = generate_workload(8, 3, seed=1)
        b = generate_workload(8, 3, seed=2)
        assert any(
            qa.plan.pretty() != qb.plan.pretty() for qa, qb in zip(a, b)
        )

    def test_queries_within_cohort_differ(self):
        cohort = generate_workload(8, 5, seed=3)
        shapes = {q.plan.pretty() for q in cohort}
        assert len(shapes) > 1

    def test_invalid_count(self):
        with pytest.raises(ConfigurationError):
            generate_workload(5, 0, seed=1)
