"""Tests for the TREESCHEDULE algorithm (Section 5.4, Figure 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ConvexCombinationOverlap,
    OperatorKind,
    PlanStructureError,
    opt_bound,
    synchronous_schedule,
    tree_schedule,
)


class TestStructure:
    def test_phase_count(self, annotated_query, comm, overlap):
        result = tree_schedule(
            annotated_query.operator_tree, annotated_query.task_tree,
            p=16, comm=comm, overlap=overlap, f=0.7,
        )
        assert result.num_phases == annotated_query.task_tree.height + 1
        assert len(result.phase_labels) == result.num_phases

    def test_all_operators_scheduled_once(self, annotated_query, comm, overlap):
        result = tree_schedule(
            annotated_query.operator_tree, annotated_query.task_tree,
            p=16, comm=comm, overlap=overlap, f=0.7,
        )
        expected = {op.name for op in annotated_query.operator_tree.operators}
        assert set(result.homes) == expected
        assert set(result.degrees) == expected

    def test_schedules_validate(self, annotated_query, comm, overlap):
        result = tree_schedule(
            annotated_query.operator_tree, annotated_query.task_tree,
            p=16, comm=comm, overlap=overlap, f=0.7,
        )
        result.phased_schedule.validate()

    def test_probe_rooted_at_build_home(self, annotated_query, comm, overlap):
        result = tree_schedule(
            annotated_query.operator_tree, annotated_query.task_tree,
            p=16, comm=comm, overlap=overlap, f=0.7,
        )
        for op in annotated_query.operator_tree.iter_probes():
            assert (
                result.homes[op.name].site_indices
                == result.homes[f"build({op.join_id})"].site_indices
            )

    def test_response_is_phase_sum(self, annotated_query, comm, overlap):
        result = tree_schedule(
            annotated_query.operator_tree, annotated_query.task_tree,
            p=16, comm=comm, overlap=overlap, f=0.7,
        )
        assert result.response_time == pytest.approx(
            sum(result.phased_schedule.phase_makespans())
        )

    def test_unannotated_rejected(self, comm, overlap):
        import repro

        query = repro.generate_query(4, np.random.default_rng(0))
        with pytest.raises(PlanStructureError):
            tree_schedule(
                query.operator_tree, query.task_tree,
                p=4, comm=comm, overlap=overlap,
            )

    def test_tasks_in_phase_labels(self, annotated_query, comm, overlap):
        result = tree_schedule(
            annotated_query.operator_tree, annotated_query.task_tree,
            p=16, comm=comm, overlap=overlap, f=0.7,
        )
        labelled = {tid for label in result.phase_labels for tid in label.split(",")}
        assert labelled == {t.task_id for t in annotated_query.task_tree.tasks}


class TestDegrees:
    def test_degrees_within_limits(self, annotated_query, comm, overlap):
        p = 16
        result = tree_schedule(
            annotated_query.operator_tree, annotated_query.task_tree,
            p=p, comm=comm, overlap=overlap, f=0.7,
        )
        for name, n in result.degrees.items():
            assert 1 <= n <= p
            assert result.homes[name].degree == n

    def test_build_probe_degrees_match(self, annotated_query, comm, overlap):
        result = tree_schedule(
            annotated_query.operator_tree, annotated_query.task_tree,
            p=16, comm=comm, overlap=overlap, f=0.7,
        )
        for op in annotated_query.operator_tree.iter_probes():
            assert result.degrees[op.name] == result.degrees[f"build({op.join_id})"]

    def test_small_f_restricts_degrees(self, annotated_query, comm, overlap):
        loose = tree_schedule(
            annotated_query.operator_tree, annotated_query.task_tree,
            p=32, comm=comm, overlap=overlap, f=0.9,
        )
        tight = tree_schedule(
            annotated_query.operator_tree, annotated_query.task_tree,
            p=32, comm=comm, overlap=overlap, f=0.05,
        )
        assert sum(tight.degrees.values()) < sum(loose.degrees.values())


class TestPerformanceShapes:
    def test_scales_with_sites(self, annotated_query_factory, comm, overlap):
        query = annotated_query_factory(15, 4)
        times = [
            tree_schedule(
                query.operator_tree, query.task_tree, p=p,
                comm=comm, overlap=overlap, f=0.7,
            ).response_time
            for p in (2, 8, 32)
        ]
        assert times[0] > times[1] > times[2]

    def test_above_opt_bound(self, annotated_query_factory, comm, overlap):
        for seed in range(5):
            query = annotated_query_factory(10, 100 + seed)
            for p in (4, 16, 64):
                ts = tree_schedule(
                    query.operator_tree, query.task_tree, p=p,
                    comm=comm, overlap=overlap, f=0.7,
                ).response_time
                lb = opt_bound(
                    query.operator_tree, query.task_tree, p=p, f=0.7,
                    comm=comm, overlap=overlap,
                )
                assert ts >= lb * (1 - 1e-9)

    def test_beats_synchronous_on_average(self, annotated_query_factory, comm):
        """The paper's headline claim, on a small seeded cohort."""
        overlap = ConvexCombinationOverlap(0.3)
        wins = 0
        total = 0
        for seed in range(8):
            query = annotated_query_factory(12, 200 + seed)
            for p in (8, 24):
                ts = tree_schedule(
                    query.operator_tree, query.task_tree, p=p,
                    comm=comm, overlap=overlap, f=0.7,
                ).response_time
                sy = synchronous_schedule(
                    query.operator_tree, query.task_tree, p=p,
                    comm=comm, overlap=overlap,
                ).response_time
                wins += ts <= sy
                total += 1
        assert wins / total >= 0.75

    def test_single_site_still_schedules(self, annotated_query, comm, overlap):
        result = tree_schedule(
            annotated_query.operator_tree, annotated_query.task_tree,
            p=1, comm=comm, overlap=overlap, f=0.7,
        )
        assert all(h.degree == 1 for h in result.homes.values())

    def test_deterministic(self, annotated_query, comm, overlap):
        r1 = tree_schedule(
            annotated_query.operator_tree, annotated_query.task_tree,
            p=16, comm=comm, overlap=overlap, f=0.7,
        )
        r2 = tree_schedule(
            annotated_query.operator_tree, annotated_query.task_tree,
            p=16, comm=comm, overlap=overlap, f=0.7,
        )
        assert r1.response_time == r2.response_time
        assert {k: v.site_indices for k, v in r1.homes.items()} == {
            k: v.site_indices for k, v in r2.homes.items()
        }
