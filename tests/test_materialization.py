"""Tests for materialization points (store/rescan — §3.1's rooted example)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BaseRelationNode,
    ConvexCombinationOverlap,
    JoinNode,
    OperatorKind,
    PAPER_PARAMETERS,
    Relation,
    Resource,
    anchor_operator_name,
    annotate_plan,
    build_task_tree,
    expand_plan,
    hong_schedule,
    opt_bound,
    scan_work_vector,
    synchronous_schedule,
    tree_schedule,
    validate_phased_schedule,
)
from repro.cost.cost_model import rescan_work_vector, store_work_vector
from repro.plans.physical_ops import rescan_op, store_op

COMM = PAPER_PARAMETERS.communication_model()
OVERLAP = ConvexCombinationOverlap(0.5)


def materialized_plan():
    """Two joins with a materialization point between them."""
    a = BaseRelationNode(Relation("A", 2_000))
    b = BaseRelationNode(Relation("B", 8_000))
    c = BaseRelationNode(Relation("C", 3_000))
    inner = JoinNode("J0", a, b, materialize_output=True)
    return JoinNode("J1", c, inner)


@pytest.fixture
def mat_tree():
    tree = expand_plan(materialized_plan())
    annotate_plan(tree, PAPER_PARAMETERS)
    return tree


class TestExpansion:
    def test_store_rescan_inserted(self, mat_tree):
        # 3 scans + 2 builds + 2 probes + store + rescan.
        assert len(mat_tree) == 9
        store = mat_tree.operator_by_name("store(J0)")
        rescan = mat_tree.operator_by_name("rescan(J0)")
        assert store.kind is OperatorKind.STORE
        assert rescan.kind is OperatorKind.RESCAN
        assert (store, rescan) in mat_tree.blocking_edges()
        mat_tree.validate()

    def test_root_materialization_ignored(self):
        plan = JoinNode(
            "J0",
            BaseRelationNode(Relation("A", 100)),
            BaseRelationNode(Relation("B", 200)),
            materialize_output=True,
        )
        tree = expand_plan(plan)
        assert len(tree) == 4  # no store/rescan at the root
        assert tree.root.kind is OperatorKind.PROBE

    def test_task_split_at_materialization(self, mat_tree):
        tasks = build_task_tree(mat_tree)
        # Without materialization this plan has 3 tasks; the store/rescan
        # adds one boundary.
        assert len(tasks) == 4
        sinks = {t.sink.kind for t in tasks.tasks if t is not tasks.root}
        assert OperatorKind.STORE in sinks

    def test_anchor_names(self, mat_tree):
        rescan = mat_tree.operator_by_name("rescan(J0)")
        probe = mat_tree.operator_by_name("probe(J1)")
        scan = mat_tree.operator_by_name("scan(A)")
        assert anchor_operator_name(rescan) == "store(J0)"
        assert anchor_operator_name(probe) == "build(J1)"
        assert anchor_operator_name(scan) is None


class TestCosts:
    def test_store_work(self):
        w = store_work_vector(4_000, PAPER_PARAMETERS)
        pages = PAPER_PARAMETERS.pages(4_000)
        assert w[Resource.DISK] == pytest.approx(pages * 0.020)
        assert w[Resource.CPU] == pytest.approx(
            (pages * 5_000 + 4_000 * 300) * 1e-6
        )

    def test_rescan_equals_scan(self):
        assert rescan_work_vector(4_000, PAPER_PARAMETERS) == scan_work_vector(
            4_000, PAPER_PARAMETERS
        )

    def test_data_volumes(self, mat_tree):
        store = mat_tree.operator_by_name("store(J0)")
        rescan = mat_tree.operator_by_name("rescan(J0)")
        # Store receives the result stream (8000 tuples); rescan reads
        # locally and ships to probe(J1).
        assert store.spec.data_volume == pytest.approx(8_000 * 128)
        assert rescan.spec.data_volume == pytest.approx(8_000 * 128)


class TestScheduling:
    def test_rescan_rooted_at_store(self, mat_tree):
        tasks = build_task_tree(mat_tree)
        for scheduler in (
            lambda: tree_schedule(
                mat_tree, tasks, p=8, comm=COMM, overlap=OVERLAP, f=0.7
            ),
            lambda: synchronous_schedule(
                mat_tree, tasks, p=8, comm=COMM, overlap=OVERLAP
            ),
            lambda: hong_schedule(
                mat_tree, tasks, p=8, comm=COMM, overlap=OVERLAP, f=0.7
            ),
        ):
            result = scheduler()
            assert (
                result.homes["rescan(J0)"].site_indices
                == result.homes["store(J0)"].site_indices
            )
            result.phased_schedule.validate()

    def test_bound_and_simulation(self, mat_tree):
        tasks = build_task_tree(mat_tree)
        ts = tree_schedule(mat_tree, tasks, p=8, comm=COMM, overlap=OVERLAP, f=0.7)
        lb = opt_bound(mat_tree, tasks, p=8, f=0.7, comm=COMM, overlap=OVERLAP)
        assert ts.response_time >= lb * (1 - 1e-9)
        validate_phased_schedule(ts.phased_schedule)

    def test_materialization_costs_time_on_shallow_plans(self):
        """On a plan with no reason to serialize, adding a
        materialization point only adds I/O."""
        def plan(materialize):
            a = BaseRelationNode(Relation("A", 2_000))
            b = BaseRelationNode(Relation("B", 8_000))
            c = BaseRelationNode(Relation("C", 3_000))
            inner = JoinNode("J0", a, b, materialize_output=materialize)
            return JoinNode("J1", c, inner)

        def response(materialize):
            tree = expand_plan(plan(materialize))
            annotate_plan(tree, PAPER_PARAMETERS)
            tasks = build_task_tree(tree)
            return tree_schedule(
                tree, tasks, p=8, comm=COMM, overlap=OVERLAP, f=0.7
            ).response_time

        assert response(True) > response(False)


class TestPhysicalOpConstructors:
    def test_store_fields(self):
        op = store_op("J9", 500)
        assert op.input_tuples == 500
        assert op.output_tuples == 0

    def test_rescan_fields(self):
        op = rescan_op("J9", 500)
        assert op.input_tuples == 0
        assert op.output_tuples == 500
