"""Cross-module property-based tests: end-to-end invariants.

These hypothesis suites drive the whole pipeline — random catalogs,
random bushy plans, cost annotation, scheduling, bounds, simulation —
and assert the global invariants that individual module tests cannot
see, e.g. "every schedule any workload produces satisfies Definition 5.1
and the Theorem 5.1 certificate" or "the simulator agrees with the
analytic model on every produced schedule".
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import (
    PAPER_PARAMETERS,
    ConvexCombinationOverlap,
    SharingPolicy,
    annotate_plan,
    certify,
    generate_query,
    min_shelf_phases,
    opt_bound,
    simulate_phased,
    skewed_response_time,
    synchronous_schedule,
    tree_schedule,
    validate_phases,
    validate_phased_schedule,
)

COMM = PAPER_PARAMETERS.communication_model()

pipeline_settings = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

query_params = st.tuples(
    st.integers(min_value=1, max_value=12),   # joins
    st.integers(min_value=0, max_value=10_000),  # seed
    st.integers(min_value=1, max_value=24),   # sites
    st.floats(min_value=0.05, max_value=1.0),  # epsilon
    st.floats(min_value=0.1, max_value=0.9),   # f
    st.sampled_from([0.0, 0.0, 0.5, 1.0]),    # merge-join fraction (hash-biased)
)


def build(joins, seed, merge_fraction=0.0):
    query = generate_query(
        joins, np.random.default_rng(seed), merge_join_fraction=merge_fraction
    )
    annotate_plan(query.operator_tree, PAPER_PARAMETERS)
    return query


class TestEndToEndInvariants:
    @pipeline_settings
    @given(query_params)
    def test_tree_schedule_structural_invariants(self, params):
        joins, seed, p, eps, f, mf = params
        query = build(joins, seed, mf)
        overlap = ConvexCombinationOverlap(eps)
        result = tree_schedule(
            query.operator_tree, query.task_tree, p=p,
            comm=COMM, overlap=overlap, f=f,
        )
        # Definition 5.1 constraints hold in every phase.
        result.phased_schedule.validate()
        # Every operator scheduled exactly once, degree within 1..P.
        names = {op.name for op in query.operator_tree.operators}
        assert set(result.homes) == names
        assert all(1 <= result.degrees[n] <= p for n in names)
        # Phase count equals task-tree height + 1 (MinShelf).
        assert result.num_phases == query.task_tree.height + 1

    @pipeline_settings
    @given(query_params)
    def test_opt_bound_lower_bounds_both_schedulers(self, params):
        joins, seed, p, eps, f, mf = params
        query = build(joins, seed, mf)
        overlap = ConvexCombinationOverlap(eps)
        cg_lb = opt_bound(
            query.operator_tree, query.task_tree, p=p, f=f,
            comm=COMM, overlap=overlap, respect_granularity=True,
        )
        free_lb = opt_bound(
            query.operator_tree, query.task_tree, p=p, f=f,
            comm=COMM, overlap=overlap, respect_granularity=False,
        )
        ts = tree_schedule(
            query.operator_tree, query.task_tree, p=p,
            comm=COMM, overlap=overlap, f=f,
        ).response_time
        sy = synchronous_schedule(
            query.operator_tree, query.task_tree, p=p,
            comm=COMM, overlap=overlap,
        ).response_time
        # The CG_f bound covers the CG_f scheduler; the universal bound
        # covers both (SYNCHRONOUS ignores granularity).
        assert ts >= cg_lb * (1 - 1e-9)
        assert ts >= free_lb * (1 - 1e-9)
        assert sy >= free_lb * (1 - 1e-9)
        assert free_lb <= cg_lb * (1 + 1e-9)

    @pipeline_settings
    @given(query_params)
    def test_per_phase_theorem_certificates(self, params):
        joins, seed, p, eps, f, mf = params
        query = build(joins, seed, mf)
        overlap = ConvexCombinationOverlap(eps)
        result = tree_schedule(
            query.operator_tree, query.task_tree, p=p,
            comm=COMM, overlap=overlap, f=f,
        )
        specs = {op.name: op.spec for op in query.operator_tree.operators}
        for schedule in result.phased_schedule.phases:
            phase_specs = [specs[name] for name in schedule.operators]
            cert = certify(
                schedule.makespan(), phase_specs, result.degrees,
                schedule.p, COMM, overlap,
            )
            assert cert.satisfied, str(cert)

    @pipeline_settings
    @given(query_params)
    def test_simulator_agrees_and_policies_order(self, params):
        joins, seed, p, eps, f, mf = params
        query = build(joins, seed, mf)
        overlap = ConvexCombinationOverlap(eps)
        result = tree_schedule(
            query.operator_tree, query.task_tree, p=p,
            comm=COMM, overlap=overlap, f=f,
        )
        sim = validate_phased_schedule(result.phased_schedule)
        assert sim.slowdown == pytest.approx(1.0)
        fair = simulate_phased(result.phased_schedule, SharingPolicy.FAIR_SHARE)
        serial = simulate_phased(result.phased_schedule, SharingPolicy.SERIAL)
        assert sim.response_time <= fair.response_time * (1 + 1e-9)
        assert fair.response_time <= serial.response_time * (1 + 1e-9)

    @pipeline_settings
    @given(query_params)
    def test_phases_always_valid(self, params):
        joins, seed, _, _, _, mf = params
        query = build(joins, seed, mf)
        phases = min_shelf_phases(query.task_tree)
        validate_phases(query.task_tree, phases)

    @pipeline_settings
    @given(query_params, st.floats(min_value=0.0, max_value=1.5))
    def test_skew_never_beats_operator_floor(self, params, theta):
        """Skew concentrates work on coordinator clones, so each phase's
        skewed makespan is at least the planned slowest-operator time.

        (The *total* response can occasionally drop under skew: moving
        work toward a coordinator can relieve congestion at some other
        site — see the skew module docstring — so the operator floor,
        not the planned makespan, is the true invariant.)
        """
        joins, seed, p, eps, f, mf = params
        query = build(joins, seed, mf)
        overlap = ConvexCombinationOverlap(eps)
        result = tree_schedule(
            query.operator_tree, query.task_tree, p=p,
            comm=COMM, overlap=overlap, f=f,
        )
        specs = {op.name: op.spec for op in query.operator_tree.operators}
        from repro import skewed_makespan

        for schedule in result.phased_schedule.phases:
            skewed = skewed_makespan(schedule, specs, theta, COMM, overlap)
            assert skewed >= schedule.max_parallel_time() * (1 - 1e-9)
        # theta = 0 reproduces the plan exactly.
        assert skewed_response_time(
            result.phased_schedule, specs, 0.0, COMM, overlap
        ) == pytest.approx(result.response_time)


class TestMonotonicityInvariants:
    @settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=0, max_value=5_000),
    )
    def test_more_sites_never_hurt_much(self, joins, seed):
        """Doubling the system should never increase TREESCHEDULE's
        response materially (small wobbles can come from degree-cap
        interactions; we allow 5%)."""
        query = build(joins, seed)
        overlap = ConvexCombinationOverlap(0.5)
        small = tree_schedule(
            query.operator_tree, query.task_tree, p=8,
            comm=COMM, overlap=overlap, f=0.7,
        ).response_time
        large = tree_schedule(
            query.operator_tree, query.task_tree, p=16,
            comm=COMM, overlap=overlap, f=0.7,
        ).response_time
        assert large <= small * 1.05

    @settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=0, max_value=5_000),
    )
    def test_opt_bound_monotone_in_p(self, joins, seed):
        query = build(joins, seed)
        overlap = ConvexCombinationOverlap(0.5)
        bounds = [
            opt_bound(
                query.operator_tree, query.task_tree, p=p, f=0.7,
                comm=COMM, overlap=overlap,
            )
            for p in (4, 8, 16, 32)
        ]
        assert all(b2 <= b1 * (1 + 1e-9) for b1, b2 in zip(bounds, bounds[1:]))
