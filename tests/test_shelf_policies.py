"""Tests for the eager shelf policy and the tree_schedule shelf knob."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    SchedulingError,
    build_task_tree,
    eager_shelf_phases,
    expand_plan,
    generate_query,
    min_shelf_phases,
    tree_schedule,
    validate_phases,
)


class TestEagerShelf:
    def test_valid_decomposition(self, annotated_query):
        phases = eager_shelf_phases(annotated_query.task_tree)
        validate_phases(annotated_query.task_tree, phases)

    def test_same_phase_count_as_minshelf(self):
        for seed in range(5):
            query = generate_query(12, np.random.default_rng(seed))
            assert len(eager_shelf_phases(query.task_tree)) == len(
                min_shelf_phases(query.task_tree)
            )

    def test_leaves_all_in_phase_zero(self, annotated_query):
        tree = annotated_query.task_tree
        phases = eager_shelf_phases(tree)
        leaves = [t for t in tree.tasks if not tree.children(t)]
        assert all(t in phases[0] for t in leaves)

    def test_root_still_last(self, annotated_query):
        tree = annotated_query.task_tree
        phases = eager_shelf_phases(tree)
        assert tree.root in phases[-1]

    def test_differs_from_minshelf_on_unbalanced_trees(self):
        """On an unbalanced bushy plan a shallow branch's leaf is eager in
        phase 0 but MinShelf-late just before its parent."""
        from repro import BaseRelationNode, JoinNode, Relation

        # The probe side is a 2-deep chain of tasks; the build side of the
        # root join is a lone base relation, so {scan(D), build(J2)} is a
        # shallow leaf task hanging just below the root.
        a = BaseRelationNode(Relation("A", 1_000))
        b = BaseRelationNode(Relation("B", 2_000))
        c = BaseRelationNode(Relation("C", 3_000))
        d = BaseRelationNode(Relation("D", 4_000))
        deep = JoinNode("J1", JoinNode("J0", a, b), c)
        plan = JoinNode("J2", d, deep)
        tree = build_task_tree(expand_plan(plan))
        eager = eager_shelf_phases(tree)
        lazy = min_shelf_phases(tree)
        eager_sizes = [len(bucket) for bucket in eager]
        lazy_sizes = [len(bucket) for bucket in lazy]
        assert eager_sizes != lazy_sizes
        # Eager front-loads: its first phase is at least as full.
        assert eager_sizes[0] >= lazy_sizes[0]


class TestShelfKnob:
    def test_both_policies_schedule(self, annotated_query, comm, overlap):
        for shelf in ("min", "eager"):
            result = tree_schedule(
                annotated_query.operator_tree, annotated_query.task_tree,
                p=12, comm=comm, overlap=overlap, f=0.7, shelf=shelf,
            )
            result.phased_schedule.validate()
            assert result.response_time > 0

    def test_unknown_policy_rejected(self, annotated_query, comm, overlap):
        with pytest.raises(SchedulingError):
            tree_schedule(
                annotated_query.operator_tree, annotated_query.task_tree,
                p=12, comm=comm, overlap=overlap, f=0.7, shelf="bogus",
            )

    def test_default_is_minshelf(self, annotated_query, comm, overlap):
        default = tree_schedule(
            annotated_query.operator_tree, annotated_query.task_tree,
            p=12, comm=comm, overlap=overlap, f=0.7,
        )
        explicit = tree_schedule(
            annotated_query.operator_tree, annotated_query.task_tree,
            p=12, comm=comm, overlap=overlap, f=0.7, shelf="min",
        )
        assert default.response_time == explicit.response_time

    def test_probes_rooted_under_eager_policy(self, annotated_query, comm, overlap):
        result = tree_schedule(
            annotated_query.operator_tree, annotated_query.task_tree,
            p=12, comm=comm, overlap=overlap, f=0.7, shelf="eager",
        )
        for op in annotated_query.operator_tree.iter_probes():
            assert (
                result.homes[op.name].site_indices
                == result.homes[f"build({op.join_id})"].site_indices
            )
