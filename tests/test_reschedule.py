"""Incremental rescheduling: delta semantics, golden identity, engine wiring.

The repair contract has three legs:

* :func:`repro.core.reschedule.reschedule_schedule` mutated in place is
  *byte-identical* (``schedule_to_dict``) to the naive
  :func:`~repro.core.reschedule.reschedule_reference` oracle, for every
  supported sort × rule combination and for hypothesis-generated deltas;
* an append-only delta under ``SortKey.INPUT_ORDER`` equals cold-packing
  the concatenated item list — repair == re-pack of the mutated input;
* the engine entry point (:func:`repro.engine.reschedule.reschedule`)
  re-derives homes/degrees/instrumentation, never aliases store keys
  across deltas, and leaves the previous result intact by default.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    CloneItem,
    ConvexCombinationOverlap,
    InfeasibleScheduleError,
    PlacementRule,
    RescheduleStats,
    ScheduleDelta,
    SchedulingError,
    SortKey,
    WorkVector,
    pack_vectors,
    reschedule_reference,
    reschedule_schedule,
)
from repro.core.schedule import PhasedSchedule
from repro.engine import (
    MetricsRecorder,
    ScheduleResult,
    available_reschedulers,
    get_rescheduler,
    reschedule,
    reschedule_cached,
    reschedule_store_payload,
)
from repro.serialization import (
    schedule_delta_from_dict,
    schedule_delta_to_dict,
    schedule_from_dict,
    schedule_to_dict,
)

OVERLAP = ConvexCombinationOverlap(0.5)

REPAIR_RULES = (
    PlacementRule.LEAST_LOADED_LENGTH,
    PlacementRule.FIRST_FIT,
    PlacementRule.MIN_RESULTING_LENGTH,
)


def items_of(n, d=3, seed=0, max_clones=3, prefix="op"):
    rng = random.Random(seed)
    out = []
    for i in range(n):
        for k in range(rng.randint(1, max_clones)):
            out.append(
                CloneItem(
                    operator=f"{prefix}{i}",
                    clone_index=k,
                    work=WorkVector([rng.uniform(0.1, 10.0) for _ in range(d)]),
                )
            )
    return out


def packed(n=30, p=10, seed=0, **kw):
    return pack_vectors(items_of(n, seed=seed), p=p, overlap=OVERLAP, **kw)


# ----------------------------------------------------------------------
# ScheduleDelta construction
# ----------------------------------------------------------------------
class TestScheduleDelta:
    def test_canonicalizes_to_tuples(self):
        delta = ScheduleDelta(remove_sites=[2, 1], remove_operators=["a"])
        assert delta.remove_sites == (2, 1)
        assert delta.remove_operators == ("a",)

    def test_rejects_duplicate_sites(self):
        with pytest.raises(SchedulingError):
            ScheduleDelta(remove_sites=(1, 1))

    def test_rejects_remove_restore_overlap(self):
        with pytest.raises(SchedulingError):
            ScheduleDelta(remove_sites=(1,), restore_sites=(1,))

    def test_rejects_duplicate_added_clone(self):
        item = CloneItem(operator="x", clone_index=0, work=WorkVector([1.0]))
        with pytest.raises(SchedulingError):
            ScheduleDelta(add_items=(item, item))

    def test_rejects_negative_phase(self):
        with pytest.raises(SchedulingError):
            ScheduleDelta(phase_index=-1)

    def test_is_empty(self):
        assert ScheduleDelta().is_empty
        assert not ScheduleDelta(remove_sites=(0,)).is_empty


# ----------------------------------------------------------------------
# Core repair vs reference oracle (golden identity)
# ----------------------------------------------------------------------
MIXED_DELTA = ScheduleDelta(
    remove_sites=(3, 7),
    remove_operators=("op5", "op11"),
    add_items=(
        CloneItem(operator="newA", clone_index=0, work=WorkVector([1.0, 2.0, 3.0])),
        CloneItem(operator="newA", clone_index=1, work=WorkVector([2.0, 1.0, 0.5])),
        CloneItem(operator="newB", clone_index=0, work=WorkVector([4.0, 0.2, 1.1])),
    ),
)


class TestRepairMatchesReference:
    @pytest.mark.parametrize("sort", [SortKey.MAX_COMPONENT, SortKey.TOTAL,
                                      SortKey.INPUT_ORDER])
    @pytest.mark.parametrize("rule", REPAIR_RULES)
    @pytest.mark.parametrize("seed", [0, 7])
    def test_mixed_delta_bytewise(self, sort, rule, seed):
        base = pack_vectors(
            items_of(40, seed=seed), p=12, overlap=OVERLAP, sort=sort, rule=rule,
            rng=random.Random(seed),
        )
        ref = reschedule_reference(base, MIXED_DELTA, overlap=OVERLAP,
                                   sort=sort, rule=rule)
        mutated = base.copy()
        stats = reschedule_schedule(mutated, MIXED_DELTA, overlap=OVERLAP,
                                    sort=sort, rule=rule)
        assert schedule_to_dict(mutated) == schedule_to_dict(ref)
        assert stats.sites_drained == 2
        assert stats.clones_added == 3
        assert stats.operators_removed == 2
        assert stats.clones_placed == stats.clones_moved + 3

    def test_reference_leaves_input_untouched(self):
        base = packed()
        before = schedule_to_dict(base)
        reschedule_reference(base, MIXED_DELTA, overlap=OVERLAP)
        assert schedule_to_dict(base) == before

    def test_empty_delta_is_noop(self):
        base = packed()
        before = schedule_to_dict(base)
        stats = reschedule_schedule(base, ScheduleDelta(), overlap=OVERLAP)
        assert schedule_to_dict(base) == before
        assert stats == RescheduleStats()

    def test_remove_then_restore_round_trip(self):
        base = packed()
        reschedule_schedule(base, ScheduleDelta(remove_sites=(2, 5)),
                            overlap=OVERLAP)
        assert base.disabled_sites == {2, 5}
        stats = reschedule_schedule(base, ScheduleDelta(restore_sites=(2, 5)),
                                    overlap=OVERLAP)
        assert base.disabled_sites == set()
        assert stats.sites_restored == 2

    def test_append_only_input_order_equals_cold_pack(self):
        """repair == cold re-pack of the mutated input (exact contract)."""
        base_items = items_of(25, seed=3)
        extra = items_of(6, seed=99, prefix="late")
        base = pack_vectors(base_items, p=8, overlap=OVERLAP,
                            sort=SortKey.INPUT_ORDER)
        reschedule_schedule(base, ScheduleDelta(add_items=tuple(extra)),
                            overlap=OVERLAP, sort=SortKey.INPUT_ORDER)
        cold = pack_vectors(base_items + extra, p=8, overlap=OVERLAP,
                            sort=SortKey.INPUT_ORDER)
        assert schedule_to_dict(base) == schedule_to_dict(cold)

    def test_unsupported_rules_rejected(self):
        base = packed()
        for rule in (PlacementRule.ROUND_ROBIN, PlacementRule.RANDOM):
            with pytest.raises(SchedulingError):
                reschedule_schedule(base.copy(), MIXED_DELTA, overlap=OVERLAP,
                                    rule=rule)

    def test_infeasible_when_operator_covers_survivors(self):
        # One operator with a clone on every site: removing any site
        # leaves the displaced clone without an allowable target.
        items = [
            CloneItem(operator="wide", clone_index=k,
                      work=WorkVector([1.0, 1.0, 1.0]))
            for k in range(4)
        ]
        base = pack_vectors(items, p=4, overlap=OVERLAP)
        with pytest.raises(InfeasibleScheduleError):
            reschedule_schedule(base, ScheduleDelta(remove_sites=(0,)),
                                overlap=OVERLAP)


class TestDeltaValidationAgainstSchedule:
    def test_remove_out_of_range(self):
        with pytest.raises(SchedulingError):
            reschedule_schedule(packed(p=4), ScheduleDelta(remove_sites=(4,)),
                                overlap=OVERLAP)

    def test_double_remove(self):
        base = packed()
        reschedule_schedule(base, ScheduleDelta(remove_sites=(1,)),
                            overlap=OVERLAP)
        with pytest.raises(SchedulingError):
            reschedule_schedule(base, ScheduleDelta(remove_sites=(1,)),
                                overlap=OVERLAP)

    def test_restore_in_service_site(self):
        with pytest.raises(SchedulingError):
            reschedule_schedule(packed(), ScheduleDelta(restore_sites=(1,)),
                                overlap=OVERLAP)

    def test_remove_unknown_operator(self):
        with pytest.raises(SchedulingError):
            reschedule_schedule(
                packed(), ScheduleDelta(remove_operators=("ghost",)),
                overlap=OVERLAP,
            )

    def test_dimension_mismatch(self):
        bad = ScheduleDelta(add_items=(
            CloneItem(operator="x", clone_index=0, work=WorkVector([1.0])),
        ))
        with pytest.raises(SchedulingError):
            reschedule_schedule(packed(), bad, overlap=OVERLAP)

    def test_remove_operator_fully_on_drained_site(self):
        # All clones of the operator live on the removed site: the
        # removal is satisfied by dropping the displaced copies.
        items = items_of(10, seed=1, max_clones=1)
        base = pack_vectors(items, p=5, overlap=OVERLAP)
        victim = base.site(2).clones[0].operator
        only_there = all(
            not site.hosts_operator(victim)
            for site in base.sites if site.index != 2
        )
        if only_there:
            stats = reschedule_schedule(
                base,
                ScheduleDelta(remove_sites=(2,), remove_operators=(victim,)),
                overlap=OVERLAP,
            )
            assert stats.operators_removed == 1
            assert victim not in base.operators


# ----------------------------------------------------------------------
# FIRST_FIT repair never touches the heap
# ----------------------------------------------------------------------
def test_first_fit_repair_skips_heap(monkeypatch):
    from repro.core import reschedule as core_reschedule

    class Exploder:
        def __init__(self, *a, **kw):
            raise AssertionError("FIRST_FIT repair must not build a SiteHeap")

    monkeypatch.setattr(core_reschedule, "SiteHeap", Exploder)
    base = packed()
    metrics = MetricsRecorder()
    stats = reschedule_schedule(
        base, MIXED_DELTA, overlap=OVERLAP, rule=PlacementRule.FIRST_FIT,
        metrics=metrics,
    )
    assert stats.placement_scans > 0
    assert metrics.counters["placement_scans"] == stats.placement_scans
    assert metrics.counters["reschedules"] == 1.0
    assert "reschedule" in metrics.timers


def test_least_loaded_repair_scans_less_than_cold_pack():
    n, p = 200, 16
    items = items_of(n, seed=5, max_clones=1)
    metrics_cold = MetricsRecorder()
    base = pack_vectors(items, p=p, overlap=OVERLAP, metrics=metrics_cold)
    metrics_repair = MetricsRecorder()
    reschedule_schedule(
        base.copy(), ScheduleDelta(remove_sites=(3,)), overlap=OVERLAP,
        metrics=metrics_repair,
    )
    assert (
        metrics_repair.counters["placement_scans"]
        < metrics_cold.counters["placement_scans"]
    )


# ----------------------------------------------------------------------
# Hypothesis: repair == reference for generated deltas
# ----------------------------------------------------------------------
delta_strategy = st.tuples(
    st.integers(min_value=0, max_value=9999),      # base seed
    st.sets(st.integers(min_value=0, max_value=9), max_size=3),  # sites
    st.integers(min_value=0, max_value=3),         # operators to remove
    st.integers(min_value=0, max_value=4),         # items to add
    st.sampled_from([SortKey.MAX_COMPONENT, SortKey.TOTAL, SortKey.INPUT_ORDER]),
    st.sampled_from(REPAIR_RULES),
)


@settings(max_examples=40, deadline=None)
@given(delta_strategy)
def test_repair_matches_reference_property(params):
    seed, sites, n_remove_ops, n_add, sort, rule = params
    base = pack_vectors(items_of(25, seed=seed), p=10, overlap=OVERLAP,
                        sort=sort, rule=rule)
    rng = random.Random(seed + 1)
    resident = sorted(base.operators)
    remove_ops = tuple(rng.sample(resident, min(n_remove_ops, len(resident))))
    delta = ScheduleDelta(
        remove_sites=tuple(sorted(sites)),
        remove_operators=remove_ops,
        add_items=tuple(
            CloneItem(
                operator=f"added{i}", clone_index=0,
                work=WorkVector([rng.uniform(0.1, 5.0) for _ in range(3)]),
            )
            for i in range(n_add)
        ),
    )
    try:
        ref = reschedule_reference(base, delta, overlap=OVERLAP,
                                   sort=sort, rule=rule)
    except InfeasibleScheduleError:
        with pytest.raises(InfeasibleScheduleError):
            reschedule_schedule(base.copy(), delta, overlap=OVERLAP,
                                sort=sort, rule=rule)
        return
    mutated = base.copy()
    reschedule_schedule(mutated, delta, overlap=OVERLAP, sort=sort, rule=rule)
    assert schedule_to_dict(mutated) == schedule_to_dict(ref)


# ----------------------------------------------------------------------
# Engine entry point
# ----------------------------------------------------------------------
def synthetic_result(p=8, phases=2):
    phased = PhasedSchedule()
    for k in range(phases):
        phased.append(
            pack_vectors(items_of(20, seed=k, max_clones=1), p=p,
                         overlap=OVERLAP),
            f"shelf-{k}",
        )
    return ScheduleResult(algorithm="treeschedule", phased_schedule=phased)


class TestEngineReschedule:
    def test_registry(self):
        assert "repair" in available_reschedulers()
        assert callable(get_rescheduler("repair"))
        with pytest.raises(Exception):
            get_rescheduler("no-such-strategy")

    def test_repaired_result_shape(self):
        prev = synthetic_result()
        delta = ScheduleDelta(remove_sites=(0,), phase_index=1)
        out = reschedule(prev, delta, overlap=OVERLAP)
        assert out is not prev
        assert out.algorithm == prev.algorithm
        assert out.phase_labels == prev.phase_labels
        # Only the targeted phase changed.
        assert 0 in out.phased_schedule.phases[1].disabled_sites
        assert 0 not in prev.phased_schedule.phases[1].disabled_sites
        assert out.phased_schedule.phases[0] is prev.phased_schedule.phases[0]
        assert out.response_time == out.phased_schedule.response_time()
        assert out.degrees == {
            op: home.degree for op, home in out.homes.items()
        }

    def test_instrumentation_counters(self):
        out = reschedule(
            synthetic_result(), ScheduleDelta(remove_sites=(2,)),
            overlap=OVERLAP,
        )
        counters = out.instrumentation.counters
        assert counters["reschedules"] == 1.0
        assert counters["sites_drained"] == 1.0
        assert counters["clones_moved"] >= 1.0
        assert out.instrumentation.timers["reschedule"] > 0.0

    def test_caller_metrics_merged(self):
        metrics = MetricsRecorder()
        metrics.count("unrelated", 5)
        out = reschedule(
            synthetic_result(), ScheduleDelta(remove_sites=(1,)),
            overlap=OVERLAP, metrics=metrics,
        )
        assert metrics.counters["reschedules"] == 1.0
        assert metrics.counters["unrelated"] == 5.0
        # The result's own instrumentation stays scoped to this repair.
        assert "unrelated" not in out.instrumentation.counters

    def test_span_tree_when_tracing(self):
        from repro.obs.tracer import Tracer, use_tracer

        with use_tracer(Tracer()):
            out = reschedule(
                synthetic_result(), ScheduleDelta(remove_sites=(1,)),
                overlap=OVERLAP,
            )
        roots = out.instrumentation.spans
        assert [s["name"] for s in roots] == ["reschedule"]
        assert roots[0]["attributes"]["strategy"] == "repair"
        assert "response_time" in roots[0]["attributes"]
        children = [c["name"] for c in roots[0]["children"]]
        assert "reschedule_repair" in children

    def test_mutate_flag(self):
        prev = synthetic_result()
        reschedule(prev, ScheduleDelta(remove_sites=(3,)), overlap=OVERLAP,
                   mutate=True)
        assert 3 in prev.phased_schedule.phases[0].disabled_sites

    def test_bound_only_rejected(self):
        bound = ScheduleResult.from_value("optbound", 12.5)
        with pytest.raises(SchedulingError):
            reschedule(bound, ScheduleDelta(remove_sites=(0,)), overlap=OVERLAP)

    def test_phase_out_of_range_rejected(self):
        with pytest.raises(SchedulingError):
            reschedule(
                synthetic_result(phases=2),
                ScheduleDelta(remove_sites=(0,), phase_index=2),
                overlap=OVERLAP,
            )

    def test_failed_repair_leaves_prev_intact(self):
        items = [
            CloneItem(operator="wide", clone_index=k,
                      work=WorkVector([1.0, 1.0, 1.0]))
            for k in range(4)
        ]
        phased = PhasedSchedule()
        phased.append(pack_vectors(items, p=4, overlap=OVERLAP), "only")
        prev = ScheduleResult(algorithm="treeschedule", phased_schedule=phased)
        before = schedule_to_dict(prev.phased_schedule.phases[0])
        with pytest.raises(InfeasibleScheduleError):
            reschedule(prev, ScheduleDelta(remove_sites=(0,)), overlap=OVERLAP)
        assert schedule_to_dict(prev.phased_schedule.phases[0]) == before


# ----------------------------------------------------------------------
# Store keying: repaired results never alias
# ----------------------------------------------------------------------
class TestStoreKeying:
    def test_payload_incorporates_delta(self):
        d1 = ScheduleDelta(remove_sites=(1,))
        d2 = ScheduleDelta(remove_sites=(2,))
        assert reschedule_store_payload("base", d1) != \
            reschedule_store_payload("base", d2)
        assert reschedule_store_payload("base", d1) != \
            reschedule_store_payload("other", d1)
        assert reschedule_store_payload("base", d1, name="x") != \
            reschedule_store_payload("base", d1, name="y")

    def test_distinct_store_keys(self, tmp_path):
        from repro.store import ArtifactStore, KIND_RESULT

        store = ArtifactStore(str(tmp_path))
        d1 = ScheduleDelta(remove_sites=(1,))
        d2 = ScheduleDelta(remove_sites=(1,), phase_index=1)
        k1 = store.key(KIND_RESULT, reschedule_store_payload("base", d1))
        k2 = store.key(KIND_RESULT, reschedule_store_payload("base", d2))
        assert k1 != k2

    def test_cached_repair_round_trips(self, tmp_path):
        from repro.store import ArtifactStore

        store = ArtifactStore(str(tmp_path))
        prev = synthetic_result()
        delta = ScheduleDelta(remove_sites=(2,))
        first = reschedule_cached(prev, delta, overlap=OVERLAP,
                                  base_key="base", store=store)
        second = reschedule_cached(prev, delta, overlap=OVERLAP,
                                   base_key="base", store=store)
        assert second.response_time == first.response_time
        assert schedule_to_dict(second.phased_schedule.phases[0]) == \
            schedule_to_dict(first.phased_schedule.phases[0])


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------
class TestDeltaSerialization:
    def test_round_trip(self):
        delta = ScheduleDelta(
            remove_sites=(1,), restore_sites=(4,), remove_operators=("op2",),
            add_items=(
                CloneItem(operator="x", clone_index=0,
                          work=WorkVector([1.0, 2.0, 3.0])),
            ),
            phase_index=2,
        )
        assert schedule_delta_from_dict(schedule_delta_to_dict(delta)) == delta

    def test_round_trip_revalidates(self):
        payload = schedule_delta_to_dict(ScheduleDelta(remove_sites=(1,)))
        payload["remove_sites"] = [1, 1]
        with pytest.raises(SchedulingError):
            schedule_delta_from_dict(payload)

    def test_disabled_sites_round_trip(self):
        base = packed(p=6)
        reschedule_schedule(base, ScheduleDelta(remove_sites=(1,)),
                            overlap=OVERLAP)
        payload = schedule_to_dict(base)
        assert payload["disabled_sites"] == [1]
        back = schedule_from_dict(payload)
        assert back.disabled_sites == {1}
        assert schedule_to_dict(back) == payload

    def test_untouched_schedules_omit_disabled_key(self):
        # Byte-compat: schedules that never saw a repair delta serialize
        # exactly as before the reschedule layer existed.
        assert "disabled_sites" not in schedule_to_dict(packed())


# ----------------------------------------------------------------------
# Fault-plan integration
# ----------------------------------------------------------------------
class TestFaultPlanDeltas:
    def test_failures_become_delta_pairs(self):
        from repro.sim.faults import FaultPlan, FaultSpec, SiteFaults

        plan = FaultPlan(spec=FaultSpec(), seed=0, sites={
            (0, 2): SiteFaults(fail_at=1.5, restart_delay=3.0),
            (0, 5): SiteFaults(slowdown=0.5),        # not a failure
            (1, 4): SiteFaults(fail_at=0.5),
            (0, 1): SiteFaults(fail_at=2.0),
        })
        deltas = plan.reschedule_deltas()
        assert set(deltas) == {0, 1}
        failure, recovery = deltas[0]
        assert failure.remove_sites == (1, 2)
        assert failure.phase_index == 0
        assert recovery.restore_sites == (1, 2)
        assert deltas[1][0].remove_sites == (4,)

    def test_no_failures_no_deltas(self):
        from repro.sim.faults import FaultPlan, FaultSpec, SiteFaults

        plan = FaultPlan(spec=FaultSpec(), seed=0, sites={
            (0, 2): SiteFaults(slowdown=0.5),
        })
        assert plan.reschedule_deltas() == {}

    def test_repair_applies_to_packed_phase(self):
        from repro.sim.faults import FaultPlan, FaultSpec, SiteFaults

        prev = synthetic_result(p=8, phases=1)
        plan = FaultPlan(spec=FaultSpec(), seed=0, sites={
            (0, 3): SiteFaults(fail_at=1.0, restart_delay=2.0),
        })
        (failure, recovery), = plan.reschedule_deltas().values()
        degraded = reschedule(prev, failure, overlap=OVERLAP)
        assert 3 in degraded.phased_schedule.phases[0].disabled_sites
        recovered = reschedule(degraded, recovery, overlap=OVERLAP)
        assert recovered.phased_schedule.phases[0].disabled_sites == set()


# ----------------------------------------------------------------------
# Metric vocabulary
# ----------------------------------------------------------------------
def test_reschedule_metric_names_are_known():
    from repro.engine.metrics import (
        COUNTER_CLONES_MOVED,
        COUNTER_RESCHEDULES,
        COUNTER_SITES_DRAINED,
        COUNTER_SITES_RESTORED,
        KNOWN_COUNTER_NAMES,
        KNOWN_TIMER_NAMES,
        TIMER_RESCHEDULE,
    )

    for name in (COUNTER_RESCHEDULES, COUNTER_CLONES_MOVED,
                 COUNTER_SITES_DRAINED, COUNTER_SITES_RESTORED):
        assert name in KNOWN_COUNTER_NAMES
    assert TIMER_RESCHEDULE in KNOWN_TIMER_NAMES
