"""End-to-end integration tests: paper claims on seeded workloads.

These tests exercise the full pipeline (generator -> cost model ->
schedulers -> bounds -> simulator) and assert the *qualitative shapes*
the paper reports in Section 6.  They use small cohorts so the whole file
runs in a few seconds; the benchmarks regenerate the full figures.
"""

from __future__ import annotations

import math

import pytest

from repro import (
    ConvexCombinationOverlap,
    PAPER_PARAMETERS,
    SharingPolicy,
    certify,
    malleable_schedule,
    opt_bound,
    simulate_phased,
    synchronous_schedule,
    theorem51_fixed_degree_bound,
    tree_schedule,
    validate_phased_schedule,
)
from repro.experiments import prepare_workload

COMM = PAPER_PARAMETERS.communication_model()


def avg(values):
    values = list(values)
    return math.fsum(values) / len(values)


@pytest.fixture(scope="module")
def cohort():
    queries = prepare_workload(12, 6, seed=77)
    # These tests call the scheduling kernels directly (bypassing the
    # engine registry, which would activate the annotation), so attach
    # the paper-parameter specs to the nodes — a write-once, idempotent
    # operation for the canonical parameters.
    for q in queries:
        q.annotation.attach()
    return queries


class TestHeadlineClaim:
    def test_treeschedule_beats_synchronous_on_average(self, cohort):
        """Figure 5/6 headline: lower average response at every P."""
        overlap = ConvexCombinationOverlap(0.3)
        for p in (10, 40, 80):
            ts = avg(
                tree_schedule(
                    q.operator_tree, q.task_tree, p=p, comm=COMM,
                    overlap=overlap, f=0.7,
                ).response_time
                for q in cohort
            )
            sy = avg(
                synchronous_schedule(
                    q.operator_tree, q.task_tree, p=p, comm=COMM, overlap=overlap
                ).response_time
                for q in cohort
            )
            assert ts < sy, f"TreeSchedule lost at P={p}: {ts} vs {sy}"

    def test_advantage_shrinks_with_overlap(self, cohort):
        """Figure 5(b): benefits are larger for smaller epsilon."""
        ratios = []
        for eps in (0.1, 0.7):
            overlap = ConvexCombinationOverlap(eps)
            ts = avg(
                tree_schedule(
                    q.operator_tree, q.task_tree, p=20, comm=COMM,
                    overlap=overlap, f=0.7,
                ).response_time
                for q in cohort
            )
            sy = avg(
                synchronous_schedule(
                    q.operator_tree, q.task_tree, p=20, comm=COMM, overlap=overlap
                ).response_time
                for q in cohort
            )
            ratios.append(ts / sy)
        assert ratios[0] < ratios[1]

    def test_response_time_scales_down_with_sites(self, cohort):
        overlap = ConvexCombinationOverlap(0.5)
        times = [
            avg(
                tree_schedule(
                    q.operator_tree, q.task_tree, p=p, comm=COMM,
                    overlap=overlap, f=0.7,
                ).response_time
                for q in cohort
            )
            for p in (10, 40, 120)
        ]
        assert times[0] > times[1] > times[2]


class TestOptimalityGap:
    def test_close_to_optbound_at_small_p(self, cohort):
        """Figure 6(b): average performance is far inside the worst-case
        Theorem 5.1 factor; at small P it is within ~30% of OPTBOUND."""
        overlap = ConvexCombinationOverlap(0.5)
        ratios = []
        for q in cohort:
            ts = tree_schedule(
                q.operator_tree, q.task_tree, p=10, comm=COMM,
                overlap=overlap, f=0.7,
            ).response_time
            lb = opt_bound(
                q.operator_tree, q.task_tree, p=10, f=0.7,
                comm=COMM, overlap=overlap,
            )
            ratios.append(ts / lb)
        assert avg(ratios) < 1.3
        assert max(ratios) < theorem51_fixed_degree_bound(3)

    def test_gap_far_from_worst_case_everywhere(self, cohort):
        overlap = ConvexCombinationOverlap(0.5)
        for p in (10, 40, 140):
            for q in cohort:
                ts = tree_schedule(
                    q.operator_tree, q.task_tree, p=p, comm=COMM,
                    overlap=overlap, f=0.7,
                ).response_time
                lb = opt_bound(
                    q.operator_tree, q.task_tree, p=p, f=0.7,
                    comm=COMM, overlap=overlap,
                )
                assert ts / lb < theorem51_fixed_degree_bound(3)


class TestGranularityShape:
    def test_figure5a_monotone_families(self, cohort):
        """Larger f never hurts: the CG_f space only grows with f."""
        overlap = ConvexCombinationOverlap(0.3)
        q = cohort[0]
        times = [
            tree_schedule(
                q.operator_tree, q.task_tree, p=40, comm=COMM,
                overlap=overlap, f=f,
            ).response_time
            for f in (0.05, 0.2, 0.7)
        ]
        assert times[0] >= times[1] >= times[2] - 1e-9


class TestPhaseCertificates:
    def test_every_phase_certified(self, cohort):
        """Theorem 5.1(a) holds phase by phase inside TREESCHEDULE."""
        overlap = ConvexCombinationOverlap(0.5)
        q = cohort[0]
        result = tree_schedule(
            q.operator_tree, q.task_tree, p=16, comm=COMM, overlap=overlap, f=0.7
        )
        specs = {op.name: op.spec for op in q.operator_tree.operators}
        for schedule in result.phased_schedule.phases:
            phase_specs = [specs[name] for name in schedule.operators]
            cert = certify(
                schedule.makespan(),
                phase_specs,
                result.degrees,
                schedule.p,
                COMM,
                overlap,
            )
            assert cert.satisfied, str(cert)


class TestSimulatorAgreement:
    def test_analytic_model_is_executable(self, cohort):
        overlap = ConvexCombinationOverlap(0.5)
        for q in cohort[:3]:
            result = tree_schedule(
                q.operator_tree, q.task_tree, p=16, comm=COMM,
                overlap=overlap, f=0.7,
            )
            sim = validate_phased_schedule(result.phased_schedule)
            assert sim.slowdown == pytest.approx(1.0)

    def test_fair_share_penalty_is_modest(self, cohort):
        """A2/A3 idealization costs little: the realistic fair-share
        simulation stays within ~35% of the analytic response time."""
        overlap = ConvexCombinationOverlap(0.5)
        penalties = []
        for q in cohort:
            result = tree_schedule(
                q.operator_tree, q.task_tree, p=16, comm=COMM,
                overlap=overlap, f=0.7,
            )
            sim = simulate_phased(result.phased_schedule, SharingPolicy.FAIR_SHARE)
            penalties.append(sim.slowdown)
        assert avg(penalties) < 1.35


class TestMalleableIntegration:
    def test_malleable_on_real_phase(self, cohort):
        """Section 7 on a real workload: schedule one phase's floating
        operators without the CG_f restriction."""
        overlap = ConvexCombinationOverlap(0.5)
        q = cohort[0]
        scans = [op.spec for op in q.operator_tree.iter_scans()]
        result = malleable_schedule(scans, p=24, comm=COMM, overlap=overlap)
        assert result.makespan <= result.guarantee * result.lower_bound * (1 + 1e-9)
        # And it should not lose to the CG_f scheduler on the same set.
        from repro import operator_schedule

        cg = operator_schedule(scans, p=24, comm=COMM, overlap=overlap, f=0.7)
        assert result.makespan <= cg.makespan * 1.25
