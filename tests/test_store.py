"""Tests for the content-addressed artifact store (no numpy required)."""

from __future__ import annotations

import dataclasses
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import ConfigurationError, PAPER_PARAMETERS
from repro.cost.params import SystemParameters
from repro.store import (
    ENV_CACHE_DIR,
    KIND_POINT,
    NO_STORE,
    STORE_SCHEMA,
    ArtifactStore,
    canonical_json,
    content_key,
    default_store,
    point_key_payload,
    resolve_store,
)

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis ships with the image
    HAVE_HYPOTHESIS = False

SRC = str(Path(__file__).resolve().parent.parent / "src")


class TestCanonicalJson:
    def test_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'

    def test_dataclasses_and_tuples(self):
        text = canonical_json({"params": PAPER_PARAMETERS, "xs": (1, 2)})
        payload = json.loads(text)
        assert payload["xs"] == [1, 2]
        assert payload["params"]["cpu_mips"] == PAPER_PARAMETERS.cpu_mips

    def test_rejects_nan(self):
        with pytest.raises(ConfigurationError):
            canonical_json({"x": float("nan")})

    def test_rejects_non_string_keys(self):
        with pytest.raises(ConfigurationError):
            canonical_json({1: "x"})

    def test_rejects_arbitrary_objects(self):
        with pytest.raises(ConfigurationError):
            canonical_json({"x": object()})

    def test_float_repr_roundtrips(self):
        value = 0.1 + 0.2  # not exactly 0.3
        assert json.loads(canonical_json({"v": value}))["v"] == value


class TestContentKey:
    def test_deterministic(self):
        payload = {"p": 4, "params": PAPER_PARAMETERS}
        assert content_key("point", payload) == content_key("point", payload)

    def test_kind_separates_namespaces(self):
        payload = {"p": 4}
        assert content_key("point", payload) != content_key("result", payload)

    def test_any_coordinate_changes_key(self):
        base = {"p": 4, "f": 0.7, "epsilon": 0.5, "params": PAPER_PARAMETERS}
        key = content_key("point", base)
        for field, bumped in (
            ("p", 5),
            ("f", 0.71),
            ("epsilon", 0.49),
            ("params", PAPER_PARAMETERS.scaled(cpu_mips=2.0)),
        ):
            assert content_key("point", {**base, field: bumped}) != key

    def test_stable_across_interpreter_runs(self):
        """The cache outlives the process: keys must not depend on hash
        randomization, dict order, or anything per-interpreter."""
        payload = {"p": 4, "f": 0.7, "params": PAPER_PARAMETERS}
        expected = content_key("point", payload)
        script = (
            "from repro.store import content_key\n"
            "from repro.cost.params import PAPER_PARAMETERS\n"
            "print(content_key('point', "
            "{'p': 4, 'f': 0.7, 'params': PAPER_PARAMETERS}))\n"
        )
        keys = set()
        for seed in ("0", "12345"):
            env = dict(os.environ, PYTHONPATH=SRC, PYTHONHASHSEED=seed)
            out = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, env=env, check=True,
            )
            keys.add(out.stdout.strip())
        assert keys == {expected}

    if HAVE_HYPOTHESIS:

        @settings(max_examples=50, deadline=None)
        @given(
            field=st.sampled_from(
                [f.name for f in dataclasses.fields(SystemParameters)]
            ),
            multiplier=st.floats(
                min_value=0.25, max_value=4.0, allow_nan=False
            ),
        )
        def test_key_tracks_parameter_equality(self, field, multiplier):
            """content_key(params) == content_key(base) iff params == base,
            for any single-field scaling of SystemParameters."""
            base = PAPER_PARAMETERS
            value = getattr(base, field)
            scaled = base.scaled(
                **{field: type(value)(value * multiplier)}
            )
            same = content_key("point", {"params": base}) == content_key(
                "point", {"params": scaled}
            )
            assert same == (scaled == base)


class TestArtifactStore:
    def test_roundtrip_and_stats(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = store.key(KIND_POINT, {"p": 4})
        assert store.get(KIND_POINT, key) is None
        store.put(KIND_POINT, key, {"value": 12.5})
        assert store.get(KIND_POINT, key) == {"value": 12.5}
        assert store.stats.misses == 1
        assert store.stats.hits == 1
        assert store.stats.writes == 1
        assert 0.0 < store.stats.hit_rate < 1.0

    def test_path_layout(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = store.key(KIND_POINT, {"p": 4})
        path = store.put(KIND_POINT, key, {"value": 1.0})
        assert path == tmp_path / KIND_POINT / key[:2] / f"{key}.json"
        assert path.is_file()

    def test_no_temp_files_left_behind(self, tmp_path):
        store = ArtifactStore(tmp_path)
        for i in range(5):
            key = store.key(KIND_POINT, {"i": i})
            store.put(KIND_POINT, key, {"value": float(i)})
        leftovers = [p for p in tmp_path.rglob("*") if p.suffix == ".tmp"]
        assert leftovers == []

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = store.key(KIND_POINT, {"p": 4})
        path = store.put(KIND_POINT, key, {"value": 1.0})
        path.write_text("{ truncated", encoding="utf-8")
        assert store.get(KIND_POINT, key) is None
        assert store.stats.corrupt == 1

    def test_foreign_schema_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = store.key(KIND_POINT, {"p": 4})
        path = store.put(KIND_POINT, key, {"value": 1.0})
        envelope = json.loads(path.read_text(encoding="utf-8"))
        envelope["schema"] = "repro-store/999"
        path.write_text(json.dumps(envelope), encoding="utf-8")
        assert store.get(KIND_POINT, key) is None

    def test_mismatched_key_field_is_a_miss(self, tmp_path):
        """An entry renamed onto the wrong path must not be trusted."""
        store = ArtifactStore(tmp_path)
        a = store.key(KIND_POINT, {"p": 4})
        b = store.key(KIND_POINT, {"p": 5})
        path_a = store.put(KIND_POINT, a, {"value": 1.0})
        path_b = store.path_for(KIND_POINT, b)
        path_b.parent.mkdir(parents=True, exist_ok=True)
        path_b.write_bytes(path_a.read_bytes())
        assert store.get(KIND_POINT, b) is None

    def test_get_or_compute_recomputes_corruption(self, tmp_path):
        store = ArtifactStore(tmp_path)
        calls = []

        def compute():
            calls.append(1)
            return {"value": 7.0}

        payload = {"p": 7}
        assert store.get_or_compute(KIND_POINT, payload, compute) == {"value": 7.0}
        assert store.get_or_compute(KIND_POINT, payload, compute) == {"value": 7.0}
        assert len(calls) == 1
        store.path_for(KIND_POINT, store.key(KIND_POINT, payload)).write_text(
            "garbage", encoding="utf-8"
        )
        assert store.get_or_compute(KIND_POINT, payload, compute) == {"value": 7.0}
        assert len(calls) == 2

    def test_put_is_idempotent_overwrite(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = store.key(KIND_POINT, {"p": 4})
        store.put(KIND_POINT, key, {"value": 1.0})
        store.put(KIND_POINT, key, {"value": 1.0})
        assert store.get(KIND_POINT, key) == {"value": 1.0}

    def test_envelope_is_self_describing(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = store.key(KIND_POINT, {"p": 4})
        path = store.put(KIND_POINT, key, {"value": 1.0})
        envelope = json.loads(path.read_text(encoding="utf-8"))
        assert envelope["schema"] == STORE_SCHEMA
        assert envelope["kind"] == KIND_POINT
        assert envelope["key"] == key


class TestResolution:
    def test_default_store_from_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_CACHE_DIR, str(tmp_path))
        store = default_store()
        assert store is not None
        assert store.root == tmp_path

    def test_default_store_absent(self, monkeypatch):
        monkeypatch.delenv(ENV_CACHE_DIR, raising=False)
        assert default_store() is None

    def test_resolve_explicit_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_CACHE_DIR, str(tmp_path / "env"))
        explicit = ArtifactStore(tmp_path / "explicit")
        assert resolve_store(explicit) is explicit

    def test_no_store_disables(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_CACHE_DIR, str(tmp_path))
        assert resolve_store(NO_STORE) is None


@dataclasses.dataclass(frozen=True)
class _FakePoint:
    algorithm: str
    p: int
    params: SystemParameters = PAPER_PARAMETERS


def _fake_evaluate(point):  # pragma: no cover - name only
    raise NotImplementedError


class TestPointKeyPayload:
    def test_dataclass_point(self):
        payload = point_key_payload(_FakePoint("treeschedule", 4), _fake_evaluate)
        assert payload is not None
        assert payload["coords"]["algorithm"] == "treeschedule"
        assert payload["evaluator"].endswith("_fake_evaluate")

    def test_non_dataclass_opts_out(self):
        assert point_key_payload({"p": 4}, _fake_evaluate) is None

    def test_evaluator_separates_keys(self):
        point = _FakePoint("treeschedule", 4)

        def other(p):  # pragma: no cover - name only
            raise NotImplementedError

        a = content_key(KIND_POINT, point_key_payload(point, _fake_evaluate))
        b = content_key(KIND_POINT, point_key_payload(point, other))
        assert a != b

    def test_coordinate_changes_key(self):
        a = content_key(
            KIND_POINT, point_key_payload(_FakePoint("treeschedule", 4), _fake_evaluate)
        )
        b = content_key(
            KIND_POINT, point_key_payload(_FakePoint("treeschedule", 5), _fake_evaluate)
        )
        c = content_key(
            KIND_POINT,
            point_key_payload(
                _FakePoint("treeschedule", 4, PAPER_PARAMETERS.scaled(cpu_mips=2.0)),
                _fake_evaluate,
            ),
        )
        assert len({a, b, c}) == 3


class TestCapacitySchemaBump:
    """PR-9 regression: the capacity-aware key schema orphans old entries.

    ``STORE_SCHEMA`` moved to ``repro-store/2`` when cluster specs
    started flowing into content keys; an entry written under the old
    schema must read as a (counted) corrupt miss, never as a hit, and
    heterogeneous clusters must never alias homogeneous keys.
    """

    def test_schema_is_bumped(self):
        assert STORE_SCHEMA == "repro-store/2"

    def test_pre_capacity_entry_is_a_counted_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = store.key(KIND_POINT, {"p": 4})
        path = store.put(KIND_POINT, key, {"value": 1.0})
        envelope = json.loads(path.read_text(encoding="utf-8"))
        envelope["schema"] = "repro-store/1"  # what PR 1-8 stores wrote
        path.write_text(json.dumps(envelope), encoding="utf-8")
        assert store.get(KIND_POINT, key) is None
        assert store.stats.corrupt == 1
        assert store.stats.misses == 1
        # get_or_compute recovers by recomputing and rewriting in place.
        assert store.get_or_compute(
            KIND_POINT, {"p": 4}, lambda: {"value": 2.0}
        ) == {"value": 2.0}
        assert store.get(KIND_POINT, key) == {"value": 2.0}

    def test_cluster_coordinate_changes_point_key(self):
        from repro import parse_cluster_spec
        from repro.experiments.parallel import SweepPoint

        def coords(cluster):
            return point_key_payload(
                SweepPoint(
                    algorithm="treeschedule",
                    n_joins=10,
                    p=8,
                    f=0.7,
                    epsilon=0.5,
                    seed=1,
                    n_queries=2,
                    params=PAPER_PARAMETERS,
                    cluster=cluster,
                ),
                _fake_evaluate,
            )

        homogeneous = content_key(KIND_POINT, coords(None))
        heterogeneous = content_key(
            KIND_POINT, coords(parse_cluster_spec("fast:4:2.0,slow:4:1.0"))
        )
        assert homogeneous != heterogeneous
        # Same heterogeneous spec ⇒ same key (specs are value types).
        again = content_key(
            KIND_POINT, coords(parse_cluster_spec("fast:4:2.0,slow:4:1.0"))
        )
        assert heterogeneous == again
