"""Tests for the memory-aware TREESCHEDULE variant."""

from __future__ import annotations

import pytest

from repro import (
    MemoryModel,
    memory_aware_tree_schedule,
    tree_schedule,
)


def run_mem(query, comm, overlap, p, capacity_bytes, f=0.7):
    from repro import PAPER_PARAMETERS

    return memory_aware_tree_schedule(
        query.operator_tree,
        query.task_tree,
        p=p,
        comm=comm,
        overlap=overlap,
        memory=MemoryModel(capacity_bytes=capacity_bytes),
        params=PAPER_PARAMETERS,
        f=f,
    )


class TestAmpleMemory:
    def test_matches_unconstrained_tree_schedule(self, annotated_query, comm, overlap):
        base = tree_schedule(
            annotated_query.operator_tree, annotated_query.task_tree,
            p=16, comm=comm, overlap=overlap, f=0.7,
        )
        mem = run_mem(annotated_query, comm, overlap, p=16, capacity_bytes=1e12)
        assert mem.response_time == pytest.approx(base.response_time)
        assert mem.total_spilled_joins == 0
        assert {k: v.site_indices for k, v in mem.homes.items()} == {
            k: v.site_indices for k, v in base.homes.items()
        }

    def test_no_spill_fractions(self, annotated_query, comm, overlap):
        mem = run_mem(annotated_query, comm, overlap, p=16, capacity_bytes=1e12)
        assert all(q == 0.0 for q in mem.spill_fractions.values())
        assert set(mem.spill_fractions) == {
            op.join_id for op in annotated_query.operator_tree.iter_builds()
        }


class TestConstrainedMemory:
    def test_monotone_degradation(self, annotated_query, comm, overlap):
        times = [
            run_mem(annotated_query, comm, overlap, p=16, capacity_bytes=cap).response_time
            for cap in (1e12, 1e6, 3e5, 1e5)
        ]
        assert all(t2 >= t1 - 1e-9 for t1, t2 in zip(times, times[1:]))
        assert times[-1] > times[0]

    def test_spills_appear_under_pressure(self, annotated_query, comm, overlap):
        mem = run_mem(annotated_query, comm, overlap, p=16, capacity_bytes=2e5)
        assert mem.total_spilled_joins > 0
        assert all(0.0 <= q <= 1.0 for q in mem.spill_fractions.values())

    def test_ledger_validates(self, annotated_query, comm, overlap):
        for cap in (1e12, 1e6, 1e5):
            mem = run_mem(annotated_query, comm, overlap, p=16, capacity_bytes=cap)
            mem.ledger.validate(mem.phased_schedule.num_phases)

    def test_never_exceeds_capacity_anywhere(self, annotated_query, comm, overlap):
        mem = run_mem(annotated_query, comm, overlap, p=8, capacity_bytes=5e5)
        for phase in range(mem.phased_schedule.num_phases):
            assert mem.ledger.peak_live_bytes(phase) <= 5e5 * (1 + 1e-9)

    def test_schedules_remain_valid(self, annotated_query, comm, overlap):
        mem = run_mem(annotated_query, comm, overlap, p=16, capacity_bytes=1e5)
        mem.phased_schedule.validate()
        expected = {op.name for op in annotated_query.operator_tree.operators}
        assert set(mem.homes) == expected

    def test_probes_still_rooted_at_builds(self, annotated_query, comm, overlap):
        mem = run_mem(annotated_query, comm, overlap, p=16, capacity_bytes=1e5)
        for op in annotated_query.operator_tree.iter_probes():
            assert (
                mem.homes[op.name].site_indices
                == mem.homes[f"build({op.join_id})"].site_indices
            )

    def test_memory_pressure_widens_degrees_before_spilling(self, comm, overlap):
        """The scheduler's first response to pressure is a thinner spread
        (higher build degree), which is cheaper than spill I/O.

        Uses a single small join whose coarse-grain degree is low, so a
        modest capacity squeeze can be absorbed by widening alone.
        """
        from repro import (
            PAPER_PARAMETERS,
            BaseRelationNode,
            JoinNode,
            Relation,
            annotate_plan,
            build_task_tree,
            expand_plan,
        )

        plan = JoinNode(
            "J0",
            BaseRelationNode(Relation("inner", 300)),
            BaseRelationNode(Relation("outer", 500)),
        )
        op_tree = expand_plan(plan)
        annotate_plan(op_tree, PAPER_PARAMETERS)
        task_tree = build_task_tree(op_tree)

        def schedule(cap):
            return memory_aware_tree_schedule(
                op_tree, task_tree, p=16, comm=comm, overlap=overlap,
                memory=MemoryModel(capacity_bytes=cap),
                params=PAPER_PARAMETERS, f=0.7,
            )

        ample = schedule(1e12)
        assert ample.degrees["build(J0)"] < 16  # precondition: room to widen
        table = MemoryModel(capacity_bytes=1.0).table_bytes(300, 128)
        # Capacity forcing roughly twice the ample degree, still feasible
        # without any spill.
        squeezed_cap = table / min(16, 2 * ample.degrees["build(J0)"]) * 1.01
        tight = schedule(squeezed_cap)
        assert tight.degrees["build(J0)"] > ample.degrees["build(J0)"]
        assert tight.total_spilled_joins == 0

    def test_strict_mode_matches_spilling_mode_when_feasible(
        self, annotated_query, comm, overlap
    ):
        from repro import PAPER_PARAMETERS

        kwargs = dict(
            p=16, comm=comm, overlap=overlap,
            memory=MemoryModel(capacity_bytes=1e12),
            params=PAPER_PARAMETERS, f=0.7,
        )
        lax = memory_aware_tree_schedule(
            annotated_query.operator_tree, annotated_query.task_tree, **kwargs
        )
        strict = memory_aware_tree_schedule(
            annotated_query.operator_tree, annotated_query.task_tree,
            allow_spill=False, **kwargs,
        )
        assert strict.response_time == pytest.approx(lax.response_time)

    def test_strict_mode_raises_when_spill_needed(self, annotated_query, comm, overlap):
        from repro import PAPER_PARAMETERS
        from repro.exceptions import InfeasibleScheduleError

        with pytest.raises(InfeasibleScheduleError):
            memory_aware_tree_schedule(
                annotated_query.operator_tree, annotated_query.task_tree,
                p=16, comm=comm, overlap=overlap,
                memory=MemoryModel(capacity_bytes=1e5),
                params=PAPER_PARAMETERS, f=0.7, allow_spill=False,
            )

    def test_serialization_restores_feasibility(self, comm, overlap):
        """The [HCY94] regime: a deep pipeline is infeasible without
        spilling, but the serialized plan (staggered residency) runs."""
        from repro import (
            PAPER_PARAMETERS,
            BaseRelationNode,
            JoinNode,
            Relation,
            annotate_plan,
            auto_materialize,
            build_task_tree,
            expand_plan,
        )
        from repro.exceptions import InfeasibleScheduleError

        def deep():
            node = BaseRelationNode(Relation("R0", 80_000))
            for i in range(8):
                node = JoinNode(
                    f"J{i}", BaseRelationNode(Relation(f"B{i}", 40_000)), node
                )
            return node

        kwargs = dict(
            p=16, comm=comm, overlap=overlap,
            memory=MemoryModel(capacity_bytes=2e6),
            params=PAPER_PARAMETERS, f=0.7, allow_spill=False,
        )
        pipe = expand_plan(deep())
        annotate_plan(pipe, PAPER_PARAMETERS)
        with pytest.raises(InfeasibleScheduleError):
            memory_aware_tree_schedule(pipe, build_task_tree(pipe), **kwargs)
        ser = expand_plan(auto_materialize(deep(), max_chain=2))
        annotate_plan(ser, PAPER_PARAMETERS)
        result = memory_aware_tree_schedule(ser, build_task_tree(ser), **kwargs)
        assert result.response_time > 0
        assert result.total_spilled_joins == 0

    def test_original_annotation_not_mutated(self, annotated_query, comm, overlap):
        before = {
            op.name: op.spec.work for op in annotated_query.operator_tree.operators
        }
        run_mem(annotated_query, comm, overlap, p=16, capacity_bytes=1e5)
        after = {
            op.name: op.spec.work for op in annotated_query.operator_tree.operators
        }
        assert before == after
