"""Tests for query task trees (Figure 1(b) -> 1(c))."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BaseRelationNode,
    JoinNode,
    OperatorKind,
    PlanStructureError,
    Relation,
    build_task_tree,
    expand_plan,
    generate_query,
)


def right_deep_plan(k):
    """k joins with every join's inner a base relation (one long pipeline)."""
    node = BaseRelationNode(Relation("R0", 1000))
    for i in range(k):
        inner = BaseRelationNode(Relation(f"B{i}", 100))
        node = JoinNode(f"J{i}", inner, node)
    return node


def left_deep_plan(k):
    """k joins where each join's inner is the previous join's output."""
    node = BaseRelationNode(Relation("R0", 1000))
    for i in range(k):
        outer = BaseRelationNode(Relation(f"B{i}", 100))
        node = JoinNode(f"J{i}", node, outer)
    return node


class TestStructure:
    def test_single_scan_single_task(self):
        tree = build_task_tree(expand_plan(BaseRelationNode(Relation("A", 10))))
        assert len(tree) == 1
        assert tree.height == 0
        assert tree.root.sink.kind is OperatorKind.SCAN

    def test_right_deep_two_level(self):
        """Right-deep: all builds are fed by base scans, so every build
        task is a leaf and all probes chain into one root task."""
        op_tree = expand_plan(right_deep_plan(4))
        tree = build_task_tree(op_tree)
        # 4 build tasks (scan+build) + 1 probe chain task.
        assert len(tree) == 5
        assert tree.height == 1
        root_ops = [op.kind for op in tree.root.operators]
        assert root_ops.count(OperatorKind.PROBE) == 4

    def test_left_deep_chain(self):
        """Left-deep: each probe feeds the next build, so tasks chain."""
        op_tree = expand_plan(left_deep_plan(4))
        tree = build_task_tree(op_tree)
        assert len(tree) == 5
        assert tree.height == 4

    def test_task_count_equals_builds_plus_root(self):
        for seed in range(4):
            query = generate_query(10, np.random.default_rng(seed))
            n_builds = len(list(query.operator_tree.iter_builds()))
            assert len(query.task_tree) == n_builds + 1

    def test_sink_is_build_or_root(self):
        query = generate_query(10, np.random.default_rng(3))
        root_op = query.operator_tree.root
        for task in query.task_tree.tasks:
            sink = task.sink
            assert sink is root_op or sink.kind is OperatorKind.BUILD

    def test_operators_partitioned(self):
        query = generate_query(10, np.random.default_rng(3))
        seen = []
        for task in query.task_tree.tasks:
            seen.extend(task.operators)
        assert len(seen) == len(query.operator_tree)
        assert len({id(op) for op in seen}) == len(seen)

    def test_pipeline_order_within_task(self):
        query = generate_query(10, np.random.default_rng(3))
        topo = {op: i for i, op in enumerate(query.operator_tree.operators)}
        for task in query.task_tree.tasks:
            indices = [topo[op] for op in task.operators]
            assert indices == sorted(indices)


class TestRelations:
    def test_parent_child_symmetry(self):
        query = generate_query(8, np.random.default_rng(1))
        tree = query.task_tree
        for task in tree.tasks:
            for child in tree.children(task):
                assert tree.parent(child) is task

    def test_root_has_no_parent(self):
        query = generate_query(8, np.random.default_rng(1))
        assert query.task_tree.parent(query.task_tree.root) is None

    def test_depths_consistent(self):
        query = generate_query(8, np.random.default_rng(1))
        tree = query.task_tree
        assert tree.depth(tree.root) == 0
        for task in tree.tasks:
            parent = tree.parent(task)
            if parent is not None:
                assert tree.depth(task) == tree.depth(parent) + 1
        assert tree.height == max(tree.depth(t) for t in tree.tasks)

    def test_independence(self):
        op_tree = expand_plan(right_deep_plan(3))
        tree = build_task_tree(op_tree)
        leaves = [t for t in tree.tasks if t is not tree.root]
        # Leaf tasks are pairwise independent; none independent of itself.
        assert tree.independent(leaves[0], leaves[1])
        assert not tree.independent(leaves[0], leaves[0])
        assert not tree.independent(leaves[0], tree.root)

    def test_task_of(self):
        query = generate_query(6, np.random.default_rng(2))
        for task in query.task_tree.tasks:
            for op in task.operators:
                assert query.task_tree.task_of(op) is task

    def test_task_of_unknown(self):
        query = generate_query(3, np.random.default_rng(2))
        from repro.plans.physical_ops import scan_op

        stray = scan_op(Relation("ZZ", 1))
        with pytest.raises(PlanStructureError):
            query.task_tree.task_of(stray)

    def test_task_container_protocol(self):
        query = generate_query(4, np.random.default_rng(2))
        task = query.task_tree.root
        assert task.sink in task
        assert len(task) == len(task.operators)
        assert task.operator_names[-1] == task.sink.name

    def test_figure_one_shape(self):
        """A two-join plan whose builds both read base relations executes
        as leaf tasks plus one root task — the Figure 1 structure."""
        a = BaseRelationNode(Relation("A", 100))
        b = BaseRelationNode(Relation("B", 200))
        c = BaseRelationNode(Relation("C", 300))
        d = BaseRelationNode(Relation("D", 400))
        plan = JoinNode("J2", JoinNode("J0", a, b), JoinNode("J1", c, d))
        tree = build_task_tree(expand_plan(plan))
        # build(J0) task {scan(A), build(J0)}; J0's probe chain feeds
        # build(J2); build(J1) task; root = probes of J1-side + probe(J2).
        assert tree.height >= 1
        depths = sorted(tree.depth(t) for t in tree.tasks)
        assert depths[0] == 0
