"""Tests for the [HCY94]-style per-operator work vectors."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro import (
    PAPER_PARAMETERS,
    ConfigurationError,
    Resource,
    build_work_vector,
    probe_work_vector,
    scan_work_vector,
)
from repro.cost.cost_model import work_vector_3d

P = PAPER_PARAMETERS


class TestAssembly:
    def test_layout(self):
        w = work_vector_3d(1.5, 2.5)
        assert w[Resource.CPU] == 1.5
        assert w[Resource.DISK] == 2.5
        assert w[Resource.NETWORK] == 0.0
        assert w.d == 3

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            work_vector_3d(-1.0, 0.0)


class TestScan:
    def test_exact_formula(self):
        # 4000 tuples = 100 pages: CPU = (100*5000 + 4000*300) us; disk = 2 s.
        w = scan_work_vector(4_000, P)
        assert math.isclose(w[Resource.CPU], (100 * 5_000 + 4_000 * 300) * 1e-6)
        assert math.isclose(w[Resource.DISK], 100 * 0.020)
        assert w[Resource.NETWORK] == 0.0

    def test_zero_tuples(self):
        w = scan_work_vector(0, P)
        assert w.is_zero()

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            scan_work_vector(-1, P)

    def test_disk_dominates_cpu_is_balanced(self):
        """Footnote 4: the system is 'relatively balanced'.

        For a scan the disk time per page (20 ms) and CPU time per page
        (5 ms read + 12 ms extract at 40 tuples) are the same order of
        magnitude — neither resource is >5x the other.
        """
        w = scan_work_vector(100_000, P)
        ratio = w[Resource.DISK] / w[Resource.CPU]
        assert 0.2 < ratio < 5.0

    @given(st.integers(min_value=0, max_value=10**6))
    def test_monotone_in_cardinality(self, t):
        w1 = scan_work_vector(t, P)
        w2 = scan_work_vector(t + 40, P)
        assert w2.dominates(w1)


class TestBuild:
    def test_exact_formula(self):
        # extract (300) + hash (100) per incoming tuple.
        w = build_work_vector(10_000, P)
        assert math.isclose(w[Resource.CPU], 10_000 * (300 + 100) * 1e-6)
        assert w[Resource.DISK] == 0.0  # A1: table is memory-resident

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            build_work_vector(-1, P)


class TestProbe:
    def test_exact_formula(self):
        # extract+probe per outer tuple, extract per result tuple.
        w = probe_work_vector(10_000, 8_000, P)
        expected = (10_000 * (300 + 200) + 8_000 * 300) * 1e-6
        assert math.isclose(w[Resource.CPU], expected)
        assert w[Resource.DISK] == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            probe_work_vector(-1, 0, P)
        with pytest.raises(ConfigurationError):
            probe_work_vector(0, -1, P)

    @given(
        st.integers(min_value=0, max_value=10**5),
        st.integers(min_value=0, max_value=10**5),
    )
    def test_monotone_in_both_inputs(self, outer, result):
        base = probe_work_vector(outer, result, P)
        assert probe_work_vector(outer + 1, result, P).dominates(base)
        assert probe_work_vector(outer, result + 1, P).dominates(base)


class TestParameterSensitivity:
    def test_faster_cpu_shrinks_cpu_only(self):
        fast = P.scaled(cpu_mips=10.0)
        slow_w = scan_work_vector(10_000, P)
        fast_w = scan_work_vector(10_000, fast)
        assert fast_w[Resource.CPU] < slow_w[Resource.CPU]
        assert fast_w[Resource.DISK] == slow_w[Resource.DISK]

    def test_bigger_pages_fewer_disk_seconds(self):
        dense = P.scaled(tuples_per_page=80)
        assert (
            scan_work_vector(10_000, dense)[Resource.DISK]
            < scan_work_vector(10_000, P)[Resource.DISK]
        )
