"""Tests for the exact branch-and-bound scheduler."""

from __future__ import annotations

import itertools
import math

import pytest

from repro import (
    CommunicationModel,
    ConvexCombinationOverlap,
    OperatorSpec,
    PERFECT_OVERLAP,
    SchedulingError,
    WorkVector,
    operator_schedule,
    optimal_malleable_makespan,
    optimal_schedule,
)
from repro.core.optimal import MAX_EXACT_CLONES

ZERO_COMM = CommunicationModel(alpha=0.0, beta=0.0)
COMM = CommunicationModel(alpha=0.015, beta=0.6e-6)
OVERLAP = ConvexCombinationOverlap(0.5)


def spec(name, cpu, disk):
    return OperatorSpec(name=name, work=WorkVector([cpu, disk]), data_volume=0.0)


def brute_force_makespan(specs, p, overlap):
    """Reference: enumerate all degree-1 assignments exhaustively."""
    best = math.inf
    n = len(specs)
    for combo in itertools.product(range(p), repeat=n):
        loads = [[0.0, 0.0] for _ in range(p)]
        t_max = 0.0
        for s, j in zip(specs, combo):
            loads[j][0] += s.work[0]
            loads[j][1] += s.work[1]
            t_max = max(t_max, overlap.t_seq(s.work))
        span = max(t_max, max(max(load) for load in loads))
        best = min(best, span)
    return best


class TestOptimalSchedule:
    def test_matches_brute_force(self):
        specs = [spec("a", 3.0, 1.0), spec("b", 1.0, 3.0), spec("c", 2.0, 2.0)]
        degrees = {s.name: 1 for s in specs}
        result = optimal_schedule(
            specs, p=2, comm=ZERO_COMM, overlap=OVERLAP, degrees=degrees
        )
        assert math.isclose(
            result.makespan, brute_force_makespan(specs, 2, OVERLAP), rel_tol=1e-9
        )

    def test_at_most_heuristic(self):
        specs = [spec(f"op{i}", float(i + 1), float(5 - i)) for i in range(4)]
        degrees = {s.name: 1 for s in specs}
        heur = operator_schedule(specs, p=3, comm=ZERO_COMM, overlap=OVERLAP, degrees=degrees)
        opt = optimal_schedule(specs, p=3, comm=ZERO_COMM, overlap=OVERLAP, degrees=degrees)
        assert opt.makespan <= heur.makespan + 1e-12

    def test_respects_constraint_a(self):
        specs = [spec("a", 2.0, 2.0)]
        result = optimal_schedule(
            specs, p=3, comm=ZERO_COMM, overlap=OVERLAP, degrees={"a": 3}
        )
        result.schedule.validate({"a": 3})
        assert result.schedule.home("a").degree == 3

    def test_complementary_pair_packs_together(self):
        specs = [spec("a", 4.0, 0.0), spec("b", 0.0, 4.0)]
        degrees = {"a": 1, "b": 1}
        result = optimal_schedule(
            specs, p=2, comm=ZERO_COMM, overlap=PERFECT_OVERLAP, degrees=degrees
        )
        # With perfect overlap they cost nothing extra when co-located.
        assert math.isclose(result.makespan, 4.0)

    def test_default_degrees_are_coarse_grain(self):
        specs = [spec("a", 2.0, 2.0)]
        result = optimal_schedule(specs, p=2, comm=COMM, overlap=OVERLAP, f=0.7)
        assert result.degrees["a"] >= 1

    def test_clone_limit_enforced(self):
        specs = [spec(f"op{i}", 1.0, 1.0) for i in range(MAX_EXACT_CLONES + 1)]
        degrees = {s.name: 1 for s in specs}
        with pytest.raises(SchedulingError):
            optimal_schedule(specs, p=2, comm=ZERO_COMM, overlap=OVERLAP, degrees=degrees)

    def test_empty_rejected(self):
        with pytest.raises(SchedulingError):
            optimal_schedule([], p=2, comm=ZERO_COMM, overlap=OVERLAP)

    def test_nodes_explored_reported(self):
        specs = [spec("a", 1.0, 0.0), spec("b", 0.0, 1.0)]
        result = optimal_schedule(
            specs, p=2, comm=ZERO_COMM, overlap=OVERLAP, degrees={"a": 1, "b": 1}
        )
        assert result.nodes_explored >= 1


class TestOptimalMalleable:
    def test_single_operator(self):
        specs = [spec("a", 8.0, 0.0)]
        best = optimal_malleable_makespan(specs, p=3, comm=ZERO_COMM, overlap=PERFECT_OVERLAP)
        # Zero communication: full parallelization is free, 8/3 per site.
        assert math.isclose(best, 8.0 / 3.0, rel_tol=1e-9)

    def test_startup_limits_parallelism(self):
        heavy_comm = CommunicationModel(alpha=5.0, beta=0.0)
        specs = [spec("a", 8.0, 0.0)]
        best = optimal_malleable_makespan(specs, p=3, comm=heavy_comm, overlap=PERFECT_OVERLAP)
        # alpha so large that degree 1 (startup 5, work 8 -> T=8+?) wins
        # over any distribution; verify against explicit degree-1 time.
        one = optimal_schedule(
            specs, p=3, comm=heavy_comm, overlap=PERFECT_OVERLAP, degrees={"a": 1}
        ).makespan
        assert best <= one + 1e-9

    def test_empty_rejected(self):
        with pytest.raises(SchedulingError):
            optimal_malleable_makespan([], p=2, comm=ZERO_COMM, overlap=OVERLAP)
