"""Tests for the deterministic fault-injection layer (repro.sim.faults)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    ConfigurationError,
    ConvexCombinationOverlap,
    PlacedClone,
    Schedule,
    SharingPolicy,
    WorkVector,
    simulate_phased,
)
from repro.core.schedule import PhasedSchedule
from repro.sim.faults import CloneFault, FaultPlan, FaultReport, FaultSpec, SiteFaults
from repro.sim.simulator import simulate_site

OVERLAP = ConvexCombinationOverlap(0.5)


def clone(op, comps, index=0):
    w = WorkVector(comps)
    return PlacedClone(operator=op, clone_index=index, work=w, t_seq=OVERLAP.t_seq(w))


def make_phased():
    """Two phases x two sites with complementary multi-clone loads."""
    phased = PhasedSchedule()
    first = Schedule(2, 2)
    first.place(0, clone("a", [6.0, 1.0]))
    first.place(0, clone("b", [1.0, 5.0]))
    first.place(1, clone("c", [3.0, 3.0]))
    phased.append(first, "t1")
    second = Schedule(2, 2)
    second.place(0, clone("d", [2.0, 2.0]))
    second.place(1, clone("e", [4.0, 0.5]))
    second.place(1, clone("f", [0.5, 4.0]))
    phased.append(second, "t2")
    return phased


class TestFaultSpec:
    def test_zero_by_default(self):
        assert FaultSpec.none().is_zero
        assert FaultSpec().is_zero

    def test_probability_validated(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(slowdown_prob=1.5)
        with pytest.raises(ConfigurationError):
            FaultSpec(failure_prob=-0.1)

    def test_range_validated(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(slowdown_range=(0.9, 0.5))
        with pytest.raises(ConfigurationError):
            FaultSpec(slowdown_range=(0.5, 1.5))
        with pytest.raises(ConfigurationError):
            FaultSpec(skew_range=(0.0, 2.0))

    def test_at_intensity_bounds(self):
        with pytest.raises(ConfigurationError):
            FaultSpec.at_intensity(1.2)
        with pytest.raises(ConfigurationError):
            FaultSpec.at_intensity(-0.01)

    def test_at_intensity_zero_is_zero(self):
        assert FaultSpec.at_intensity(0.0).is_zero
        assert not FaultSpec.at_intensity(1.0).is_zero


class TestFaultPlan:
    def test_zero_spec_expands_to_empty_plan(self):
        plan = FaultPlan.build(FaultSpec.none(), make_phased(), seed=7)
        assert plan.is_empty
        assert plan.counts() == {
            "slowdowns": 0,
            "skews": 0,
            "stragglers": 0,
            "failures": 0,
        }

    def test_hostile_spec_injects_something(self):
        plan = FaultPlan.build(FaultSpec.at_intensity(1.0), make_phased(), seed=3)
        assert not plan.is_empty
        assert sum(plan.counts().values()) > 0

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32),
        intensity=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_same_seed_same_plan(self, seed, intensity):
        phased = make_phased()
        spec = FaultSpec.at_intensity(intensity)
        assert FaultPlan.build(spec, phased, seed) == FaultPlan.build(
            spec, phased, seed
        )

    def test_global_rng_state_untouched(self):
        import random

        random.seed(12345)
        before = random.getstate()
        FaultPlan.build(FaultSpec.at_intensity(1.0), make_phased(), seed=1)
        assert random.getstate() == before

    def test_different_seeds_usually_differ(self):
        phased = make_phased()
        spec = FaultSpec.at_intensity(1.0)
        plans = {
            tuple(sorted(FaultPlan.build(spec, phased, s).sites)) for s in range(8)
        }
        assert len(plans) > 1


class TestZeroFaultIdentity:
    """The golden guarantee: a zero-fault plan is byte-identical to no plan."""

    @pytest.mark.parametrize("policy", list(SharingPolicy))
    def test_byte_identical_phases(self, policy):
        phased = make_phased()
        plan = FaultPlan.build(FaultSpec.none(), phased, seed=99)
        base = simulate_phased(phased, policy)
        faulted = simulate_phased(phased, policy, plan=plan)
        assert faulted.phases == base.phases
        assert faulted.response_time == base.response_time
        assert faulted.fault_report is not None
        assert faulted.fault_report.faults_injected == 0
        assert faulted.fault_report.total_time_lost == 0.0

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_identity_for_any_seed(self, seed):
        phased = make_phased()
        plan = FaultPlan.build(FaultSpec.none(), phased, seed)
        base = simulate_phased(phased, SharingPolicy.FAIR_SHARE)
        faulted = simulate_phased(phased, SharingPolicy.FAIR_SHARE, plan=plan)
        assert faulted.phases == base.phases


def site_of(phased, phase, index):
    return phased.phases[phase].sites[index]


class TestSlowdown:
    @pytest.mark.parametrize("policy", list(SharingPolicy))
    def test_halved_capacity_doubles_completion(self, policy):
        phased = make_phased()
        site = site_of(phased, 0, 0)
        base = simulate_site(site, policy)
        slowed = simulate_site(
            site, policy, faults=SiteFaults(slowdown=0.5, epsilon=0.5)
        )
        assert slowed.completion_time == pytest.approx(
            2.0 * base.completion_time, rel=1e-6
        )

    def test_nonpositive_slowdown_rejected(self):
        phased = make_phased()
        with pytest.raises(Exception):
            simulate_site(
                site_of(phased, 0, 0),
                SharingPolicy.FAIR_SHARE,
                faults=SiteFaults(slowdown=0.0, epsilon=0.5),
            )


class TestStraggler:
    def test_delay_pushes_completion(self):
        phased = make_phased()
        site = site_of(phased, 0, 1)  # single clone "c"
        base = simulate_site(site, SharingPolicy.FAIR_SHARE)
        delayed = simulate_site(
            site,
            SharingPolicy.FAIR_SHARE,
            faults=SiteFaults(
                clones={"c#0": CloneFault(straggler_delay=2.5)}, epsilon=0.5
            ),
        )
        assert delayed.completion_time == pytest.approx(
            base.completion_time + 2.5, rel=1e-6
        )
        (trace,) = [t for t in delayed.traces if t.operator == "c"]
        assert trace.start == pytest.approx(2.5)


class TestSkew:
    def test_upward_skew_slows_downward_speeds(self):
        phased = make_phased()
        site = site_of(phased, 0, 1)
        base = simulate_site(site, SharingPolicy.FAIR_SHARE)
        up = simulate_site(
            site,
            SharingPolicy.FAIR_SHARE,
            faults=SiteFaults(
                clones={"c#0": CloneFault(work_multipliers=(2.0, 2.0))},
                epsilon=0.5,
            ),
        )
        down = simulate_site(
            site,
            SharingPolicy.FAIR_SHARE,
            faults=SiteFaults(
                clones={"c#0": CloneFault(work_multipliers=(0.5, 0.5))},
                epsilon=0.5,
            ),
        )
        assert up.completion_time == pytest.approx(2.0 * base.completion_time)
        assert down.completion_time == pytest.approx(0.5 * base.completion_time)

    def test_dimension_mismatch_rejected(self):
        from repro.exceptions import SimulationError

        phased = make_phased()
        with pytest.raises(SimulationError):
            simulate_site(
                site_of(phased, 0, 1),
                SharingPolicy.FAIR_SHARE,
                faults=SiteFaults(
                    clones={"c#0": CloneFault(work_multipliers=(2.0,))},
                    epsilon=0.5,
                ),
            )


class TestFailure:
    def test_lost_progress_is_rerun(self):
        phased = make_phased()
        site = site_of(phased, 0, 0)
        base = simulate_site(site, SharingPolicy.FAIR_SHARE)
        fail_at = 0.5 * base.completion_time
        failed = simulate_site(
            site,
            SharingPolicy.FAIR_SHARE,
            faults=SiteFaults(fail_at=fail_at, restart_delay=1.0, epsilon=0.5),
        )
        # Everything before the failure re-runs after the 1.0s outage.
        assert failed.completion_time == pytest.approx(
            fail_at + 1.0 + base.completion_time, rel=1e-6
        )
        # The outage appears as an idle interval.
        assert any(iv.active == () for iv in failed.intervals)

    def test_failure_after_completion_is_harmless(self):
        phased = make_phased()
        site = site_of(phased, 0, 0)
        base = simulate_site(site, SharingPolicy.FAIR_SHARE)
        failed = simulate_site(
            site,
            SharingPolicy.FAIR_SHARE,
            faults=SiteFaults(
                fail_at=base.completion_time * 2.0,
                restart_delay=5.0,
                epsilon=0.5,
            ),
        )
        assert failed.completion_time == pytest.approx(base.completion_time)


class TestAttribution:
    def test_report_splits_by_kind(self):
        phased = make_phased()
        plan = FaultPlan(spec=FaultSpec.none(), seed=0)
        plan.sites[(0, 0)] = SiteFaults(
            slowdown=0.5,
            clones={"a#0": CloneFault(straggler_delay=1.0)},
            epsilon=0.5,
        )
        result = simulate_phased(phased, SharingPolicy.FAIR_SHARE, plan=plan)
        report = result.fault_report
        assert report is not None
        assert report.time_lost_slowdown > 0.0
        assert report.time_lost_straggler > 0.0
        assert report.time_lost_failure == 0.0
        assert report.time_lost_skew == 0.0

    def test_failure_attribution_counts_rerun(self):
        phased = make_phased()
        t_ref = phased.phases[0].sites[0].t_site()
        plan = FaultPlan(spec=FaultSpec.none(), seed=0)
        plan.sites[(0, 0)] = SiteFaults(
            fail_at=0.5 * t_ref, restart_delay=0.5, epsilon=0.5
        )
        result = simulate_phased(phased, SharingPolicy.FAIR_SHARE, plan=plan)
        report = result.fault_report
        assert report is not None
        assert report.time_lost_failure > 0.0
        assert report.work_rerun > 0.0
        assert result.response_time > result.analytic_response_time

    def test_total_time_lost_is_sum_of_kinds(self):
        report = FaultReport(
            time_lost_slowdown=1.0,
            time_lost_skew=-0.25,
            time_lost_straggler=0.5,
            time_lost_failure=2.0,
        )
        assert report.total_time_lost == pytest.approx(3.25)

    def test_merge_accumulates(self):
        a = FaultReport(slowdowns=1, work_rerun=2.0, time_lost_slowdown=1.5)
        b = FaultReport(slowdowns=2, failures=1, work_rerun=0.5)
        a.merge(b)
        assert a.slowdowns == 3
        assert a.failures == 1
        assert a.work_rerun == pytest.approx(2.5)
        assert a.time_lost_slowdown == pytest.approx(1.5)


class TestRestricted:
    def test_kind_filters(self):
        faults = SiteFaults(
            slowdown=0.7,
            fail_at=3.0,
            restart_delay=1.0,
            clones={
                "x#0": CloneFault(work_multipliers=(1.2, 0.8), straggler_delay=0.5)
            },
            epsilon=0.5,
        )
        assert faults.restricted().is_empty
        skew_only = faults.restricted(skew=True)
        assert skew_only.has_skew
        assert not skew_only.has_stragglers
        assert skew_only.slowdown is None and skew_only.fail_at is None
        full = faults.restricted(
            skew=True, slowdown=True, straggler=True, failure=True
        )
        assert full == faults


class TestFaultySimulationInvariants:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        intensity=st.floats(min_value=0.1, max_value=1.0),
    )
    def test_feasible_and_complete(self, seed, intensity):
        phased = make_phased()
        plan = FaultPlan.build(FaultSpec.at_intensity(intensity), phased, seed)
        result = simulate_phased(phased, SharingPolicy.FAIR_SHARE, plan=plan)
        assert math.isfinite(result.response_time)
        assert result.response_time >= 0.0
        for phase in result.phases:
            for site in phase.sites:
                for iv in site.intervals:
                    assert iv.end > iv.start
                    assert iv.is_feasible()
