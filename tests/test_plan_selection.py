"""Tests for scheduling-aware plan selection."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Catalog,
    ConfigurationError,
    PAPER_PARAMETERS,
    Relation,
    random_catalog,
    random_tree_query,
)
from repro.core.resource_model import ConvexCombinationOverlap
from repro.experiments import select_best_plan

COMM = PAPER_PARAMETERS.communication_model()
OVERLAP = ConvexCombinationOverlap(0.5)


@pytest.fixture
def query_inputs():
    rng = np.random.default_rng(17)
    catalog = random_catalog(11, rng)
    graph = random_tree_query(catalog, rng)
    return graph, catalog


def run(graph, catalog, k=6, seed=0, p=16):
    return select_best_plan(
        graph, catalog, k=k, seed=seed, p=p,
        params=PAPER_PARAMETERS, comm=COMM, overlap=OVERLAP, f=0.7,
    )


class TestSelection:
    def test_ranking_sorted(self, query_inputs):
        ranking, _ = run(*query_inputs)
        times = [c.response_time for c in ranking.candidates]
        assert times == sorted(times)
        assert ranking.sampled == 6
        assert 1 <= len(times) <= 6  # duplicates collapse before scoring

    def test_best_is_first(self, query_inputs):
        ranking, schedule = run(*query_inputs)
        assert ranking.best.response_time == ranking.candidates[0].response_time
        assert schedule.response_time == pytest.approx(ranking.best.response_time)

    def test_gain_nonnegative(self, query_inputs):
        ranking, _ = run(*query_inputs)
        assert 0.0 <= ranking.selection_gain < 1.0
        assert ranking.median_response_time >= ranking.best.response_time

    def test_deterministic(self, query_inputs):
        a, _ = run(*query_inputs, seed=3)
        b, _ = run(*query_inputs, seed=3)
        assert [c.response_time for c in a.candidates] == [
            c.response_time for c in b.candidates
        ]

    def test_more_candidates_never_worse(self, query_inputs):
        small, _ = run(*query_inputs, k=2, seed=9)
        large, _ = run(*query_inputs, k=8, seed=9)
        assert large.best.response_time <= small.best.response_time + 1e-9

    def test_k_one(self, query_inputs):
        ranking, _ = run(*query_inputs, k=1)
        assert len(ranking.candidates) == 1
        assert ranking.selection_gain == 0.0

    def test_invalid_k(self, query_inputs):
        graph, catalog = query_inputs
        with pytest.raises(ConfigurationError):
            run(graph, catalog, k=0)

    def test_single_relation_query(self):
        catalog = Catalog([Relation("A", 5_000)])
        from repro import QueryGraph

        graph = QueryGraph(["A"], [])
        ranking, _ = run(graph, catalog, k=3)
        # Only one possible plan; all candidates tie.
        times = {round(c.response_time, 12) for c in ranking.candidates}
        assert len(times) == 1


class TestMedian:
    @staticmethod
    def _ranking(times):
        from repro.experiments.plan_selection import PlanCandidate, PlanSelectionResult

        return PlanSelectionResult(
            candidates=tuple(
                PlanCandidate(plan=None, response_time=t, num_phases=1)
                for t in times
            ),
            sampled=len(times),
        )

    def test_odd_count_middle_element(self):
        assert self._ranking([1.0, 2.0, 9.0]).median_response_time == 2.0

    def test_even_count_mean_of_middle_pair(self):
        # Regression: the historical len//2 indexing returned 4.0 here.
        assert self._ranking([1.0, 2.0, 4.0, 8.0]).median_response_time == 3.0

    def test_two_candidates(self):
        assert self._ranking([1.0, 3.0]).median_response_time == 2.0


class TestDedupeAndDeterminism:
    def test_structural_duplicates_collapse(self):
        # Two relations admit exactly two plan shapes, so five samples
        # must collapse to at most two scheduled candidates.
        catalog = Catalog([Relation("A", 50_000), Relation("B", 1_000)])
        from repro import QueryGraph

        graph = QueryGraph(["A", "B"], [("A", "B")])
        ranking, schedule = run(graph, catalog, k=5)
        assert ranking.sampled == 5
        assert len(ranking.candidates) <= 2
        counters = schedule.instrumentation.counters
        assert counters["plans_enumerated"] == 5
        assert counters["plans_deduped"] == 5 - len(ranking.candidates)
        assert counters["plans_scored"] == len(ranking.candidates)
        assert all(c.key for c in ranking.candidates)

    def test_workers_bit_identical(self, query_inputs):
        graph, catalog = query_inputs
        serial, s_sched = run(graph, catalog)
        fanned, f_sched = select_best_plan(
            graph, catalog, k=6, seed=0, p=16,
            params=PAPER_PARAMETERS, comm=COMM, overlap=OVERLAP, f=0.7,
            workers=2,
        )
        assert [(c.key, c.response_time) for c in serial.candidates] == [
            (c.key, c.response_time) for c in fanned.candidates
        ]
        assert s_sched.response_time == f_sched.response_time

    def test_store_cold_then_warm(self, query_inputs, tmp_path):
        from repro.engine.metrics import MetricsRecorder
        from repro.store import ArtifactStore

        graph, catalog = query_inputs
        store = ArtifactStore(str(tmp_path / "cache"))
        cold_rec, warm_rec = MetricsRecorder(), MetricsRecorder()
        cold, c_sched = select_best_plan(
            graph, catalog, k=6, seed=0, p=16,
            params=PAPER_PARAMETERS, comm=COMM, overlap=OVERLAP, f=0.7,
            store=store, metrics=cold_rec,
        )
        warm, w_sched = select_best_plan(
            graph, catalog, k=6, seed=0, p=16,
            params=PAPER_PARAMETERS, comm=COMM, overlap=OVERLAP, f=0.7,
            store=store, metrics=warm_rec,
        )
        assert cold_rec.counters["plan_store_hits"] == 0
        assert cold_rec.counters["plan_store_misses"] == len(cold.candidates) + 1
        # Warm rerun: every score and the winner schedule come from the store.
        assert warm_rec.counters["plan_store_misses"] == 0
        assert warm_rec.counters["plan_store_hits"] == len(warm.candidates) + 1
        assert [(c.key, c.response_time) for c in cold.candidates] == [
            (c.key, c.response_time) for c in warm.candidates
        ]
        assert c_sched.response_time == w_sched.response_time
