"""Tests for scheduling-aware plan selection."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Catalog,
    ConfigurationError,
    PAPER_PARAMETERS,
    Relation,
    random_catalog,
    random_tree_query,
)
from repro.core.resource_model import ConvexCombinationOverlap
from repro.experiments import select_best_plan

COMM = PAPER_PARAMETERS.communication_model()
OVERLAP = ConvexCombinationOverlap(0.5)


@pytest.fixture
def query_inputs():
    rng = np.random.default_rng(17)
    catalog = random_catalog(11, rng)
    graph = random_tree_query(catalog, rng)
    return graph, catalog


def run(graph, catalog, k=6, seed=0, p=16):
    return select_best_plan(
        graph, catalog, k=k, seed=seed, p=p,
        params=PAPER_PARAMETERS, comm=COMM, overlap=OVERLAP, f=0.7,
    )


class TestSelection:
    def test_ranking_sorted(self, query_inputs):
        ranking, _ = run(*query_inputs)
        times = [c.response_time for c in ranking.candidates]
        assert times == sorted(times)
        assert len(times) == 6

    def test_best_is_first(self, query_inputs):
        ranking, schedule = run(*query_inputs)
        assert ranking.best.response_time == ranking.candidates[0].response_time
        assert schedule.response_time == pytest.approx(ranking.best.response_time)

    def test_gain_nonnegative(self, query_inputs):
        ranking, _ = run(*query_inputs)
        assert 0.0 <= ranking.selection_gain < 1.0
        assert ranking.median_response_time >= ranking.best.response_time

    def test_deterministic(self, query_inputs):
        a, _ = run(*query_inputs, seed=3)
        b, _ = run(*query_inputs, seed=3)
        assert [c.response_time for c in a.candidates] == [
            c.response_time for c in b.candidates
        ]

    def test_more_candidates_never_worse(self, query_inputs):
        small, _ = run(*query_inputs, k=2, seed=9)
        large, _ = run(*query_inputs, k=8, seed=9)
        assert large.best.response_time <= small.best.response_time + 1e-9

    def test_k_one(self, query_inputs):
        ranking, _ = run(*query_inputs, k=1)
        assert len(ranking.candidates) == 1
        assert ranking.selection_gain == 0.0

    def test_invalid_k(self, query_inputs):
        graph, catalog = query_inputs
        with pytest.raises(ConfigurationError):
            run(graph, catalog, k=0)

    def test_single_relation_query(self):
        catalog = Catalog([Relation("A", 5_000)])
        from repro import QueryGraph

        graph = QueryGraph(["A"], [])
        ranking, _ = run(graph, catalog, k=3)
        # Only one possible plan; all candidates tie.
        times = {round(c.response_time, 12) for c in ranking.candidates}
        assert len(times) == 1
