"""Tests for the parallel sweep-point runner."""

from __future__ import annotations

import os
import signal

import pytest

from repro import ConfigurationError
from repro.engine import MetricsRecorder
from repro.experiments import ParallelRunner, SweepPoint
from repro.experiments.parallel import evaluate_point

# A tiny grid: 2 algorithms x 2 site counts on a 2-query cohort.
GRID = [
    SweepPoint(
        algorithm=alg, n_joins=4, n_queries=2, seed=11, p=p, f=0.7, epsilon=0.5
    )
    for alg in ("treeschedule", "synchronous")
    for p in (4, 8)
]


class TestValidation:
    def test_workers_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ParallelRunner(0)
        with pytest.raises(ConfigurationError):
            ParallelRunner(-2)

    def test_unknown_algorithm_rejected_before_fork(self):
        bad = [SweepPoint(
            algorithm="magic", n_joins=4, n_queries=2, seed=1, p=4, f=0.7,
            epsilon=0.5,
        )]
        with pytest.raises(ConfigurationError):
            ParallelRunner(4).run(bad)

    def test_empty_grid(self):
        assert ParallelRunner(2).run([]) == []


class TestDeterminism:
    def test_serial_matches_point_evaluation(self):
        values = ParallelRunner(1).run(GRID)
        assert values == [evaluate_point(p) for p in GRID]

    def test_parallel_bit_identical_to_serial(self):
        serial = ParallelRunner(1).run(GRID)
        parallel = ParallelRunner(2).run(GRID)
        # Not approx: every sweep point is deterministic, so the worker
        # count must not change a single bit.
        assert parallel == serial

    def test_order_preserved(self):
        values = ParallelRunner(2).run(GRID)
        # treeschedule on more sites is never slower on this workload,
        # which only holds if values came back in input order.
        assert values[0] >= values[1]
        assert all(v > 0 for v in values)


class TestMetrics:
    def test_points_counted(self):
        metrics = MetricsRecorder()
        ParallelRunner(1, metrics=metrics).run(GRID[:2])
        assert metrics.counters["points_evaluated"] == 2.0
        assert metrics.timers["run"] >= 0.0
        assert metrics.timers["point_seconds"] >= 0.0

    def test_point_seconds_recorded_with_workers(self):
        # Regression: per-point timing used to be measured only on the
        # inline path, so workers > 1 silently dropped the timer.  It is
        # now measured inside the evaluation, wherever it runs.
        metrics = MetricsRecorder()
        ParallelRunner(2, metrics=metrics).run(GRID)
        assert "point_seconds" in metrics.timers
        assert metrics.timers["point_seconds"] > 0.0

    def test_metric_keys_identical_any_worker_count(self):
        serial = MetricsRecorder()
        ParallelRunner(1, metrics=serial).run(GRID)
        parallel = MetricsRecorder()
        ParallelRunner(2, metrics=parallel).run(GRID)
        assert set(serial.timers) == set(parallel.timers)
        assert serial.counters == parallel.counters

    def test_repr(self):
        assert "workers=3" in repr(ParallelRunner(3))


def _evaluate_or_die(point: dict) -> float:
    """Die with SIGKILL in any pool worker; succeed in the parent.

    Simulates an OOM-killed worker: SIGKILL cannot be caught, so the
    executor surfaces BrokenProcessPool rather than an exception.
    """
    if os.getpid() != point["parent_pid"]:
        os.kill(os.getpid(), signal.SIGKILL)
    return float(point["value"])


def _evaluate_raises(point: dict) -> float:
    raise ValueError(f"bad point {point['value']}")


class TestBrokenPool:
    def test_worker_death_recovers_inline(self):
        points = [{"parent_pid": os.getpid(), "value": v} for v in range(4)]
        metrics = MetricsRecorder()
        values = ParallelRunner(2, metrics=metrics).run(
            points, evaluate=_evaluate_or_die
        )
        # Every point the dead pool lost was re-evaluated inline, in order.
        assert values == [0.0, 1.0, 2.0, 3.0]
        assert metrics.counters["points_retried_inline"] > 0
        assert metrics.counters["points_evaluated"] == 4.0

    def test_ordinary_exceptions_still_propagate(self):
        points = [{"parent_pid": os.getpid(), "value": v} for v in range(3)]
        with pytest.raises(ValueError, match="bad point"):
            ParallelRunner(2).run(points, evaluate=_evaluate_raises)


class TestCustomEvaluate:
    def test_inline_custom_point_type(self):
        points = [{"value": 2.0}, {"value": 3.0}]
        values = ParallelRunner(1).run(points, evaluate=lambda p: p["value"] ** 2)
        assert values == [4.0, 9.0]
