"""Crash-path regression tests for the parallel runner's pool-death salvage.

Covers the salvage loop that runs when a worker dies and the pool
breaks: control-flow exceptions must escape it, dropped points must be
logged and retried, the inline-retry counter must reflect retries that
actually completed, and the traced retry path must neither lose nor
double-count spans.  Numpy-free: every test drives the runner with a
custom module-level evaluate function.
"""

from __future__ import annotations

import logging
import os
import signal
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

import pytest

from repro.engine import MetricsRecorder
from repro.experiments import ParallelRunner
from repro.experiments import parallel as parallel_mod
from repro.obs.tracer import Tracer, use_tracer
from repro.store import ArtifactStore


def _evaluate_or_die(point: dict) -> float:
    """Die with SIGKILL in any pool worker; succeed in the parent."""
    if os.getpid() != point["parent_pid"]:
        os.kill(os.getpid(), signal.SIGKILL)
    return float(point["value"])


def _evaluate_die_then_raise(point: dict) -> float:
    """Kill every worker; inline, raise on one specific point."""
    if os.getpid() != point["parent_pid"]:
        os.kill(os.getpid(), signal.SIGKILL)
    if point["value"] == 2:
        raise ValueError("inline retry boom")
    return float(point["value"])


@dataclass(frozen=True)
class CrashPoint:
    """A cacheable (frozen-dataclass) point for store-persistence tests."""

    parent_pid: int
    value: int


def _evaluate_crash_point(point: CrashPoint) -> float:
    if os.getpid() != point.parent_pid:
        os.kill(os.getpid(), signal.SIGKILL)
    return float(point.value)


def _points(n: int = 4) -> list[dict]:
    return [{"parent_pid": os.getpid(), "value": v} for v in range(n)]


# ----------------------------------------------------------------------
# Salvage-loop exception discipline (fake pool: no forking needed)
# ----------------------------------------------------------------------
class _SalvageFuture:
    """A finished future whose result is a value or a raised exception."""

    def __init__(self, exc: BaseException | None = None, value=None):
        self._exc = exc
        self._value = value

    def done(self) -> bool:
        return True

    def cancelled(self) -> bool:
        return False

    def result(self):
        if self._exc is not None:
            raise self._exc
        return self._value


def _install_broken_pool(monkeypatch, futures: list[_SalvageFuture]) -> None:
    """Make the runner's pool hand out ``futures`` and then break.

    ``as_completed`` raising ``BrokenProcessPool`` drops the runner
    straight into its salvage loop with the fabricated futures, which is
    exactly the state after a worker death — minus the forking, so the
    test can plant any exception inside ``future.result()``.
    """
    handout = list(futures)

    class _FakePool:
        def __init__(self, max_workers):
            pass

        def __enter__(self):
            return self

        def __exit__(self, *exc):
            return False

        def submit(self, fn, *args):
            return handout.pop(0)

    def _broken(futures_map):
        raise BrokenProcessPool("fake pool died")

    monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", _FakePool)
    monkeypatch.setattr(parallel_mod, "as_completed", _broken)


class TestSalvageExceptionDiscipline:
    def test_keyboard_interrupt_escapes_salvage(self, monkeypatch):
        # Regression: the salvage loop used to catch BaseException and
        # continue, silently absorbing a ^C delivered while collecting
        # finished futures.
        _install_broken_pool(
            monkeypatch,
            [_SalvageFuture(exc=KeyboardInterrupt()), _SalvageFuture(value=(1.0, 0.0))],
        )
        with pytest.raises(KeyboardInterrupt):
            ParallelRunner(2).run(_points(2), evaluate=_evaluate_or_die)

    def test_system_exit_escapes_salvage(self, monkeypatch):
        _install_broken_pool(
            monkeypatch,
            [_SalvageFuture(exc=SystemExit(3)), _SalvageFuture(value=(1.0, 0.0))],
        )
        with pytest.raises(SystemExit):
            ParallelRunner(2).run(_points(2), evaluate=_evaluate_or_die)

    def test_failed_salvage_logged_and_retried(self, monkeypatch, caplog):
        # An ordinary exception in a salvaged future means that point
        # died with the pool: it is dropped (at warning level) and the
        # inline pass re-evaluates it.
        _install_broken_pool(
            monkeypatch,
            [
                _SalvageFuture(exc=RuntimeError("worker died mid-point")),
                _SalvageFuture(value=(41.0, 0.0)),
            ],
        )
        metrics = MetricsRecorder()
        with caplog.at_level(logging.WARNING, logger="repro.experiments.parallel"):
            values = ParallelRunner(2, metrics=metrics).run(
                _points(2), evaluate=_evaluate_or_die
            )
        # Point 0 re-evaluated inline, point 1 salvaged from its future.
        assert values == [0.0, 41.0]
        assert metrics.counters["points_retried_inline"] == 1.0
        assert any(
            "no salvageable result" in rec.message for rec in caplog.records
        )


# ----------------------------------------------------------------------
# Inline-retry accounting (real pool, workers genuinely SIGKILLed)
# ----------------------------------------------------------------------
class TestRetryCounter:
    def test_counter_equals_retries_performed(self):
        # Every worker dies before finishing anything, so all 4 points
        # are retried inline and all 4 succeed.
        metrics = MetricsRecorder()
        values = ParallelRunner(2, metrics=metrics).run(
            _points(4), evaluate=_evaluate_or_die
        )
        assert values == [0.0, 1.0, 2.0, 3.0]
        assert metrics.counters["points_retried_inline"] == 4.0

    def test_counter_excludes_failed_retry(self):
        # Regression: the counter used to be bumped by len(remaining)
        # *before* the retries ran, overstating completed retries when
        # one of them raised.  Points 0 and 1 retry fine, point 2 raises
        # — the counter must say 2, not 4.
        metrics = MetricsRecorder()
        with pytest.raises(ValueError, match="inline retry boom"):
            ParallelRunner(2, metrics=metrics).run(
                _points(4), evaluate=_evaluate_die_then_raise
            )
        assert metrics.counters["points_retried_inline"] == 2.0


# ----------------------------------------------------------------------
# Traced pool death (satellites: double-count audit + salvage coverage)
# ----------------------------------------------------------------------
def _iter_spans(span):
    yield span
    for child in span.children:
        yield from _iter_spans(child)


class TestTracedPoolDeath:
    def test_spans_stitched_once_in_input_order(self):
        # Inline retries run _timed_traced in the *parent* process under
        # a fresh local tracer; the spans reach the ambient tracer only
        # via the shipped dicts that _stitch_spans adopts.  If the local
        # tracer ever leaked into the ambient contextvar (the PR 5
        # double-count), each point would appear twice here.
        tracer = Tracer(enabled=True)
        with use_tracer(tracer):
            values = ParallelRunner(2).run(_points(4), evaluate=_evaluate_or_die)
        assert values == [0.0, 1.0, 2.0, 3.0]
        assert len(tracer.roots) == 1
        sweep = tracer.roots[0]
        assert sweep.name == "sweep"
        point_spans = [
            s for root in tracer.roots for s in _iter_spans(root) if s.name == "point"
        ]
        assert [s.attributes["index"] for s in point_spans] == [0, 1, 2, 3]
        # All four live directly under the sweep span (slot layout).
        assert [c.attributes["index"] for c in sweep.children] == [0, 1, 2, 3]
        # Logical sequential timeline: each point starts where the
        # previous one ended.
        for before, after in zip(sweep.children, sweep.children[1:]):
            assert after.start == pytest.approx(before.end)

    def test_traced_salvage_matches_undisturbed_run(self, capsys):
        # A pool-death run must be externally indistinguishable from an
        # undisturbed serial run: same values, same (empty) stdout.
        tracer = Tracer(enabled=True)
        with use_tracer(tracer):
            killed = ParallelRunner(2).run(_points(4), evaluate=_evaluate_or_die)
        killed_out = capsys.readouterr().out
        undisturbed = ParallelRunner(1).run(_points(4), evaluate=_evaluate_or_die)
        undisturbed_out = capsys.readouterr().out
        assert killed == undisturbed
        assert killed_out == undisturbed_out == ""

    def test_salvaged_points_persisted_to_store(self, tmp_path):
        # Points completed via the inline-retry path must land in the
        # artifact store exactly like undisturbed ones: a rerun against
        # the same store is all hits, no retries.
        store = ArtifactStore(tmp_path / "cache")
        points = [CrashPoint(parent_pid=os.getpid(), value=v) for v in range(4)]
        first = MetricsRecorder()
        tracer = Tracer(enabled=True)
        with use_tracer(tracer):
            values = ParallelRunner(2, metrics=first, store=store).run(
                points, evaluate=_evaluate_crash_point
            )
        assert values == [0.0, 1.0, 2.0, 3.0]
        assert first.counters["points_retried_inline"] == 4.0

        second = MetricsRecorder()
        rerun = ParallelRunner(2, metrics=second, store=store).run(
            points, evaluate=_evaluate_crash_point
        )
        assert rerun == values
        assert second.counters["point_store_hits"] == 4.0
        assert "points_retried_inline" not in second.counters
