"""Tests for the OPTBOUND lower bound (Section 6.2)."""

from __future__ import annotations

import math

import pytest

from repro import (
    SchedulingError,
    congestion_bound,
    critical_path_time,
    opt_bound,
    synchronous_schedule,
    tree_schedule,
    vector_sum,
)


class TestCongestionBound:
    def test_formula(self, annotated_query):
        total = vector_sum(
            op.spec.work for op in annotated_query.operator_tree.operators
        )
        assert math.isclose(
            congestion_bound(annotated_query.operator_tree, 8), total.length() / 8
        )

    def test_scales_inversely_with_p(self, annotated_query):
        assert congestion_bound(annotated_query.operator_tree, 20) == pytest.approx(
            congestion_bound(annotated_query.operator_tree, 10) / 2
        )

    def test_bad_p(self, annotated_query):
        with pytest.raises(SchedulingError):
            congestion_bound(annotated_query.operator_tree, 0)


class TestCriticalPath:
    def test_positive(self, annotated_query, comm, overlap):
        t = critical_path_time(
            annotated_query.task_tree, annotated_query.operator_tree, p=16, f=0.7, comm=comm, overlap=overlap
        )
        assert t > 0

    def test_at_least_deepest_chain_floor(self, annotated_query, comm, overlap):
        """T(CP) covers at least (height+1) task floors, so it exceeds the
        single largest task floor."""
        t = critical_path_time(
            annotated_query.task_tree, annotated_query.operator_tree, p=16, f=0.7, comm=comm, overlap=overlap
        )
        # The root task alone is a chain prefix.
        root_only = critical_path_time(
            annotated_query.task_tree, annotated_query.operator_tree, p=16, f=0.7, comm=comm, overlap=overlap
        )
        assert t >= root_only * (1 - 1e-12)

    def test_nonincreasing_in_p(self, annotated_query, comm, overlap):
        ts = [
            critical_path_time(
                annotated_query.task_tree, annotated_query.operator_tree, p=p, f=0.7, comm=comm, overlap=overlap
            )
            for p in (2, 8, 32)
        ]
        assert ts[0] >= ts[1] >= ts[2]


class TestOptBound:
    def test_is_max_of_components(self, annotated_query, comm, overlap):
        p, f = 16, 0.7
        lb = opt_bound(
            annotated_query.operator_tree,
            annotated_query.task_tree,
            p=p,
            f=f,
            comm=comm,
            overlap=overlap,
        )
        assert lb == pytest.approx(
            max(
                congestion_bound(annotated_query.operator_tree, p),
                critical_path_time(
                    annotated_query.task_tree, annotated_query.operator_tree, p=p, f=f, comm=comm, overlap=overlap
                ),
            )
        )

    def test_lower_bounds_tree_schedule(self, annotated_query_factory, comm, overlap):
        for seed in range(6):
            query = annotated_query_factory(10, seed)
            for p in (4, 16, 64):
                lb = opt_bound(
                    query.operator_tree, query.task_tree, p=p, f=0.7,
                    comm=comm, overlap=overlap,
                )
                ts = tree_schedule(
                    query.operator_tree, query.task_tree, p=p,
                    comm=comm, overlap=overlap, f=0.7,
                ).response_time
                assert ts >= lb * (1 - 1e-9)

    def test_lower_bounds_synchronous(self, annotated_query_factory, comm, overlap):
        # SYNCHRONOUS ignores the granularity condition, so the universal
        # (granularity-free) form of the bound is the valid one for it.
        for seed in range(4):
            query = annotated_query_factory(10, seed)
            lb = opt_bound(
                query.operator_tree, query.task_tree, p=16, f=0.7,
                comm=comm, overlap=overlap, respect_granularity=False,
            )
            sy = synchronous_schedule(
                query.operator_tree, query.task_tree, p=16, comm=comm, overlap=overlap
            ).response_time
            assert sy >= lb * (1 - 1e-9)

    def test_universal_bound_no_larger_than_cg_bound(self, annotated_query, comm, overlap):
        free = opt_bound(
            annotated_query.operator_tree, annotated_query.task_tree,
            p=16, f=0.1, comm=comm, overlap=overlap, respect_granularity=False,
        )
        cg = opt_bound(
            annotated_query.operator_tree, annotated_query.task_tree,
            p=16, f=0.1, comm=comm, overlap=overlap, respect_granularity=True,
        )
        assert free <= cg * (1 + 1e-9)

    def test_congestion_dominates_small_p(self, annotated_query, comm, overlap):
        lb = opt_bound(
            annotated_query.operator_tree, annotated_query.task_tree,
            p=1, f=0.7, comm=comm, overlap=overlap,
        )
        assert lb == pytest.approx(
            congestion_bound(annotated_query.operator_tree, 1)
        )
