"""Tests for relations and catalogs."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro import Catalog, ConfigurationError, PlanStructureError, Relation, random_catalog


class TestRelation:
    def test_pages_round_up(self):
        assert Relation("R", 41).pages(40) == 2
        assert Relation("R", 40).pages(40) == 1
        assert Relation("R", 0).pages(40) == 0

    def test_size_bytes(self):
        assert Relation("R", 100).size_bytes(128) == 12_800

    def test_invalid_name(self):
        with pytest.raises(ConfigurationError):
            Relation("", 10)

    def test_negative_cardinality(self):
        with pytest.raises(ConfigurationError):
            Relation("R", -1)

    def test_bad_page_size(self):
        with pytest.raises(ConfigurationError):
            Relation("R", 10).pages(0)

    def test_bad_tuple_size(self):
        with pytest.raises(ConfigurationError):
            Relation("R", 10).size_bytes(0)

    @given(st.integers(min_value=0, max_value=10**6), st.integers(min_value=1, max_value=1000))
    def test_pages_cover_all_tuples(self, tuples, per_page):
        pages = Relation("R", tuples).pages(per_page)
        assert pages * per_page >= tuples
        assert (pages - 1) * per_page < tuples or pages == 0


class TestCatalog:
    def test_add_and_get(self):
        cat = Catalog([Relation("A", 10)])
        cat.add(Relation("B", 20))
        assert cat.get("A").tuples == 10
        assert "B" in cat
        assert len(cat) == 2
        assert cat.names == ["A", "B"]
        assert cat.total_tuples() == 30

    def test_duplicate_rejected(self):
        cat = Catalog([Relation("A", 10)])
        with pytest.raises(PlanStructureError):
            cat.add(Relation("A", 5))

    def test_unknown_lookup(self):
        with pytest.raises(PlanStructureError):
            Catalog().get("nope")

    def test_iteration_order(self):
        cat = Catalog([Relation("B", 1), Relation("A", 2)])
        assert [r.name for r in cat] == ["B", "A"]


class TestRandomCatalog:
    def test_respects_bounds(self):
        rng = np.random.default_rng(0)
        cat = random_catalog(50, rng, min_tuples=1_000, max_tuples=100_000)
        assert len(cat) == 50
        for rel in cat:
            assert 1_000 <= rel.tuples <= 100_000

    def test_deterministic_under_seed(self):
        a = random_catalog(10, np.random.default_rng(7))
        b = random_catalog(10, np.random.default_rng(7))
        assert [r.tuples for r in a] == [r.tuples for r in b]

    def test_log_uniform_spreads_orders_of_magnitude(self):
        rng = np.random.default_rng(123)
        cat = random_catalog(400, rng, min_tuples=1_000, max_tuples=100_000)
        small = sum(1 for r in cat if r.tuples < 10_000)
        # Log-uniform: roughly half the draws fall below 10^4.
        assert 100 < small < 300

    def test_name_prefix(self):
        cat = random_catalog(3, np.random.default_rng(0), name_prefix="T")
        assert cat.names == ["T0", "T1", "T2"]

    def test_invalid_args(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            random_catalog(0, rng)
        with pytest.raises(ConfigurationError):
            random_catalog(1, rng, min_tuples=100, max_tuples=10)
        with pytest.raises(ConfigurationError):
            random_catalog(1, rng, min_tuples=0, max_tuples=10)
