"""Tests for per-operator interconnect data volumes (A5 accounting)."""

from __future__ import annotations

import pytest

from repro import (
    BaseRelationNode,
    JoinNode,
    PAPER_PARAMETERS,
    PlanStructureError,
    Relation,
    expand_plan,
    operator_data_volume,
)

P = PAPER_PARAMETERS


def two_join_tree():
    a = BaseRelationNode(Relation("A", 100))
    b = BaseRelationNode(Relation("B", 300))
    c = BaseRelationNode(Relation("C", 200))
    return expand_plan(JoinNode("J1", JoinNode("J0", a, b), c))


class TestScanVolume:
    def test_scan_sends_output(self):
        tree = two_join_tree()
        scan_a = tree.operator_by_name("scan(A)")
        assert operator_data_volume(scan_a, tree, P) == 100 * 128

    def test_lone_scan_moves_nothing(self):
        tree = expand_plan(BaseRelationNode(Relation("A", 100)))
        assert operator_data_volume(tree.root, tree, P) == 0.0


class TestBuildVolume:
    def test_build_receives_input(self):
        tree = two_join_tree()
        build_j1 = tree.build_of("J1")
        # J1's inner stream is J0's output: 300 tuples.
        assert operator_data_volume(build_j1, tree, P) == 300 * 128


class TestProbeVolume:
    def test_inner_probe_receives_and_sends(self):
        tree = two_join_tree()
        probe_j0 = tree.probe_of("J0")
        # Receives outer B (300), sends result (300) to build(J1).
        assert operator_data_volume(probe_j0, tree, P) == (300 + 300) * 128

    def test_root_probe_receives_only(self):
        tree = two_join_tree()
        probe_j1 = tree.probe_of("J1")
        # Receives outer C (200); the final result is not repartitioned.
        assert operator_data_volume(probe_j1, tree, P) == 200 * 128


class TestErrors:
    def test_foreign_operator_rejected(self):
        tree = two_join_tree()
        other = expand_plan(BaseRelationNode(Relation("Z", 10)))
        with pytest.raises(PlanStructureError):
            operator_data_volume(other.root, tree, P)


class TestConservation:
    def test_every_pipeline_edge_charged_twice(self):
        """Every pipeline edge costs network time at both endpoints (A5):
        the sender's D_out and the receiver's D_in, so the total data
        volume is exactly twice the bytes flowing on pipeline edges."""
        tree = two_join_tree()
        total = sum(operator_data_volume(op, tree, P) for op in tree.operators)
        edge_bytes = sum(u.output_tuples * 128 for u, _ in tree.pipeline_edges())
        assert total == 2 * edge_bytes
