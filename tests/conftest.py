"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

try:
    import numpy as np
except ImportError:  # no-numpy CI job: core kernels only
    np = None  # type: ignore[assignment]

from repro import (
    PAPER_PARAMETERS,
    CommunicationModel,
    ConvexCombinationOverlap,
    OperatorSpec,
    WorkVector,
    annotate_plan,
    generate_query,
)

# Test modules that import numpy at module level (directly or through
# workload generation); the no-numpy job skips them wholesale instead of
# failing at collection time.
if np is None:
    collect_ignore = [
        "test_annotate.py",
        "test_cli_extended.py",
        "test_edge_cases.py",
        "test_engine.py",
        "test_examples.py",
        "test_experiments.py",
        "test_integration.py",
        "test_parallel_runner.py",
        "test_report_cli.py",
        "test_robustness.py",
        "test_sensitivity.py",
        "test_serve_service.py",
        "test_serve_telemetry.py",
        "test_generator.py",
        "test_hong.py",
        "test_join_tree.py",
        "test_materialization.py",
        "test_obs_integration.py",
        "test_operator_tree.py",
        "test_phases.py",
        "test_plan_selection.py",
        "test_properties.py",
        "test_query_graph.py",
        "test_relations.py",
        "test_shelf_policies.py",
        "test_sort_merge.py",
        "test_stats.py",
        "test_store_sweeps.py",
        "test_synchronous.py",
        "test_task_tree.py",
        "test_transform.py",
        "test_tree_schedule.py",
    ]


@pytest.fixture
def params():
    """The Table 2 system parameters."""
    return PAPER_PARAMETERS


@pytest.fixture
def comm(params):
    """The paper's communication model (alpha = 15 ms, beta = 0.6 us/B)."""
    return params.communication_model()


@pytest.fixture
def zero_comm():
    """A communication model with no overhead (useful to isolate packing)."""
    return CommunicationModel(alpha=0.0, beta=0.0)


@pytest.fixture
def overlap():
    """The mid-range overlap model used in most paper figures (eps = 0.5)."""
    return ConvexCombinationOverlap(0.5)


@pytest.fixture
def low_overlap():
    """Low overlap (eps = 0.1): nearly serial resource usage."""
    return ConvexCombinationOverlap(0.1)


def make_spec(name: str, cpu: float, disk: float, net: float = 0.0, data_mb: float = 0.0) -> OperatorSpec:
    """Build a 3-dimensional operator spec from readable components."""
    return OperatorSpec(
        name=name,
        work=WorkVector([cpu, disk, net]),
        data_volume=data_mb * 1e6,
    )


@pytest.fixture
def simple_specs():
    """A small mixed bag of operators with complementary resource needs."""
    return [
        make_spec("cpu-heavy", cpu=10.0, disk=1.0, data_mb=0.5),
        make_spec("disk-heavy", cpu=1.0, disk=10.0, data_mb=0.5),
        make_spec("balanced", cpu=5.0, disk=5.0, data_mb=1.0),
        make_spec("small", cpu=0.5, disk=0.5, data_mb=0.1),
    ]


@pytest.fixture
def annotated_query(params):
    """A deterministic 8-join query, cost-annotated and ready to schedule."""
    if np is None:
        pytest.skip("workload generation requires numpy")
    query = generate_query(8, np.random.default_rng(42))
    annotate_plan(query.operator_tree, params)
    return query


@pytest.fixture
def annotated_query_factory(params):
    """Factory for annotated random queries: ``factory(n_joins, seed)``."""
    if np is None:
        pytest.skip("workload generation requires numpy")

    def factory(n_joins: int, seed: int):
        query = generate_query(n_joins, np.random.default_rng(seed))
        annotate_plan(query.operator_tree, params)
        return query

    return factory
