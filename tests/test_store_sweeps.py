"""Store-backed sweeps: cache keys across processes, byte-identical
outputs, resume-after-kill, and the CLI cache flags."""

from __future__ import annotations

import json
import re
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.engine.metrics import MetricsRecorder
from repro.experiments import prepare_workload
from repro.experiments.cli import main
from repro.experiments.config import PAPER_CONFIG
from repro.experiments.figures import figure6a
from repro.experiments.parallel import ParallelRunner, SweepPoint, evaluate_point
from repro.experiments.runner import schedule_query
from repro.serialization import figure_to_dict
from repro.store import (
    ENV_CACHE_DIR,
    KIND_POINT,
    NO_STORE,
    ArtifactStore,
    content_key,
    point_key_payload,
)

TINY = PAPER_CONFIG.with_overrides(
    n_queries=2,
    site_counts=(4, 16),
    query_sizes=(4, 8),
    f_values=(0.1, 0.7),
    epsilon_values=(0.1, 0.7),
)

GRID = [
    SweepPoint("treeschedule", 6, 2, 3, p, 0.7, 0.5)
    for p in (4, 8, 16, 32)
]


def _point_key(point: SweepPoint) -> str:
    """Module-level so it pickles into pool workers by reference."""
    return content_key(KIND_POINT, point_key_payload(point, evaluate_point))


@pytest.fixture(autouse=True)
def _no_env_store(monkeypatch):
    """Isolate every test from an ambient REPRO_CACHE_DIR (and restore
    it afterwards even if the CLI rewrites the variable)."""
    monkeypatch.delenv(ENV_CACHE_DIR, raising=False)


class TestKeyDeterminism:
    def test_same_key_in_parent_and_pool_worker(self):
        """Resume only works if a forked worker addresses the same entry
        as the parent for the same sweep point."""
        parent_keys = [_point_key(point) for point in GRID]
        with ProcessPoolExecutor(max_workers=2) as pool:
            worker_keys = list(pool.map(_point_key, GRID))
        assert worker_keys == parent_keys

    def test_distinct_points_distinct_keys(self):
        assert len({_point_key(point) for point in GRID}) == len(GRID)


def _figure_bytes(store) -> str:
    fig = figure6a(TINY, p_values=(4, 16), store=store)
    return json.dumps(figure_to_dict(fig), sort_keys=True)


class TestByteIdenticalOutputs:
    def test_disabled_cold_warm_and_workers_agree(self, tmp_path):
        """The acceptance bar: sweep outputs are byte-identical whether
        the cache is disabled, cold, or warm, at any worker count."""
        baseline = _figure_bytes(NO_STORE)
        store = ArtifactStore(tmp_path / "cache")
        cold = _figure_bytes(store)
        assert store.stats.writes > 0
        warm = _figure_bytes(store)
        fig_parallel = figure6a(TINY, p_values=(4, 16), workers=2, store=store)
        parallel = json.dumps(figure_to_dict(fig_parallel), sort_keys=True)
        assert cold == baseline
        assert warm == baseline
        assert parallel == baseline

    def test_warm_run_hits_every_point(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        ParallelRunner(store=store).run(GRID)
        metrics = MetricsRecorder()
        values = ParallelRunner(metrics=metrics, store=store).run(GRID)
        assert metrics.counters["point_store_hits"] == float(len(GRID))
        assert metrics.counters["points_evaluated"] == 0.0
        assert values == ParallelRunner(store=NO_STORE).run(GRID)


class TestResume:
    def test_restarted_sweep_completes_only_missing_points(self, tmp_path):
        """A sweep killed partway leaves its completed points in the
        store (they are persisted as they finish); rerunning the full
        grid against the same cache directory evaluates only the rest."""
        store = ArtifactStore(tmp_path / "cache")
        done = len(GRID) // 2
        ParallelRunner(store=store).run(GRID[:done])  # the "killed" run

        resumed = ArtifactStore(tmp_path / "cache")  # fresh process, same dir
        metrics = MetricsRecorder()
        values = ParallelRunner(metrics=metrics, store=resumed).run(GRID)
        assert metrics.counters["point_store_hits"] == float(done)
        assert metrics.counters["point_store_misses"] == float(len(GRID) - done)
        assert metrics.counters["points_evaluated"] == float(len(GRID) - done)
        assert values == ParallelRunner(store=NO_STORE).run(GRID)

    def test_pool_workers_persist_points_as_they_complete(self, tmp_path):
        """With workers > 1, each point must land on disk when its future
        completes, not when the sweep ends — count the entries."""
        store = ArtifactStore(tmp_path / "cache")
        ParallelRunner(workers=2, store=store).run(GRID)
        entries = list((tmp_path / "cache" / KIND_POINT).rglob("*.json"))
        assert len(entries) == len(GRID)


class TestScheduleResultCache:
    def test_result_roundtrip_and_counters(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        (query, _) = prepare_workload(4, 2, seed=1, store=NO_STORE)
        kwargs = dict(p=8, f=0.7, epsilon=0.5, store=store)
        cache_key = {"workload": {"n_joins": 4, "n_queries": 2, "seed": 1}, "index": 0}

        cold_metrics = MetricsRecorder()
        cold = schedule_query(
            "treeschedule", query, metrics=cold_metrics,
            cache_key=cache_key, **kwargs,
        )
        assert cold_metrics.counters["store_misses"] == 1.0
        assert cold.instrumentation.counters["store_misses"] == 1.0

        warm_metrics = MetricsRecorder()
        warm = schedule_query(
            "treeschedule", query, metrics=warm_metrics,
            cache_key=cache_key, **kwargs,
        )
        assert warm_metrics.counters["store_hits"] == 1.0
        assert warm.instrumentation.counters["store_hits"] == 1.0
        assert warm.makespan == cold.makespan
        assert warm.algorithm == cold.algorithm

    def test_different_cache_key_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        (query, _) = prepare_workload(4, 2, seed=1, store=NO_STORE)
        kwargs = dict(p=8, f=0.7, epsilon=0.5, store=store)
        schedule_query(
            "treeschedule", query, cache_key={"index": 0}, **kwargs
        )
        metrics = MetricsRecorder()
        schedule_query(
            "treeschedule", query, metrics=metrics,
            cache_key={"index": 1}, **kwargs,
        )
        assert metrics.counters["store_misses"] == 1.0


CLI_ARGS = ["fig6b", "--quick", "--queries", "1", "--sites", "4", "8", "--json"]


class TestCliCaching:
    def test_rerun_is_byte_identical_with_high_hit_rate(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cli-cache")
        assert main([*CLI_ARGS, "--cache-dir", cache_dir]) == 0
        first = capsys.readouterr()
        assert main([*CLI_ARGS, "--cache-dir", cache_dir]) == 0
        second = capsys.readouterr()
        # stdout (the figure JSON) must be byte-identical; all cache
        # chatter is on stderr.
        assert second.out == first.out
        assert "[cache]" not in first.out
        match = re.search(
            r"\[cache\] (\d+) hits, (\d+) misses", second.err
        )
        assert match, second.err
        hits, misses = int(match.group(1)), int(match.group(2))
        assert hits / (hits + misses) >= 0.95

    def test_no_cache_matches_cached_output(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cli-cache")
        assert main([*CLI_ARGS, "--cache-dir", cache_dir]) == 0
        cached = capsys.readouterr()
        assert main([*CLI_ARGS, "--no-cache"]) == 0
        uncached = capsys.readouterr()
        assert uncached.out == cached.out
        assert "[cache]" not in uncached.err

    def test_cache_flags_mutually_exclusive(self, tmp_path, capsys):
        rc = main([*CLI_ARGS, "--cache-dir", str(tmp_path), "--no-cache"])
        assert rc == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "mutually exclusive" in captured.err
