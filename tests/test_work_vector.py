"""Unit and property tests for work vectors (Section 4.1 / 5.1)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro import InvalidWorkVectorError, Resource, WorkVector, dominates, set_length, vector_sum
from repro.core.work_vector import as_work_vector

components = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=6,
)


def vectors(d: int | None = None):
    if d is None:
        return components.map(WorkVector)
    return st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
        min_size=d,
        max_size=d,
    ).map(WorkVector)


class TestConstruction:
    def test_basic(self):
        w = WorkVector([1.0, 2.0, 3.0])
        assert w.components == (1.0, 2.0, 3.0)
        assert w.d == 3

    def test_of_constructor(self):
        assert WorkVector.of(1.0, 2.0) == WorkVector([1.0, 2.0])

    def test_zeros(self):
        w = WorkVector.zeros(4)
        assert w.components == (0.0, 0.0, 0.0, 0.0)

    def test_unit(self):
        w = WorkVector.unit(3, Resource.DISK, 5.0)
        assert w.components == (0.0, 5.0, 0.0)

    def test_unit_bad_axis(self):
        with pytest.raises(InvalidWorkVectorError):
            WorkVector.unit(3, 3, 1.0)

    def test_unit_negative_axis(self):
        with pytest.raises(InvalidWorkVectorError):
            WorkVector.unit(3, -1, 1.0)

    def test_empty_rejected(self):
        with pytest.raises(InvalidWorkVectorError):
            WorkVector([])

    def test_negative_rejected(self):
        with pytest.raises(InvalidWorkVectorError):
            WorkVector([1.0, -0.5])

    def test_nan_rejected(self):
        with pytest.raises(InvalidWorkVectorError):
            WorkVector([float("nan")])

    def test_inf_rejected(self):
        with pytest.raises(InvalidWorkVectorError):
            WorkVector([float("inf")])

    def test_zeros_bad_dimension(self):
        with pytest.raises(InvalidWorkVectorError):
            WorkVector.zeros(0)

    def test_int_components_coerced(self):
        w = WorkVector([1, 2])
        assert w.components == (1.0, 2.0)
        assert all(isinstance(c, float) for c in w.components)

    def test_as_work_vector_passthrough(self):
        w = WorkVector([1.0])
        assert as_work_vector(w) is w

    def test_as_work_vector_from_sequence(self):
        assert as_work_vector([1.0, 2.0]) == WorkVector([1.0, 2.0])


class TestMetrics:
    def test_length_is_max_component(self):
        assert WorkVector([1.0, 7.0, 3.0]).length() == 7.0

    def test_total_is_sum(self):
        assert WorkVector([1.0, 7.0, 3.0]).total() == 11.0

    def test_argmax_first_of_ties(self):
        assert WorkVector([5.0, 5.0, 1.0]).argmax() == 0

    def test_argmax_picks_maximum(self):
        assert WorkVector([1.0, 2.0, 9.0]).argmax() == 2

    def test_is_zero(self):
        assert WorkVector.zeros(3).is_zero()
        assert not WorkVector([0.0, 1e-3]).is_zero()
        assert WorkVector([0.0, 1e-3]).is_zero(tolerance=1e-2)


class TestArithmetic:
    def test_addition(self):
        assert WorkVector([1, 2]) + WorkVector([3, 4]) == WorkVector([4, 6])

    def test_subtraction(self):
        assert WorkVector([3, 4]) - WorkVector([1, 2]) == WorkVector([2, 2])

    def test_subtraction_clamps_roundoff(self):
        a = WorkVector([0.1 + 0.2])
        b = WorkVector([0.3])
        assert (a - b).components[0] >= 0.0

    def test_subtraction_rejects_negative(self):
        with pytest.raises(InvalidWorkVectorError):
            WorkVector([1.0]) - WorkVector([2.0])

    def test_scalar_multiplication(self):
        assert WorkVector([1, 2]) * 2 == WorkVector([2, 4])
        assert 2 * WorkVector([1, 2]) == WorkVector([2, 4])

    def test_negative_scale_rejected(self):
        with pytest.raises(InvalidWorkVectorError):
            WorkVector([1.0]) * -1.0

    def test_division(self):
        assert WorkVector([2, 4]) / 2 == WorkVector([1, 2])

    def test_division_by_zero_rejected(self):
        with pytest.raises(InvalidWorkVectorError):
            WorkVector([1.0]) / 0.0

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(InvalidWorkVectorError):
            WorkVector([1.0]) + WorkVector([1.0, 2.0])

    def test_add_non_vector_rejected(self):
        with pytest.raises(TypeError):
            WorkVector([1.0]) + 3.0  # type: ignore[operator]


class TestComparison:
    def test_dominates(self):
        assert WorkVector([2, 3]).dominates(WorkVector([1, 3]))
        assert not WorkVector([2, 3]).dominates(WorkVector([3, 1]))
        assert dominates(WorkVector([2, 3]), WorkVector([2, 3]))

    def test_equality_and_hash(self):
        a, b = WorkVector([1, 2]), WorkVector([1, 2])
        assert a == b
        assert hash(a) == hash(b)
        assert a != WorkVector([2, 1])

    def test_equality_with_other_type(self):
        assert WorkVector([1.0]) != (1.0,)

    def test_isclose(self):
        a = WorkVector([1.0, 2.0])
        b = WorkVector([1.0 + 1e-12, 2.0])
        assert a.isclose(b)
        assert not a.isclose(WorkVector([1.1, 2.0]))

    def test_repr_roundtrips_visually(self):
        assert repr(WorkVector([1.5, 0.0])) == "WorkVector([1.5, 0])"


class TestAggregates:
    def test_vector_sum(self):
        total = vector_sum([WorkVector([1, 2]), WorkVector([3, 4])])
        assert total == WorkVector([4, 6])

    def test_vector_sum_empty_needs_dimension(self):
        with pytest.raises(InvalidWorkVectorError):
            vector_sum([])
        assert vector_sum([], d=2) == WorkVector.zeros(2)

    def test_vector_sum_dimension_mismatch(self):
        with pytest.raises(InvalidWorkVectorError):
            vector_sum([WorkVector([1.0]), WorkVector([1.0, 2.0])])

    def test_set_length(self):
        # l(S) = max component of the vector sum (Section 5.1).
        s = [WorkVector([10, 15]), WorkVector([10, 5])]
        assert set_length(s) == 20.0

    def test_set_length_empty(self):
        assert set_length([], d=3) == 0.0
        with pytest.raises(InvalidWorkVectorError):
            set_length([])

    def test_paper_example_lengths(self):
        # The Section 5.2.2 example: W1+W2 = [20,20], W1+W3 = [15,25].
        w1 = WorkVector([10, 15])
        w2 = WorkVector([10, 5])
        w3 = WorkVector([5, 10])
        assert set_length([w1, w2]) == 20.0
        assert set_length([w1, w3]) == 25.0


class TestSequenceProtocol:
    def test_len_iter_getitem(self):
        w = WorkVector([1.0, 2.0, 3.0])
        assert len(w) == 3
        assert list(w) == [1.0, 2.0, 3.0]
        assert w[1] == 2.0
        assert w[Resource.NETWORK] == 3.0


class TestProperties:
    @given(vectors())
    def test_length_le_total(self, w):
        assert w.length() <= w.total() + 1e-9

    @given(vectors())
    def test_length_is_attained(self, w):
        assert w.length() in w.components

    @given(vectors(3), vectors(3))
    def test_addition_commutes(self, a, b):
        assert (a + b).isclose(b + a)

    @given(vectors(3), vectors(3), vectors(3))
    def test_addition_associates(self, a, b, c):
        assert ((a + b) + c).isclose(a + (b + c), rel_tol=1e-9, abs_tol=1e-6)

    @given(vectors(3), st.floats(min_value=0.0, max_value=1e3, allow_nan=False))
    def test_scaling_scales_length(self, w, k):
        assert math.isclose((w * k).length(), w.length() * k, rel_tol=1e-9, abs_tol=1e-12)

    @given(vectors(3), vectors(3))
    def test_sum_dominates_parts(self, a, b):
        assert (a + b).dominates(a)
        assert (a + b).dominates(b)

    @given(st.lists(vectors(3), min_size=1, max_size=8))
    def test_set_length_bounds(self, vs):
        # max_i l(w_i) <= l(S) <= sum_i l(w_i)
        total = set_length(vs)
        assert total >= max(v.length() for v in vs) - 1e-9
        assert total <= sum(v.length() for v in vs) + 1e-6

    @given(vectors(3), st.integers(min_value=1, max_value=16))
    def test_division_partition_reassembles(self, w, n):
        parts = [w / n] * n
        assert vector_sum(parts).isclose(w, rel_tol=1e-9, abs_tol=1e-9)
