"""Tests for schedules and the Equation (3) response-time model."""

from __future__ import annotations

import pytest

from repro import (
    OperatorHome,
    PhasedSchedule,
    PlacedClone,
    Schedule,
    SchedulingError,
    Site,
    WorkVector,
)


def clone(op, w, t, k=0):
    return PlacedClone(operator=op, clone_index=k, work=WorkVector(w), t_seq=t)


class TestOperatorHome:
    def test_degree(self):
        home = OperatorHome(operator="a", site_indices=(3, 1, 4))
        assert home.degree == 3

    def test_empty_rejected(self):
        with pytest.raises(SchedulingError):
            OperatorHome(operator="a", site_indices=())

    def test_duplicate_site_rejected(self):
        with pytest.raises(SchedulingError):
            OperatorHome(operator="a", site_indices=(1, 1))


class TestScheduleBasics:
    def test_empty(self):
        s = Schedule(4, 3)
        assert s.p == 4
        assert s.d == 3
        assert s.makespan() == 0.0
        assert s.clone_count() == 0
        assert s.operators == frozenset()

    def test_invalid_p(self):
        with pytest.raises(SchedulingError):
            Schedule(0, 3)

    def test_place_and_metrics(self):
        s = Schedule(2, 2)
        s.place(0, clone("a", [10.0, 15.0], 22.0))
        s.place(0, clone("b", [10.0, 5.0], 10.0, k=0))
        s.place(1, clone("c", [5.0, 10.0], 12.0))
        assert s.clone_count() == 3
        assert s.makespan() == 22.0
        assert s.max_parallel_time() == 22.0
        assert s.max_site_length() == 20.0
        assert s.bottleneck_site().index == 0
        assert not s.is_congestion_bound()

    def test_congestion_bound_case(self):
        s = Schedule(1, 2)
        s.place(0, clone("a", [10.0, 15.0], 22.0))
        s.place(0, clone("b", [5.0, 10.0], 10.0))
        assert s.makespan() == 25.0
        assert s.is_congestion_bound()

    def test_equation3_decomposition(self):
        s = Schedule(3, 2)
        s.place(0, clone("a", [2.0, 1.0], 2.5))
        s.place(1, clone("b", [1.0, 3.0], 3.2))
        assert s.makespan() == max(s.max_parallel_time(), s.max_site_length())

    def test_out_of_range_site(self):
        s = Schedule(2, 2)
        with pytest.raises(SchedulingError):
            s.place(2, clone("a", [1.0, 1.0], 1.0))

    def test_total_work_and_utilization(self):
        s = Schedule(2, 2)
        s.place(0, clone("a", [4.0, 0.0], 4.0))
        s.place(1, clone("b", [0.0, 4.0], 4.0))
        assert s.total_work() == WorkVector([4.0, 4.0])
        util = s.average_utilization()
        assert util == (0.5, 0.5)


class TestHomes:
    def test_home_ordering_by_clone_index(self):
        s = Schedule(3, 2)
        s.place(2, clone("a", [1.0, 1.0], 1.5, k=1))
        s.place(0, clone("a", [1.0, 1.0], 1.5, k=0))
        home = s.home("a")
        assert home.site_indices == (0, 2)
        assert s.homes() == {"a": home}

    def test_missing_home(self):
        with pytest.raises(SchedulingError):
            Schedule(1, 2).home("ghost")


class TestValidation:
    def test_valid_schedule_passes(self):
        s = Schedule(2, 2)
        s.place(0, clone("a", [1.0, 1.0], 1.5, k=0))
        s.place(1, clone("a", [1.0, 1.0], 1.5, k=1))
        s.validate()
        s.validate(degrees={"a": 2})

    def test_degree_mismatch_detected(self):
        s = Schedule(2, 2)
        s.place(0, clone("a", [1.0, 1.0], 1.5, k=0))
        with pytest.raises(SchedulingError):
            s.validate(degrees={"a": 2})

    def test_gapped_clone_indices_detected(self):
        s = Schedule(2, 2)
        s.place(0, clone("a", [1.0, 1.0], 1.5, k=0))
        s.place(1, clone("a", [1.0, 1.0], 1.5, k=2))
        with pytest.raises(SchedulingError):
            s.validate()


class TestFromSites:
    def test_wraps_existing_sites(self):
        sites = [Site(0, 2), Site(1, 2)]
        sites[0].place(clone("a", [1.0, 2.0], 2.5))
        s = Schedule.from_sites(sites)
        assert s.p == 2
        assert s.home("a").site_indices == (0,)

    def test_misnumbered_sites_rejected(self):
        with pytest.raises(SchedulingError):
            Schedule.from_sites([Site(1, 2)])

    def test_empty_rejected(self):
        with pytest.raises(SchedulingError):
            Schedule.from_sites([])


class TestPhasedSchedule:
    def _phase(self, t):
        s = Schedule(1, 2)
        s.place(0, clone(f"op{t}", [t, 0.0], t))
        return s

    def test_response_time_is_phase_sum(self):
        ps = PhasedSchedule()
        ps.append(self._phase(2.0), "first")
        ps.append(self._phase(3.0))
        assert ps.num_phases == 2
        assert ps.response_time() == 5.0
        assert ps.phase_makespans() == [2.0, 3.0]
        assert ps.labels == ["first", "phase-1"]

    def test_home_searches_phases(self):
        ps = PhasedSchedule()
        ps.append(self._phase(2.0))
        assert ps.home("op2.0").site_indices == (0,)
        with pytest.raises(SchedulingError):
            ps.home("ghost")

    def test_validate_delegates(self):
        ps = PhasedSchedule()
        ps.append(self._phase(1.0))
        ps.validate()

    def test_empty_phased(self):
        ps = PhasedSchedule()
        assert ps.response_time() == 0.0
        assert ps.num_phases == 0
