"""Tests for the fluid execution simulator."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    ConvexCombinationOverlap,
    PlacedClone,
    Schedule,
    SharingPolicy,
    Site,
    WorkVector,
    simulate_phased,
    tree_schedule,
)
from repro.core.schedule import PhasedSchedule
from repro.sim.simulator import simulate_schedule, simulate_site

OVERLAP = ConvexCombinationOverlap(0.5)


def site_with(clone_defs, d=2):
    site = Site(0, d)
    for i, comps in enumerate(clone_defs):
        w = WorkVector(comps)
        site.place(
            PlacedClone(
                operator=f"op{i}", clone_index=0, work=w, t_seq=OVERLAP.t_seq(w)
            )
        )
    return site


class TestOptimalStretch:
    def test_matches_equation_two(self):
        site = site_with([[10.0, 2.0], [3.0, 9.0], [1.0, 1.0]])
        result = simulate_site(site, SharingPolicy.OPTIMAL_STRETCH)
        assert result.completion_time == pytest.approx(site.t_site())
        assert result.deviation == pytest.approx(0.0)

    def test_rate_feasibility_recorded(self):
        site = site_with([[10.0, 2.0], [3.0, 9.0]])
        result = simulate_site(site, SharingPolicy.OPTIMAL_STRETCH)
        assert len(result.intervals) == 1
        assert result.intervals[0].is_feasible()

    def test_empty_site(self):
        result = simulate_site(Site(0, 2), SharingPolicy.OPTIMAL_STRETCH)
        assert result.completion_time == 0.0
        assert result.intervals == []

    def test_all_traces_end_at_t_star(self):
        site = site_with([[10.0, 2.0], [3.0, 9.0]])
        result = simulate_site(site, SharingPolicy.OPTIMAL_STRETCH)
        t_star = site.t_site()
        for trace in result.traces:
            assert trace.finish == pytest.approx(t_star)
            assert trace.stretch >= 1.0 - 1e-9


class TestFairShare:
    def test_never_below_analytic(self):
        site = site_with([[10.0, 2.0], [3.0, 9.0], [5.0, 5.0]])
        result = simulate_site(site, SharingPolicy.FAIR_SHARE)
        assert result.completion_time >= site.t_site() - 1e-9

    def test_single_clone_runs_at_full_speed(self):
        site = site_with([[4.0, 2.0]])
        result = simulate_site(site, SharingPolicy.FAIR_SHARE)
        assert result.completion_time == pytest.approx(OVERLAP.t_seq(WorkVector([4.0, 2.0])))

    def test_uncongested_clones_unthrottled(self):
        # Two tiny clones: total rates stay below capacity, no slowdown.
        site = site_with([[1.0, 0.0], [0.0, 1.0]])
        result = simulate_site(site, SharingPolicy.FAIR_SHARE)
        expected = max(OVERLAP.t_seq(WorkVector([1.0, 0.0])), OVERLAP.t_seq(WorkVector([0.0, 1.0])))
        assert result.completion_time == pytest.approx(expected)

    def test_intervals_partition_time(self):
        site = site_with([[10.0, 2.0], [3.0, 9.0], [5.0, 5.0]])
        result = simulate_site(site, SharingPolicy.FAIR_SHARE)
        assert result.intervals[0].start == 0.0
        for a, b in zip(result.intervals, result.intervals[1:]):
            assert b.start == pytest.approx(a.end)
        assert result.intervals[-1].end == pytest.approx(result.completion_time)

    def test_active_set_shrinks(self):
        site = site_with([[10.0, 2.0], [1.0, 1.0]])
        result = simulate_site(site, SharingPolicy.FAIR_SHARE)
        sizes = [len(iv.active) for iv in result.intervals]
        assert sizes == sorted(sizes, reverse=True)

    @settings(max_examples=30)
    @given(
        st.lists(
            st.lists(st.floats(min_value=0.0, max_value=50.0), min_size=2, max_size=2),
            min_size=1,
            max_size=6,
        )
    )
    def test_sandwiched_between_stretch_and_serial(self, clone_defs):
        site = site_with(clone_defs)
        stretch = simulate_site(site, SharingPolicy.OPTIMAL_STRETCH)
        fair = simulate_site(site, SharingPolicy.FAIR_SHARE)
        serial = simulate_site(site, SharingPolicy.SERIAL)
        assert stretch.completion_time <= fair.completion_time + 1e-6
        assert fair.completion_time <= serial.completion_time + 1e-6


class TestSerial:
    def test_sum_of_times(self):
        site = site_with([[4.0, 0.0], [0.0, 6.0]])
        result = simulate_site(site, SharingPolicy.SERIAL)
        expected = OVERLAP.t_seq(WorkVector([4.0, 0.0])) + OVERLAP.t_seq(WorkVector([0.0, 6.0]))
        assert result.completion_time == pytest.approx(expected)

    def test_traces_dont_overlap(self):
        site = site_with([[4.0, 0.0], [0.0, 6.0], [2.0, 2.0]])
        result = simulate_site(site, SharingPolicy.SERIAL)
        spans = sorted((t.start, t.finish) for t in result.traces)
        for (s1, f1), (s2, _) in zip(spans, spans[1:]):
            assert s2 >= f1 - 1e-9


class TestScheduleAndPhases:
    def _schedule(self):
        sched = Schedule(2, 2)
        sched.place(0, PlacedClone("a", 0, WorkVector([4.0, 1.0]), OVERLAP.t_seq(WorkVector([4.0, 1.0]))))
        sched.place(1, PlacedClone("b", 0, WorkVector([1.0, 4.0]), OVERLAP.t_seq(WorkVector([1.0, 4.0]))))
        return sched

    def test_phase_makespan_is_max_site(self):
        result = simulate_schedule(self._schedule(), SharingPolicy.OPTIMAL_STRETCH)
        assert result.makespan == pytest.approx(result.analytic_makespan)

    def test_phased_sums(self):
        phased = PhasedSchedule()
        phased.append(self._schedule())
        phased.append(self._schedule())
        result = simulate_phased(phased, SharingPolicy.OPTIMAL_STRETCH)
        assert result.response_time == pytest.approx(2 * result.phases[0].makespan)
        assert result.slowdown == pytest.approx(1.0)

    def test_real_tree_schedule_simulates(self, annotated_query, comm, overlap):
        ts = tree_schedule(
            annotated_query.operator_tree, annotated_query.task_tree,
            p=8, comm=comm, overlap=overlap, f=0.7,
        )
        for policy in SharingPolicy:
            result = simulate_phased(ts.phased_schedule, policy)
            assert result.response_time >= ts.response_time * (1 - 1e-9)

    def test_policy_ordering_on_real_schedule(self, annotated_query, comm, overlap):
        ts = tree_schedule(
            annotated_query.operator_tree, annotated_query.task_tree,
            p=8, comm=comm, overlap=overlap, f=0.7,
        )
        stretch = simulate_phased(ts.phased_schedule, SharingPolicy.OPTIMAL_STRETCH)
        fair = simulate_phased(ts.phased_schedule, SharingPolicy.FAIR_SHARE)
        serial = simulate_phased(ts.phased_schedule, SharingPolicy.SERIAL)
        assert stretch.response_time <= fair.response_time <= serial.response_time + 1e-6


class TestSlowdownRatio:
    """Regression: a degenerate schedule (zero analytic time) with positive
    simulated time used to report slowdown 1.0 — perfect agreement where
    there is infinite disagreement."""

    def _result(self, response, analytic):
        from repro.sim.simulator import SimulationResult

        return SimulationResult(
            policy=SharingPolicy.FAIR_SHARE,
            phases=[],
            response_time=response,
            analytic_response_time=analytic,
        )

    def test_zero_analytic_positive_simulated_is_inf(self):
        assert self._result(5.0, 0.0).slowdown == math.inf

    def test_zero_analytic_zero_simulated_is_one(self):
        assert self._result(0.0, 0.0).slowdown == 1.0

    def test_ordinary_ratio(self):
        assert self._result(3.0, 2.0).slowdown == pytest.approx(1.5)


class TestZeroLengthIntervals:
    """Regression: a clone whose remaining work rounds to nothing produced a
    zero-length RateInterval from the fair-share event loop."""

    def test_fair_share_skips_degenerate_steps(self, monkeypatch):
        import repro.sim.simulator as sim_mod

        site = site_with([[4.0, 2.0], [1.0, 1.0]])
        original = sim_mod._clone_states

        def with_exhausted_clone(s):
            states = original(s)
            # One clone arrives with its work already (numerically) done:
            # the first fair-share step then has dt == 0.
            states[1]["remaining"] = 0.0
            return states

        monkeypatch.setattr(sim_mod, "_clone_states", with_exhausted_clone)
        result = simulate_site(site, SharingPolicy.FAIR_SHARE)
        # The exhausted clone still completes (it gets a trace) ...
        assert len(result.traces) == 2
        # ... but no degenerate interval is recorded.
        for iv in result.intervals:
            assert iv.end > iv.start
