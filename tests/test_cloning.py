"""Tests for operator cloning and degree selection (Sections 4.3, 5.2.1)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    CommunicationModel,
    ConfigurationError,
    ConvexCombinationOverlap,
    CoordinatorPolicy,
    OperatorSpec,
    SchedulingError,
    WorkVector,
    clone_work_vectors,
    coarse_grain_degree,
    parallel_time,
    response_optimal_degree,
    total_work_vector,
    vector_sum,
)

COMM = CommunicationModel(alpha=0.015, beta=0.6e-6)
OVERLAP = ConvexCombinationOverlap(0.5)


def spec(cpu=10.0, disk=5.0, net=0.0, data=1e6, name="op"):
    return OperatorSpec(name=name, work=WorkVector([cpu, disk, net]), data_volume=data)


spec_strategy = st.builds(
    spec,
    cpu=st.floats(min_value=0.0, max_value=100.0),
    disk=st.floats(min_value=0.0, max_value=100.0),
    data=st.floats(min_value=0.0, max_value=1e8),
)


class TestOperatorSpec:
    def test_properties(self):
        s = spec(cpu=3.0, disk=2.0, net=1.0)
        assert s.d == 3
        assert s.processing_area == 6.0

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            OperatorSpec(name="", work=WorkVector([1.0]))

    def test_negative_volume_rejected(self):
        with pytest.raises(ConfigurationError):
            OperatorSpec(name="x", work=WorkVector([1.0]), data_volume=-5.0)


class TestCoordinatorPolicy:
    def test_default_split(self):
        v = CoordinatorPolicy().startup_vector(3, 0.2)
        assert v.components == (0.1, 0.0, 0.1)

    def test_custom_axes(self):
        v = CoordinatorPolicy(cpu_axis=1, network_axis=0, cpu_fraction=0.75).startup_vector(2, 1.0)
        assert v.components == (0.25, 0.75)

    def test_same_axis_accumulates(self):
        v = CoordinatorPolicy(cpu_axis=0, network_axis=0).startup_vector(2, 1.0)
        assert v.components == (1.0, 0.0)

    def test_invalid_fraction(self):
        with pytest.raises(ConfigurationError):
            CoordinatorPolicy(cpu_fraction=1.5)

    def test_axis_out_of_range(self):
        with pytest.raises(ConfigurationError):
            CoordinatorPolicy(cpu_axis=5).startup_vector(3, 1.0)


class TestCloneWorkVectors:
    def test_single_clone_carries_everything(self):
        s = spec()
        clones = clone_work_vectors(s, 1, COMM)
        assert len(clones) == 1
        total = clones[0]
        # W_p + W_c(op, 1) accounting (Section 5.1).
        assert math.isclose(
            total.total(), s.processing_area + COMM.communication_area(1, s.data_volume)
        )

    def test_ea1_even_split_plus_coordinator(self):
        s = spec(cpu=8.0, disk=4.0, data=0.0)
        clones = clone_work_vectors(s, 4, COMM)
        assert len(clones) == 4
        # Non-coordinator clones are exact shares.
        for c in clones[1:]:
            assert c.isclose(WorkVector([2.0, 1.0, 0.0]))
        # Coordinator carries alpha*N split half CPU / half network.
        startup = COMM.startup_cost(4)
        assert math.isclose(clones[0][0], 2.0 + startup / 2)
        assert math.isclose(clones[0][2], 0.0 + startup / 2)

    def test_transfer_time_on_network_axis(self):
        s = spec(cpu=0.0, disk=0.0, data=2e6)
        clones = clone_work_vectors(s, 2, COMM)
        transfer = COMM.transfer_cost(2e6)
        # Each clone carries half the beta*D network time.
        assert math.isclose(clones[1][2], transfer / 2)

    def test_zero_clones_rejected(self):
        with pytest.raises(SchedulingError):
            clone_work_vectors(spec(), 0, COMM)

    @given(spec_strategy, st.integers(min_value=1, max_value=32))
    def test_clones_sum_to_total(self, s, n):
        clones = clone_work_vectors(s, n, COMM)
        assert vector_sum(clones).isclose(
            total_work_vector(s, n, COMM), rel_tol=1e-9, abs_tol=1e-9
        )

    @given(spec_strategy, st.integers(min_value=1, max_value=32))
    def test_section51_area_accounting(self, s, n):
        # sum_k W_op[k] = W_p(op) + W_c(op, N).
        total = total_work_vector(s, n, COMM)
        assert math.isclose(
            total.total(),
            s.processing_area + COMM.communication_area(n, s.data_volume),
            rel_tol=1e-9,
            abs_tol=1e-9,
        )

    @given(spec_strategy, st.integers(min_value=1, max_value=31))
    def test_total_work_vector_non_decreasing_in_n(self, s, n):
        # The Section 7 requirement: work vectors non-decreasing in N.
        smaller = total_work_vector(s, n, COMM)
        larger = total_work_vector(s, n + 1, COMM)
        assert larger.dominates(smaller)


class TestParallelTime:
    def test_equation_1_max_over_clones(self):
        s = spec()
        n = 4
        clones = clone_work_vectors(s, n, COMM)
        expected = max(OVERLAP.t_seq(c) for c in clones)
        assert math.isclose(parallel_time(s, n, COMM, OVERLAP), expected)

    def test_degree_one_equals_sequential(self):
        s = spec()
        clones = clone_work_vectors(s, 1, COMM)
        assert math.isclose(parallel_time(s, 1, COMM, OVERLAP), OVERLAP.t_seq(clones[0]))

    def test_speedup_then_speeddown(self):
        # With startup costs there is an optimal degree beyond which the
        # coordinator's startup share dominates [WFA92].
        s = spec(cpu=30.0, disk=30.0, data=0.0)
        t = [parallel_time(s, n, COMM, OVERLAP) for n in range(1, 400)]
        n_best = t.index(min(t)) + 1
        assert 1 < n_best < 400
        assert t[0] > t[n_best - 1]
        assert t[-1] > t[n_best - 1]

    def test_zero_comm_never_slows_down(self):
        zero = CommunicationModel(alpha=0.0, beta=0.0)
        s = spec(data=0.0)
        times = [parallel_time(s, n, zero, OVERLAP) for n in range(1, 20)]
        assert all(t2 <= t1 + 1e-12 for t1, t2 in zip(times, times[1:]))


class TestDegreeSelection:
    def test_response_optimal_degree_is_argmin(self):
        s = spec(cpu=30.0, disk=30.0)
        p = 64
        n_rt = response_optimal_degree(s, p, COMM, OVERLAP)
        t_star = parallel_time(s, n_rt, COMM, OVERLAP)
        for n in range(1, p + 1):
            assert t_star <= parallel_time(s, n, COMM, OVERLAP) + 1e-12

    def test_ties_prefer_smaller_degree(self):
        zero = CommunicationModel(alpha=0.0, beta=0.0)
        s = OperatorSpec(name="z", work=WorkVector([0.0, 0.0, 0.0]), data_volume=0.0)
        assert response_optimal_degree(s, 8, zero, OVERLAP) == 1

    def test_bad_p_rejected(self):
        with pytest.raises(SchedulingError):
            response_optimal_degree(spec(), 0, COMM, OVERLAP)

    def test_coarse_grain_degree_caps(self):
        s = spec(cpu=30.0, disk=30.0, data=1e6)
        p = 64
        n = coarse_grain_degree(s, p, 0.7, COMM, OVERLAP)
        assert 1 <= n <= p
        assert n <= COMM.n_max(0.7, s.processing_area, s.data_volume)
        # A4 enforcement: never beyond the response-optimal degree.
        n_cap = min(COMM.n_max(0.7, s.processing_area, s.data_volume), p)
        assert n <= response_optimal_degree(s, n_cap, COMM, OVERLAP)

    def test_small_f_restricts_parallelism(self):
        s = spec(cpu=30.0, disk=30.0, data=2e7)
        p = 64
        degrees = [
            coarse_grain_degree(s, p, f, COMM, OVERLAP) for f in (0.15, 0.3, 0.7)
        ]
        assert degrees == sorted(degrees)
        assert degrees[0] < degrees[-1]

    @given(spec_strategy, st.integers(min_value=1, max_value=32),
           st.floats(min_value=0.05, max_value=1.0))
    def test_degree_always_valid(self, s, p, f):
        n = coarse_grain_degree(s, p, f, COMM, OVERLAP)
        assert 1 <= n <= p

    @settings(max_examples=30)
    @given(spec_strategy, st.integers(min_value=2, max_value=24))
    def test_a4_holds_on_selected_range(self, s, p):
        """Parallel time is non-increasing on 1..N for the chosen degree N."""
        n = coarse_grain_degree(s, p, 0.7, COMM, OVERLAP)
        t_n = parallel_time(s, n, COMM, OVERLAP)
        assert t_n <= parallel_time(s, 1, COMM, OVERLAP) + 1e-9
