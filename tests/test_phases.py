"""Tests for the MinShelf phase decomposition (Section 5.4, [TL93])."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BaseRelationNode,
    JoinNode,
    PlanStructureError,
    Relation,
    build_task_tree,
    expand_plan,
    generate_query,
    min_shelf_phases,
    validate_phases,
)


def figure_one_like_plan():
    """A bushy plan with four leaf tasks and one root task (like Fig. 1)."""
    a = BaseRelationNode(Relation("A", 100))
    b = BaseRelationNode(Relation("B", 200))
    c = BaseRelationNode(Relation("C", 300))
    d = BaseRelationNode(Relation("D", 400))
    return JoinNode("J2", JoinNode("J0", a, b), JoinNode("J1", c, d))


class TestMinShelf:
    def test_phase_count_is_height_plus_one(self):
        for seed in range(5):
            query = generate_query(10, np.random.default_rng(seed))
            phases = min_shelf_phases(query.task_tree)
            assert len(phases) == query.task_tree.height + 1

    def test_root_task_alone_in_last_phase(self):
        query = generate_query(10, np.random.default_rng(1))
        phases = min_shelf_phases(query.task_tree)
        assert phases[-1] == [query.task_tree.root]

    def test_each_task_one_phase_before_parent(self):
        # MinShelf: as late as possible = exactly one phase before parent.
        query = generate_query(10, np.random.default_rng(2))
        tree = query.task_tree
        phases = min_shelf_phases(tree)
        position = {t: i for i, bucket in enumerate(phases) for t in bucket}
        for task in tree.tasks:
            parent = tree.parent(task)
            if parent is not None:
                assert position[task] == position[parent] - 1

    def test_validates_its_own_output(self):
        for seed in range(5):
            query = generate_query(12, np.random.default_rng(seed))
            phases = min_shelf_phases(query.task_tree)
            validate_phases(query.task_tree, phases)

    def test_deterministic_ordering_within_phase(self):
        query = generate_query(10, np.random.default_rng(3))
        p1 = min_shelf_phases(query.task_tree)
        p2 = min_shelf_phases(query.task_tree)
        assert [[t.task_id for t in bucket] for bucket in p1] == [
            [t.task_id for t in bucket] for bucket in p2
        ]

    def test_figure_one_decomposition(self):
        tree = build_task_tree(expand_plan(figure_one_like_plan()))
        phases = min_shelf_phases(tree)
        # Leaf (build) tasks first, root pipeline last.
        assert len(phases) == tree.height + 1
        assert phases[-1] == [tree.root]


class TestValidatePhases:
    def _tree(self):
        return build_task_tree(expand_plan(figure_one_like_plan()))

    def test_missing_task_detected(self):
        tree = self._tree()
        phases = min_shelf_phases(tree)
        phases[0] = phases[0][1:]
        with pytest.raises(PlanStructureError):
            validate_phases(tree, phases)

    def test_duplicate_task_detected(self):
        tree = self._tree()
        phases = min_shelf_phases(tree)
        phases[0] = phases[0] + [phases[0][0]]
        with pytest.raises(PlanStructureError):
            validate_phases(tree, phases)

    def test_dependent_tasks_in_one_phase_detected(self):
        tree = self._tree()
        phases = min_shelf_phases(tree)
        merged = [sum(phases, [])]
        with pytest.raises(PlanStructureError):
            validate_phases(tree, merged)

    def test_parent_before_child_detected(self):
        tree = self._tree()
        phases = list(reversed(min_shelf_phases(tree)))
        with pytest.raises(PlanStructureError):
            validate_phases(tree, phases)
