"""Tests for the scalar-work list-scheduling baseline."""

from __future__ import annotations

import pytest

from repro import (
    CommunicationModel,
    ConvexCombinationOverlap,
    InfeasibleScheduleError,
    OperatorSpec,
    PERFECT_OVERLAP,
    SchedulingError,
    WorkVector,
    operator_schedule,
    scalar_list_schedule,
)

COMM = CommunicationModel(alpha=0.015, beta=0.6e-6)
ZERO_COMM = CommunicationModel(alpha=0.0, beta=0.0)
OVERLAP = ConvexCombinationOverlap(0.5)


def spec(name, cpu, disk):
    return OperatorSpec(name=name, work=WorkVector([cpu, disk, 0.0]), data_volume=0.0)


class TestBasics:
    def test_schedules_everything(self):
        specs = [spec(f"op{i}", 2.0 + i, 1.0) for i in range(5)]
        result = scalar_list_schedule(specs, p=3, comm=COMM, overlap=OVERLAP)
        result.schedule.validate(result.degrees)
        assert set(result.degrees) == {s.name for s in specs}

    def test_empty_rejected(self):
        with pytest.raises(SchedulingError):
            scalar_list_schedule([], p=2, comm=COMM, overlap=OVERLAP)

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchedulingError):
            scalar_list_schedule(
                [spec("a", 1.0, 1.0), spec("a", 2.0, 2.0)],
                p=2, comm=COMM, overlap=OVERLAP,
            )

    def test_degree_bounds_enforced(self):
        with pytest.raises(InfeasibleScheduleError):
            scalar_list_schedule(
                [spec("a", 1.0, 1.0)], p=2, comm=COMM, overlap=OVERLAP,
                degrees={"a": 3},
            )

    def test_dimension_mismatch(self):
        a = OperatorSpec(name="a", work=WorkVector([1.0, 1.0]))
        b = OperatorSpec(name="b", work=WorkVector([1.0, 1.0, 0.0]))
        with pytest.raises(SchedulingError):
            scalar_list_schedule([a, b], p=2, comm=COMM, overlap=OVERLAP)


class TestBlindness:
    def test_multi_dimensional_rule_wins_on_mixed_workload(self):
        """Two CPU-heavy and two disk-heavy unit jobs on two sites:

        The multi-dimensional rule pairs complementary jobs per site
        (T_site = 10 under perfect overlap); the scalar rule cannot see
        the difference and can pair same-resource jobs (T_site = 20).
        """
        specs = [
            spec("cpu1", 10.0, 0.0),
            spec("cpu2", 10.0, 0.0),
            spec("disk1", 0.0, 10.0),
            spec("disk2", 0.0, 10.0),
        ]
        degrees = {s.name: 1 for s in specs}
        multi = operator_schedule(
            specs, p=2, comm=ZERO_COMM, overlap=PERFECT_OVERLAP, degrees=degrees
        )
        scalar = scalar_list_schedule(
            specs, p=2, comm=ZERO_COMM, overlap=PERFECT_OVERLAP, degrees=degrees
        )
        assert multi.makespan <= scalar.makespan + 1e-12
        assert multi.makespan == pytest.approx(10.0)

    def test_same_behaviour_on_one_dimensional_input(self):
        """When all work is on one resource the two rules coincide."""
        specs = [spec(f"op{i}", float(10 - i), 0.0) for i in range(6)]
        degrees = {s.name: 1 for s in specs}
        multi = operator_schedule(
            specs, p=3, comm=ZERO_COMM, overlap=PERFECT_OVERLAP, degrees=degrees
        )
        scalar = scalar_list_schedule(
            specs, p=3, comm=ZERO_COMM, overlap=PERFECT_OVERLAP, degrees=degrees
        )
        assert multi.makespan == pytest.approx(scalar.makespan)
