"""Tests for simulator-vs-analytic validation and the policy report."""

from __future__ import annotations

import pytest

from repro import (
    PlacedClone,
    Schedule,
    SimulationError,
    WorkVector,
    sharing_policy_report,
    tree_schedule,
    validate_phased_schedule,
)
from repro.core.schedule import PhasedSchedule
from repro.core.resource_model import ConvexCombinationOverlap

OVERLAP = ConvexCombinationOverlap(0.5)


def small_phased():
    sched = Schedule(2, 2)
    for i, comps in enumerate([[4.0, 1.0], [1.0, 4.0], [2.0, 2.0]]):
        w = WorkVector(comps)
        sched.place(i % 2, PlacedClone(f"op{i}", 0, w, OVERLAP.t_seq(w)))
    phased = PhasedSchedule()
    phased.append(sched)
    return phased


class TestValidate:
    def test_agreement_on_valid_schedule(self):
        result = validate_phased_schedule(small_phased())
        assert result.slowdown == pytest.approx(1.0)

    def test_real_schedule_validates(self, annotated_query, comm, overlap):
        ts = tree_schedule(
            annotated_query.operator_tree, annotated_query.task_tree,
            p=8, comm=comm, overlap=overlap, f=0.7,
        )
        validate_phased_schedule(ts.phased_schedule)

    def test_corrupted_t_seq_detected(self):
        """A clone whose recorded T_seq understates its work would make
        the ideal-stretch schedule infeasible — the simulator notices."""
        sched = Schedule(1, 2)
        # T_seq below max component: invalid under the Section 4.1 bound,
        # smuggled in directly (PlacedClone does not re-validate).
        sched.place(0, PlacedClone("bad", 0, WorkVector([10.0, 0.0]), 1.0))
        sched.place(0, PlacedClone("other", 0, WorkVector([10.0, 0.0]), 10.0))
        phased = PhasedSchedule()
        phased.append(sched)
        with pytest.raises(SimulationError):
            validate_phased_schedule(phased)


class TestPolicyReport:
    def test_ordering(self):
        report = sharing_policy_report(small_phased())
        assert report.analytic == pytest.approx(report.optimal_stretch)
        assert report.optimal_stretch <= report.fair_share + 1e-9
        assert report.fair_share <= report.serial + 1e-9

    def test_penalty_and_benefit(self):
        report = sharing_policy_report(small_phased())
        assert report.fair_share_penalty >= -1e-12
        assert report.sharing_benefit >= 1.0 - 1e-12

    def test_sharing_benefit_large_for_complementary_load(self):
        sched = Schedule(1, 2)
        for i in range(4):
            w = WorkVector([4.0, 0.0] if i % 2 else [0.0, 4.0])
            sched.place(0, PlacedClone(f"op{i}", 0, w, 4.0))
        phased = PhasedSchedule()
        phased.append(sched)
        report = sharing_policy_report(phased)
        # Serial: 16; ideal sharing: 8 (each resource serves 8 units).
        assert report.sharing_benefit == pytest.approx(2.0)

    def test_report_on_real_schedule(self, annotated_query, comm, overlap):
        ts = tree_schedule(
            annotated_query.operator_tree, annotated_query.task_tree,
            p=8, comm=comm, overlap=overlap, f=0.7,
        )
        report = sharing_policy_report(ts.phased_schedule)
        assert report.serial >= report.analytic


class TestMetricVocabularyWarning:
    def _result(self):
        # Workload generation requires numpy (absent in the no-numpy job).
        pytest.importorskip("numpy", exc_type=ImportError)
        from repro.experiments import prepare_workload
        from repro.experiments.runner import schedule_query

        query = prepare_workload(3, 1, 2)[0]
        return schedule_query("treeschedule", query, p=4, f=0.7, epsilon=0.5)

    def test_clean_result_does_not_warn(self):
        import warnings

        from repro.sim.validate import validate_schedule_result

        result = self._result()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            validate_schedule_result(result)

    def test_unknown_counter_name_warns(self):
        from repro.sim.validate import validate_schedule_result

        result = self._result()
        result.instrumentation.counters["clones_plcaed"] = 3.0
        with pytest.warns(UserWarning, match="clones_plcaed"):
            validate_schedule_result(result)

    def test_unknown_timer_name_warns(self):
        from repro.sim.validate import validate_schedule_result

        result = self._result()
        result.instrumentation.timers["mystery_seconds"] = 0.1
        with pytest.warns(UserWarning, match="mystery_seconds"):
            validate_schedule_result(result)


class TestSpanVocabularyWarning:
    def _result(self):
        pytest.importorskip("numpy", exc_type=ImportError)
        from repro.experiments import prepare_workload
        from repro.experiments.runner import schedule_query

        query = prepare_workload(3, 1, 2)[0]
        return schedule_query("treeschedule", query, p=4, f=0.7, epsilon=0.5)

    def test_known_spans_do_not_warn(self):
        import warnings

        from repro.sim.validate import validate_schedule_result

        result = self._result()
        result.instrumentation.spans.append(
            {"name": "plan_search", "children": [{"name": "plan_score"}]}
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            validate_schedule_result(result)

    def test_unknown_span_name_warns(self):
        from repro.sim.validate import validate_schedule_result

        result = self._result()
        result.instrumentation.spans.append(
            {"name": "plan_serach", "children": []}
        )
        with pytest.warns(UserWarning, match="plan_serach"):
            validate_schedule_result(result)

    def test_unknown_nested_span_warns(self):
        from repro.sim.validate import validate_schedule_result

        result = self._result()
        result.instrumentation.spans.append(
            {"name": "plan_search", "children": [{"name": "mystery_phase"}]}
        )
        with pytest.warns(UserWarning, match="mystery_phase"):
            validate_schedule_result(result)
