"""Tests for operator-tree macro-expansion (Figure 1(a) -> 1(b))."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BaseRelationNode,
    EdgeKind,
    JoinNode,
    OperatorKind,
    PlanStructureError,
    Relation,
    expand_plan,
    generate_query,
)
from repro.plans.operator_tree import OperatorTree
from repro.plans.physical_ops import build_op, probe_op, scan_op


def two_join_plan():
    a = BaseRelationNode(Relation("A", 100))
    b = BaseRelationNode(Relation("B", 300))
    c = BaseRelationNode(Relation("C", 200))
    return JoinNode("J1", JoinNode("J0", a, b), c)


class TestExpansion:
    def test_single_relation(self):
        tree = expand_plan(BaseRelationNode(Relation("A", 100)))
        assert len(tree) == 1
        assert tree.root.kind is OperatorKind.SCAN

    def test_operator_counts(self):
        # J joins over J+1 relations: J+1 scans + J builds + J probes.
        tree = expand_plan(two_join_plan())
        assert len(tree) == 3 + 2 + 2
        assert len(list(tree.iter_scans())) == 3
        assert len(list(tree.iter_builds())) == 2
        assert len(list(tree.iter_probes())) == 2

    def test_root_is_final_probe(self):
        tree = expand_plan(two_join_plan())
        assert tree.root.kind is OperatorKind.PROBE
        assert tree.root.join_id == "J1"

    def test_blocking_edges_are_build_probe(self):
        tree = expand_plan(two_join_plan())
        for u, v in tree.blocking_edges():
            assert u.kind is OperatorKind.BUILD
            assert v.kind is OperatorKind.PROBE
            assert u.join_id == v.join_id
        assert len(tree.blocking_edges()) == 2

    def test_pipeline_wiring(self):
        tree = expand_plan(two_join_plan())
        build_j0 = tree.build_of("J0")
        scan_a = tree.operator_by_name("scan(A)")
        # A (100 tuples, smaller) is the build side of J0.
        assert tree.pipeline_consumer(scan_a) is build_j0
        # J1's build side is the J0 subtree, so probe(J0) pipelines into
        # build(J1); J1's probe side is the scan of C.
        probe_j0 = tree.probe_of("J0")
        assert tree.pipeline_consumer(probe_j0) is tree.build_of("J1")
        scan_c = tree.operator_by_name("scan(C)")
        assert tree.pipeline_consumer(scan_c) is tree.probe_of("J1")

    def test_tuple_counts(self):
        tree = expand_plan(two_join_plan())
        probe_j0 = tree.probe_of("J0")
        assert probe_j0.input_tuples == 300   # outer side B
        assert probe_j0.output_tuples == 300  # max(100, 300)
        build_j1 = tree.build_of("J1")
        assert build_j1.input_tuples == 300   # inner of J1 = J0's output
        probe_j1 = tree.probe_of("J1")
        assert probe_j1.input_tuples == 200   # outer of J1 = C
        assert probe_j1.output_tuples == 300  # max(300, 200)

    def test_validates(self):
        tree = expand_plan(two_join_plan())
        tree.validate()

    def test_generated_queries_expand_cleanly(self):
        for seed in range(5):
            query = generate_query(12, np.random.default_rng(seed))
            tree = query.operator_tree
            tree.validate()
            assert len(tree) == 13 + 12 + 12


class TestOperatorTreeAPI:
    def test_duplicate_names_rejected(self):
        tree = OperatorTree()
        tree.add_operator(scan_op(Relation("A", 10)))
        with pytest.raises(PlanStructureError):
            tree.add_operator(scan_op(Relation("A", 10)))

    def test_edge_requires_members(self):
        tree = OperatorTree()
        a = tree.add_operator(scan_op(Relation("A", 10)))
        stray = build_op("J0", 10)
        with pytest.raises(PlanStructureError):
            tree.add_edge(a, stray, EdgeKind.PIPELINE)

    def test_self_edge_rejected(self):
        tree = OperatorTree()
        a = tree.add_operator(scan_op(Relation("A", 10)))
        with pytest.raises(PlanStructureError):
            tree.add_edge(a, a, EdgeKind.PIPELINE)

    def test_duplicate_edge_rejected(self):
        tree = OperatorTree()
        a = tree.add_operator(scan_op(Relation("A", 10)))
        b = tree.add_operator(build_op("J0", 10))
        tree.add_edge(a, b, EdgeKind.PIPELINE)
        with pytest.raises(PlanStructureError):
            tree.add_edge(a, b, EdgeKind.PIPELINE)

    def test_cycle_rejected(self):
        tree = OperatorTree()
        a = tree.add_operator(scan_op(Relation("A", 10)))
        b = tree.add_operator(build_op("J0", 10))
        tree.add_edge(a, b, EdgeKind.PIPELINE)
        with pytest.raises(PlanStructureError):
            tree.add_edge(b, a, EdgeKind.PIPELINE)

    def test_missing_root(self):
        tree = OperatorTree()
        tree.add_operator(scan_op(Relation("A", 10)))
        with pytest.raises(PlanStructureError):
            _ = tree.root

    def test_unknown_lookups(self):
        tree = expand_plan(two_join_plan())
        with pytest.raises(PlanStructureError):
            tree.operator_by_name("ghost")
        with pytest.raises(PlanStructureError):
            tree.probe_of("J9")
        with pytest.raises(PlanStructureError):
            tree.build_of("J9")

    def test_topological_order(self):
        tree = expand_plan(two_join_plan())
        order = {op: i for i, op in enumerate(tree.operators)}
        for u, v in tree.edges():
            assert order[u] < order[v]

    def test_validate_rejects_multi_consumer(self):
        tree = OperatorTree()
        a = tree.add_operator(scan_op(Relation("A", 10)))
        b = tree.add_operator(build_op("J0", 10))
        p = tree.add_operator(probe_op("J0", 10, 10))
        tree.add_edge(a, b, EdgeKind.PIPELINE)
        tree.add_edge(a, p, EdgeKind.PIPELINE)
        tree.add_edge(b, p, EdgeKind.BLOCKING)
        tree.set_root(p)
        with pytest.raises(PlanStructureError):
            tree.validate()


class TestPhysicalOps:
    def test_scan_fields(self):
        op = scan_op(Relation("A", 50))
        assert op.name == "scan(A)"
        assert op.output_tuples == 50
        assert not op.annotated

    def test_build_fields(self):
        op = build_op("J3", 70)
        assert op.name == "build(J3)"
        assert op.input_tuples == 70
        assert op.output_tuples == 0

    def test_probe_fields(self):
        op = probe_op("J3", 70, 90)
        assert op.input_tuples == 70
        assert op.output_tuples == 90

    def test_require_spec_unannotated(self):
        with pytest.raises(PlanStructureError):
            scan_op(Relation("A", 50)).require_spec()

    def test_identity_semantics(self):
        a1, a2 = scan_op(Relation("A", 50)), scan_op(Relation("A", 50))
        assert a1 != a2
        assert hash(a1) != hash(a2) or a1 is a2
