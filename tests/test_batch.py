"""Tests for the numpy-gated batch kernels (repro.core.batch)."""

from __future__ import annotations

import random

import pytest

from repro import (
    CloneItem,
    ConvexCombinationOverlap,
    OperatorSpec,
    SchedulingError,
    WorkVector,
    lower_bound,
    lower_bound_family,
    pack_vectors,
    set_length,
)
from repro.core import batch
from repro.core.granularity import CommunicationModel
from repro.core.resource_model import ConvexCombinationOverlap as Overlap


def vecs(seed, n, d=3):
    rng = random.Random(seed)
    return [WorkVector([rng.uniform(0.0, 10.0) for _ in range(d)]) for _ in range(n)]


class TestSumLength:
    def test_matches_set_length_small(self):
        vs = vecs(0, 5)
        assert batch.sum_length(vs) == set_length(vs)

    def test_matches_set_length_above_cutover(self):
        vs = vecs(1, batch.NUMPY_CUTOVER + 20)
        assert batch.sum_length(vs) == pytest.approx(set_length(vs), rel=1e-12)

    def test_empty_requires_dimensionality(self):
        assert batch.sum_length([], d=3) == 0.0
        with pytest.raises(SchedulingError):
            batch.sum_length([])


class TestSetLengthBatch:
    def test_ragged_groups_with_empty(self):
        groups = [vecs(0, 3), [], vecs(1, batch.NUMPY_CUTOVER + 5)]
        out = batch.set_length_batch(groups, d=3)
        assert out[0] == pytest.approx(set_length(groups[0]))
        assert out[1] == 0.0
        assert out[2] == pytest.approx(set_length(groups[2]), rel=1e-12)

    def test_dimension_mismatch_rejected(self):
        groups = [[WorkVector([1.0, 2.0])] * batch.NUMPY_CUTOVER]
        if batch.HAVE_NUMPY:
            with pytest.raises(SchedulingError):
                batch.set_length_batch(groups, d=3)

    def test_invalid_dimensionality(self):
        with pytest.raises(SchedulingError):
            batch.set_length_batch([], d=0)


class TestLowerBoundsBatch:
    def test_matches_scalar_lower_bound(self):
        comm = CommunicationModel(alpha=1.0, beta=0.01)
        overlap = Overlap(0.5)
        rng = random.Random(9)
        specs = [
            OperatorSpec(
                name=f"op{i}",
                work=WorkVector([rng.uniform(1.0, 40.0) for _ in range(3)]),
                data_volume=rng.uniform(10.0, 200.0),
            )
            for i in range(6)
        ]
        family = [
            {spec.name: 1 for spec in specs},
            {spec.name: (2 if i % 2 else 1) for i, spec in enumerate(specs)},
            {spec.name: 3 for spec in specs},
        ]
        batched = lower_bound_family(specs, family, 4, comm, overlap)
        for degrees, lb in zip(family, batched):
            assert lb == pytest.approx(
                lower_bound(specs, degrees, 4, comm, overlap), rel=1e-12
            )

    def test_length_mismatch_rejected(self):
        with pytest.raises(SchedulingError):
            batch.lower_bounds_batch([[]], [0.0, 1.0], p=2, d=3)

    def test_invalid_p(self):
        with pytest.raises(SchedulingError):
            batch.lower_bounds_batch([[]], [0.0], p=0, d=3)

    def test_empty_specs_family(self):
        assert lower_bound_family([], [{}, {}], 2, None, None) == [0.0, 0.0]


class TestEq3OverEpsilon:
    @staticmethod
    def _schedule(n=50, p=6, seed=4):
        rng = random.Random(seed)
        items = [
            CloneItem(
                operator=f"op{i}",
                clone_index=0,
                work=WorkVector([rng.uniform(0.1, 10.0) for _ in range(3)]),
            )
            for i in range(n)
        ]
        return items, pack_vectors(items, p=p, overlap=ConvexCombinationOverlap(0.5))

    def test_matches_recompute_t_seq_per_epsilon(self):
        _, schedule = self._schedule()
        epsilons = (0.0, 0.1, 0.3, 0.5, 0.7, 1.0)
        spans = batch.eq3_makespans_over_epsilon(schedule, epsilons)
        for eps, span in zip(epsilons, spans):
            overlap = ConvexCombinationOverlap(eps)
            rebuilt = max(
                site.recompute_t_seq(overlap).t_site() for site in schedule.sites
            )
            assert span == rebuilt

    def test_pure_python_path_agrees(self, monkeypatch):
        _, schedule = self._schedule()
        epsilons = (0.2, 0.8)
        with_numpy = batch.eq3_makespans_over_epsilon(schedule, epsilons)
        monkeypatch.setattr(batch, "HAVE_NUMPY", False)
        without = batch.eq3_makespans_over_epsilon(schedule, epsilons)
        assert with_numpy == without

    def test_empty_schedule(self):
        from repro.core.schedule import Schedule

        spans = batch.eq3_makespans_over_epsilon(Schedule(3, 3), (0.1, 0.9))
        assert spans == [0.0, 0.0]

    def test_rejects_out_of_range_epsilon(self):
        _, schedule = self._schedule(n=4, p=2)
        with pytest.raises(SchedulingError):
            batch.eq3_makespans_over_epsilon(schedule, (1.5,))


class TestOverlapRobustness:
    def test_figure_shape_and_values(self):
        from repro.experiments import overlap_robustness

        _, schedule = TestEq3OverEpsilon._schedule()
        fig = overlap_robustness(schedule, (0.1, 0.5, 0.9))
        assert len(fig.series) == 1
        assert fig.series[0].xs == (0.1, 0.5, 0.9)
        expected = batch.eq3_makespans_over_epsilon(schedule, (0.1, 0.5, 0.9))
        assert list(fig.series[0].ys) == expected

    def test_requires_epsilons(self):
        from repro.exceptions import ConfigurationError
        from repro.experiments import overlap_robustness

        _, schedule = TestEq3OverEpsilon._schedule(n=4, p=2)
        with pytest.raises(ConfigurationError):
            overlap_robustness(schedule, ())


class TestPackLeastLoadedBatch:
    @staticmethod
    def _rows(n, d=3, seed=0):
        rng = random.Random(seed)
        comps = [tuple(rng.uniform(0.1, 10.0) for _ in range(d)) for _ in range(n)]
        ops = [f"op{i}" for i in range(n)]
        return comps, ops

    def test_declines_below_cutover(self):
        comps, ops = self._rows(4)
        assert batch.pack_least_loaded_batch(comps, ops, 3, 3) is None

    def test_declines_without_numpy(self, monkeypatch):
        monkeypatch.setattr(batch, "HAVE_NUMPY", False)
        comps, ops = self._rows(batch.NUMPY_CUTOVER + 10)
        assert batch.pack_least_loaded_batch(comps, ops, 4, 3) is None

    def test_assignment_matches_reference_pack(self, monkeypatch):
        if not batch.HAVE_NUMPY:
            pytest.skip("numpy unavailable")
        monkeypatch.setattr(batch, "NUMPY_CUTOVER", 0)
        comps, ops = self._rows(40, seed=3)
        assignment = batch.pack_least_loaded_batch(comps, ops, 6, 3)
        # Replay through the naive rule: least current length, lowest index.
        loads = [[0.0] * 3 for _ in range(6)]
        hosting = [set() for _ in range(6)]
        for i, (row, op) in enumerate(zip(comps, ops)):
            j = min(
                (j for j in range(6) if op not in hosting[j]),
                key=lambda j: (max(loads[j], default=0.0), j),
            )
            assert assignment[i] == j
            hosting[j].add(op)
            for k, c in enumerate(row):
                loads[j][k] += c

    def test_row_length_mismatch_rejected(self, monkeypatch):
        if not batch.HAVE_NUMPY:
            pytest.skip("numpy unavailable")
        monkeypatch.setattr(batch, "NUMPY_CUTOVER", 0)
        with pytest.raises(SchedulingError):
            batch.pack_least_loaded_batch([(1.0, 2.0)], ["a"], 2, 3)

    def test_infeasible_raises(self, monkeypatch):
        from repro.exceptions import InfeasibleScheduleError

        if not batch.HAVE_NUMPY:
            pytest.skip("numpy unavailable")
        monkeypatch.setattr(batch, "NUMPY_CUTOVER", 0)
        comps = [(1.0, 1.0, 1.0)] * 3
        ops = ["a", "a", "a"]  # 3 clones of one operator, 2 sites
        with pytest.raises(InfeasibleScheduleError):
            batch.pack_least_loaded_batch(
                comps, ops, 2, 3, clone_indices=[0, 1, 2]
            )


class TestFamilyCongestions:
    def test_matches_sequential_fold(self):
        p = 4
        load0 = [3.0, 1.0, 2.0]
        delta = [0.5, 0.25, 0.125]
        steps = batch.NUMPY_CUTOVER + 8  # force the numpy path if present
        out = batch.family_congestions(load0, delta, steps, p)
        assert len(out) == steps + 1
        load = list(load0)
        expected = [max(load) / p]
        for _ in range(steps):
            load = [a + b for a, b in zip(load, delta)]
            expected.append(max(load) / p)
        assert out == expected  # exact: strict left fold on both paths

    def test_python_and_numpy_paths_agree(self, monkeypatch):
        if not batch.HAVE_NUMPY:
            pytest.skip("numpy unavailable")
        load0, delta, steps, p = [7.0, 2.0], [0.1, 0.9], 100, 5
        with_numpy = batch.family_congestions(load0, delta, steps, p)
        monkeypatch.setattr(batch, "HAVE_NUMPY", False)
        without = batch.family_congestions(load0, delta, steps, p)
        assert with_numpy == without

    def test_zero_steps(self):
        assert batch.family_congestions([4.0], [1.0], 0, 2) == [2.0]


def test_numpy_flag_matches_environment():
    """HAVE_NUMPY must mirror actual importability (fast path active iff
    numpy is installed; the no-numpy CI job exercises the False side)."""
    try:
        import numpy  # noqa: F401

        available = True
    except ImportError:
        available = False
    assert batch.HAVE_NUMPY is available
