"""Tests for the numpy-gated batch kernels (repro.core.batch)."""

from __future__ import annotations

import random

import pytest

from repro import (
    CloneItem,
    ConvexCombinationOverlap,
    OperatorSpec,
    SchedulingError,
    WorkVector,
    lower_bound,
    lower_bound_family,
    pack_vectors,
    set_length,
)
from repro.core import batch
from repro.core.granularity import CommunicationModel
from repro.core.resource_model import ConvexCombinationOverlap as Overlap


def vecs(seed, n, d=3):
    rng = random.Random(seed)
    return [WorkVector([rng.uniform(0.0, 10.0) for _ in range(d)]) for _ in range(n)]


class TestSumLength:
    def test_matches_set_length_small(self):
        vs = vecs(0, 5)
        assert batch.sum_length(vs) == set_length(vs)

    def test_matches_set_length_above_cutover(self):
        vs = vecs(1, batch.NUMPY_CUTOVER + 20)
        assert batch.sum_length(vs) == pytest.approx(set_length(vs), rel=1e-12)

    def test_empty_requires_dimensionality(self):
        assert batch.sum_length([], d=3) == 0.0
        with pytest.raises(SchedulingError):
            batch.sum_length([])


class TestSetLengthBatch:
    def test_ragged_groups_with_empty(self):
        groups = [vecs(0, 3), [], vecs(1, batch.NUMPY_CUTOVER + 5)]
        out = batch.set_length_batch(groups, d=3)
        assert out[0] == pytest.approx(set_length(groups[0]))
        assert out[1] == 0.0
        assert out[2] == pytest.approx(set_length(groups[2]), rel=1e-12)

    def test_dimension_mismatch_rejected(self):
        groups = [[WorkVector([1.0, 2.0])] * batch.NUMPY_CUTOVER]
        if batch.HAVE_NUMPY:
            with pytest.raises(SchedulingError):
                batch.set_length_batch(groups, d=3)

    def test_invalid_dimensionality(self):
        with pytest.raises(SchedulingError):
            batch.set_length_batch([], d=0)


class TestLowerBoundsBatch:
    def test_matches_scalar_lower_bound(self):
        comm = CommunicationModel(alpha=1.0, beta=0.01)
        overlap = Overlap(0.5)
        rng = random.Random(9)
        specs = [
            OperatorSpec(
                name=f"op{i}",
                work=WorkVector([rng.uniform(1.0, 40.0) for _ in range(3)]),
                data_volume=rng.uniform(10.0, 200.0),
            )
            for i in range(6)
        ]
        family = [
            {spec.name: 1 for spec in specs},
            {spec.name: (2 if i % 2 else 1) for i, spec in enumerate(specs)},
            {spec.name: 3 for spec in specs},
        ]
        batched = lower_bound_family(specs, family, 4, comm, overlap)
        for degrees, lb in zip(family, batched):
            assert lb == pytest.approx(
                lower_bound(specs, degrees, 4, comm, overlap), rel=1e-12
            )

    def test_length_mismatch_rejected(self):
        with pytest.raises(SchedulingError):
            batch.lower_bounds_batch([[]], [0.0, 1.0], p=2, d=3)

    def test_invalid_p(self):
        with pytest.raises(SchedulingError):
            batch.lower_bounds_batch([[]], [0.0], p=0, d=3)

    def test_empty_specs_family(self):
        assert lower_bound_family([], [{}, {}], 2, None, None) == [0.0, 0.0]


class TestEq3OverEpsilon:
    @staticmethod
    def _schedule(n=50, p=6, seed=4):
        rng = random.Random(seed)
        items = [
            CloneItem(
                operator=f"op{i}",
                clone_index=0,
                work=WorkVector([rng.uniform(0.1, 10.0) for _ in range(3)]),
            )
            for i in range(n)
        ]
        return items, pack_vectors(items, p=p, overlap=ConvexCombinationOverlap(0.5))

    def test_matches_recompute_t_seq_per_epsilon(self):
        _, schedule = self._schedule()
        epsilons = (0.0, 0.1, 0.3, 0.5, 0.7, 1.0)
        spans = batch.eq3_makespans_over_epsilon(schedule, epsilons)
        for eps, span in zip(epsilons, spans):
            overlap = ConvexCombinationOverlap(eps)
            rebuilt = max(
                site.recompute_t_seq(overlap).t_site() for site in schedule.sites
            )
            assert span == rebuilt

    def test_pure_python_path_agrees(self, monkeypatch):
        _, schedule = self._schedule()
        epsilons = (0.2, 0.8)
        with_numpy = batch.eq3_makespans_over_epsilon(schedule, epsilons)
        monkeypatch.setattr(batch, "HAVE_NUMPY", False)
        without = batch.eq3_makespans_over_epsilon(schedule, epsilons)
        assert with_numpy == without

    def test_empty_schedule(self):
        from repro.core.schedule import Schedule

        spans = batch.eq3_makespans_over_epsilon(Schedule(3, 3), (0.1, 0.9))
        assert spans == [0.0, 0.0]

    def test_rejects_out_of_range_epsilon(self):
        _, schedule = self._schedule(n=4, p=2)
        with pytest.raises(SchedulingError):
            batch.eq3_makespans_over_epsilon(schedule, (1.5,))


class TestOverlapRobustness:
    def test_figure_shape_and_values(self):
        from repro.experiments import overlap_robustness

        _, schedule = TestEq3OverEpsilon._schedule()
        fig = overlap_robustness(schedule, (0.1, 0.5, 0.9))
        assert len(fig.series) == 1
        assert fig.series[0].xs == (0.1, 0.5, 0.9)
        expected = batch.eq3_makespans_over_epsilon(schedule, (0.1, 0.5, 0.9))
        assert list(fig.series[0].ys) == expected

    def test_requires_epsilons(self):
        from repro.exceptions import ConfigurationError
        from repro.experiments import overlap_robustness

        _, schedule = TestEq3OverEpsilon._schedule(n=4, p=2)
        with pytest.raises(ConfigurationError):
            overlap_robustness(schedule, ())


def test_numpy_flag_matches_environment():
    """HAVE_NUMPY must mirror actual importability (fast path active iff
    numpy is installed; the no-numpy CI job exercises the False side)."""
    try:
        import numpy  # noqa: F401

        available = True
    except ImportError:
        available = False
    assert batch.HAVE_NUMPY is available
