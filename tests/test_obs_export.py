"""Tests for the Perfetto exporters (repro.obs.export, repro.obs.timeline)."""

from __future__ import annotations

import json
import math

import pytest

from repro import (
    ConvexCombinationOverlap,
    PlacedClone,
    Schedule,
    SharingPolicy,
    WorkVector,
    simulate_phased,
)
from repro.core.schedule import PhasedSchedule
from repro.obs.export import (
    counter_event,
    duration_event,
    instant_event,
    process_name_event,
    span_events,
    thread_name_event,
    trace_payload,
    tracer_events,
    validate_trace_events,
    write_trace,
)
from repro.obs.timeline import (
    PHASE_LANE,
    schedule_result_events,
    simulation_events,
)
from repro.obs.tracer import Tracer
from repro.sim.faults import FaultPlan, FaultSpec

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # no-numpy CI job
    HAVE_NUMPY = False

OVERLAP = ConvexCombinationOverlap(0.5)


def clone(op, comps, index=0):
    w = WorkVector(comps)
    return PlacedClone(operator=op, clone_index=index, work=w, t_seq=OVERLAP.t_seq(w))


def make_phased():
    """Two phases x two sites with multi-clone loads (mirrors the faults
    test workload so fault plans built over it inject something)."""
    phased = PhasedSchedule()
    first = Schedule(2, 2)
    first.place(0, clone("a", [6.0, 1.0]))
    first.place(0, clone("b", [1.0, 5.0]))
    first.place(1, clone("c", [3.0, 3.0]))
    phased.append(first, "t1")
    second = Schedule(2, 2)
    second.place(0, clone("d", [2.0, 2.0]))
    second.place(1, clone("e", [4.0, 0.5]))
    second.place(1, clone("f", [0.5, 4.0]))
    phased.append(second, "t2")
    return phased


class TestEventBuilders:
    def test_duration_event_microseconds(self):
        event = duration_event("pack", start=1.5, seconds=0.25, pid=0, tid=3)
        assert event["ph"] == "X"
        assert event["ts"] == 1.5e6
        assert event["dur"] == 0.25e6
        assert event["pid"] == 0 and event["tid"] == 3
        assert "args" not in event

    def test_duration_event_clamps_negative(self):
        event = duration_event("x", start=0.0, seconds=-1e-12, pid=0, tid=0)
        assert event["dur"] == 0.0

    def test_instant_event_scope(self):
        event = instant_event("failure", at=2.0, pid=1, tid=4, scope="g")
        assert event["ph"] == "i"
        assert event["s"] == "g"

    def test_counter_event_copies_values(self):
        values = {"cpu": 0.5}
        event = counter_event("util", at=0.0, pid=1, values=values)
        values["cpu"] = 0.9
        assert event["args"] == {"cpu": 0.5}
        assert event["tid"] == 0

    def test_metadata_events(self):
        assert process_name_event(2, "sim")["args"] == {"name": "sim"}
        assert thread_name_event(2, 5, "site 4")["tid"] == 5


class TestSpanEvents:
    def _tracer(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer", p=4):
            with tracer.span("inner"):
                pass
        return tracer

    def test_flatten_preserves_nesting_by_time_inclusion(self):
        tracer = self._tracer()
        root = tracer.roots[0]
        events = span_events(root, pid=0, tid=0, base=root.start)
        assert [e["name"] for e in events] == ["outer", "inner"]
        outer, inner = events
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-6

    def test_attributes_become_args(self):
        tracer = self._tracer()
        root = tracer.roots[0]
        events = span_events(root, pid=0, tid=0, base=root.start)
        assert events[0]["args"] == {"p": 4}

    def test_tracer_events_prepends_metadata(self):
        events = tracer_events(self._tracer(), process_name="repro")
        assert events[0]["name"] == "process_name"
        assert events[1]["name"] == "thread_name"
        assert validate_trace_events(trace_payload(events)) == []

    def test_tracer_events_base_is_earliest_root(self):
        tracer = Tracer(enabled=True)
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        events = [e for e in tracer_events(tracer) if e["ph"] == "X"]
        assert events[0]["ts"] == 0.0
        assert events[1]["ts"] >= 0.0

    def test_empty_tracer_exports_only_metadata(self):
        events = tracer_events(Tracer(enabled=True))
        assert [e["ph"] for e in events] == ["M", "M"]


class TestWriteTrace:
    def test_written_file_is_loadable_and_valid(self, tmp_path):
        tracer = Tracer(enabled=True)
        with tracer.span("run"):
            pass
        path = tmp_path / "trace.json"
        write_trace(str(path), tracer_events(tracer))
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        assert validate_trace_events(payload) == []


class TestValidateTraceEvents:
    def test_valid_payload_has_no_problems(self):
        events = [
            process_name_event(0, "p"),
            duration_event("x", start=0.0, seconds=1.0, pid=0, tid=0),
            counter_event("c", at=0.0, pid=0, values={"v": 1.0}),
            instant_event("i", at=0.0, pid=0, tid=0),
        ]
        assert validate_trace_events(trace_payload(events)) == []

    def test_non_object_payload(self):
        assert validate_trace_events([1, 2]) == [
            "trace payload is not a JSON object"
        ]

    def test_missing_events_array(self):
        assert validate_trace_events({}) == [
            "trace payload has no 'traceEvents' array"
        ]

    def test_unknown_phase(self):
        problems = validate_trace_events({"traceEvents": [{"ph": "Z"}]})
        assert problems and "unknown phase" in problems[0]

    def test_negative_timestamp(self):
        bad = duration_event("x", start=-1.0, seconds=1.0, pid=0, tid=0)
        problems = validate_trace_events({"traceEvents": [bad]})
        assert any("'ts'" in p for p in problems)

    def test_complete_event_needs_duration(self):
        bad = duration_event("x", start=0.0, seconds=1.0, pid=0, tid=0)
        del bad["dur"]
        problems = validate_trace_events({"traceEvents": [bad]})
        assert any("'dur'" in p for p in problems)

    def test_non_integer_lane(self):
        bad = duration_event("x", start=0.0, seconds=1.0, pid=0, tid=0)
        bad["tid"] = "zero"
        problems = validate_trace_events({"traceEvents": [bad]})
        assert any("'tid'" in p for p in problems)

    def test_counter_tracks_must_be_numeric(self):
        bad = counter_event("c", at=0.0, pid=0, values={})
        bad["args"] = {"v": "high"}
        problems = validate_trace_events({"traceEvents": [bad]})
        assert any("not numeric" in p for p in problems)

    def test_instant_scope_flag(self):
        bad = instant_event("i", at=0.0, pid=0, tid=0)
        bad["s"] = "x"
        problems = validate_trace_events({"traceEvents": [bad]})
        assert any("scope" in p for p in problems)

    def test_problems_carry_event_index(self):
        good = duration_event("x", start=0.0, seconds=1.0, pid=0, tid=0)
        problems = validate_trace_events({"traceEvents": [good, {"ph": "Z"}]})
        assert problems[0].startswith("event[1]:")


class TestSimulationTimeline:
    def test_phase_lane_tiles_to_response_time(self):
        """The acceptance invariant: phase-lane durations sum exactly to
        the simulated makespan."""
        sim = simulate_phased(make_phased(), SharingPolicy.FAIR_SHARE)
        events = simulation_events(sim)
        phase_events = [
            e for e in events if e["ph"] == "X" and e["tid"] == PHASE_LANE
        ]
        assert len(phase_events) == len(sim.phases)
        total = math.fsum(e["dur"] for e in phase_events)
        assert total == math.fsum(p.makespan * 1e6 for p in sim.phases)
        assert abs(total - sim.response_time * 1e6) < 1e-6 * max(
            1.0, sim.response_time * 1e6
        )

    def test_phase_lane_under_faults_matches_faulted_makespan(self):
        """With a nonzero fault plan the timeline must tile to the
        *degraded* response time, not the analytic one."""
        phased = make_phased()
        plan = FaultPlan.build(FaultSpec.at_intensity(1.0), phased, seed=3)
        assert not plan.is_empty
        sim = simulate_phased(phased, SharingPolicy.FAIR_SHARE, plan=plan)
        assert sim.response_time > sim.analytic_response_time
        events = simulation_events(sim, plan=plan)
        total_us = math.fsum(
            e["dur"]
            for e in events
            if e["ph"] == "X" and e["tid"] == PHASE_LANE
        )
        assert total_us == math.fsum(p.makespan * 1e6 for p in sim.phases)

    def test_one_lane_per_site_with_clone_events(self):
        sim = simulate_phased(make_phased(), SharingPolicy.FAIR_SHARE)
        events = simulation_events(sim)
        lane_names = {
            e["tid"]: e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert lane_names[PHASE_LANE] == "phases"
        assert lane_names[1] == "site 0"
        assert lane_names[2] == "site 1"
        clones = [e for e in events if e.get("cat") == "clone"]
        placed = sum(
            len(site.clones)
            for phase in make_phased().phases
            for site in phase.sites
        )
        assert len(clones) == placed
        names = {e["name"] for e in clones}
        assert names == {"a#0", "b#0", "c#0", "d#0", "e#0", "f#0"}

    def test_clone_events_bounded_by_their_phase(self):
        sim = simulate_phased(make_phased(), SharingPolicy.FAIR_SHARE)
        events = simulation_events(sim)
        boundaries = []
        start = 0.0
        for phase in sim.phases:
            boundaries.append((start * 1e6, (start + phase.makespan) * 1e6))
            start += phase.makespan
        tolerance = 1e-3  # a microsecond fraction of rounding slack
        for e in events:
            if e.get("cat") != "clone":
                continue
            assert any(
                lo - tolerance <= e["ts"]
                and e["ts"] + e["dur"] <= hi + tolerance
                for lo, hi in boundaries
            ), e

    def test_counter_tracks_sample_utilization_and_close_at_zero(self):
        sim = simulate_phased(make_phased(), SharingPolicy.FAIR_SHARE)
        events = simulation_events(sim)
        counters = [e for e in events if e["ph"] == "C"]
        assert counters, "expected utilization counter samples"
        for e in counters:
            assert all(isinstance(v, float) for v in e["args"].values())
        by_name: dict[str, list] = {}
        for e in counters:
            by_name.setdefault(e["name"], []).append(e)
        for samples in by_name.values():
            last = max(samples, key=lambda e: e["ts"])
            assert set(last["args"].values()) == {0.0}

    def test_fault_instants_emitted_under_a_plan(self):
        phased = make_phased()
        plan = FaultPlan.build(FaultSpec.at_intensity(1.0), phased, seed=3)
        sim = simulate_phased(phased, SharingPolicy.FAIR_SHARE, plan=plan)
        events = simulation_events(sim, plan=plan)
        instants = [e for e in events if e["ph"] == "i"]
        assert len(instants) > 0
        counts = plan.counts()
        slowdowns = [e for e in instants if e["name"] == "slowdown"]
        failures = [e for e in instants if e["name"] == "site failure"]
        assert len(slowdowns) == counts["slowdowns"]
        assert len(failures) == counts["failures"]
        for e in instants:
            assert e["s"] in ("t", "p", "g")
            assert e["ts"] >= 0.0

    def test_no_plan_means_no_instants(self):
        sim = simulate_phased(make_phased(), SharingPolicy.FAIR_SHARE)
        assert [e for e in simulation_events(sim) if e["ph"] == "i"] == []

    def test_events_validate(self):
        phased = make_phased()
        plan = FaultPlan.build(FaultSpec.at_intensity(1.0), phased, seed=3)
        sim = simulate_phased(phased, SharingPolicy.FAIR_SHARE, plan=plan)
        events = simulation_events(sim, plan=plan)
        assert validate_trace_events(trace_payload(events)) == []


@pytest.mark.skipif(not HAVE_NUMPY, reason="workload generation requires numpy")
class TestScheduleResultTimeline:
    def _result(self):
        from repro.experiments import prepare_workload
        from repro.experiments.runner import schedule_query

        query = prepare_workload(3, 1, 2)[0]
        return schedule_query("treeschedule", query, p=4, f=0.7, epsilon=0.5)

    def test_phase_lane_tiles_to_analytic_response_time(self):
        result = self._result()
        events = schedule_result_events(result)
        total_us = math.fsum(
            e["dur"]
            for e in events
            if e["ph"] == "X" and e["tid"] == PHASE_LANE
        )
        expected = math.fsum(s.makespan for s in result.timelines) * 1e6
        assert abs(total_us - expected) < 1e-6 * max(1.0, expected)

    def test_site_events_span_t_site(self):
        result = self._result()
        events = schedule_result_events(result)
        site_events = [e for e in events if e.get("cat") == "site"]
        busy = sum(
            1
            for shelf in result.timelines
            for site in shelf.sites
            if site.clones > 0
        )
        assert len(site_events) == busy
        assert validate_trace_events(trace_payload(events)) == []

    def test_bound_only_result_exports_metadata_only(self):
        from repro.experiments import prepare_workload
        from repro.experiments.runner import schedule_query

        query = prepare_workload(3, 1, 2)[0]
        bound = schedule_query("optbound", query, p=4, f=0.7, epsilon=0.5)
        assert bound.phased_schedule is None
        events = schedule_result_events(bound)
        assert [e["ph"] for e in events] == ["M", "M"]


class TestSpanVocabulary:
    def test_known_names_include_search_spans(self):
        from repro.obs.export import KNOWN_SPAN_NAMES

        assert {"plan_search", "plan_enumerate", "plan_screen", "plan_score"} <= KNOWN_SPAN_NAMES

    def test_unknown_span_names_walks_children(self):
        from repro.obs.export import unknown_span_names

        spans = [
            {"name": "plan_search", "children": [
                {"name": "bogus_inner", "children": []},
                {"name": "plan_score"},
            ]},
            {"name": "bogus_outer"},
            "not-a-span",
        ]
        assert unknown_span_names(spans) == {"bogus_inner", "bogus_outer"}

    def test_unknown_span_names_empty_for_clean_tree(self):
        from repro.obs.export import unknown_span_names

        assert unknown_span_names([{"name": "schedule", "children": [{"name": "shelf"}]}]) == set()


class TestCounterTrackValidation:
    """Satellite coverage: the ph:"C" paths of validate_trace_events."""

    def test_mixed_numeric_and_string_keys_flag_only_the_bad_one(self):
        event = counter_event("depth", at=1.0, pid=0, values={"a": 1.0})
        event["args"] = {"a": 1.0, "b": "busy", "c": 2}
        problems = validate_trace_events({"traceEvents": [event]})
        assert len(problems) == 1
        assert "counter track 'b' is not numeric" in problems[0]

    def test_boolean_track_values_pass_as_ints(self):
        # bool is an int subclass; the validator follows Python's model.
        event = counter_event("flag", at=0.0, pid=0, values={"on": 1.0})
        event["args"] = {"on": True}
        assert validate_trace_events({"traceEvents": [event]}) == []

    def test_counter_without_args_object_is_flagged_once(self):
        event = counter_event("c", at=0.0, pid=0, values={"v": 1.0})
        del event["args"]
        problems = validate_trace_events({"traceEvents": [event]})
        assert problems == ["event[0]: 'C' event missing 'args' object"]

    def test_empty_args_counter_is_valid(self):
        event = counter_event("c", at=0.0, pid=0, values={})
        assert validate_trace_events({"traceEvents": [event]}) == []


class TestInstantVocabulary:
    def test_known_instants_cover_fault_and_slo_names(self):
        from repro.obs.export import KNOWN_INSTANT_NAMES

        assert {"slowdown", "site failure", "slo_breach"} <= KNOWN_INSTANT_NAMES

    def test_unknown_instant_names_accepts_both_containers(self):
        from repro.obs.export import unknown_instant_names

        events = [
            instant_event("slo_breach", at=0.0, pid=0, tid=0),
            instant_event("straggler site 3", at=1.0, pid=0, tid=0),
            instant_event("skew burst", at=2.0, pid=0, tid=0),
            instant_event("totally bogus", at=3.0, pid=0, tid=0),
            duration_event("not an instant", start=0.0, seconds=1.0, pid=0, tid=0),
            "not-an-event",
        ]
        assert unknown_instant_names(events) == {"totally bogus"}
        assert unknown_instant_names({"traceEvents": events}) == {"totally bogus"}

    def test_clean_payload_has_no_unknown_instants(self):
        from repro.obs.export import unknown_instant_names

        assert unknown_instant_names([]) == set()


class TestFleetEvents:
    def test_lanes_tracks_and_instants_render_and_validate(self):
        from repro.obs.timeline import fleet_events

        events = fleet_events(
            residencies=[
                ("q1", 0, 0.0, 5.0, {"slo": "latency", "degree": 2}),
                ("q1", 3, 0.0, 5.0, {"slo": "latency", "degree": 2}),
                ("q2", 0, 2.0, 1.5, {}),
            ],
            tracks={"queue depth": [(0.0, {"latency": 1.0}), (5.0, {"latency": 0.0})]},
            instants=[("slo_breach", 5.0, {"job": "q1"})],
        )
        assert validate_trace_events({"traceEvents": events}) == []
        # Site j draws on lane j + 1; each site is thread-named once.
        lanes = {e["tid"] for e in events if e.get("cat") == "resident"}
        assert lanes == {1, 4}
        names = [e for e in events if e["ph"] == "M" and e["name"] == "thread_name"]
        assert len(names) == 2
        counters = [e for e in events if e["ph"] == "C"]
        assert len(counters) == 2 and all(e["cat"] == "serve" for e in counters)
        instants = [e for e in events if e["ph"] == "i"]
        assert len(instants) == 1 and instants[0]["args"] == {"job": "q1"}

    def test_empty_inputs_export_only_process_metadata(self):
        from repro.obs.timeline import fleet_events

        events = fleet_events([], {})
        assert [e["ph"] for e in events] == ["M"]
        assert events[0]["name"] == "process_name"
