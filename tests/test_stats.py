"""Tests for workload statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BaseRelationNode,
    JoinNode,
    PAPER_PARAMETERS,
    PlanStructureError,
    Relation,
    annotate_plan,
    describe_query,
    generate_query,
    resource_mix,
)
from repro.plans.operator_tree import OperatorTree


class TestDescribeQuery:
    def test_counts_consistent(self):
        q = generate_query(10, np.random.default_rng(0))
        stats = describe_query(q)
        assert stats.num_joins == 10
        assert stats.num_operators == 11 + 10 + 10
        assert stats.num_tasks == len(q.task_tree)
        assert stats.task_tree_height == q.task_tree.height
        assert sum(stats.phase_widths) == stats.num_tasks
        assert stats.total_base_tuples == q.catalog.total_tuples()

    def test_largest_intermediate(self):
        q = generate_query(10, np.random.default_rng(0))
        stats = describe_query(q)
        assert stats.largest_intermediate_tuples == max(
            j.output_tuples for j in q.plan.joins()
        )
        # Key joins: the largest intermediate equals the largest base.
        assert stats.largest_intermediate_tuples == max(
            r.tuples for r in q.catalog
        )

    def test_bushiness_extremes(self):
        q = generate_query(1, np.random.default_rng(0))
        assert describe_query(q).bushiness == 1.0

    def test_bushiness_left_deep_is_zero(self):
        node = BaseRelationNode(Relation("R0", 1000))
        for i in range(4):
            node = JoinNode(f"J{i}", node, BaseRelationNode(Relation(f"B{i}", 100)))
        from repro import build_task_tree, expand_plan
        from repro.plans.generator import GeneratedQuery
        from repro.plans.query_graph import QueryGraph
        from repro import Catalog

        # Assemble a GeneratedQuery by hand around the explicit plan.
        catalog = Catalog(
            [Relation("R0", 1000)] + [Relation(f"B{i}", 100) for i in range(4)]
        )
        graph = QueryGraph(
            catalog.names, [("R0", "B0"), ("B0", "B1"), ("B1", "B2"), ("B2", "B3")]
        )
        op_tree = expand_plan(node)
        query = GeneratedQuery(
            catalog=catalog,
            graph=graph,
            plan=node,
            operator_tree=op_tree,
            task_tree=build_task_tree(op_tree),
        )
        assert describe_query(query).bushiness == 0.0

    def test_mean_phase_width(self):
        q = generate_query(8, np.random.default_rng(1))
        stats = describe_query(q)
        assert stats.mean_phase_width == pytest.approx(
            stats.num_tasks / (stats.task_tree_height + 1)
        )


class TestResourceMix:
    def test_kinds_sum_to_total(self):
        q = generate_query(6, np.random.default_rng(2))
        annotate_plan(q.operator_tree, PAPER_PARAMETERS)
        mix = resource_mix(q.operator_tree)
        summed = mix["scan"] + mix["build"] + mix["probe"]
        assert summed.isclose(mix["total"], rel_tol=1e-9, abs_tol=1e-9)

    def test_only_scans_touch_disk(self):
        q = generate_query(6, np.random.default_rng(2))
        annotate_plan(q.operator_tree, PAPER_PARAMETERS)
        mix = resource_mix(q.operator_tree)
        assert mix["scan"][1] > 0
        assert mix["build"][1] == 0.0
        assert mix["probe"][1] == 0.0

    def test_unannotated_rejected(self):
        q = generate_query(3, np.random.default_rng(2))
        with pytest.raises(PlanStructureError):
            resource_mix(q.operator_tree)

    def test_empty_tree_rejected(self):
        with pytest.raises(PlanStructureError):
            resource_mix(OperatorTree())
