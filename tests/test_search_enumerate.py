"""Tests for plan enumeration, canonical hashing and ε-Pareto (no numpy).

The enumerator, the canonical plan codec and the frontier construction
are all stdlib-only (``random.Random``, pure dataclasses), so this
module runs in the no-numpy CI job.
"""

from __future__ import annotations

import random

import pytest

from repro import Catalog, QueryGraph, Relation
from repro.exceptions import ConfigurationError, PlanStructureError
from repro.search import (
    canonical_plan,
    catalog_from_payload,
    count_exhaustive_plans,
    enumerate_exhaustive_plans,
    epsilon_dominates,
    epsilon_pareto_front,
    greedy_plan,
    mutate_plan,
    plan_from_payload,
    plan_key,
    plan_payload,
    random_plan,
)


def make_query(cards: dict[str, int], joins: list[tuple[str, str]]):
    catalog = Catalog([Relation(name, tuples) for name, tuples in cards.items()])
    return QueryGraph(list(cards), joins), catalog


def chain(n: int, base: int = 1_000):
    cards = {f"R{i}": base * (i + 1) for i in range(n)}
    names = list(cards)
    joins = [(names[i], names[i + 1]) for i in range(n - 1)]
    return make_query(cards, joins)


def star(n_leaves: int):
    cards = {"C": 50_000}
    cards.update({f"L{i}": 1_000 * (i + 1) for i in range(n_leaves)})
    joins = [("C", f"L{i}") for i in range(n_leaves)]
    return make_query(cards, joins)


CATALAN = [1, 1, 2, 5, 14, 42, 132, 429]


class TestCounting:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6, 7])
    def test_chain_counts_are_catalan(self, n):
        # Bushy plans of a chain query = binary trees over contiguous
        # intervals: Catalan(n - 1) of them.
        graph, _ = chain(n)
        assert count_exhaustive_plans(graph, limit=1_000) == CATALAN[n - 1]

    @pytest.mark.parametrize("leaves,expected", [(2, 2), (3, 6), (4, 24)])
    def test_star_counts_are_factorial(self, leaves, expected):
        # A star's connected subsets all contain the hub, so every plan
        # is a caterpillar joining one leaf per step: leaves! orders.
        graph, _ = star(leaves)
        assert count_exhaustive_plans(graph, limit=1_000) == expected

    def test_single_relation(self):
        graph, _ = chain(1)
        assert count_exhaustive_plans(graph, limit=10) == 1

    def test_count_saturates_at_limit(self):
        graph, _ = chain(12)  # Catalan(11) = 58786
        assert count_exhaustive_plans(graph, limit=100) == 101


class TestEnumeration:
    def test_all_plans_distinct(self):
        graph, catalog = chain(5)
        plans = enumerate_exhaustive_plans(graph, catalog, limit=100)
        keys = {plan_key(p) for p in plans}
        assert len(plans) == CATALAN[4] == len(keys)

    def test_leaf_sets_complete(self):
        graph, catalog = star(3)
        for plan in enumerate_exhaustive_plans(graph, catalog, limit=100):
            leaves = sorted(leaf.relation.name for leaf in plan.leaves())
            assert leaves == sorted(graph.relations)

    def test_over_limit_raises(self):
        graph, catalog = chain(12)
        with pytest.raises(PlanStructureError):
            enumerate_exhaustive_plans(graph, catalog, limit=100)

    def test_enumeration_deterministic(self):
        graph, catalog = chain(6)
        a = [plan_key(p) for p in enumerate_exhaustive_plans(graph, catalog, limit=100)]
        b = [plan_key(p) for p in enumerate_exhaustive_plans(graph, catalog, limit=100)]
        assert a == b

    def test_sampled_plans_are_enumerated(self):
        # The random generator explores exactly the space the DP counts:
        # every sampled plan's canonical key appears in the enumeration.
        graph, catalog = chain(6)
        keys = {plan_key(p) for p in enumerate_exhaustive_plans(graph, catalog, limit=100)}
        rng = random.Random(11)
        for _ in range(60):
            assert plan_key(random_plan(graph, catalog, rng)) in keys

    def test_greedy_plan_is_enumerated_and_deterministic(self):
        graph, catalog = chain(6)
        keys = {plan_key(p) for p in enumerate_exhaustive_plans(graph, catalog, limit=100)}
        assert plan_key(greedy_plan(graph, catalog)) in keys
        assert plan_key(greedy_plan(graph, catalog)) == plan_key(greedy_plan(graph, catalog))

    def test_mutation_stays_in_plan_space(self):
        graph, catalog = chain(6)
        keys = {plan_key(p) for p in enumerate_exhaustive_plans(graph, catalog, limit=100)}
        rng = random.Random(5)
        plan = greedy_plan(graph, catalog)
        for _ in range(40):
            plan = mutate_plan(plan, graph, catalog, rng)
            assert plan_key(plan) in keys

    def test_mutation_deterministic(self):
        graph, catalog = star(4)
        seed_plan = greedy_plan(graph, catalog)
        a = [plan_key(mutate_plan(seed_plan, graph, catalog, random.Random(3))) for _ in range(3)]
        b = [plan_key(mutate_plan(seed_plan, graph, catalog, random.Random(3))) for _ in range(3)]
        assert a == b


class TestCanonicalCodec:
    def test_round_trip_preserves_key(self):
        graph, catalog = star(4)
        for plan in enumerate_exhaustive_plans(graph, catalog, limit=100):
            rebuilt = plan_from_payload(plan_payload(plan))
            assert plan_key(rebuilt) == plan_key(plan)

    def test_canonical_plan_is_stable(self):
        graph, catalog = chain(5)
        plan = greedy_plan(graph, catalog)
        assert plan_key(canonical_plan(plan)) == plan_key(plan)

    def test_join_ids_do_not_affect_key(self):
        # Structural hash: two builds of the same shape share a key even
        # when their internal join ids differ.
        graph, catalog = chain(4)
        rng = random.Random(2)
        plan = random_plan(graph, catalog, rng)
        mutated_back = plan
        for _ in range(50):
            candidate = mutate_plan(mutated_back, graph, catalog, rng)
            if plan_key(candidate) == plan_key(plan):
                # Same structure found through a different construction
                # path (mutation suffixes its join ids).
                assert plan_payload(candidate) == plan_payload(plan)
                return
            mutated_back = candidate
        pytest.skip("mutation never revisited the start shape")

    def test_catalog_from_payload(self):
        graph, catalog = chain(4)
        plan = greedy_plan(graph, catalog)
        rebuilt = catalog_from_payload(plan_payload(plan))
        for name in graph.relations:
            assert rebuilt.get(name).tuples == catalog.get(name).tuples


class TestEpsilonPareto:
    def test_dominates_basic(self):
        assert epsilon_dominates((1.0, 1.0), (2.0, 2.0))
        assert not epsilon_dominates((1.0, 3.0), (2.0, 2.0))
        assert epsilon_dominates((1.0, 1.0), (1.0, 1.0))  # weak

    def test_dominates_epsilon_slack(self):
        assert not epsilon_dominates((1.05, 1.0), (1.0, 1.0))
        assert epsilon_dominates((1.05, 1.0), (1.0, 1.0), eps=0.05)

    def test_dominates_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            epsilon_dominates((1.0,), (1.0, 2.0))
        with pytest.raises(ConfigurationError):
            epsilon_dominates((1.0,), (1.0,), eps=-0.1)

    def test_exact_frontier_golden(self):
        items = [
            ("a", (1.0, 4.0)),
            ("b", (2.0, 2.0)),
            ("c", (4.0, 1.0)),
            ("d", (3.0, 3.0)),  # dominated by b
            ("e", (2.0, 2.0)),  # objective-duplicate of b; b wins the tie
        ]
        assert epsilon_pareto_front(items, eps=0.0) == ["a", "b", "c"]

    def test_exact_frontier_matches_brute_force(self):
        rng = random.Random(7)
        items = [
            (f"k{i}", (rng.randrange(1, 8) * 1.0, rng.randrange(1, 8) * 1.0, rng.randrange(1, 8) * 1.0))
            for i in range(40)
        ]
        front = set(epsilon_pareto_front(items, eps=0.0))
        by_key = dict(items)
        for key, obj in items:
            dominated = any(
                epsilon_dominates(other, obj)
                and (by_key[ok] != obj or ok < key)
                for ok, other in items
                if ok != key
            )
            assert (key not in front) == dominated

    def test_epsilon_cover_property(self):
        rng = random.Random(13)
        items = [
            (f"k{i}", (rng.uniform(1.0, 9.0), rng.uniform(1.0, 9.0)))
            for i in range(60)
        ]
        for eps in (0.0, 0.1, 0.5):
            front = epsilon_pareto_front(items, eps=eps)
            kept = {key: obj for key, obj in items if key in front}
            for _, obj in items:
                assert any(epsilon_dominates(kobj, obj, eps) for kobj in kept.values())

    def test_larger_eps_never_grows_frontier(self):
        rng = random.Random(29)
        items = [
            (f"k{i}", (rng.uniform(1.0, 9.0), rng.uniform(1.0, 9.0)))
            for i in range(50)
        ]
        sizes = [len(epsilon_pareto_front(items, eps=e)) for e in (0.0, 0.05, 0.2, 1.0)]
        assert sizes == sorted(sizes, reverse=True)
