"""Smoke tests: every example script runs cleanly end to end.

The examples double as acceptance tests of the public API; each is
executed in-process (``runpy``) with stdout captured.  The full
``paper_experiments.py`` sweep is exercised separately by the benchmark
suite and the CLI tests, so it is excluded here for runtime.
"""

from __future__ import annotations

import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "warehouse_star_join.py",
    "malleable_scheduling.py",
    "simulator_validation.py",
    "memory_constrained.py",
    "schedule_inspection.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out.splitlines()) > 5, f"{script} produced almost no output"


def test_all_examples_accounted_for():
    """Every example on disk is either smoke-tested here or the known
    long-running sweep."""
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(FAST_EXAMPLES) | {"paper_experiments.py"}


class TestExampleOutputs:
    def test_quickstart_reports_phases(self, capsys):
        runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
        out = capsys.readouterr().out
        assert "Total response time" in out
        assert "degree=" in out

    def test_warehouse_compares_algorithms(self, capsys):
        runpy.run_path(
            str(EXAMPLES_DIR / "warehouse_star_join.py"), run_name="__main__"
        )
        out = capsys.readouterr().out
        assert "TreeSchedule" in out and "Synchronous" in out and "OptBound" in out

    def test_memory_example_shows_ledger(self, capsys):
        runpy.run_path(
            str(EXAMPLES_DIR / "memory_constrained.py"), run_name="__main__"
        )
        out = capsys.readouterr().out
        assert "ledger" in out.lower()
        assert "spilled" in out.lower()

    def test_simulator_example_validates(self, capsys):
        runpy.run_path(
            str(EXAMPLES_DIR / "simulator_validation.py"), run_name="__main__"
        )
        out = capsys.readouterr().out
        assert "matches Equation (3)" in out
