"""Unit tests of the zero-dependency metrics stream (obs.metrics_stream).

Numpy-free by design: the instruments, the log-bucket sketch, the two
exposition writers, and the payload validator are all pure stdlib.
"""

import json
import math

import pytest

from repro.obs.metrics_stream import (
    METRICS_SCHEMA,
    CounterInstrument,
    GaugeInstrument,
    HistogramInstrument,
    LogBucketSketch,
    TimeSeriesRegistry,
    parse_metrics_jsonl,
    validate_metrics_payload,
)


class TestLogBucketSketch:
    def test_empty_quantile_is_zero(self):
        sketch = LogBucketSketch()
        assert sketch.quantile(50.0) == 0.0
        assert sketch.quantile(99.0) == 0.0
        assert sketch.count == 0

    def test_quantile_brackets_exact_nearest_rank(self):
        # The sketch promise: for any sample set, the reported quantile
        # is the upper boundary of the bucket holding the exact
        # nearest-rank order statistic — within one growth factor above.
        import random

        rng = random.Random(7)
        values = [rng.uniform(0.01, 500.0) for _ in range(500)]
        sketch = LogBucketSketch()
        for v in values:
            sketch.observe(v)
        ordered = sorted(values)
        for q in (50.0, 95.0, 99.0):
            rank = max(1, math.ceil(q / 100.0 * len(ordered)))
            exact = ordered[rank - 1]
            reported = sketch.quantile(q)
            assert exact <= reported <= exact * sketch.growth * (1 + 1e-12)

    def test_boundary_values_map_to_own_bucket(self):
        sketch = LogBucketSketch(lo=1.0, growth=2.0, buckets=8)
        # Exactly on a boundary: bucket i covers (lo*g^(i-1), lo*g^i].
        assert sketch._bucket_index(1.0) == 0
        assert sketch._bucket_index(2.0) == 1
        assert sketch._bucket_index(2.0000001) == 2
        assert sketch._bucket_index(128.0) == 7
        # Past the top finite boundary: the overflow bucket.
        assert sketch._bucket_index(129.0) == 8

    def test_overflow_saturates_at_top_boundary(self):
        sketch = LogBucketSketch(lo=1.0, growth=2.0, buckets=4)
        sketch.observe(10_000.0)
        assert sketch.quantile(50.0) == sketch.boundaries[-1]

    def test_non_positive_observations_land_in_bucket_zero(self):
        sketch = LogBucketSketch(lo=1.0, growth=2.0, buckets=4)
        sketch.observe(0.0)
        sketch.observe(-3.0)
        assert sketch.counts[0] == 2
        assert sketch.quantile(99.0) == sketch.lo

    def test_window_resets_cumulative_does_not(self):
        sketch = LogBucketSketch()
        sketch.observe(1.0)
        sketch.observe(2.0)
        assert sketch.window_count == 2
        sketch.mark_window()
        assert sketch.window_count == 0
        assert sketch.count == 2
        sketch.observe(4.0)
        assert sketch.window_quantile(50.0) >= 4.0
        assert sketch.quantile(10.0) <= 2.0

    def test_bucket_pairs_are_cumulative_and_end_at_inf(self):
        sketch = LogBucketSketch(lo=1.0, growth=2.0, buckets=4)
        for v in (0.5, 3.0, 100.0):
            sketch.observe(v)
        pairs = sketch.bucket_pairs()
        assert pairs[-1][0] == math.inf
        assert pairs[-1][1] == 3
        counts = [c for _, c in pairs]
        assert counts == sorted(counts)

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            LogBucketSketch(lo=0.0)
        with pytest.raises(ValueError):
            LogBucketSketch(growth=1.0)
        with pytest.raises(ValueError):
            LogBucketSketch(buckets=0)


class TestInstruments:
    def test_counter_is_monotone(self):
        counter = CounterInstrument("c")
        counter.add(2.0)
        counter.set_total(5.0)
        with pytest.raises(ValueError):
            counter.add(-1.0)
        with pytest.raises(ValueError):
            counter.set_total(4.0)
        assert counter.value == 5.0

    def test_gauge_goes_both_ways(self):
        gauge = GaugeInstrument("g")
        gauge.set(3.0)
        gauge.set(-1.5)
        assert gauge.value == -1.5

    def test_histogram_sample_record_closes_window(self):
        histogram = HistogramInstrument("h")
        histogram.observe(1.0)
        first = histogram.sample_record(10.0)
        assert first["count"] == 1 and first["window_count"] == 1
        second = histogram.sample_record(20.0)
        assert second["count"] == 1 and second["window_count"] == 0


class TestTimeSeriesRegistry:
    def test_get_or_create_and_type_conflict(self):
        registry = TimeSeriesRegistry()
        counter = registry.counter("x")
        assert registry.counter("x") is counter
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.counter("")

    def test_sample_appends_one_record_per_instrument(self):
        registry = TimeSeriesRegistry()
        registry.counter("c").add()
        registry.gauge("g").set(2.0)
        registry.histogram("h").observe(0.5)
        assert registry.sample(1.0) == 3
        assert registry.sample(2.0) == 3
        assert len(registry.samples) == 6
        assert [r["t"] for r in registry.series("g")] == [1.0, 2.0]
        assert registry.last_sample_at == 2.0

    def test_sample_times_must_not_decrease(self):
        registry = TimeSeriesRegistry()
        registry.gauge("g")
        registry.sample(5.0)
        registry.sample(5.0)  # equal is fine
        with pytest.raises(ValueError):
            registry.sample(4.0)

    def test_prometheus_text_shape(self):
        registry = TimeSeriesRegistry()
        registry.counter("b_total", "help text").add(3)
        registry.gauge("a_gauge").set(1.5)
        registry.histogram("lat", lo=1.0, growth=2.0, buckets=2).observe(1.5)
        text = registry.prometheus_text()
        lines = text.splitlines()
        # Sorted by instrument name; HELP only when given.
        assert lines[0] == "# TYPE a_gauge gauge"
        assert "# HELP b_total help text" in lines
        assert "b_total 3" in lines
        assert 'lat_bucket{le="1"} 0' in lines
        assert 'lat_bucket{le="2"} 1' in lines
        assert 'lat_bucket{le="+Inf"} 1' in lines
        assert "lat_sum 1.5" in lines
        assert "lat_count 1" in lines
        assert text.endswith("\n")

    def test_jsonl_round_trip_validates(self):
        registry = TimeSeriesRegistry()
        registry.counter("c").add(1)
        registry.gauge("g").set(0.25)
        registry.histogram("h").observe(2.0)
        registry.sample(0.0)
        registry.counter("c").add(2)
        registry.sample(7.5)
        records = parse_metrics_jsonl(registry.jsonl().splitlines())
        assert all(r["schema"] == METRICS_SCHEMA for r in records)
        assert validate_metrics_payload(records) == []
        # The dict-container form validates identically.
        assert validate_metrics_payload({"samples": records}) == []

    def test_write_files(self, tmp_path):
        registry = TimeSeriesRegistry()
        registry.gauge("g").set(1.0)
        registry.sample(0.0)
        prom = tmp_path / "m.prom"
        jsonl = tmp_path / "m.jsonl"
        registry.write_prometheus(str(prom))
        registry.write_jsonl(str(jsonl))
        assert "g 1" in prom.read_text()
        assert validate_metrics_payload(parse_metrics_jsonl(jsonl.open())) == []


class TestValidateMetricsPayload:
    def _sample(self, **over):
        record = {"t": 1.0, "name": "g", "type": "gauge", "value": 2.0}
        record.update(over)
        return record

    def test_container_errors(self):
        assert validate_metrics_payload(42) == [
            "metrics payload is neither a list nor a {'samples': ...} object"
        ]
        assert validate_metrics_payload({}) == [
            "metrics payload has no 'samples' array"
        ]

    def test_per_record_errors(self):
        problems = validate_metrics_payload(
            [
                "not a dict",
                self._sample(name=""),
                self._sample(t=-1.0),
                self._sample(type="summary"),
                self._sample(value="high"),
                self._sample(schema="bogus/9"),
            ]
        )
        joined = "\n".join(problems)
        assert "sample[0]: not an object" in joined
        assert "sample[1]: missing or empty 'name'" in joined
        assert "sample[2]: missing non-negative numeric 't'" in joined
        assert "sample[3]: unknown instrument type 'summary'" in joined
        assert "sample[4]: gauge missing finite numeric 'value'" in joined
        assert "sample[5]: unknown schema tag 'bogus/9'" in joined

    def test_decreasing_timestamps_flagged(self):
        problems = validate_metrics_payload(
            [self._sample(t=5.0), self._sample(t=3.0)]
        )
        assert any("timestamp 3.0 decreases" in p for p in problems)

    def test_counter_monotonicity_flagged(self):
        counter = {"t": 0.0, "name": "c", "type": "counter", "value": 5}
        problems = validate_metrics_payload(
            [counter, {**counter, "t": 1.0, "value": 3}]
        )
        assert any("counter 'c' decreases 5.0 -> 3" in p for p in problems)

    def test_type_flip_flagged(self):
        problems = validate_metrics_payload(
            [
                self._sample(name="x", type="counter"),
                self._sample(name="x", type="gauge", t=2.0),
            ]
        )
        assert any("'x' changes type counter -> gauge" in p for p in problems)

    def test_histogram_shape_checked(self):
        good = {
            "t": 0.0,
            "name": "h",
            "type": "histogram",
            "count": 2,
            "sum": 3.0,
            "quantiles": {"p50": 1.0, "p95": 2.0},
        }
        assert validate_metrics_payload([good]) == []
        problems = validate_metrics_payload(
            [
                {**good, "count": -1},
                {**good, "t": 1.0, "sum": float("nan")},
                {**good, "t": 2.0, "quantiles": {}},
                {**good, "t": 3.0, "quantiles": {"p50": "fast"}},
            ]
        )
        joined = "\n".join(problems)
        assert "integer 'count'" in joined
        assert "finite numeric 'sum'" in joined
        assert "'quantiles' object" in joined
        assert "quantile 'p50' is not a finite number" in joined

    def test_booleans_are_not_numbers(self):
        problems = validate_metrics_payload([self._sample(value=True)])
        assert any("finite numeric 'value'" in p for p in problems)

    def test_exported_registry_stream_is_valid(self):
        registry = TimeSeriesRegistry()
        registry.counter("done").add()
        registry.histogram("lat").observe(0.3)
        for t in (0.0, 1.0, 2.0):
            registry.counter("done").add()
            registry.sample(t)
        payload = json.loads(json.dumps(parse_metrics_jsonl(registry.jsonl().splitlines())))
        assert validate_metrics_payload(payload) == []
