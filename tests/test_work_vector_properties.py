"""Hypothesis property tests for WorkVector invariants (Section 5.1).

Complements the example-based tests in ``test_work_vector.py`` and the
end-to-end pipeline properties in ``test_properties.py``: these suites
exercise the vector algebra itself over randomized components.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro import (
    CommunicationModel,
    OperatorSpec,
    WorkVector,
    clone_work_vectors,
    total_work_vector,
    set_length,
    vector_sum,
)

# Bounded, non-negative, finite components: the domain of work vectors.
components = st.lists(
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=6,
)


def vectors(d: int):
    return st.lists(
        st.floats(min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False),
        min_size=d,
        max_size=d,
    ).map(WorkVector)


@given(components)
def test_length_at_most_total(comps):
    w = WorkVector(comps)
    # l(W) = max component can never exceed the processing area (sum).
    assert w.length() <= w.total() + 1e-6 * max(1.0, w.total())


@given(components)
def test_length_bounds_scaled_total(comps):
    w = WorkVector(comps)
    # ...and the total is at most d * l(W).
    assert w.total() <= w.d * w.length() + 1e-6 * max(1.0, w.total())


@given(st.lists(vectors(3), min_size=3, max_size=3))
def test_vector_sum_associativity(ws):
    a, b, c = ws
    left = (a + b) + c
    right = a + (b + c)
    assert left.isclose(right, rel_tol=1e-9, abs_tol=1e-9)
    assert vector_sum(ws).isclose(left, rel_tol=1e-9, abs_tol=1e-9)


@given(st.lists(vectors(3), min_size=0, max_size=5))
def test_set_length_subadditive(ws):
    # l(S) <= sum of individual lengths (triangle-style inequality).
    total = set_length(ws, d=3)
    assert total <= math.fsum(w.length() for w in ws) + 1e-6 * max(1.0, total)


@given(
    vectors(3),
    st.floats(min_value=1e-3, max_value=1e3, allow_nan=False, allow_infinity=False),
)
def test_division_inverts_scaling(w, k):
    scaled = (w * k) / k
    assert scaled.isclose(w, rel_tol=1e-9, abs_tol=1e-12)


@given(vectors(3), st.integers(min_value=1, max_value=32))
def test_division_splits_total(w, n):
    share = w / n
    assert math.isclose(share.total() * n, w.total(), rel_tol=1e-9, abs_tol=1e-9)
    assert math.isclose(share.length() * n, w.length(), rel_tol=1e-9, abs_tol=1e-9)


@given(
    vectors(3),
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
    st.integers(min_value=1, max_value=32),
)
def test_clone_vectors_sum_to_total(work, volume, n):
    """EA1 perfect partitioning: the clones sum to the total work vector."""
    spec = OperatorSpec(name="op", work=work, data_volume=volume)
    comm = CommunicationModel(alpha=0.015, beta=0.6e-6)
    clones = clone_work_vectors(spec, n, comm)
    assert len(clones) == n
    total = total_work_vector(spec, n, comm)
    assert vector_sum(clones).isclose(total, rel_tol=1e-9, abs_tol=1e-9)
    # Non-coordinator clones are identical shares.
    for clone in clones[1:]:
        assert clone == clones[1]
    # The coordinator carries at least as much work as any other clone.
    if n > 1:
        assert clones[0].dominates(clones[1])


@given(vectors(3), st.integers(min_value=1, max_value=16))
def test_total_work_nondecreasing_in_degree(work, n):
    """Section 7's only model requirement: W̄(n) is monotone in n."""
    spec = OperatorSpec(name="op", work=work, data_volume=1e6)
    comm = CommunicationModel(alpha=0.015, beta=0.6e-6)
    assert total_work_vector(spec, n + 1, comm).dominates(
        total_work_vector(spec, n, comm)
    )


def test_zero_scaling_rejected():
    from repro import InvalidWorkVectorError

    with pytest.raises(InvalidWorkVectorError):
        WorkVector([1.0]) / 0.0
