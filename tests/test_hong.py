"""Tests for the XPRS-style pairing baseline [Hon92]."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ConvexCombinationOverlap,
    hong_schedule,
    synchronous_schedule,
    tree_schedule,
)


class TestStructure:
    def test_all_operators_scheduled(self, annotated_query, comm, overlap):
        result = hong_schedule(
            annotated_query.operator_tree, annotated_query.task_tree,
            p=16, comm=comm, overlap=overlap, f=0.7,
        )
        assert set(result.homes) == {
            op.name for op in annotated_query.operator_tree.operators
        }
        result.phased_schedule.validate()

    def test_phase_count(self, annotated_query, comm, overlap):
        result = hong_schedule(
            annotated_query.operator_tree, annotated_query.task_tree,
            p=16, comm=comm, overlap=overlap, f=0.7,
        )
        assert result.phased_schedule.num_phases == annotated_query.task_tree.height + 1
        assert len(result.pairs) == result.phased_schedule.num_phases

    def test_probes_rooted_at_builds(self, annotated_query, comm, overlap):
        result = hong_schedule(
            annotated_query.operator_tree, annotated_query.task_tree,
            p=16, comm=comm, overlap=overlap, f=0.7,
        )
        for op in annotated_query.operator_tree.iter_probes():
            assert (
                result.homes[op.name].site_indices
                == result.homes[f"build({op.join_id})"].site_indices
            )

    def test_pairs_cover_tasks_with_floating_work(self, annotated_query, comm, overlap):
        result = hong_schedule(
            annotated_query.operator_tree, annotated_query.task_tree,
            p=16, comm=comm, overlap=overlap, f=0.7,
        )
        paired = {tid for phase in result.pairs for group in phase for tid in group}
        # Every non-empty group has 1 or 2 tasks (pairs or singletons).
        for phase in result.pairs:
            for group in phase:
                assert 1 <= len(group) <= 2
        all_tasks = {t.task_id for t in annotated_query.task_tree.tasks}
        assert paired <= all_tasks

    def test_groups_use_disjoint_blocks(self, annotated_query, comm, overlap):
        """Floating operators of different groups never share a site."""
        result = hong_schedule(
            annotated_query.operator_tree, annotated_query.task_tree,
            p=16, comm=comm, overlap=overlap, f=0.7,
        )
        task_of = {}
        for task in annotated_query.task_tree.tasks:
            for op in task.operators:
                task_of[op.name] = task.task_id
        probe_names = {
            op.name for op in annotated_query.operator_tree.iter_probes()
        }
        for phase_idx, phase_groups in enumerate(result.pairs):
            group_of_task = {
                tid: gi for gi, group in enumerate(phase_groups) for tid in group
            }
            site_group: dict[int, int] = {}
            schedule = result.phased_schedule.phases[phase_idx]
            for name in schedule.operators:
                if name in probe_names:
                    continue  # rooted; may overlay anywhere
                gi = group_of_task.get(task_of[name])
                if gi is None:
                    continue
                for site in schedule.home(name).site_indices:
                    assert site_group.setdefault(site, gi) == gi, (
                        f"groups share site {site} in phase {phase_idx}"
                    )


class TestRelativePerformance:
    def test_sits_between_treeschedule_and_synchronous(self, comm):
        """Pairwise sharing recovers part of the global-sharing benefit."""
        import repro

        overlap = ConvexCombinationOverlap(0.3)
        ts_total = hg_total = sy_total = 0.0
        for seed in (7, 23, 31):
            q = repro.generate_query(15, np.random.default_rng(seed))
            repro.annotate_plan(q.operator_tree, repro.PAPER_PARAMETERS)
            for p in (10, 40):
                ts_total += tree_schedule(
                    q.operator_tree, q.task_tree, p=p, comm=comm,
                    overlap=overlap, f=0.7,
                ).response_time
                hg_total += hong_schedule(
                    q.operator_tree, q.task_tree, p=p, comm=comm,
                    overlap=overlap, f=0.7,
                ).response_time
                sy_total += synchronous_schedule(
                    q.operator_tree, q.task_tree, p=p, comm=comm, overlap=overlap
                ).response_time
        assert ts_total < hg_total < sy_total

    def test_single_site(self, annotated_query, comm, overlap):
        result = hong_schedule(
            annotated_query.operator_tree, annotated_query.task_tree,
            p=1, comm=comm, overlap=overlap, f=0.7,
        )
        assert all(h.degree == 1 for h in result.homes.values())

    def test_deterministic(self, annotated_query, comm, overlap):
        a = hong_schedule(
            annotated_query.operator_tree, annotated_query.task_tree,
            p=16, comm=comm, overlap=overlap, f=0.7,
        )
        b = hong_schedule(
            annotated_query.operator_tree, annotated_query.task_tree,
            p=16, comm=comm, overlap=overlap, f=0.7,
        )
        assert a.response_time == b.response_time
