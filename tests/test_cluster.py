"""Heterogeneous site capacities: spec model, identity and oracle tests.

Three layers of guarantees:

* **Spec model** — :class:`repro.core.cluster.ClusterSpec` validation,
  the ``--cluster`` parser, spec-string round-trips, and the uniform
  normalization contract (``capacities_or_none()`` is the ``None``
  sentinel every kernel reads as "homogeneous fast path").
* **Uniform byte-identity** (the load-bearing invariant of the whole
  capacity model) — with every capacity exactly 1.0, the packer across
  all sort × rule combinations, all six registry algorithms, the
  rescheduler, and the serializers produce *byte-identical* output to
  runs that never mention capacities at all.
* **Heterogeneous oracles** — the numpy batch packer equals the pure
  Python reference above and below ``NUMPY_CUTOVER``; the in-place
  ``set_capacities`` repair equals the cold-rebuild oracle; simulated
  completion times scale as ``t / c``.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

try:
    import numpy as np
except ImportError:  # no-numpy CI job: core kernels only
    np = None  # type: ignore[assignment]

from repro import (
    CloneItem,
    ClusterSpec,
    ConfigurationError,
    ConvexCombinationOverlap,
    PlacedClone,
    PlacementRule,
    ScheduleDelta,
    Site,
    SiteClass,
    SortKey,
    WorkVector,
    pack_vectors,
    pack_vectors_reference,
    parse_cluster_spec,
    reschedule_reference,
    reschedule_schedule,
)
from repro.core.batch import NUMPY_CUTOVER
from repro.exceptions import SchedulingError, ServiceError
from repro.experiments.config import ExperimentConfig
from repro.serialization import (
    cluster_spec_from_dict,
    cluster_spec_to_dict,
    schedule_delta_from_dict,
    schedule_delta_to_dict,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.serve import ServeConfig, SitePool
from repro.sim import SharingPolicy, simulate_site

OVERLAP = ConvexCombinationOverlap(0.5)

PROPERTY_SETTINGS = settings(
    max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def items_of(n, d=3, seed=0, max_clones=3, prefix="op"):
    rng = random.Random(seed)
    out = []
    for i in range(n):
        for k in range(rng.randint(1, max_clones)):
            out.append(
                CloneItem(
                    operator=f"{prefix}{i}",
                    clone_index=k,
                    work=WorkVector([rng.uniform(0.1, 10.0) for _ in range(d)]),
                )
            )
    return out


class TestSiteClass:
    def test_defaults_to_unit_capacity(self):
        cls = SiteClass(name="gen1", count=4)
        assert cls.capacity == 1.0

    @pytest.mark.parametrize("name", ["", "a:b", "a,b"])
    def test_rejects_bad_names(self, name):
        with pytest.raises(ConfigurationError):
            SiteClass(name=name, count=1)

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ConfigurationError):
            SiteClass(name="x", count=0)

    @pytest.mark.parametrize(
        "capacity", [0.0, -1.0, float("nan"), float("inf")]
    )
    def test_rejects_bad_capacity(self, capacity):
        with pytest.raises(ConfigurationError):
            SiteClass(name="x", count=1, capacity=capacity)


class TestClusterSpec:
    def test_capacities_in_declaration_order(self):
        spec = ClusterSpec(
            (SiteClass("fast", 2, 2.0), SiteClass("slow", 3, 0.5))
        )
        assert spec.p == 5
        assert spec.capacities() == (2.0, 2.0, 0.5, 0.5, 0.5)
        assert spec.total_capacity() == 5.5
        assert not spec.is_uniform()
        assert spec.capacities_or_none() == spec.capacities()

    def test_uniform_spec_yields_none_sentinel(self):
        spec = ClusterSpec.uniform(7)
        assert spec.p == 7
        assert spec.is_uniform()
        assert spec.capacities_or_none() is None
        # Total capacity of p unit sites is exactly float(p): the
        # congestion bound l(S)/C stays bit-identical to l(S)/P.
        assert spec.total_capacity() == 7.0

    def test_rejects_empty_and_duplicate_classes(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(())
        with pytest.raises(ConfigurationError):
            ClusterSpec((SiteClass("a", 1), SiteClass("a", 2)))

    def test_uniform_rejects_nonpositive_p(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec.uniform(0)


class TestParseClusterSpec:
    def test_bare_integer_is_uniform(self):
        spec = parse_cluster_spec("12")
        assert spec == ClusterSpec.uniform(12)

    def test_classes_with_and_without_capacity(self):
        spec = parse_cluster_spec("fast:4:2.0,slow:12")
        assert spec.capacities() == (2.0,) * 4 + (1.0,) * 12

    @pytest.mark.parametrize(
        "text",
        [
            "",
            "   ",
            "abc",
            "fast:4:2.0:extra",
            "fast:x:2.0",
            "fast:4:fast",
            "fast:4:2.0,,slow:2",
            "fast:4:0.0",
            "fast:0:1.0",
            "fast:4,fast:2",
        ],
    )
    def test_rejects_malformed_specs(self, text):
        with pytest.raises(ConfigurationError):
            parse_cluster_spec(text)

    def test_spec_string_round_trips(self):
        for text in ("8", "fast:4:2.0,slow:12:0.5", "a:1:0.25,b:2,c:3:4.0"):
            spec = parse_cluster_spec(text)
            assert parse_cluster_spec(spec.spec_string()) == spec

    def test_codec_round_trips(self):
        spec = parse_cluster_spec("fast:4:2.0,slow:12:0.5")
        assert cluster_spec_from_dict(cluster_spec_to_dict(spec)) == spec


# Every deterministic sort × rule combination; RANDOM variants are
# exercised separately with mirrored seeded generators.
DETERMINISTIC_GRID = [
    (sort, rule)
    for sort in (SortKey.MAX_COMPONENT, SortKey.TOTAL, SortKey.INPUT_ORDER)
    for rule in (
        PlacementRule.LEAST_LOADED_LENGTH,
        PlacementRule.MIN_RESULTING_LENGTH,
        PlacementRule.ROUND_ROBIN,
        PlacementRule.FIRST_FIT,
    )
]


class TestUniformByteIdentity:
    """All capacities 1.0 ⇒ bit-identical to the capacity-free path."""

    @pytest.mark.parametrize("sort,rule", DETERMINISTIC_GRID)
    def test_pack_vectors_grid(self, sort, rule):
        items = items_of(30, seed=3)
        baseline = pack_vectors(items, p=8, overlap=OVERLAP, sort=sort, rule=rule)
        uniform = pack_vectors(
            items, p=8, overlap=OVERLAP, sort=sort, rule=rule,
            capacities=(1.0,) * 8,
        )
        assert schedule_to_dict(uniform) == schedule_to_dict(baseline)

    def test_pack_vectors_random_variants(self):
        items = items_of(20, seed=5)
        baseline = pack_vectors(
            items, p=6, overlap=OVERLAP, sort=SortKey.RANDOM,
            rule=PlacementRule.RANDOM, rng=random.Random(9),
        )
        uniform = pack_vectors(
            items, p=6, overlap=OVERLAP, sort=SortKey.RANDOM,
            rule=PlacementRule.RANDOM, rng=random.Random(9),
            capacities=(1.0,) * 6,
        )
        assert schedule_to_dict(uniform) == schedule_to_dict(baseline)

    @PROPERTY_SETTINGS
    @given(
        n=st.integers(min_value=1, max_value=40),
        # constraint (A) forbids co-resident clones of one operator, so
        # p must cover the widest operator (items_of caps clones at 3).
        p=st.integers(min_value=3, max_value=12),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_pack_vectors_property(self, n, p, seed):
        items = items_of(n, seed=seed)
        baseline = pack_vectors(items, p=p, overlap=OVERLAP)
        uniform = pack_vectors(
            items, p=p, overlap=OVERLAP, capacities=[1.0] * p
        )
        assert schedule_to_dict(uniform) == schedule_to_dict(baseline)

    def test_uniform_schedule_serializes_capacity_free(self):
        uniform = pack_vectors(
            items_of(10), p=4, overlap=OVERLAP, capacities=(1.0,) * 4
        )
        payload = schedule_to_dict(uniform)
        # The payload must be byte-identical to pre-capacity payloads —
        # store keys hash it, so even a redundant key would orphan
        # every historical cache entry.
        assert "capacities" not in payload

    def test_capacity_free_delta_serializes_without_key(self):
        delta = ScheduleDelta(remove_sites=(1,))
        assert "set_capacities" not in schedule_delta_to_dict(delta)

    @PROPERTY_SETTINGS
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        removed=st.integers(min_value=0, max_value=3),
    )
    def test_reschedule_property(self, seed, removed):
        delta = ScheduleDelta(remove_sites=tuple(range(removed)))
        baseline = pack_vectors(items_of(20, seed=seed), p=8, overlap=OVERLAP)
        uniform = pack_vectors(
            items_of(20, seed=seed), p=8, overlap=OVERLAP,
            capacities=(1.0,) * 8,
        )
        reschedule_schedule(baseline, delta, overlap=OVERLAP)
        reschedule_schedule(uniform, delta, overlap=OVERLAP)
        assert schedule_to_dict(uniform) == schedule_to_dict(baseline)


@pytest.mark.skipif(np is None, reason="query generation requires numpy")
class TestUniformRegistryIdentity:
    """Every registry algorithm is capacity-invariant at uniform 1.0."""

    ALGORITHMS = (
        "treeschedule", "synchronous", "hong", "optbound", "onedim",
        "malleable",
    )

    @staticmethod
    def _run(name, cluster):
        from repro import PAPER_PARAMETERS, annotate_plan, generate_query
        from repro.engine import ScheduleRequest, get_algorithm

        query = generate_query(6, np.random.default_rng(7))
        annotate_plan(query.operator_tree, PAPER_PARAMETERS)
        return get_algorithm(name)(
            query, ScheduleRequest(p=8, cluster=cluster)
        )

    @pytest.mark.parametrize("name", ALGORITHMS)
    def test_uniform_cluster_is_byte_identical(self, name):
        from repro.serialization import phased_schedule_to_dict

        baseline = self._run(name, None)
        uniform = self._run(name, ClusterSpec.uniform(8))
        assert uniform.response_time == baseline.response_time
        assert uniform.degrees == baseline.degrees
        if baseline.phased_schedule is None:
            assert uniform.phased_schedule is None
        else:
            assert phased_schedule_to_dict(
                uniform.phased_schedule
            ) == phased_schedule_to_dict(baseline.phased_schedule)

    def test_mismatched_cluster_size_rejected(self):
        from repro.engine import ScheduleRequest

        with pytest.raises(ConfigurationError):
            ScheduleRequest(p=8, cluster=ClusterSpec.uniform(9))


def capacity_vectors(p):
    return st.lists(
        st.floats(min_value=0.25, max_value=4.0, allow_nan=False),
        min_size=p, max_size=p,
    )


class TestHeterogeneousOracles:
    @PROPERTY_SETTINGS
    @given(
        n=st.integers(min_value=1, max_value=30),
        seed=st.integers(min_value=0, max_value=2**16),
        data=st.data(),
    )
    def test_packer_matches_reference_below_cutover(self, n, seed, data):
        p = 6
        capacities = data.draw(capacity_vectors(p))
        items = items_of(n, seed=seed, max_clones=2)
        assert len(items) < NUMPY_CUTOVER
        fast = pack_vectors(
            items, p=p, overlap=OVERLAP, capacities=capacities
        )
        slow = pack_vectors_reference(
            items, p=p, overlap=OVERLAP, capacities=capacities
        )
        assert schedule_to_dict(fast) == schedule_to_dict(slow)

    @PROPERTY_SETTINGS
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        data=st.data(),
    )
    def test_packer_matches_reference_above_cutover(self, seed, data):
        p = 10
        capacities = data.draw(capacity_vectors(p))
        items = items_of(NUMPY_CUTOVER, seed=seed, max_clones=2)
        assert len(items) >= NUMPY_CUTOVER
        fast = pack_vectors(
            items, p=p, overlap=OVERLAP, capacities=capacities
        )
        slow = pack_vectors_reference(
            items, p=p, overlap=OVERLAP, capacities=capacities
        )
        assert schedule_to_dict(fast) == schedule_to_dict(slow)

    def test_fast_sites_attract_work(self):
        # One 4x site among unit sites must end up with the largest
        # share of placed work under the capacity-normalized rule.
        items = items_of(40, seed=2)
        schedule = pack_vectors(
            items, p=5, overlap=OVERLAP, capacities=(4.0, 1.0, 1.0, 1.0, 1.0)
        )
        counts = [len(schedule.site(j).clones) for j in range(5)]
        assert counts[0] == max(counts)
        assert schedule.makespan() > 0.0

    def test_heterogeneous_schedule_round_trips(self):
        capacities = (2.0, 1.0, 0.5)
        schedule = pack_vectors(
            items_of(12, seed=4), p=3, overlap=OVERLAP, capacities=capacities
        )
        payload = schedule_to_dict(schedule)
        assert payload["capacities"] == list(capacities)
        restored = schedule_from_dict(payload)
        assert schedule_to_dict(restored) == payload
        assert restored.capacities() == capacities


class TestSetCapacitiesDelta:
    def test_delta_round_trips(self):
        delta = ScheduleDelta(set_capacities=((2, 0.5), (0, 4.0)))
        payload = schedule_delta_to_dict(delta)
        assert payload["set_capacities"] == [[2, 0.5], [0, 4.0]]
        assert schedule_delta_from_dict(payload) == delta

    def test_delta_rejects_bad_values(self):
        with pytest.raises(SchedulingError):
            ScheduleDelta(set_capacities=((0, 0.0),))
        with pytest.raises(SchedulingError):
            ScheduleDelta(set_capacities=((0, float("nan")),))
        with pytest.raises(SchedulingError):
            ScheduleDelta(set_capacities=((0, 2.0), (0, 3.0)))

    def test_resize_changes_makespan_not_residents(self):
        schedule = pack_vectors(items_of(20, seed=1), p=6, overlap=OVERLAP)
        residents = [
            [c.operator for c in schedule.site(j).clones] for j in range(6)
        ]
        before = schedule.makespan()
        stats = reschedule_schedule(
            schedule,
            ScheduleDelta(set_capacities=((0, 2.0),)),
            overlap=OVERLAP,
        )
        assert stats.sites_resized == 1
        assert stats.clones_moved == 0
        after = [
            [c.operator for c in schedule.site(j).clones] for j in range(6)
        ]
        assert after == residents  # in-place resize: nobody migrates
        assert schedule.site(0).capacity == 2.0
        assert schedule.makespan() <= before

    @PROPERTY_SETTINGS
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        site=st.integers(min_value=0, max_value=5),
        capacity=st.floats(min_value=0.25, max_value=4.0, allow_nan=False),
    )
    def test_fast_path_matches_reference(self, seed, site, capacity):
        delta = ScheduleDelta(set_capacities=((site, capacity),))
        schedule = pack_vectors(items_of(18, seed=seed), p=6, overlap=OVERLAP)
        oracle = reschedule_reference(schedule, delta, overlap=OVERLAP)
        reschedule_schedule(schedule, delta, overlap=OVERLAP)
        assert schedule_to_dict(schedule) == schedule_to_dict(oracle)

    def test_resize_out_of_range_site_rejected(self):
        schedule = pack_vectors(items_of(5), p=3, overlap=OVERLAP)
        with pytest.raises(SchedulingError):
            reschedule_schedule(
                schedule,
                ScheduleDelta(set_capacities=((7, 2.0),)),
                overlap=OVERLAP,
            )


class TestSimulatorScaling:
    @pytest.mark.parametrize(
        "policy",
        [SharingPolicy.OPTIMAL_STRETCH, SharingPolicy.FAIR_SHARE,
         SharingPolicy.SERIAL],
    )
    def test_completion_time_scales_inversely(self, policy):
        def site_with(capacity):
            site = Site(0, 3, capacity)
            for k, work in enumerate(([4.0, 1.0, 2.0], [2.0, 3.0, 1.0])):
                wv = WorkVector(work)
                site.place(
                    PlacedClone(
                        operator=f"op{k}", clone_index=0, work=wv,
                        t_seq=OVERLAP.t_seq(wv),
                    )
                )
            return site

        unit = simulate_site(site_with(1.0), policy)
        double = simulate_site(site_with(2.0), policy)
        assert double.completion_time == pytest.approx(
            unit.completion_time / 2.0
        )


class TestServeElasticity:
    def test_set_capacity_before_install(self):
        pool = SitePool(p=4, overlap=OVERLAP)
        assert pool.capacity_of(2) == 1.0
        pool.set_capacity(2, 0.5)
        assert pool.capacity_of(2) == 0.5
        assert pool.resizes == 1

    def test_set_capacity_validation(self):
        pool = SitePool(p=4, overlap=OVERLAP)
        with pytest.raises(ServiceError):
            pool.set_capacity(9, 2.0)
        with pytest.raises(SchedulingError):
            pool.set_capacity(0, -1.0)

    def test_heterogeneous_pool_requires_matching_length(self):
        with pytest.raises(ConfigurationError):
            SitePool(p=4, overlap=OVERLAP, capacities=(1.0, 2.0))
        pool = SitePool(p=2, overlap=OVERLAP, capacities=(2.0, 0.5))
        assert pool.capacity_of(0) == 2.0
        assert pool.capacity_of(1) == 0.5

    def test_serve_config_validates_capacity_events(self):
        with pytest.raises(ConfigurationError):
            ServeConfig(capacity_events=((10.0, 99, 2.0),))
        with pytest.raises(ConfigurationError):
            ServeConfig(capacity_events=((-1.0, 0, 2.0),))
        with pytest.raises(ConfigurationError):
            ServeConfig(capacity_events=((10.0, 0, 0.0),))
        with pytest.raises(ConfigurationError):
            ServeConfig(capacity_events=((10.0, 0),))
        config = ServeConfig(capacity_events=[(10, 0, 2)])
        assert config.capacity_events == ((10.0, 0, 2.0),)

    def test_serve_config_validates_cluster_size(self):
        with pytest.raises(ConfigurationError):
            ServeConfig(cluster=ClusterSpec.uniform(5))


class TestExperimentConfigCluster:
    def test_uniform_cluster_normalized_to_none(self):
        config = ExperimentConfig(
            site_counts=(8,), cluster=ClusterSpec.uniform(8)
        )
        assert config.cluster is None

    def test_site_axis_must_match_cluster(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(
                site_counts=(8, 16),
                cluster=parse_cluster_spec("fast:4:2.0,slow:4"),
            )

    def test_heterogeneous_cluster_kept(self):
        spec = parse_cluster_spec("fast:4:2.0,slow:4")
        config = ExperimentConfig(site_counts=(8,), cluster=spec)
        assert config.cluster == spec
