"""Tests for the OPERATORSCHEDULE list heuristic (Section 5.3, Figure 3)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    CommunicationModel,
    ConvexCombinationOverlap,
    InfeasibleScheduleError,
    OperatorSpec,
    PERFECT_OVERLAP,
    RootedPlacement,
    SchedulingError,
    WorkVector,
    certify,
    clone_work_vectors,
    lower_bound,
    operator_schedule,
    optimal_schedule,
    parallel_time,
    theorem51_fixed_degree_bound,
)

COMM = CommunicationModel(alpha=0.015, beta=0.6e-6)
ZERO_COMM = CommunicationModel(alpha=0.0, beta=0.0)
OVERLAP = ConvexCombinationOverlap(0.5)


def spec(name, cpu, disk, net=0.0, data=0.0):
    return OperatorSpec(name=name, work=WorkVector([cpu, disk, net]), data_volume=data)


small_specs = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=50.0),
        st.floats(min_value=0.0, max_value=50.0),
        st.floats(min_value=0.0, max_value=1e7),
    ),
    min_size=1,
    max_size=8,
).map(
    lambda raw: [
        spec(f"op{i}", cpu, disk, data=data) for i, (cpu, disk, data) in enumerate(raw)
    ]
)


class TestBasics:
    def test_single_operator_single_site(self):
        result = operator_schedule(
            [spec("a", 1.0, 1.0)], p=1, comm=COMM, overlap=OVERLAP
        )
        assert result.degrees["a"] == 1
        assert result.schedule.clone_count() == 1
        assert result.makespan > 0

    def test_empty_input_rejected(self):
        with pytest.raises(SchedulingError):
            operator_schedule([], p=2, comm=COMM, overlap=OVERLAP)

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchedulingError):
            operator_schedule(
                [spec("a", 1.0, 1.0), spec("a", 2.0, 2.0)],
                p=2,
                comm=COMM,
                overlap=OVERLAP,
            )

    def test_dimension_mismatch_rejected(self):
        a = OperatorSpec(name="a", work=WorkVector([1.0, 1.0]))
        b = OperatorSpec(name="b", work=WorkVector([1.0, 1.0, 1.0]))
        with pytest.raises(SchedulingError):
            operator_schedule([a, b], p=2, comm=COMM, overlap=OVERLAP)

    def test_makespan_matches_schedule(self):
        result = operator_schedule(
            [spec("a", 5.0, 1.0), spec("b", 1.0, 5.0)],
            p=2,
            comm=COMM,
            overlap=OVERLAP,
        )
        assert result.makespan == result.schedule.makespan()

    def test_constraint_a_holds(self):
        result = operator_schedule(
            [spec("a", 20.0, 20.0), spec("b", 5.0, 5.0)],
            p=4,
            comm=COMM,
            overlap=OVERLAP,
        )
        result.schedule.validate(result.degrees)


class TestDegreesOverride:
    def test_explicit_degrees_respected(self):
        result = operator_schedule(
            [spec("a", 8.0, 8.0)],
            p=8,
            comm=COMM,
            overlap=OVERLAP,
            degrees={"a": 3},
        )
        assert result.degrees["a"] == 3
        assert result.schedule.home("a").degree == 3

    def test_degree_above_p_rejected(self):
        with pytest.raises(InfeasibleScheduleError):
            operator_schedule(
                [spec("a", 8.0, 8.0)],
                p=2,
                comm=COMM,
                overlap=OVERLAP,
                degrees={"a": 3},
            )

    def test_degree_below_one_rejected(self):
        with pytest.raises(SchedulingError):
            operator_schedule(
                [spec("a", 8.0, 8.0)],
                p=2,
                comm=COMM,
                overlap=OVERLAP,
                degrees={"a": 0},
            )

    def test_partial_override_mixes_with_coarse_grain(self):
        result = operator_schedule(
            [spec("a", 8.0, 8.0), spec("b", 8.0, 8.0)],
            p=4,
            comm=COMM,
            overlap=OVERLAP,
            degrees={"a": 2},
        )
        assert result.degrees["a"] == 2
        assert 1 <= result.degrees["b"] <= 4


class TestRooted:
    def test_rooted_placement_fixed(self):
        rooted = RootedPlacement(spec=spec("r", 4.0, 4.0), site_indices=(2, 0))
        result = operator_schedule(
            [spec("f", 1.0, 1.0)], [rooted], p=3, comm=COMM, overlap=OVERLAP
        )
        assert result.schedule.home("r").site_indices == (2, 0)
        assert result.degrees["r"] == 2

    def test_rooted_site_out_of_range(self):
        rooted = RootedPlacement(spec=spec("r", 4.0, 4.0), site_indices=(5,))
        with pytest.raises(InfeasibleScheduleError):
            operator_schedule([spec("f", 1.0, 1.0)], [rooted], p=3, comm=COMM, overlap=OVERLAP)

    def test_rooted_degree_above_p(self):
        rooted = RootedPlacement(spec=spec("r", 4.0, 4.0), site_indices=(0, 1, 2))
        with pytest.raises(InfeasibleScheduleError):
            operator_schedule([], [rooted], p=2, comm=COMM, overlap=OVERLAP)

    def test_rooted_duplicate_sites_rejected(self):
        with pytest.raises(SchedulingError):
            RootedPlacement(spec=spec("r", 4.0, 4.0), site_indices=(1, 1))

    def test_rooted_only_schedule(self):
        rooted = RootedPlacement(spec=spec("r", 4.0, 4.0), site_indices=(0, 1))
        result = operator_schedule([], [rooted], p=2, comm=COMM, overlap=OVERLAP)
        expected = parallel_time(spec("r", 4.0, 4.0), 2, COMM, OVERLAP)
        assert math.isclose(result.makespan, expected)

    def test_floating_avoids_hot_rooted_site(self):
        # Rooted work pins site 0; the floating clone should go to site 1.
        rooted = RootedPlacement(spec=spec("r", 100.0, 100.0), site_indices=(0,))
        result = operator_schedule(
            [spec("f", 1.0, 1.0)],
            [rooted],
            p=2,
            comm=ZERO_COMM,
            overlap=OVERLAP,
            degrees={"f": 1},
        )
        assert result.schedule.home("f").site_indices == (1,)


class TestListRule:
    def test_complementary_vectors_share_site(self):
        """A CPU-heavy and a disk-heavy operator can overlap on one site.

        With P=1 both land on the site; the multi-dimensional T_site must
        beat the scalar sum of their stand-alone times under perfect
        overlap.
        """
        a, b = spec("a", 10.0, 0.0), spec("b", 0.0, 10.0)
        result = operator_schedule([a, b], p=1, comm=ZERO_COMM, overlap=PERFECT_OVERLAP)
        assert math.isclose(result.makespan, 10.0)

    def test_balances_length_across_sites(self):
        specs = [spec(f"op{i}", 4.0, 0.0) for i in range(4)]
        result = operator_schedule(
            specs, p=2, comm=ZERO_COMM, overlap=PERFECT_OVERLAP, degrees={s.name: 1 for s in specs}
        )
        # LPT on identical jobs: two per site.
        lengths = [site.length() for site in result.schedule.sites]
        assert lengths == [8.0, 8.0]

    def test_largest_vector_first_matters(self):
        # One big job plus several small: big one must not be squeezed last.
        specs = [spec("big", 10.0, 0.0)] + [spec(f"s{i}", 1.0, 0.0) for i in range(5)]
        result = operator_schedule(
            specs, p=2, comm=ZERO_COMM, overlap=PERFECT_OVERLAP, degrees={s.name: 1 for s in specs}
        )
        assert result.makespan == 10.0


class TestTheoremBounds:
    @settings(max_examples=40, deadline=None)
    @given(small_specs, st.integers(min_value=1, max_value=12))
    def test_theorem_51a_bound(self, specs, p):
        """Makespan within (2d+1) of LB for the chosen parallelization."""
        result = operator_schedule(specs, p=p, comm=COMM, overlap=OVERLAP, f=0.7)
        cert = certify(result.makespan, specs, result.degrees, p, COMM, OVERLAP)
        assert cert.satisfied, str(cert)

    @settings(max_examples=40, deadline=None)
    @given(small_specs, st.integers(min_value=1, max_value=12))
    def test_makespan_at_least_lower_bound(self, specs, p):
        result = operator_schedule(specs, p=p, comm=COMM, overlap=OVERLAP, f=0.7)
        lb = lower_bound(specs, result.degrees, p, COMM, OVERLAP)
        assert result.makespan >= lb - 1e-9 * max(1.0, lb)

    @settings(max_examples=40, deadline=None)
    @given(small_specs, st.integers(min_value=1, max_value=12))
    def test_schedule_structurally_valid(self, specs, p):
        result = operator_schedule(specs, p=p, comm=COMM, overlap=OVERLAP, f=0.7)
        result.schedule.validate(result.degrees)
        assert result.schedule.clone_count() == sum(result.degrees.values())

    def test_guarantee_value(self):
        assert theorem51_fixed_degree_bound(3) == 7.0


class TestVersusOptimal:
    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.1, max_value=20.0),
                st.floats(min_value=0.0, max_value=20.0),
            ),
            min_size=2,
            max_size=5,
        ),
        st.integers(min_value=2, max_value=3),
    )
    def test_heuristic_within_bound_of_true_optimum(self, raw, p):
        specs = [spec(f"op{i}", cpu, disk) for i, (cpu, disk) in enumerate(raw)]
        degrees = {s.name: 1 for s in specs}
        heur = operator_schedule(
            specs, p=p, comm=ZERO_COMM, overlap=OVERLAP, degrees=degrees
        )
        opt = optimal_schedule(
            specs, p=p, comm=ZERO_COMM, overlap=OVERLAP, degrees=degrees
        )
        assert heur.makespan >= opt.makespan - 1e-9
        d = specs[0].d
        assert heur.makespan <= (2 * d + 1) * opt.makespan + 1e-9

    def test_known_optimal_instance(self):
        # Two identical unit jobs on two sites: both algorithms hit T_seq.
        specs = [spec("a", 2.0, 0.0), spec("b", 2.0, 0.0)]
        degrees = {"a": 1, "b": 1}
        heur = operator_schedule(specs, p=2, comm=ZERO_COMM, overlap=OVERLAP, degrees=degrees)
        opt = optimal_schedule(specs, p=2, comm=ZERO_COMM, overlap=OVERLAP, degrees=degrees)
        assert math.isclose(heur.makespan, opt.makespan)


class TestDeterminism:
    def test_same_input_same_output(self):
        specs = [spec(f"op{i}", 3.0 + i, 2.0, data=1e5 * i) for i in range(6)]
        r1 = operator_schedule(specs, p=5, comm=COMM, overlap=OVERLAP)
        r2 = operator_schedule(specs, p=5, comm=COMM, overlap=OVERLAP)
        assert r1.makespan == r2.makespan
        assert {k: v.site_indices for k, v in r1.schedule.homes().items()} == {
            k: v.site_indices for k, v in r2.schedule.homes().items()
        }
