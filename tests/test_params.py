"""Tests for the Table 2 system parameters."""

from __future__ import annotations

import math

import pytest

from repro import PAPER_PARAMETERS, ConfigurationError, SystemParameters


class TestPaperValues:
    def test_table2_exact_values(self):
        p = PAPER_PARAMETERS
        assert p.cpu_mips == 1.0
        assert p.disk_seconds_per_page == 0.020
        assert p.alpha_startup_seconds == 0.015
        assert p.beta_seconds_per_byte == 0.6e-6
        assert p.tuple_bytes == 128
        assert p.tuples_per_page == 40
        assert p.instr_read_page == 5_000
        assert p.instr_write_page == 5_000
        assert p.instr_extract_tuple == 300
        assert p.instr_hash_tuple == 100
        assert p.instr_probe_table == 200

    def test_seconds_per_instruction(self):
        assert math.isclose(PAPER_PARAMETERS.seconds_per_instruction, 1e-6)

    def test_communication_model_wiring(self):
        comm = PAPER_PARAMETERS.communication_model()
        assert comm.alpha == 0.015
        assert comm.beta == 0.6e-6


class TestHelpers:
    def test_cpu_seconds(self):
        assert math.isclose(PAPER_PARAMETERS.cpu_seconds(5_000), 0.005)

    def test_cpu_seconds_negative(self):
        with pytest.raises(ConfigurationError):
            PAPER_PARAMETERS.cpu_seconds(-1)

    def test_pages(self):
        assert PAPER_PARAMETERS.pages(0) == 0
        assert PAPER_PARAMETERS.pages(40) == 1
        assert PAPER_PARAMETERS.pages(41) == 2

    def test_pages_negative(self):
        with pytest.raises(ConfigurationError):
            PAPER_PARAMETERS.pages(-1)

    def test_bytes_of(self):
        assert PAPER_PARAMETERS.bytes_of(10) == 1_280

    def test_bytes_negative(self):
        with pytest.raises(ConfigurationError):
            PAPER_PARAMETERS.bytes_of(-1)

    def test_scaled_override(self):
        fast = PAPER_PARAMETERS.scaled(cpu_mips=10.0)
        assert fast.cpu_mips == 10.0
        assert fast.disk_seconds_per_page == PAPER_PARAMETERS.disk_seconds_per_page
        # Original untouched (frozen dataclass).
        assert PAPER_PARAMETERS.cpu_mips == 1.0


class TestValidation:
    def test_zero_mips_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemParameters(cpu_mips=0.0)

    def test_negative_disk_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemParameters(disk_seconds_per_page=-1.0)

    def test_zero_tuple_bytes_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemParameters(tuple_bytes=0)

    def test_negative_instruction_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemParameters(instr_hash_tuple=-5)

    def test_hashable_for_caching(self):
        # prepare_workload caches on SystemParameters; it must be hashable.
        assert hash(SystemParameters()) == hash(SystemParameters())
