"""Tests for the SYNCHRONOUS one-dimensional adversary."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ConvexCombinationOverlap,
    OperatorKind,
    SchedulingError,
    synchronous_schedule,
)


class TestStructure:
    def test_phases_match_minshelf(self, annotated_query, comm, overlap):
        result = synchronous_schedule(
            annotated_query.operator_tree,
            annotated_query.task_tree,
            p=16,
            comm=comm,
            overlap=overlap,
        )
        assert result.num_phases == annotated_query.task_tree.height + 1

    def test_all_operators_scheduled(self, annotated_query, comm, overlap):
        result = synchronous_schedule(
            annotated_query.operator_tree,
            annotated_query.task_tree,
            p=16,
            comm=comm,
            overlap=overlap,
        )
        assert set(result.homes) == {
            op.name for op in annotated_query.operator_tree.operators
        }
        assert set(result.degrees) == set(result.homes)

    def test_schedules_validate(self, annotated_query, comm, overlap):
        result = synchronous_schedule(
            annotated_query.operator_tree,
            annotated_query.task_tree,
            p=16,
            comm=comm,
            overlap=overlap,
        )
        result.phased_schedule.validate()

    def test_probe_rooted_at_build_home(self, annotated_query, comm, overlap):
        result = synchronous_schedule(
            annotated_query.operator_tree,
            annotated_query.task_tree,
            p=16,
            comm=comm,
            overlap=overlap,
        )
        for op in annotated_query.operator_tree.iter_probes():
            probe_home = result.homes[op.name]
            build_home = result.homes[f"build({op.join_id})"]
            assert probe_home.site_indices == build_home.site_indices

    def test_response_time_positive_and_summed(self, annotated_query, comm, overlap):
        result = synchronous_schedule(
            annotated_query.operator_tree,
            annotated_query.task_tree,
            p=16,
            comm=comm,
            overlap=overlap,
        )
        assert result.response_time == pytest.approx(
            sum(result.phased_schedule.phase_makespans())
        )
        assert result.response_time > 0


class TestDisjointness:
    def test_no_sharing_between_floating_operators(self, annotated_query, comm, overlap):
        """The 1-D baseline gives concurrent floating operators disjoint
        sites (rooted probes may overlay, as their homes are inherited)."""
        result = synchronous_schedule(
            annotated_query.operator_tree,
            annotated_query.task_tree,
            p=32,
            comm=comm,
            overlap=overlap,
        )
        probe_names = {
            op.name for op in annotated_query.operator_tree.iter_probes()
        }
        for schedule in result.phased_schedule.phases:
            floating_sets = {
                name: set(home.site_indices)
                for name, home in schedule.homes().items()
                if name not in probe_names
            }
            names = list(floating_sets)
            for i, a in enumerate(names):
                for b in names[i + 1 :]:
                    assert not (floating_sets[a] & floating_sets[b]), (
                        f"{a} and {b} share sites under SYNCHRONOUS"
                    )


class TestScaling:
    def test_more_sites_never_much_worse(self, annotated_query_factory, comm, overlap):
        query = annotated_query_factory(12, 5)
        times = [
            synchronous_schedule(
                query.operator_tree, query.task_tree, p=p, comm=comm, overlap=overlap
            ).response_time
            for p in (4, 16, 64)
        ]
        assert times[2] < times[0]

    def test_single_site(self, annotated_query, comm, overlap):
        result = synchronous_schedule(
            annotated_query.operator_tree,
            annotated_query.task_tree,
            p=1,
            comm=comm,
            overlap=overlap,
        )
        assert all(home.degree == 1 for home in result.homes.values())

    def test_more_tasks_than_sites_handled(self, annotated_query_factory, comm, overlap):
        # 30-join query has phases with many concurrent tasks; P=2 forces
        # the LPT fallback path.
        query = annotated_query_factory(30, 9)
        result = synchronous_schedule(
            query.operator_tree, query.task_tree, p=2, comm=comm, overlap=overlap
        )
        result.phased_schedule.validate()
        assert result.response_time > 0


class TestErrors:
    def test_unannotated_plan_rejected(self, params, comm, overlap):
        import repro

        query = repro.generate_query(4, np.random.default_rng(0))
        from repro.exceptions import PlanStructureError

        with pytest.raises(PlanStructureError):
            synchronous_schedule(
                query.operator_tree, query.task_tree, p=4, comm=comm, overlap=overlap
            )


class TestOneDimensionalBlindness:
    def test_ignores_resource_mix(self, comm):
        """SYNCHRONOUS treats operators as scalars: its placement is
        identical whether the work sits on CPU or disk."""
        import repro

        query = repro.generate_query(6, np.random.default_rng(11))
        repro.annotate_plan(query.operator_tree, repro.PAPER_PARAMETERS)
        overlap = ConvexCombinationOverlap(0.5)
        r1 = synchronous_schedule(
            query.operator_tree, query.task_tree, p=8, comm=comm, overlap=overlap
        )
        # Swap CPU and disk components of every spec: scalar work
        # unchanged.  Attached specs are write-once, so the swapped view
        # goes in as a detached annotation instead of an in-place edit.
        from repro.plans.physical_ops import use_annotation

        swapped = {}
        for op in query.operator_tree.operators:
            w = op.spec.work
            swapped[op.name] = repro.OperatorSpec(
                name=op.spec.name,
                work=repro.WorkVector([w[1], w[0], w[2]]),
                data_volume=op.spec.data_volume,
            )
        with use_annotation(swapped):
            r2 = synchronous_schedule(
                query.operator_tree, query.task_tree, p=8, comm=comm, overlap=overlap
            )
        assert {k: v.site_indices for k, v in r1.homes.items()} == {
            k: v.site_indices for k, v in r2.homes.items()
        }
