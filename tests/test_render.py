"""Tests for ASCII schedule rendering."""

from __future__ import annotations

from repro import PlacedClone, Schedule, WorkVector, tree_schedule
from repro.core.schedule import PhasedSchedule
from repro.render import render_load_bars, render_phased, render_schedule


def small_schedule():
    s = Schedule(3, 3)
    s.place(0, PlacedClone("scan(A)", 0, WorkVector([2.0, 4.0, 0.5]), 5.0))
    s.place(0, PlacedClone("build(J0)", 0, WorkVector([1.0, 0.0, 0.5]), 1.2))
    s.place(1, PlacedClone("scan(B)", 0, WorkVector([3.0, 1.0, 0.2]), 3.4))
    return s


class TestRenderSchedule:
    def test_contains_sites_and_metrics(self):
        text = render_schedule(small_schedule())
        assert "site" in text
        assert "scan(A)#0" in text
        assert "(idle)" in text  # site 2 is empty
        assert "makespan" in text
        assert "bottleneck" in text

    def test_resource_names_for_3d(self):
        text = render_schedule(small_schedule())
        assert "cpu" in text and "disk" in text and "net" in text

    def test_generic_names_for_other_d(self):
        s = Schedule(1, 2)
        s.place(0, PlacedClone("a", 0, WorkVector([1.0, 1.0]), 1.5))
        text = render_schedule(s)
        assert "r0" in text and "r1" in text

    def test_clone_overflow_elided(self):
        s = Schedule(1, 2)
        for i in range(7):
            s.place(0, PlacedClone(f"op{i}", 0, WorkVector([1.0, 0.0]), 1.0))
        text = render_schedule(s, max_clone_names=3)
        assert "+4" in text


class TestRenderLoadBars:
    def test_bars_scale_to_peak(self):
        text = render_load_bars(small_schedule(), width=10)
        lines = text.splitlines()
        assert "peak" in lines[0]
        # The most loaded site's bar is full-width.
        assert "#" * 10 in text

    def test_empty_schedule(self):
        text = render_load_bars(Schedule(2, 2))
        assert "peak 0" in text


class TestRenderSiteTimeline:
    def _site_sim(self):
        from repro import SharingPolicy, WorkVector
        from repro.core.resource_model import ConvexCombinationOverlap
        from repro.core.site import Site
        from repro.sim.simulator import simulate_site

        overlap = ConvexCombinationOverlap(0.5)
        site = Site(0, 2)
        for i, comps in enumerate([[6.0, 1.0], [1.0, 5.0], [2.0, 2.0]]):
            w = WorkVector(comps)
            site.place(PlacedClone(f"op{i}", 0, w, overlap.t_seq(w)))
        return simulate_site(site, SharingPolicy.SERIAL)

    def test_contains_all_clones(self):
        from repro.render import render_site_timeline

        text = render_site_timeline(self._site_sim())
        for name in ("op0#0", "op1#0", "op2#0"):
            assert name in text

    def test_bars_scale_to_horizon(self):
        from repro.render import render_site_timeline

        text = render_site_timeline(self._site_sim(), width=20)
        assert "simulated" in text
        # Serial policy: bars are disjoint, each row contains '='.
        body = text.splitlines()[1:]
        assert all("=" in line for line in body)

    def test_empty_site(self):
        from repro import SharingPolicy
        from repro.core.site import Site
        from repro.render import render_site_timeline
        from repro.sim.simulator import simulate_site

        sim = simulate_site(Site(3, 2), SharingPolicy.FAIR_SHARE)
        text = render_site_timeline(sim)
        assert "site 3" in text


class TestRenderPhased:
    def test_summarizes_phases(self, annotated_query, comm, overlap):
        result = tree_schedule(
            annotated_query.operator_tree, annotated_query.task_tree,
            p=8, comm=comm, overlap=overlap, f=0.7,
        )
        text = render_phased(result.phased_schedule)
        assert "total response time" in text
        assert text.count("\n") >= result.num_phases + 2
        for label in result.phase_labels:
            assert label.split(",")[0] in text

    def test_empty_phased(self):
        text = render_phased(PhasedSchedule())
        assert "total response time 0" in text
