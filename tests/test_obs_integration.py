"""End-to-end observability: tracing changes no output bytes, span
forests are deterministic at any worker count, and TraceSession writes
valid Perfetto/manifest/event-log artifacts."""

from __future__ import annotations

import json
import os

import pytest

from repro.experiments import prepare_workload
from repro.experiments.cli import main
from repro.experiments.config import PAPER_CONFIG
from repro.experiments.parallel import ParallelRunner, SweepPoint
from repro.experiments.runner import schedule_query
from repro.obs import (
    EVENTS_FILE,
    MANIFEST_FILE,
    TRACE_FILE,
    TraceSession,
    Tracer,
    collect_point_keys,
    use_tracer,
    validate_trace_events,
)
from repro.serialization import schedule_result_to_dict
from repro.store import ENV_CACHE_DIR, KIND_POINT, ArtifactStore, content_key

GRID = [
    SweepPoint("treeschedule", 4, 2, 3, p, 0.7, 0.5)
    for p in (4, 8, 16)
]

CLI_ARGS = ["fig6b", "--quick", "--queries", "1", "--sites", "4", "8", "--json"]


@pytest.fixture(autouse=True)
def _no_env_store(monkeypatch):
    """Isolate from an ambient REPRO_CACHE_DIR — and scrub it again on
    teardown: the CLI's --cache-dir writes the variable into os.environ
    (for forked workers), which monkeypatch cannot restore when the
    variable did not exist before the test."""
    monkeypatch.delenv(ENV_CACHE_DIR, raising=False)
    yield
    os.environ.pop(ENV_CACHE_DIR, None)


def _strip(span_dict_or_span, drop=("workers",)):
    """Structural view of a span (tree): names + attributes, no clocks.

    ``store_key`` and timing vary run to run; ``workers`` is the one
    sweep attribute that legitimately differs between worker counts.
    """
    attrs = {
        k: v
        for k, v in span_dict_or_span.attributes.items()
        if k not in drop and k != "store_key"
    }
    return (
        span_dict_or_span.name,
        tuple(sorted(attrs.items())),
        tuple(_strip(child, drop) for child in span_dict_or_span.children),
    )


class TestTracingChangesNoResults:
    def test_schedule_query_equal_with_tracing_on(self):
        query = prepare_workload(3, 1, 2)[0]
        baseline = schedule_query("treeschedule", query, p=6, f=0.7, epsilon=0.5)
        with use_tracer(Tracer(enabled=True)):
            traced = schedule_query(
                "treeschedule", query, p=6, f=0.7, epsilon=0.5
            )
        a = schedule_result_to_dict(baseline)
        b = schedule_result_to_dict(traced)
        # Tracing adds instrumentation (spans, timer noise) but must not
        # perturb the schedule itself.
        a.pop("instrumentation")
        b.pop("instrumentation")
        assert a == b

    def test_runner_values_equal_with_tracing_on(self):
        baseline = ParallelRunner().run(GRID)
        with use_tracer(Tracer(enabled=True)):
            traced = ParallelRunner().run(GRID)
        assert traced == baseline


class TestCliByteIdentity:
    def _stdout(self, capsys, args):
        assert main(args) == 0
        out, _err = capsys.readouterr()
        return out

    def test_stdout_identical_with_trace_flag(self, capsys):
        baseline = self._stdout(capsys, CLI_ARGS)
        traced = self._stdout(capsys, [*CLI_ARGS, "--trace"])
        assert traced == baseline

    def test_stdout_identical_with_trace_dir(self, capsys, tmp_path):
        baseline = self._stdout(capsys, CLI_ARGS)
        traced = self._stdout(
            capsys, [*CLI_ARGS, "--trace-dir", str(tmp_path / "t")]
        )
        assert traced == baseline

    def test_stdout_identical_at_any_worker_count(self, capsys, tmp_path):
        baseline = self._stdout(capsys, CLI_ARGS)
        traced = self._stdout(
            capsys,
            [
                *CLI_ARGS,
                "--workers",
                "2",
                "--trace-dir",
                str(tmp_path / "t"),
            ],
        )
        assert traced == baseline

    def test_trace_flag_prints_summary_to_stderr(self, capsys):
        assert main([*CLI_ARGS, "--trace"]) == 0
        _out, err = capsys.readouterr()
        assert "[trace] span summary" in err
        assert "sweep" in err


class TestSpanForestDeterminism:
    def _point_forest(self, workers):
        tracer = Tracer(enabled=True)
        with use_tracer(tracer):
            ParallelRunner(workers=workers).run(GRID)
        (sweep,) = tracer.roots
        assert sweep.name == "sweep"
        return [_strip(child) for child in sweep.children]

    def test_same_structure_at_workers_1_and_2(self):
        serial = self._point_forest(1)
        parallel = self._point_forest(2)
        assert serial == parallel
        assert len(serial) == len(GRID)

    def test_points_in_input_index_order(self):
        tracer = Tracer(enabled=True)
        with use_tracer(tracer):
            ParallelRunner(workers=2).run(GRID)
        points = tracer.roots[0].children
        assert [s.attributes["index"] for s in points] == list(range(len(GRID)))

    def test_stitched_points_tile_sequentially(self):
        """Re-rooted worker spans lie on the logical sequential timeline:
        point k+1 starts exactly where point k ended."""
        tracer = Tracer(enabled=True)
        with use_tracer(tracer):
            ParallelRunner(workers=2).run(GRID)
        sweep = tracer.roots[0]
        cursor = sweep.start
        for span in sweep.children:
            assert span.start == pytest.approx(cursor)
            cursor = span.end

    def test_cached_points_appear_as_markers(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        ParallelRunner(store=store).run(GRID)  # warm the store, untraced
        tracer = Tracer(enabled=True)
        with use_tracer(tracer):
            ParallelRunner(store=store).run(GRID)
        points = tracer.roots[0].children
        assert len(points) == len(GRID)
        for span in points:
            assert span.attributes["cached"] is True
            assert span.attributes["store_key"]
            assert span.seconds == 0.0


class TestTraceSession:
    def _run_session(self, tmp_path, store=None):
        session = TraceSession(
            tmp_path / "trace",
            target="fig6a",
            argv=["fig6a", "--quick"],
            config=PAPER_CONFIG,
            store=store,
        )
        with session:
            ParallelRunner(store=store).run(GRID)
            assert session.log is not None
            session.log.emit("figure", figure_id="fig6a", seconds=0.5)
        return session

    def test_artifacts_written_and_trace_validates(self, tmp_path):
        self._run_session(tmp_path)
        trace_dir = tmp_path / "trace"
        assert (trace_dir / TRACE_FILE).exists()
        assert (trace_dir / MANIFEST_FILE).exists()
        assert (trace_dir / EVENTS_FILE).exists()
        payload = json.loads((trace_dir / TRACE_FILE).read_text())
        assert validate_trace_events(payload) == []
        names = {e["name"] for e in payload["traceEvents"]}
        assert {"sweep", "point", "schedule", "tree_schedule"} <= names

    def test_event_log_brackets_the_run(self, tmp_path):
        self._run_session(tmp_path)
        lines = [
            json.loads(line)
            for line in (tmp_path / "trace" / EVENTS_FILE)
            .read_text()
            .splitlines()
        ]
        events = [line["event"] for line in lines]
        assert events[0] == "run_start"
        assert events[-1] == "run_end"
        assert "figure" in events
        assert lines[-1]["ok"] is True
        assert lines[-1]["spans"] > 0
        assert all(line["t"] >= 0.0 for line in lines)

    def test_manifest_config_hash_recomputable(self, tmp_path):
        self._run_session(tmp_path)
        manifest = json.loads(
            (tmp_path / "trace" / MANIFEST_FILE).read_text()
        )
        assert manifest["schema"] == "repro-manifest/1"
        assert manifest["target"] == "fig6a"
        assert manifest["seed"] == PAPER_CONFIG.seed
        # The CI trace-roundtrip check: the hash must be recomputable
        # from the manifest alone with the store's hashing scheme.
        recomputed = content_key("manifest-config", manifest["config"])
        assert recomputed == manifest["config_hash"]
        assert manifest["span_summary"]["point"]["count"] == len(GRID)
        assert manifest["wall_seconds"] > 0.0

    def test_manifest_point_keys_exist_in_store(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        self._run_session(tmp_path, store=store)
        manifest = json.loads(
            (tmp_path / "trace" / MANIFEST_FILE).read_text()
        )
        assert len(manifest["point_keys"]) == len(GRID)
        assert manifest["store_root"] == str(store.root)
        assert manifest["store_stats"]["writes"] == len(GRID)
        reader = ArtifactStore(tmp_path / "cache")
        for key in manifest["point_keys"]:
            assert reader.get(KIND_POINT, key) is not None

    def test_no_dir_session_traces_without_files(self, tmp_path):
        session = TraceSession(None, target="fig6a")
        with session:
            ParallelRunner().run(GRID[:1])
        assert session.log is None
        assert list(tmp_path.iterdir()) == []
        assert session.tracer.roots
        assert any("sweep" in line for line in session.summary_lines())

    def test_exception_still_writes_artifacts(self, tmp_path):
        session = TraceSession(tmp_path / "trace", target="fig6a")
        with pytest.raises(ValueError):
            with session:
                raise ValueError("boom")
        lines = (tmp_path / "trace" / EVENTS_FILE).read_text().splitlines()
        assert json.loads(lines[-1])["ok"] is False
        assert (tmp_path / "trace" / MANIFEST_FILE).exists()

    def test_collect_point_keys_dedups_and_sorts(self):
        tracer = Tracer(enabled=True)
        with tracer.span("point", store_key="b"):
            pass
        with tracer.span("point", store_key="a"):
            pass
        with tracer.span("point", store_key="a"):
            pass
        with tracer.span("schedule", store_key="ignored-wrong-name"):
            pass
        assert collect_point_keys(tracer) == ["a", "b"]


class TestCliTraceDirArtifacts:
    def test_cli_emits_valid_artifacts_with_cache(self, capsys, tmp_path):
        trace_dir = tmp_path / "t"
        cache_dir = tmp_path / "cache"
        args = [
            *CLI_ARGS,
            "--cache-dir",
            str(cache_dir),
            "--trace-dir",
            str(trace_dir),
        ]
        assert main(args) == 0
        capsys.readouterr()
        payload = json.loads((trace_dir / TRACE_FILE).read_text())
        assert validate_trace_events(payload) == []
        manifest = json.loads((trace_dir / MANIFEST_FILE).read_text())
        assert manifest["config_hash"] == content_key(
            "manifest-config", manifest["config"]
        )
        assert manifest["point_keys"]
        store = ArtifactStore(cache_dir)
        for key in manifest["point_keys"]:
            assert store.get(KIND_POINT, key) is not None
        events = [
            json.loads(line)
            for line in (trace_dir / EVENTS_FILE).read_text().splitlines()
        ]
        assert [e["event"] for e in events if e["event"] != "figure"] == [
            "run_start",
            "run_end",
        ]
