"""Tests for the extended CLI surface (sensitivity targets, JSON output)."""

from __future__ import annotations

import json

import pytest

from repro.experiments.cli import SENSITIVITY_TARGETS, build_parser, main
from repro.experiments.runner import ALGORITHMS, prepare_workload, response_time


class TestSensitivityTargets:
    def test_targets_registered(self):
        parser = build_parser()
        for target in SENSITIVITY_TARGETS:
            args = parser.parse_args([target, "--quick"])
            assert args.target == target

    def test_sens_run_tiny(self, capsys):
        rc = main(["sens-startup", "--quick", "--queries", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Sensitivity to alpha_startup_seconds" in out
        assert "TreeSchedule" in out


class TestJsonOutput:
    def test_figure_json(self, capsys):
        rc = main(["fig6b", "--quick", "--queries", "1", "--sites", "4", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["figure_id"] == "fig6b"
        assert payload["schema"] == "repro/1"
        labels = {s["label"] for s in payload["series"]}
        assert any(label.startswith("TreeSchedule") for label in labels)

    def test_sensitivity_json(self, capsys):
        rc = main(["sens-cpu", "--quick", "--queries", "1", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["figure_id"] == "sens-cpu_mips"

    def test_json_roundtrips_through_loader(self, capsys):
        from repro.serialization import figure_from_dict

        main(["fig6b", "--quick", "--queries", "1", "--sites", "4", "--json"])
        payload = json.loads(capsys.readouterr().out)
        figure = figure_from_dict(payload)
        assert figure.figure_id == "fig6b"
        assert all(len(s.xs) == len(s.ys) for s in figure.series)


class TestAlgorithmsTarget:
    def test_lists_every_registered_name(self, capsys):
        rc = main(["algorithms"])
        assert rc == 0
        out = capsys.readouterr().out
        for name in ALGORITHMS:
            assert name in out
        assert "lower bound" in out  # optbound is flagged as a bound

    def test_workers_flag_matches_serial(self, capsys):
        rc = main(["fig6b", "--quick", "--queries", "1", "--sites", "4", "--json"])
        assert rc == 0
        serial = json.loads(capsys.readouterr().out)
        rc = main([
            "fig6b", "--quick", "--queries", "1", "--sites", "4", "--json",
            "--workers", "2",
        ])
        assert rc == 0
        parallel = json.loads(capsys.readouterr().out)
        assert parallel == serial


class TestHongAlgorithm:
    def test_registered(self):
        assert "hong" in ALGORITHMS

    def test_runs_and_bounded_by_optbound(self):
        (query, *_rest) = prepare_workload(4, 2, seed=3)
        hong = response_time("hong", query, p=8, f=0.7, epsilon=0.5)
        lb = response_time("optbound", query, p=8, f=0.7, epsilon=0.5)
        assert hong >= lb * (1 - 1e-9)
