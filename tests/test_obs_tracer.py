"""Tests for the hierarchical span tracer (repro.obs.tracer)."""

from __future__ import annotations

import pickle

from repro.obs.tracer import (
    NULL_TRACER,
    Span,
    Tracer,
    current_tracer,
    span_from_dict,
    span_to_dict,
    use_tracer,
)


class TestSpanNesting:
    def test_children_follow_the_call_stack(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner_a"):
                pass
            with tracer.span("inner_b"):
                with tracer.span("leaf"):
                    pass
        assert [root.name for root in tracer.roots] == ["outer"]
        outer = tracer.roots[0]
        assert [c.name for c in outer.children] == ["inner_a", "inner_b"]
        assert [c.name for c in outer.children[1].children] == ["leaf"]

    def test_siblings_become_separate_roots(self):
        tracer = Tracer(enabled=True)
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [root.name for root in tracer.roots] == ["first", "second"]

    def test_span_yields_mutable_span(self):
        tracer = Tracer(enabled=True)
        with tracer.span("work", p=8) as span:
            span.attributes["late"] = True
        root = tracer.roots[0]
        assert root.attributes == {"p": 8, "late": True}

    def test_monotonic_nonnegative_durations(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer = tracer.roots[0]
        inner = outer.children[0]
        assert outer.seconds >= inner.seconds >= 0.0
        assert outer.start <= inner.start
        assert outer.end >= inner.end

    def test_exception_still_closes_and_records(self):
        tracer = Tracer(enabled=True)
        try:
            with tracer.span("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        assert [root.name for root in tracer.roots] == ["boom"]
        assert tracer.roots[0].end is not None

    def test_iter_spans_depth_first(self):
        tracer = Tracer(enabled=True)
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
            with tracer.span("d"):
                pass
        assert [s.name for s in tracer.iter_spans()] == ["a", "b", "c", "d"]


class TestDisabledTracer:
    def test_disabled_span_is_shared_handle(self):
        tracer = Tracer(enabled=False)
        handle_a = tracer.span("a")
        handle_b = tracer.span("b", p=4)
        assert handle_a is handle_b  # allocation-free: one shared object

    def test_disabled_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("a") as span:
            assert span is None
        tracer.count("clones", 3)
        with tracer.timer("pack"):
            pass
        assert tracer.roots == []
        assert tracer._metrics is None  # never even allocated a recorder

    def test_disabled_propagates_exceptions(self):
        tracer = Tracer(enabled=False)
        try:
            with tracer.span("a"):
                raise ValueError("x")
        except ValueError:
            pass
        else:  # pragma: no cover - guard
            raise AssertionError("exception swallowed by null handle")

    def test_disabled_adopt_drops(self):
        tracer = Tracer(enabled=False)
        tracer.adopt(Span("orphan", start=0.0, end=1.0))
        assert tracer.roots == []

    def test_null_tracer_is_disabled(self):
        assert not NULL_TRACER.enabled


class TestAmbientTracer:
    def test_default_is_null_tracer(self):
        assert current_tracer() is NULL_TRACER

    def test_use_tracer_installs_and_restores(self):
        tracer = Tracer(enabled=True)
        with use_tracer(tracer) as installed:
            assert installed is tracer
            assert current_tracer() is tracer
        assert current_tracer() is NULL_TRACER

    def test_nested_use_tracer(self):
        outer, inner = Tracer(enabled=True), Tracer(enabled=True)
        with use_tracer(outer):
            with use_tracer(inner):
                assert current_tracer() is inner
            assert current_tracer() is outer

    def test_tracers_do_not_leak_spans_into_each_other(self):
        """A span opened by tracer B inside tracer A's open span must
        become B's root, not a child in A's tree — the invariant behind
        the parallel runner's inline per-point tracers."""
        ambient, local = Tracer(enabled=True), Tracer(enabled=True)
        with ambient.span("sweep"):
            with local.span("point"):
                with local.span("schedule"):
                    pass
            with ambient.span("bookkeeping"):
                pass
        assert [s.name for s in ambient.iter_spans()] == ["sweep", "bookkeeping"]
        assert [s.name for s in local.iter_spans()] == ["point", "schedule"]


class TestAdopt:
    def test_adopt_under_current_span(self):
        tracer = Tracer(enabled=True)
        foreign = Span("worker", start=0.0, end=0.5)
        with tracer.span("sweep"):
            tracer.adopt(foreign)
        assert tracer.roots[0].children == [foreign]

    def test_adopt_at_top_level_becomes_root(self):
        tracer = Tracer(enabled=True)
        foreign = Span("worker", start=0.0, end=0.5)
        tracer.adopt(foreign)
        assert tracer.roots == [foreign]


class TestMetricsBackend:
    def test_count_and_timer_delegate(self):
        tracer = Tracer(enabled=True)
        tracer.count("clones_placed", 2)
        with tracer.timer("pack_vectors"):
            pass
        assert tracer.metrics.counters["clones_placed"] == 2.0
        assert tracer.metrics.timers["pack_vectors"] >= 0.0

    def test_shared_recorder_injection(self):
        from repro.engine.metrics import MetricsRecorder

        recorder = MetricsRecorder()
        tracer = Tracer(enabled=True, metrics=recorder)
        tracer.count("phases")
        assert recorder.counters["phases"] == 1.0


class TestSummary:
    def test_summary_aggregates_and_sorts(self):
        tracer = Tracer(enabled=True)
        with tracer.span("z"):
            with tracer.span("a"):
                pass
        with tracer.span("a"):
            pass
        summary = tracer.summary()
        assert list(summary) == ["a", "z"]
        assert summary["a"]["count"] == 2
        assert summary["z"]["count"] == 1
        assert summary["a"]["seconds"] >= 0.0

    def test_empty_summary(self):
        assert Tracer(enabled=True).summary() == {}


class TestSerialization:
    def _tree(self):
        tracer = Tracer(enabled=True)
        with tracer.span("sweep", points=2):
            with tracer.span("point", index=0):
                with tracer.span("schedule", algorithm="treeschedule"):
                    pass
            with tracer.span("point", index=1):
                pass
        return tracer.roots[0]

    def test_round_trip_preserves_structure(self):
        root = self._tree()
        rebuilt = span_from_dict(span_to_dict(root))
        assert [s.name for s in rebuilt.iter_spans()] == [
            s.name for s in root.iter_spans()
        ]
        assert [s.attributes for s in rebuilt.iter_spans()] == [
            s.attributes for s in root.iter_spans()
        ]
        for original, copy in zip(root.iter_spans(), rebuilt.iter_spans()):
            assert copy.seconds == original.seconds

    def test_root_offset_is_zero(self):
        payload = span_to_dict(self._tree())
        assert payload["offset"] == 0.0

    def test_offsets_are_relative_to_parent(self):
        root = self._tree()
        payload = span_to_dict(root)
        for child_payload, child in zip(payload["children"], root.children):
            assert child_payload["offset"] == child.start - root.start

    def test_re_rooting_onto_a_new_base(self):
        root = self._tree()
        payload = span_to_dict(root)
        rebuilt = span_from_dict(payload, base=100.0)
        assert rebuilt.start == 100.0
        assert rebuilt.seconds == root.seconds
        # Children keep their relative placement inside the new frame.
        for original, copy in zip(root.children, rebuilt.children):
            assert copy.start - rebuilt.start == original.start - root.start

    def test_payload_pickles(self):
        payload = span_to_dict(self._tree())
        assert pickle.loads(pickle.dumps(payload)) == payload

    def test_payload_is_plain_data(self):
        payload = span_to_dict(self._tree())

        def check(node):
            assert set(node) == {
                "name",
                "offset",
                "seconds",
                "attributes",
                "children",
            }
            for child in node["children"]:
                check(child)

        check(payload)
