"""Tests for schedule-aware plan search (no numpy required).

The determinism contract under test: :func:`repro.search.search_plans`
returns byte-identical winners, rankings and frontiers at any
``workers`` count, with the artifact store disabled / cold / warm, and
under any ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import os
import subprocess
import sys
import warnings
from pathlib import Path

import pytest

from repro import Catalog, QueryGraph, Relation
from repro.engine.metrics import MetricsRecorder
from repro.exceptions import ConfigurationError
from repro.search import (
    candidate_lower_bounds,
    candidate_point,
    epsilon_dominates,
    evaluate_candidate,
    max_site_load,
    schedule_candidate,
    search_plans,
)
from repro.search.screen import ScreenContext
from repro.sim.validate import validate_schedule_result
from repro.store import NO_STORE, ArtifactStore

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis ships with the image
    HAVE_HYPOTHESIS = False

SRC = str(Path(__file__).resolve().parent.parent / "src")


def make_query(cards: dict[str, int], joins: list[tuple[str, str]]):
    catalog = Catalog([Relation(name, tuples) for name, tuples in cards.items()])
    return QueryGraph(list(cards), joins), catalog


@pytest.fixture(scope="module")
def query():
    """A 7-relation tree with skewed cardinalities (plan space 200)."""
    cards = {
        "A": 120_000, "B": 4_000, "C": 45_000, "D": 800,
        "E": 60_000, "F": 9_000, "G": 2_500,
    }
    joins = [
        ("A", "B"), ("B", "C"), ("C", "D"), ("B", "E"), ("E", "F"), ("F", "G"),
    ]
    return make_query(cards, joins)


def run(query, **kw):
    graph, catalog = query
    kw.setdefault("p", 8)
    kw.setdefault("store", NO_STORE)
    return search_plans(graph, catalog, **kw)


def fingerprint(result):
    """Everything the determinism contract covers, as one comparable value."""
    return (
        result.winner.key,
        result.winner.response_time,
        [(sp.key, sp.response_time, sp.num_phases, sp.total_work, sp.max_site_load)
         for sp in result.candidates],
        [sp.key for sp in result.frontier],
        (result.stats.enumerated, result.stats.unique,
         result.stats.pruned, result.stats.scored),
        result.schedule.response_time,
    )


class TestSearch:
    def test_ranking_sorted_and_winner_first(self, query):
        result = run(query)
        times = [sp.response_time for sp in result.candidates]
        assert times == sorted(times)
        assert result.winner.key == result.candidates[0].key
        assert result.best is result.winner
        assert result.schedule.response_time == pytest.approx(
            result.winner.response_time
        )

    def test_exhaustive_regime_on_small_space(self, query):
        from repro.search import count_exhaustive_plans

        graph, _ = query
        space = count_exhaustive_plans(graph, limit=512)
        result = run(query)
        assert result.stats.exhaustive
        assert result.stats.enumerated == result.stats.unique == space == 200
        assert result.stats.scored + result.stats.pruned == result.stats.unique

    def test_prune_never_changes_winner(self, query):
        pruned = run(query, prune=True)
        full = run(query, prune=False)
        assert pruned.winner.key == full.winner.key
        assert pruned.winner.response_time == full.winner.response_time
        assert pruned.stats.pruned > 0
        assert full.stats.pruned == 0
        # Every surviving score matches its unpruned counterpart exactly.
        full_by_key = {sp.key: sp for sp in full.candidates}
        for sp in pruned.candidates:
            assert sp.response_time == full_by_key[sp.key].response_time

    def test_lower_bounds_are_valid(self, query):
        result = run(query, prune=False)
        # Rebuild the screen context the way search_plans does.
        from repro.core.resource_model import ConvexCombinationOverlap
        from repro.cost.params import PAPER_PARAMETERS

        ctx = ScreenContext(
            p=8,
            params=PAPER_PARAMETERS,
            comm=PAPER_PARAMETERS.communication_model(),
            overlap=ConvexCombinationOverlap(0.5),
        )
        plans = [sp.plan for sp in result.candidates]
        bounds = candidate_lower_bounds(plans, ctx)
        for sp, lb in zip(result.candidates, bounds):
            assert lb <= sp.response_time + 1e-9

    @pytest.mark.parametrize("workers", [2, 4])
    def test_workers_bit_identical(self, query, workers):
        serial = run(query)
        fanned = run(query, workers=workers)
        assert fingerprint(serial) == fingerprint(fanned)

    def test_store_disabled_cold_warm_identical(self, query, tmp_path):
        disabled = run(query)
        store = ArtifactStore(str(tmp_path / "cache"))
        cold = run(query, store=store)
        warm = run(query, store=store)
        assert fingerprint(disabled) == fingerprint(cold) == fingerprint(warm)
        assert disabled.stats.store_hits == disabled.stats.store_misses == 0
        assert cold.stats.store_misses == cold.stats.scored + 1  # + winner schedule
        assert cold.stats.store_hits == 0
        # The headline property: a warm re-search schedules 0 cold candidates.
        assert warm.stats.store_misses == 0
        assert warm.stats.store_hits == warm.stats.scored + 1
        assert warm.stats.hit_rate == 1.0

    def test_local_search_regime_deterministic(self, query):
        a = run(query, max_exhaustive=16, seed=3, generations=2)
        b = run(query, max_exhaustive=16, seed=3, generations=2)
        c = run(query, max_exhaustive=16, seed=3, generations=2, workers=2)
        assert not a.stats.exhaustive
        assert fingerprint(a) == fingerprint(b) == fingerprint(c)

    def test_pareto_exact_matches_brute_force(self, query):
        result = run(query, pareto=True, pareto_eps=0.0)
        assert result.stats.pruned == 0  # many-objective mode never prunes
        frontier = {sp.key for sp in result.frontier}
        # Brute force: non-dominated objective vectors, one key each.
        for sp in result.candidates:
            strictly = [
                other
                for other in result.candidates
                if other.key != sp.key
                and epsilon_dominates(other.objectives, sp.objectives)
                and (other.objectives != sp.objectives
                     or other.key < sp.key)
            ]
            assert (sp.key not in frontier) == bool(strictly)

    def test_pareto_cover_property(self, query):
        eps = 0.25
        result = run(query, pareto=True, pareto_eps=eps)
        assert result.frontier  # at least the winner survives
        for sp in result.candidates:
            assert any(
                epsilon_dominates(front.objectives, sp.objectives, eps)
                for front in result.frontier
            )

    def test_winner_on_frontier_at_eps_zero(self, query):
        result = run(query, pareto=True, pareto_eps=0.0)
        assert result.winner.key in {sp.key for sp in result.frontier}

    def test_counters_and_spans_in_schedule(self, query):
        result = run(query)
        counters = result.schedule.instrumentation.counters
        assert counters["plans_enumerated"] == result.stats.enumerated
        assert counters["plans_pruned"] == result.stats.pruned
        assert counters["plans_scored"] == result.stats.scored
        assert "plan_search" in result.schedule.instrumentation.timers

    def test_metrics_recorder_receives_counts(self, query):
        rec = MetricsRecorder()
        result = run(query, metrics=rec)
        assert rec.counters["plans_enumerated"] == result.stats.enumerated
        assert rec.counters["plans_deduped"] == (
            result.stats.enumerated - result.stats.unique
        )

    def test_validate_accepts_search_schedule(self, query):
        result = run(query)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            validate_schedule_result(result.schedule)

    def test_invalid_arguments(self, query):
        graph, catalog = query
        with pytest.raises(ConfigurationError):
            search_plans(graph, catalog, p=0)
        with pytest.raises(ConfigurationError):
            search_plans(graph, catalog, p=4, chunk_size=0)

    def test_single_relation_query(self):
        graph, catalog = make_query({"A": 5_000}, [])
        result = search_plans(graph, catalog, p=4, store=NO_STORE)
        assert len(result.candidates) == 1
        assert result.stats.unique == 1


class TestScoring:
    def test_evaluate_matches_schedule(self, query):
        from repro.core.resource_model import ConvexCombinationOverlap
        from repro.cost.params import PAPER_PARAMETERS
        from repro.search import greedy_plan

        graph, catalog = query
        point = candidate_point(
            greedy_plan(graph, catalog),
            p=8,
            f=0.7,
            shelf="min",
            params=PAPER_PARAMETERS,
            comm=PAPER_PARAMETERS.communication_model(),
            overlap=ConvexCombinationOverlap(0.5),
        )
        objectives = evaluate_candidate(point)
        schedule, cached = schedule_candidate(point, store=None)
        assert not cached
        assert objectives["response_time"] == pytest.approx(schedule.response_time)
        assert objectives["num_phases"] == schedule.num_phases
        assert objectives["max_site_load"] == pytest.approx(max_site_load(schedule))
        assert objectives["max_site_load"] > 0.0


class TestHashSeedDeterminism:
    def test_search_immune_to_hash_randomization(self, tmp_path):
        """Winner and ranking are identical under any PYTHONHASHSEED."""
        script = (
            "from repro import Catalog, QueryGraph, Relation\n"
            "from repro.search import search_plans\n"
            "from repro.store import NO_STORE\n"
            "cards = {'A': 9000, 'B': 400, 'C': 52000, 'D': 7000, 'E': 1100}\n"
            "catalog = Catalog([Relation(n, t) for n, t in cards.items()])\n"
            "graph = QueryGraph(list(cards), "
            "[('A','B'),('B','C'),('C','D'),('D','E')])\n"
            "r = search_plans(graph, catalog, p=4, seed=2, store=NO_STORE)\n"
            "print(r.winner.key)\n"
            "print(','.join(sp.key for sp in r.candidates))\n"
        )
        outputs = set()
        for seed in ("0", "12345"):
            env = dict(os.environ, PYTHONPATH=SRC, PYTHONHASHSEED=seed)
            out = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, env=env, check=True,
            )
            outputs.add(out.stdout)
        assert len(outputs) == 1


if HAVE_HYPOTHESIS:

    @st.composite
    def tree_queries(draw):
        n = draw(st.integers(min_value=2, max_value=5))
        cards = {
            f"R{i}": draw(st.integers(min_value=100, max_value=200_000))
            for i in range(n)
        }
        joins = [
            (f"R{draw(st.integers(min_value=0, max_value=i - 1))}", f"R{i}")
            for i in range(1, n)
        ]
        return make_query(cards, joins)

    class TestProperties:
        @settings(max_examples=12, deadline=None)
        @given(query=tree_queries(), seed=st.integers(min_value=0, max_value=2**16))
        def test_workers_and_prune_invariant(self, query, seed):
            graph, catalog = query
            base = search_plans(graph, catalog, p=4, seed=seed, store=NO_STORE)
            fanned = search_plans(
                graph, catalog, p=4, seed=seed, workers=2, store=NO_STORE
            )
            full = search_plans(
                graph, catalog, p=4, seed=seed, prune=False, store=NO_STORE
            )
            assert fingerprint(base) == fingerprint(fanned)
            assert base.winner.key == full.winner.key
            assert base.winner.response_time == full.winner.response_time
