"""Tests for the MetricsRecorder observability hooks."""

from __future__ import annotations

import json

from repro.engine import MetricsRecorder


class TestCounters:
    def test_count_accumulates(self):
        m = MetricsRecorder()
        m.count("clones")
        m.count("clones", 2.5)
        assert m.counters["clones"] == 3.5

    def test_independent_names(self):
        m = MetricsRecorder()
        m.count("a")
        m.count("b", 7)
        assert m.counters == {"a": 1.0, "b": 7.0}


class TestTimers:
    def test_timer_accumulates(self):
        m = MetricsRecorder()
        with m.timer("pack"):
            pass
        first = m.timers["pack"]
        assert first >= 0.0
        with m.timer("pack"):
            pass
        assert m.timers["pack"] >= first

    def test_timer_records_on_exception(self):
        m = MetricsRecorder()
        try:
            with m.timer("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        assert "boom" in m.timers


class TestMergeAndExport:
    def test_merge(self):
        a = MetricsRecorder()
        a.count("n", 1)
        a.timers["t"] = 0.5
        b = MetricsRecorder()
        b.count("n", 2)
        b.count("m", 4)
        b.timers["t"] = 0.25
        a.merge(b)
        assert a.counters == {"n": 3.0, "m": 4.0}
        assert a.timers["t"] == 0.75

    def test_snapshot_is_a_copy(self):
        m = MetricsRecorder()
        m.count("n")
        snap = m.snapshot()
        snap["counters"]["n"] = 99.0
        assert m.counters["n"] == 1.0

    def test_to_json_line(self):
        m = MetricsRecorder()
        m.count("points", 3)
        line = m.to_json_line(algorithm="treeschedule", p=16)
        payload = json.loads(line)
        assert payload["algorithm"] == "treeschedule"
        assert payload["p"] == 16
        assert payload["counters"] == {"points": 3.0}
        assert "\n" not in line

    def test_write_json_line_appends(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        m = MetricsRecorder()
        m.count("n")
        m.write_json_line(str(path), run=1)
        m.write_json_line(str(path), run=2)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["run"] == 2

    def test_repr(self):
        m = MetricsRecorder()
        m.count("n")
        assert "counters=1" in repr(m)
