"""Tests for the MetricsRecorder observability hooks."""

from __future__ import annotations

import json

from repro.engine import MetricsRecorder


class TestCounters:
    def test_count_accumulates(self):
        m = MetricsRecorder()
        m.count("clones")
        m.count("clones", 2.5)
        assert m.counters["clones"] == 3.5

    def test_independent_names(self):
        m = MetricsRecorder()
        m.count("a")
        m.count("b", 7)
        assert m.counters == {"a": 1.0, "b": 7.0}


class TestTimers:
    def test_timer_accumulates(self):
        m = MetricsRecorder()
        with m.timer("pack"):
            pass
        first = m.timers["pack"]
        assert first >= 0.0
        with m.timer("pack"):
            pass
        assert m.timers["pack"] >= first

    def test_timer_records_on_exception(self):
        m = MetricsRecorder()
        try:
            with m.timer("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        assert "boom" in m.timers


class TestMergeAndExport:
    def test_merge(self):
        a = MetricsRecorder()
        a.count("n", 1)
        a.timers["t"] = 0.5
        b = MetricsRecorder()
        b.count("n", 2)
        b.count("m", 4)
        b.timers["t"] = 0.25
        a.merge(b)
        assert a.counters == {"n": 3.0, "m": 4.0}
        assert a.timers["t"] == 0.75

    def test_snapshot_is_a_copy(self):
        m = MetricsRecorder()
        m.count("n")
        snap = m.snapshot()
        snap["counters"]["n"] = 99.0
        assert m.counters["n"] == 1.0

    def test_to_json_line(self):
        m = MetricsRecorder()
        m.count("points", 3)
        line = m.to_json_line(algorithm="treeschedule", p=16)
        payload = json.loads(line)
        assert payload["algorithm"] == "treeschedule"
        assert payload["p"] == 16
        assert payload["counters"] == {"points": 3.0}
        assert "\n" not in line

    def test_write_json_line_appends(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        m = MetricsRecorder()
        m.count("n")
        m.write_json_line(str(path), run=1)
        m.write_json_line(str(path), run=2)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["run"] == 2

    def test_repr(self):
        m = MetricsRecorder()
        m.count("n")
        assert "counters=1" in repr(m)


class TestKernelInstrumentation:
    """The PR 2 placement-scan counters and kernel timers."""

    @staticmethod
    def _packed_recorder(n=30, p=6):
        import random

        from repro import CloneItem, ConvexCombinationOverlap, WorkVector, pack_vectors

        rng = random.Random(3)
        items = [
            CloneItem(
                operator=f"op{i}",
                clone_index=0,
                work=WorkVector([rng.uniform(0.1, 5.0) for _ in range(3)]),
            )
            for i in range(n)
        ]
        m = MetricsRecorder()
        pack_vectors(items, p=p, overlap=ConvexCombinationOverlap(0.5), metrics=m)
        return m, n

    def test_pack_vectors_records_counters_and_timer(self):
        from repro.engine.metrics import (
            COUNTER_CLONES_PACKED,
            COUNTER_PLACEMENT_SCANS,
            TIMER_PACK_VECTORS,
        )

        m, n = self._packed_recorder()
        assert m.counters[COUNTER_CLONES_PACKED] == n
        assert m.counters[COUNTER_PLACEMENT_SCANS] > 0
        assert m.timers[TIMER_PACK_VECTORS] > 0.0

    def test_heap_scans_far_below_linear_rescan(self):
        """The lazy heap examines far fewer entries than n*p."""
        from repro.engine.metrics import COUNTER_PLACEMENT_SCANS

        n, p = 200, 32
        m, _ = self._packed_recorder(n=n, p=p)
        assert m.counters[COUNTER_PLACEMENT_SCANS] < 0.25 * n * p

    def test_operator_schedule_records_counters(self):
        import random

        from repro import ConvexCombinationOverlap, OperatorSpec, WorkVector, operator_schedule
        from repro.core.granularity import CommunicationModel
        from repro.engine.metrics import (
            COUNTER_CLONES_PLACED,
            COUNTER_PLACEMENT_SCANS,
            TIMER_LIST_SCHEDULE,
        )

        rng = random.Random(1)
        floating = [
            OperatorSpec(
                name=f"op{i}",
                work=WorkVector([rng.uniform(1.0, 40.0) for _ in range(3)]),
                data_volume=rng.uniform(10.0, 200.0),
            )
            for i in range(8)
        ]
        m = MetricsRecorder()
        operator_schedule(
            floating,
            p=8,
            comm=CommunicationModel(alpha=1.0, beta=0.01),
            overlap=ConvexCombinationOverlap(0.5),
            metrics=m,
        )
        assert m.counters[COUNTER_CLONES_PLACED] > 0
        assert m.counters[COUNTER_PLACEMENT_SCANS] > 0
        assert m.timers[TIMER_LIST_SCHEDULE] >= 0.0

    def test_kernel_summary(self):
        m, n = self._packed_recorder()
        summary = m.kernel_summary()
        assert summary["clones"] == n
        assert summary["placement_scans"] == m.counters["placement_scans"]
        assert summary["scans_per_clone"] > 0.0
        assert summary["kernel_seconds"] > 0.0

    def test_kernel_summary_empty_recorder(self):
        summary = MetricsRecorder().kernel_summary()
        assert summary == {
            "placement_scans": 0.0,
            "clones": 0.0,
            "scans_per_clone": 0.0,
            "kernel_seconds": 0.0,
        }


class TestMergeTimerModes:
    def _pair(self):
        a = MetricsRecorder()
        a.count("n", 1)
        a.timers["t"] = 0.5
        b = MetricsRecorder()
        b.count("n", 2)
        b.timers["t"] = 0.75
        b.timers["u"] = 0.1
        return a, b

    def test_sum_mode_is_additive(self):
        a, b = self._pair()
        a.merge(b, timer_mode="sum")
        assert a.timers == {"t": 1.25, "u": 0.1}

    def test_max_mode_keeps_slowest_contributor(self):
        """Cross-process wall-clock semantics: overlapping workers'
        elapsed times must not be double-counted."""
        a, b = self._pair()
        a.merge(b, timer_mode="max")
        assert a.timers == {"t": 0.75, "u": 0.1}

    def test_counters_add_in_both_modes(self):
        for mode in ("sum", "max"):
            a, b = self._pair()
            a.merge(b, timer_mode=mode)
            assert a.counters == {"n": 3.0}

    def test_unknown_mode_rejected(self):
        a, b = self._pair()
        import pytest

        with pytest.raises(ValueError, match="timer_mode"):
            a.merge(b, timer_mode="median")
        # A rejected merge must not have half-applied the counters.
        assert a.counters == {"n": 1.0}


class TestMetricVocabulary:
    def test_known_names_pass(self):
        from repro.engine.metrics import unknown_metric_names

        m = MetricsRecorder()
        m.count("clones_placed")
        m.count("placement_scans", 5)
        with m.timer("pack_vectors"):
            pass
        assert unknown_metric_names(m.counters, m.timers) == set()

    def test_typo_surfaces(self):
        from repro.engine.metrics import unknown_metric_names

        m = MetricsRecorder()
        m.count("clones_plcaed")  # the typo this check exists for
        with m.timer("pack_vectors"):
            pass
        assert unknown_metric_names(m.counters, m.timers) == {"clones_plcaed"}

    def test_accepts_bare_iterables(self):
        from repro.engine.metrics import unknown_metric_names

        assert unknown_metric_names(["phases"], ["run"]) == set()
        assert unknown_metric_names((), ("mystery",)) == {"mystery"}

    def test_kernel_constants_are_in_vocabulary(self):
        from repro.engine import metrics

        names = {
            value
            for key, value in vars(metrics).items()
            if key.startswith(("COUNTER_", "TIMER_")) and isinstance(value, str)
        }
        known = metrics.KNOWN_COUNTER_NAMES | metrics.KNOWN_TIMER_NAMES
        assert names <= known
