"""Tests for JSON-friendly serialization round-trips."""

from __future__ import annotations

import json

import pytest

from repro import (
    ConfigurationError,
    OperatorSpec,
    SchedulingError,
    WorkVector,
    tree_schedule,
)
from repro.engine import Instrumentation, ScheduleResult
from repro.experiments.figures import FigureData, Series
from repro.serialization import (
    fault_report_from_dict,
    fault_report_to_dict,
    fault_spec_from_dict,
    fault_spec_to_dict,
    figure_from_dict,
    figure_to_dict,
    instrumentation_from_dict,
    instrumentation_to_dict,
    schedule_result_from_dict,
    schedule_result_to_dict,
    operator_spec_from_dict,
    operator_spec_to_dict,
    phased_schedule_from_dict,
    phased_schedule_to_dict,
    schedule_from_dict,
    schedule_to_dict,
    work_vector_from_dict,
    work_vector_to_dict,
)
from repro.sim.faults import FaultReport, FaultSpec


class TestWorkVector:
    def test_roundtrip(self):
        w = WorkVector([1.5, 0.0, 3.25])
        assert work_vector_from_dict(work_vector_to_dict(w)) == w

    def test_json_compatible(self):
        payload = json.loads(json.dumps(work_vector_to_dict(WorkVector([1.0, 2.0]))))
        assert work_vector_from_dict(payload) == WorkVector([1.0, 2.0])

    def test_malformed(self):
        with pytest.raises(ConfigurationError):
            work_vector_from_dict({})


class TestOperatorSpec:
    def test_roundtrip(self):
        spec = OperatorSpec(name="probe(J1)", work=WorkVector([1.0, 0.0, 0.0]), data_volume=42.0)
        again = operator_spec_from_dict(operator_spec_to_dict(spec))
        assert again == spec

    def test_default_volume(self):
        payload = {"name": "x", "work": {"components": [1.0]}}
        assert operator_spec_from_dict(payload).data_volume == 0.0


class TestSchedule:
    def test_roundtrip_real_schedule(self, annotated_query, comm, overlap):
        result = tree_schedule(
            annotated_query.operator_tree, annotated_query.task_tree,
            p=8, comm=comm, overlap=overlap, f=0.7,
        )
        original = result.phased_schedule.phases[0]
        payload = json.loads(json.dumps(schedule_to_dict(original)))
        restored = schedule_from_dict(payload)
        assert restored.makespan() == pytest.approx(original.makespan())
        assert restored.clone_count() == original.clone_count()
        assert {k: v.site_indices for k, v in restored.homes().items()} == {
            k: v.site_indices for k, v in original.homes().items()
        }

    def test_constraint_a_revalidated(self):
        payload = {
            "schema": "repro/1",
            "p": 1,
            "d": 2,
            "placements": [
                {"site": 0, "operator": "a", "clone_index": 0,
                 "work": {"components": [1.0, 0.0]}, "t_seq": 1.0},
                {"site": 0, "operator": "a", "clone_index": 1,
                 "work": {"components": [1.0, 0.0]}, "t_seq": 1.0},
            ],
        }
        with pytest.raises(SchedulingError):
            schedule_from_dict(payload)

    def test_malformed(self):
        with pytest.raises(ConfigurationError):
            schedule_from_dict({"p": 1})


class TestPhased:
    def test_roundtrip(self, annotated_query, comm, overlap):
        result = tree_schedule(
            annotated_query.operator_tree, annotated_query.task_tree,
            p=8, comm=comm, overlap=overlap, f=0.7,
        )
        payload = json.loads(json.dumps(phased_schedule_to_dict(result.phased_schedule)))
        restored = phased_schedule_from_dict(payload)
        assert restored.response_time() == pytest.approx(result.response_time)
        assert restored.labels == result.phased_schedule.labels


class TestInstrumentation:
    def test_roundtrip(self):
        inst = Instrumentation(
            wall_clock_seconds=0.125,
            operators_scheduled=9,
            clones_created=21,
            bins_opened=12,
            counters={"phases": 4.0},
            timers={"pack_phase": 0.25},
        )
        payload = json.loads(json.dumps(instrumentation_to_dict(inst)))
        assert instrumentation_from_dict(payload) == inst

    def test_all_fields_optional(self):
        assert instrumentation_from_dict({}) == Instrumentation()

    def test_span_tree_roundtrip(self):
        spans = [
            {
                "name": "schedule",
                "offset": 0.0,
                "seconds": 0.25,
                "attributes": {"algorithm": "treeschedule", "p": 8},
                "children": [
                    {
                        "name": "shelf",
                        "offset": 0.01,
                        "seconds": 0.2,
                        "attributes": {"label": "T0"},
                        "children": [],
                    }
                ],
            }
        ]
        inst = Instrumentation(spans=spans)
        payload = json.loads(json.dumps(instrumentation_to_dict(inst)))
        assert instrumentation_from_dict(payload) == inst

    def test_no_spans_key_when_untraced(self):
        """Pre-tracing payload layout is preserved byte for byte: the
        ``spans`` key appears only when spans were recorded."""
        assert "spans" not in instrumentation_to_dict(Instrumentation())


class TestScheduleResult:
    def test_roundtrip_full_result(self, annotated_query, comm, overlap):
        result = tree_schedule(
            annotated_query.operator_tree, annotated_query.task_tree,
            p=8, comm=comm, overlap=overlap, f=0.7,
        )
        payload = json.loads(json.dumps(schedule_result_to_dict(result)))
        restored = schedule_result_from_dict(payload)
        assert restored.algorithm == "treeschedule"
        assert restored.makespan == pytest.approx(result.makespan)
        assert restored.num_phases == result.num_phases
        assert restored.phase_labels == result.phase_labels
        assert restored.degrees == result.degrees
        assert {k: v.site_indices for k, v in restored.homes.items()} == {
            k: v.site_indices for k, v in result.homes.items()
        }
        assert restored.instrumentation == result.instrumentation
        restored.validate()

    def test_roundtrip_preserves_timelines(self, annotated_query, comm, overlap):
        result = tree_schedule(
            annotated_query.operator_tree, annotated_query.task_tree,
            p=8, comm=comm, overlap=overlap, f=0.7,
        )
        payload = json.loads(json.dumps(schedule_result_to_dict(result)))
        restored = schedule_result_from_dict(payload)
        for before, after in zip(result.timelines, restored.timelines):
            assert after.label == before.label
            assert after.makespan == pytest.approx(before.makespan)
            assert after.bins_opened == before.bins_opened
            for sa, sb in zip(after.sites, before.sites):
                assert sa.site_index == sb.site_index
                assert sa.clones == sb.clones
                assert sa.load == pytest.approx(sb.load)
                assert sa.t_site == pytest.approx(sb.t_site)

    def test_roundtrip_bound_only(self):
        result = ScheduleResult.from_value(
            "optbound", 17.25, wall_clock_seconds=0.01
        )
        payload = json.loads(json.dumps(schedule_result_to_dict(result)))
        restored = schedule_result_from_dict(payload)
        assert restored.is_bound_only
        assert restored.algorithm == "optbound"
        assert restored.makespan == 17.25
        assert restored.timelines == ()

    def test_malformed(self):
        with pytest.raises(ConfigurationError):
            schedule_result_from_dict({"algorithm": "x"})


class TestSchemaTag:
    """Readers must reject payloads from incompatible writers."""

    BAD = {"schema": "repro/2"}

    def test_schedule_rejects_foreign_schema(self):
        with pytest.raises(ConfigurationError, match="schema"):
            schedule_from_dict({**self.BAD, "p": 1, "d": 1, "placements": []})

    def test_phased_rejects_foreign_schema(self):
        with pytest.raises(ConfigurationError, match="schema"):
            phased_schedule_from_dict({**self.BAD, "phases": [], "labels": []})

    def test_result_rejects_foreign_schema(self):
        with pytest.raises(ConfigurationError, match="schema"):
            schedule_result_from_dict(
                {**self.BAD, "phased_schedule": None, "response_time": 1.0}
            )

    def test_figure_rejects_foreign_schema(self):
        with pytest.raises(ConfigurationError, match="schema"):
            figure_from_dict(
                {
                    **self.BAD,
                    "figure_id": "f",
                    "title": "t",
                    "x_label": "x",
                    "y_label": "y",
                    "series": [],
                }
            )

    def test_missing_tag_accepted(self):
        # Pre-tag artifacts (and hand-built dicts) carry no schema key.
        schedule = schedule_from_dict({"p": 1, "d": 1, "placements": []})
        assert schedule.p == 1
        phased = phased_schedule_from_dict({"phases": []})
        assert phased.num_phases == 0
        result = schedule_result_from_dict(
            {"phased_schedule": None, "response_time": 2.5}
        )
        assert result.makespan == 2.5

    def test_written_payloads_carry_the_tag(self):
        result = ScheduleResult.from_value("optbound", 1.0)
        assert schedule_result_to_dict(result)["schema"] == "repro/1"


class TestExtremeFloats:
    """ScheduleResult must survive an actual json.dumps/loads round-trip
    with denormal-tiny and near-overflow-huge stand-alone times."""

    @pytest.mark.parametrize("t_seq", [1e-308, 5e-324, 1e300])
    def test_roundtrip_through_json_text(self, t_seq):
        from repro import PlacedClone, Schedule, WorkVector
        from repro.core.schedule import PhasedSchedule

        schedule = Schedule(2, 2)
        schedule.place(
            0,
            PlacedClone(
                operator="tiny",
                clone_index=0,
                work=WorkVector([t_seq, 0.0]),
                t_seq=t_seq,
            ),
        )
        schedule.place(
            1,
            PlacedClone(
                operator="other",
                clone_index=0,
                work=WorkVector([1.0, 1.0]),
                t_seq=1.5,
            ),
        )
        phased = PhasedSchedule()
        phased.append(schedule, "t1")
        result = ScheduleResult(algorithm="treeschedule", phased_schedule=phased)
        text = json.dumps(schedule_result_to_dict(result))
        restored = schedule_result_from_dict(json.loads(text))
        # repr round-trip of Python floats through JSON text is exact.
        assert restored.makespan == result.makespan
        placed = restored.phased_schedule.phases[0].sites[0].clones[0]
        assert placed.t_seq == t_seq
        assert placed.work.components[0] == t_seq


class TestFaultSpecSerialization:
    def test_roundtrip(self):
        spec = FaultSpec.at_intensity(0.65, epsilon=0.3)
        payload = json.loads(json.dumps(fault_spec_to_dict(spec)))
        assert fault_spec_from_dict(payload) == spec

    def test_defaults_fill_in(self):
        assert fault_spec_from_dict({}) == FaultSpec.none()

    def test_foreign_schema_rejected(self):
        with pytest.raises(ConfigurationError, match="schema"):
            fault_spec_from_dict({"schema": "repro/9"})

    def test_invalid_values_revalidated(self):
        with pytest.raises(ConfigurationError):
            fault_spec_from_dict({"slowdown_prob": 2.0})


class TestFaultReportSerialization:
    def test_roundtrip(self):
        report = FaultReport(
            slowdowns=2,
            skews=3,
            stragglers=1,
            failures=1,
            time_lost_slowdown=1.25,
            time_lost_skew=-0.5,
            time_lost_straggler=0.75,
            time_lost_failure=4.0,
            work_rerun=2.5,
        )
        payload = json.loads(json.dumps(fault_report_to_dict(report)))
        assert fault_report_from_dict(payload) == report

    def test_all_fields_optional(self):
        assert fault_report_from_dict({}) == FaultReport()


class TestFigure:
    def test_roundtrip(self):
        fig = FigureData(
            figure_id="figX",
            title="demo",
            x_label="x",
            y_label="y",
            series=(Series(label="A", xs=(1.0, 2.0), ys=(3.0, 4.0)),),
            notes=("n1",),
        )
        payload = json.loads(json.dumps(figure_to_dict(fig)))
        restored = figure_from_dict(payload)
        assert restored == fig
