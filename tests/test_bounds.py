"""Tests for lower bounds and suboptimality certificates."""

from __future__ import annotations

import math

import pytest

from repro import (
    BoundCertificate,
    CommunicationModel,
    ConvexCombinationOverlap,
    OperatorSpec,
    SchedulingError,
    WorkVector,
    certify,
    lower_bound,
    parallel_time,
    slowest_operator_time,
    theorem51_coarse_grain_bound,
    theorem51_fixed_degree_bound,
    total_work_vector,
    vector_sum,
)

COMM = CommunicationModel(alpha=0.015, beta=0.6e-6)
OVERLAP = ConvexCombinationOverlap(0.5)


def spec(name, cpu, disk, data=0.0):
    return OperatorSpec(name=name, work=WorkVector([cpu, disk, 0.0]), data_volume=data)


class TestGuarantees:
    def test_fixed_degree_bound(self):
        assert theorem51_fixed_degree_bound(1) == 3.0
        assert theorem51_fixed_degree_bound(3) == 7.0

    def test_coarse_grain_bound(self):
        # 2d(fd+1)+1 at d=3, f=0.7: 6*(2.1+1)+1 = 19.6.
        assert math.isclose(theorem51_coarse_grain_bound(3, 0.7), 19.6)

    def test_invalid_inputs(self):
        with pytest.raises(SchedulingError):
            theorem51_fixed_degree_bound(0)
        with pytest.raises(SchedulingError):
            theorem51_coarse_grain_bound(3, 0.0)


class TestSlowestOperator:
    def test_h_is_max_parallel_time(self):
        specs = [spec("a", 10.0, 0.0), spec("b", 2.0, 2.0)]
        degrees = {"a": 2, "b": 1}
        expected = max(
            parallel_time(specs[0], 2, COMM, OVERLAP),
            parallel_time(specs[1], 1, COMM, OVERLAP),
        )
        assert math.isclose(
            slowest_operator_time(specs, degrees, COMM, OVERLAP), expected
        )

    def test_missing_degree_rejected(self):
        with pytest.raises(SchedulingError):
            slowest_operator_time([spec("a", 1.0, 1.0)], {}, COMM, OVERLAP)

    def test_empty_specs(self):
        assert slowest_operator_time([], {}, COMM, OVERLAP) == 0.0


class TestLowerBound:
    def test_formula(self):
        specs = [spec("a", 10.0, 2.0), spec("b", 4.0, 8.0)]
        degrees = {"a": 2, "b": 1}
        p = 2
        totals = [total_work_vector(s, degrees[s.name], COMM) for s in specs]
        expected = max(
            vector_sum(totals).length() / p,
            slowest_operator_time(specs, degrees, COMM, OVERLAP),
        )
        assert math.isclose(
            lower_bound(specs, degrees, p, COMM, OVERLAP), expected
        )

    def test_congestion_dominates_many_ops(self):
        # Many small operators on one site: l(S)/P > h.
        specs = [spec(f"op{i}", 1.0, 0.0) for i in range(20)]
        degrees = {s.name: 1 for s in specs}
        lb = lower_bound(specs, degrees, 1, COMM, OVERLAP)
        h = slowest_operator_time(specs, degrees, COMM, OVERLAP)
        assert lb > h

    def test_slowest_dominates_on_many_sites(self):
        specs = [spec("big", 100.0, 0.0), spec("small", 1.0, 0.0)]
        degrees = {"big": 1, "small": 1}
        lb = lower_bound(specs, degrees, 50, COMM, OVERLAP)
        assert math.isclose(lb, parallel_time(specs[0], 1, COMM, OVERLAP))

    def test_empty(self):
        assert lower_bound([], {}, 4, COMM, OVERLAP) == 0.0

    def test_bad_p(self):
        with pytest.raises(SchedulingError):
            lower_bound([], {}, 0, COMM, OVERLAP)


class TestCertify:
    def test_certificate_fields(self):
        specs = [spec("a", 10.0, 2.0)]
        degrees = {"a": 1}
        lb = lower_bound(specs, degrees, 2, COMM, OVERLAP)
        cert = certify(lb * 2.0, specs, degrees, 2, COMM, OVERLAP)
        assert math.isclose(cert.ratio, 2.0)
        assert cert.guarantee == 7.0  # 2d+1 at d=3
        assert cert.satisfied

    def test_violation_detected(self):
        specs = [spec("a", 10.0, 2.0)]
        degrees = {"a": 1}
        lb = lower_bound(specs, degrees, 2, COMM, OVERLAP)
        cert = certify(lb * 100.0, specs, degrees, 2, COMM, OVERLAP)
        assert not cert.satisfied
        assert "VIOLATED" in str(cert)

    def test_custom_guarantee(self):
        cert = certify(1.0, [spec("a", 1.0, 0.0)], {"a": 1}, 1, COMM, OVERLAP, guarantee=1.5)
        assert cert.guarantee == 1.5

    def test_zero_everything(self):
        cert = BoundCertificate(makespan=0.0, lower_bound=0.0, ratio=1.0, guarantee=7.0)
        assert cert.satisfied

    def test_negative_makespan_rejected(self):
        with pytest.raises(SchedulingError):
            certify(-1.0, [spec("a", 1.0, 0.0)], {"a": 1}, 1, COMM, OVERLAP)

    def test_ok_string(self):
        cert = BoundCertificate(makespan=1.0, lower_bound=1.0, ratio=1.0, guarantee=7.0)
        assert "OK" in str(cert)
