"""Unit tests for the serve layer's numpy-free components.

Clock, workload spec, admission controller, degree governor, site pool,
and fluid executor — everything below the service orchestration, driven
directly with hand-built inputs so the no-numpy CI job covers the whole
online-scheduling control plane.
"""

from __future__ import annotations

import asyncio

import pytest

from repro import ConfigurationError, WorkVector
from repro.core.resource_model import ConvexCombinationOverlap
from repro.exceptions import ServiceError
from repro.serve import (
    AdmissionConfig,
    AdmissionController,
    AdmissionDecision,
    DegreeGovernor,
    FluidExecutor,
    GovernorConfig,
    GovernorPolicy,
    JobFactory,
    QueryJob,
    QueryTemplate,
    SitePool,
    SLOClass,
    WorkloadSpec,
    diurnal_factor,
    make_templates,
    run_virtual,
)


# ----------------------------------------------------------------------
# Virtual clock
# ----------------------------------------------------------------------
class TestVirtualClock:
    def test_sleep_advances_virtual_time_instantly(self):
        async def main():
            loop = asyncio.get_running_loop()
            t0 = loop.time()
            await asyncio.sleep(3600.0)
            return loop.time() - t0

        assert run_virtual(main()) == pytest.approx(3600.0)

    def test_interleaving_is_deterministic(self):
        async def main():
            order: list[str] = []

            async def ticker(name: str, period: float, n: int):
                for _ in range(n):
                    await asyncio.sleep(period)
                    order.append(name)

            await asyncio.gather(ticker("a", 1.0, 4), ticker("b", 1.5, 3))
            return order

        first = run_virtual(main())
        second = run_virtual(main())
        assert first == second
        assert first == ["a", "b", "a", "b", "a", "a", "b"]

    def test_genuine_deadlock_raises_service_error(self):
        async def main():
            await asyncio.get_running_loop().create_future()  # never resolves

        with pytest.raises(ServiceError, match="deadlock"):
            run_virtual(main())

    def test_returns_coroutine_result(self):
        async def main():
            await asyncio.sleep(1.0)
            return 42

        assert run_virtual(main()) == 42


# ----------------------------------------------------------------------
# Workload spec + generator streams
# ----------------------------------------------------------------------
class TestWorkloadSpec:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(duration=0.0)
        with pytest.raises(ConfigurationError):
            WorkloadSpec(rate=0.0)
        with pytest.raises(ConfigurationError):
            WorkloadSpec(diurnal_amplitude=1.0)
        with pytest.raises(ConfigurationError):
            WorkloadSpec(latency_mix=1.5)
        with pytest.raises(ConfigurationError):
            WorkloadSpec(query_sizes=())
        with pytest.raises(ConfigurationError):
            WorkloadSpec(arrival="closed", think_mean=0.0)
        with pytest.raises(ValueError):
            WorkloadSpec(arrival="sideways")

    def test_diurnal_factor_modulates_and_floors(self):
        spec = WorkloadSpec(duration=100.0, diurnal_amplitude=0.8)
        assert diurnal_factor(0.0, spec) == pytest.approx(1.0)
        assert diurnal_factor(25.0, spec) == pytest.approx(1.8)
        assert diurnal_factor(75.0, spec) == pytest.approx(0.2, abs=1e-9)
        flat = WorkloadSpec(duration=100.0)
        assert diurnal_factor(31.4, flat) == 1.0

    def test_templates_deterministic_and_cycling(self):
        spec = WorkloadSpec(query_sizes=(4, 6), template_pool=5, seed=3)
        templates = make_templates(spec)
        assert templates == make_templates(spec)
        assert [t.n_joins for t in templates] == [4, 6, 4, 6, 4]
        assert len({t.seed for t in templates}) == 5

    def test_job_factory_stream_is_seeded(self):
        spec = WorkloadSpec(seed=9, latency_mix=0.5)
        fa, fb = JobFactory(spec), JobFactory(spec)
        a = [fa.job(float(i)) for i in range(20)]
        b = [fb.job(float(i)) for i in range(20)]
        assert [(j.slo, j.template.index) for j in a] == [
            (j.slo, j.template.index) for j in b
        ]
        assert [j.job_id for j in a] == list(range(20))
        slos = {j.slo for j in a}
        assert slos == {SLOClass.LATENCY, SLOClass.BATCH}


# ----------------------------------------------------------------------
# Admission controller
# ----------------------------------------------------------------------
def _job(job_id: int, slo: SLOClass) -> QueryJob:
    return QueryJob(
        job_id=job_id,
        slo=slo,
        template=QueryTemplate(index=0, n_joins=4, seed=1),
        submitted_at=float(job_id),
    )


class TestAdmission:
    def make(self, **kwargs) -> AdmissionController:
        return AdmissionController(AdmissionConfig(**kwargs))

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            AdmissionConfig(max_queue=0)
        with pytest.raises(ConfigurationError):
            AdmissionConfig(high_water=100, max_queue=10)
        with pytest.raises(ConfigurationError):
            AdmissionConfig(low_water=16, high_water=16)

    def test_admits_until_high_water_then_defers_batch(self):
        ctl = self.make(max_queue=10, high_water=3, low_water=1)
        for i in range(3):
            assert ctl.submit(_job(i, SLOClass.BATCH)) is AdmissionDecision.ADMITTED
        assert ctl.submit(_job(3, SLOClass.BATCH)) is AdmissionDecision.DEFERRED
        # Latency-class jobs keep being admitted past the high-water mark.
        assert ctl.submit(_job(4, SLOClass.LATENCY)) is AdmissionDecision.ADMITTED
        assert ctl.queued == 4
        assert ctl.parked == 1

    def test_sheds_at_hard_cap(self):
        ctl = self.make(max_queue=4, high_water=2, low_water=1)
        decisions = [ctl.submit(_job(i, SLOClass.LATENCY)) for i in range(5)]
        assert decisions[:4] == [AdmissionDecision.ADMITTED] * 4
        assert decisions[4] is AdmissionDecision.SHED
        assert ctl.decisions[("shed", "latency")] == 1

    def test_pop_latency_first_fifo_within_class(self):
        ctl = self.make(max_queue=10, high_water=10, low_water=2)
        ctl.submit(_job(0, SLOClass.BATCH))
        ctl.submit(_job(1, SLOClass.LATENCY))
        ctl.submit(_job(2, SLOClass.BATCH))
        ctl.submit(_job(3, SLOClass.LATENCY))
        assert [ctl.pop().job_id for _ in range(4)] == [1, 3, 0, 2]
        assert ctl.pop() is None

    def test_promotion_waits_for_low_water(self):
        ctl = self.make(max_queue=20, high_water=4, low_water=2)
        for i in range(4):
            ctl.submit(_job(i, SLOClass.BATCH))
        ctl.submit(_job(4, SLOClass.BATCH))
        assert ctl.parked == 1
        # Hysteresis: popping down to depth 3 (>= low_water) must not
        # promote yet.
        ctl.pop()
        assert ctl.parked == 1
        ctl.pop()
        ctl.pop()  # queued drops below low_water=2 -> promote
        assert ctl.parked == 0
        assert ctl.promoted == 1

    def test_drain_intake_promotes_parked(self):
        ctl = self.make(max_queue=20, high_water=2, low_water=1)
        ctl.submit(_job(0, SLOClass.BATCH))
        ctl.submit(_job(1, SLOClass.BATCH))
        ctl.submit(_job(2, SLOClass.BATCH))
        ctl.submit(_job(3, SLOClass.BATCH))
        assert ctl.parked == 2
        ctl.drain_intake()
        # Refilled up to high_water immediately, remainder as pops free room.
        assert ctl.queued == 2
        popped = []
        while (job := ctl.pop()) is not None:
            popped.append(job.job_id)
        assert popped == [0, 1, 2, 3]
        assert ctl.parked == 0

    def test_on_available_fires_for_enqueue_and_promotion(self):
        fired = []
        ctl = self.make(max_queue=20, high_water=2, low_water=1)
        ctl.on_available = lambda: fired.append(ctl.queued)
        ctl.submit(_job(0, SLOClass.BATCH))
        ctl.submit(_job(1, SLOClass.BATCH))
        ctl.submit(_job(2, SLOClass.BATCH))  # deferred: no signal
        assert len(fired) == 2
        ctl.pop()
        ctl.pop()  # promotes the parked job -> signal
        assert len(fired) == 3


# ----------------------------------------------------------------------
# Degree governor
# ----------------------------------------------------------------------
class TestGovernor:
    def test_fixed_policy_always_max(self):
        gov = DegreeGovernor(GovernorConfig(policy=GovernorPolicy.FIXED, max_degree=8))
        assert [gov.degree(p) for p in (0, 5, 50)] == [8, 8, 8]

    def test_adaptive_halves_per_pressure_step(self):
        gov = DegreeGovernor(
            GovernorConfig(max_degree=8, min_degree=1, pressure_step=4)
        )
        assert gov.degree(0) == 8
        assert gov.degree(3) == 8
        assert gov.degree(4) == 4
        assert gov.degree(8) == 2
        assert gov.degree(12) == 1
        # Floors at min_degree and recovers as pressure falls.
        assert gov.degree(400) == 1
        assert gov.degree(2) == 8
        assert gov.chosen == {8: 3, 4: 1, 2: 1, 1: 2}

    def test_min_degree_floor(self):
        gov = DegreeGovernor(
            GovernorConfig(max_degree=8, min_degree=2, pressure_step=1)
        )
        assert gov.degree(10) == 2

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            GovernorConfig(min_degree=0)
        with pytest.raises(ConfigurationError):
            GovernorConfig(max_degree=2, min_degree=4)
        with pytest.raises(ConfigurationError):
            GovernorConfig(pressure_step=0)


# ----------------------------------------------------------------------
# Site pool
# ----------------------------------------------------------------------
def _loads(*values: float) -> tuple[WorkVector, ...]:
    return tuple(WorkVector([v, 0.0, 0.0]) for v in values)


class TestSitePool:
    def make(self, p: int = 4, max_coresident: int = 2) -> SitePool:
        return SitePool(
            p=p, overlap=ConvexCombinationOverlap(0.5), max_coresident=max_coresident
        )

    def test_install_places_on_distinct_sites(self):
        pool = self.make()
        hosts = pool.install("q0", _loads(3.0, 2.0, 1.0))
        assert len(hosts) == 3
        assert len(set(hosts)) == 3
        assert pool.running == frozenset({"q0"})
        assert all(pool.residents_of(j) == 1 for j in hosts)

    def test_retire_frees_sites(self):
        pool = self.make()
        hosts = pool.install("q0", _loads(1.0, 1.0))
        pool.retire("q0")
        assert pool.running == frozenset()
        assert all(pool.residents_of(j) == 0 for j in hosts)
        assert pool.installs == 1
        assert pool.retires == 1

    def test_double_install_and_bad_retire_raise(self):
        pool = self.make()
        pool.install("q0", _loads(1.0))
        with pytest.raises(ServiceError):
            pool.install("q0", _loads(1.0))
        with pytest.raises(ServiceError):
            pool.retire("q9")
        with pytest.raises(ServiceError):
            pool.install("q1", ())
        with pytest.raises(ServiceError):
            pool.install("q1", _loads(*([1.0] * 9)))

    def test_has_capacity_respects_coresidency(self):
        pool = self.make(p=3, max_coresident=1)
        assert pool.has_capacity(3)
        pool.install("q0", _loads(1.0, 1.0))
        assert pool.has_capacity(1)
        assert not pool.has_capacity(2)
        pool.install("q1", _loads(1.0))
        assert not pool.has_capacity(1)
        pool.retire("q0")
        assert pool.has_capacity(2)

    def test_utilization_snapshot(self):
        pool = self.make()
        assert pool.utilization()["resident_queries"] == 0.0
        pool.install("q0", _loads(1.0, 1.0))
        pool.install("q1", _loads(1.0))
        snap = pool.utilization()
        assert snap["resident_queries"] == 2.0
        assert snap["occupied_sites"] == 3.0
        assert snap["max_residents"] == 1.0

    def test_placement_balances_load(self):
        # Repair placement uses the least-loaded rule, so equal installs
        # spread across the pool rather than stacking one site.
        pool = self.make(p=4, max_coresident=4)
        for i in range(4):
            pool.install(f"q{i}", _loads(1.0))
        assert [pool.residents_of(j) for j in range(4)] == [1, 1, 1, 1]
        assert pool.placement_scans > 0


# ----------------------------------------------------------------------
# Fluid executor
# ----------------------------------------------------------------------
class _MiniPool:
    """Site -> residents bookkeeping for executor tests."""

    def __init__(self):
        self.sites: dict[int, set[str]] = {}

    def add(self, name: str, hosts: tuple[int, ...]) -> None:
        for j in hosts:
            self.sites.setdefault(j, set()).add(name)

    def remove(self, name: str) -> None:
        for residents in self.sites.values():
            residents.discard(name)

    def residents_of(self, j: int) -> int:
        return len(self.sites.get(j, ()))


def _run_executor(launches):
    """Run ``launches`` (name, demand, hosts, at) and return finish times."""
    finished: dict[str, float] = {}
    mini = _MiniPool()

    async def main():
        def on_complete(name: str, at: float) -> None:
            mini.remove(name)
            finished[name] = at

        executor = FluidExecutor(
            residents_of=mini.residents_of, on_complete=on_complete
        )
        runner = asyncio.ensure_future(executor.run())

        async def feed():
            loop = asyncio.get_running_loop()
            for name, demand, hosts, at in launches:
                delay = at - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
                mini.add(name, hosts)
                executor.launch(name, demand, hosts, loop.time())

        await feed()
        executor.stop_when_idle()
        await runner

    run_virtual(main())
    return finished


class TestFluidExecutor:
    def test_lone_query_finishes_at_demand(self):
        finished = _run_executor([("a", 10.0, (0, 1), 0.0)])
        assert finished["a"] == pytest.approx(10.0)

    def test_fair_share_on_contended_site(self):
        # Both queries share site 0: each runs at rate 1/2.
        finished = _run_executor(
            [("a", 10.0, (0,), 0.0), ("b", 10.0, (0,), 0.0)]
        )
        assert finished["a"] == pytest.approx(20.0)
        assert finished["b"] == pytest.approx(20.0)

    def test_completion_speeds_up_survivor(self):
        # a and b share site 0; a finishes first (rate 1/2 until t=20),
        # then b runs alone at full rate: 30 - 10 = 20 more -> t=40.
        finished = _run_executor(
            [("a", 10.0, (0,), 0.0), ("b", 30.0, (0,), 0.0)]
        )
        assert finished["a"] == pytest.approx(20.0)
        assert finished["b"] == pytest.approx(40.0)

    def test_rate_is_worst_site_share(self):
        # b straggles on site 0 (shared with a) even though site 1 is
        # private: its rate is the worst share across its hosts.
        finished = _run_executor(
            [("a", 10.0, (0,), 0.0), ("b", 10.0, (0, 1), 0.0)]
        )
        assert finished["b"] == pytest.approx(20.0)

    def test_late_arrival_changes_rates(self):
        # a alone until t=5 (half done), then b joins site 0: both at
        # rate 1/2.  a needs 5 more demand -> 10 elapsed -> t=15; b has
        # done 5 of 10 by then and finishes alone at full rate at t=20.
        finished = _run_executor(
            [("a", 10.0, (0,), 0.0), ("b", 10.0, (0,), 5.0)]
        )
        assert finished["a"] == pytest.approx(15.0)
        assert finished["b"] == pytest.approx(20.0)

    def test_duplicate_launch_rejected(self):
        async def main():
            executor = FluidExecutor(
                residents_of=lambda j: 1, on_complete=lambda n, t: None
            )
            executor.launch("a", 1.0, (0,), 0.0)
            executor.launch("a", 1.0, (0,), 0.0)

        with pytest.raises(ServiceError, match="already running"):
            run_virtual(main())

    def test_utilization_integrals(self):
        finished = _run_executor(
            [("a", 10.0, (0,), 0.0), ("b", 10.0, (1,), 0.0)]
        )
        assert finished["a"] == pytest.approx(10.0)
        assert finished["b"] == pytest.approx(10.0)
