"""Tests for the sort-merge join extension (generality beyond §6's testbed)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import (
    BaseRelationNode,
    ConvexCombinationOverlap,
    JoinMethod,
    JoinNode,
    OperatorKind,
    PAPER_PARAMETERS,
    PlanStructureError,
    Relation,
    Resource,
    annotate_plan,
    build_task_tree,
    expand_plan,
    generate_query,
    hong_schedule,
    merge_work_vector,
    opt_bound,
    sort_work_vector,
    synchronous_schedule,
    tree_schedule,
    validate_phased_schedule,
)
from repro.plans.physical_ops import merge_op, sort_op

COMM = PAPER_PARAMETERS.communication_model()


def merge_join_plan():
    a = BaseRelationNode(Relation("A", 2_000))
    b = BaseRelationNode(Relation("B", 5_000))
    return JoinNode("J0", a, b, method=JoinMethod.SORT_MERGE)


class TestPhysicalOps:
    def test_sort_op_fields(self):
        op = sort_op("J3", "l", 700)
        assert op.name == "sortl(J3)"
        assert op.kind is OperatorKind.SORT
        assert op.input_tuples == op.output_tuples == 700

    def test_sort_bad_side(self):
        with pytest.raises(PlanStructureError):
            sort_op("J3", "x", 700)

    def test_merge_op_fields(self):
        op = merge_op("J3", 700, 900, 900)
        assert op.kind is OperatorKind.MERGE
        assert op.input_tuples == 1_600
        assert op.output_tuples == 900


class TestExpansion:
    def test_operator_counts(self):
        tree = expand_plan(merge_join_plan())
        # 2 scans + 2 sorts + 1 merge.
        assert len(tree) == 5
        assert tree.root.kind is OperatorKind.MERGE
        assert len(tree.blocking_edges()) == 2

    def test_blocking_structure(self):
        tree = expand_plan(merge_join_plan())
        for u, v in tree.blocking_edges():
            assert u.kind is OperatorKind.SORT
            assert v.kind is OperatorKind.MERGE
            assert u.join_id == v.join_id
        tree.validate()

    def test_task_tree_shape(self):
        tree = expand_plan(merge_join_plan())
        tasks = build_task_tree(tree)
        # Two sort tasks (scan+sort each) plus the root merge task.
        assert len(tasks) == 3
        assert tasks.height == 1
        sinks = {t.sink.kind for t in tasks.tasks if t is not tasks.root}
        assert sinks == {OperatorKind.SORT}

    def test_pretty_mentions_method(self):
        assert "<sort_merge>" in merge_join_plan().pretty()

    def test_mixed_plan_expands(self):
        inner = JoinNode(
            "J0",
            BaseRelationNode(Relation("A", 1_000)),
            BaseRelationNode(Relation("B", 2_000)),
            method=JoinMethod.SORT_MERGE,
        )
        plan = JoinNode("J1", inner, BaseRelationNode(Relation("C", 3_000)))
        tree = expand_plan(plan)
        tree.validate()
        kinds = {op.kind for op in tree.operators}
        assert OperatorKind.SORT in kinds and OperatorKind.BUILD in kinds


class TestCostModel:
    def test_sort_formula(self):
        w = sort_work_vector(4_000, PAPER_PARAMETERS)
        pages = PAPER_PARAMETERS.pages(4_000)
        assert w[Resource.DISK] == pytest.approx(2 * pages * 0.020)
        expected_cpu = (pages * (5_000 + 5_000) + 2 * 4_000 * 300) * 1e-6
        assert w[Resource.CPU] == pytest.approx(expected_cpu)

    def test_merge_formula(self):
        w = merge_work_vector(1_000, 2_000, 2_000, PAPER_PARAMETERS)
        assert w[Resource.CPU] == pytest.approx((1_000 + 2_000 + 2_000) * 300e-6)
        assert w[Resource.DISK] == 0.0

    def test_sort_costs_more_than_scan_processing(self):
        # Sorting a stream costs more than scanning it (extra run I/O).
        from repro import scan_work_vector

        sort = sort_work_vector(10_000, PAPER_PARAMETERS)
        scan = scan_work_vector(10_000, PAPER_PARAMETERS)
        assert sort[Resource.DISK] > scan[Resource.DISK]

    def test_annotation_covers_new_kinds(self):
        tree = expand_plan(merge_join_plan())
        annotate_plan(tree, PAPER_PARAMETERS)
        for op in tree.operators:
            assert op.annotated
            assert op.spec.processing_area > 0

    def test_sort_data_volume_counts_both_directions(self):
        tree = expand_plan(merge_join_plan())
        annotate_plan(tree, PAPER_PARAMETERS)
        sort_l = tree.operator_by_name("sortl(J0)")
        assert sort_l.spec.data_volume == pytest.approx(2 * 2_000 * 128)

    def test_merge_receives_both_streams(self):
        tree = expand_plan(merge_join_plan())
        annotate_plan(tree, PAPER_PARAMETERS)
        merge = tree.operator_by_name("merge(J0)")
        # Root merge: both inputs in, result not repartitioned.
        assert merge.spec.data_volume == pytest.approx((2_000 + 5_000) * 128)


class TestScheduling:
    @pytest.fixture
    def merge_query(self):
        query = generate_query(
            8, np.random.default_rng(13), merge_join_fraction=1.0
        )
        annotate_plan(query.operator_tree, PAPER_PARAMETERS)
        return query

    def test_all_schedulers_handle_merge_plans(self, merge_query, overlap):
        ts = tree_schedule(
            merge_query.operator_tree, merge_query.task_tree,
            p=12, comm=COMM, overlap=overlap, f=0.7,
        )
        sy = synchronous_schedule(
            merge_query.operator_tree, merge_query.task_tree,
            p=12, comm=COMM, overlap=overlap,
        )
        hg = hong_schedule(
            merge_query.operator_tree, merge_query.task_tree,
            p=12, comm=COMM, overlap=overlap, f=0.7,
        )
        for result in (ts.phased_schedule, sy.phased_schedule, hg.phased_schedule):
            result.validate()
        lb = opt_bound(
            merge_query.operator_tree, merge_query.task_tree,
            p=12, f=0.7, comm=COMM, overlap=overlap,
        )
        assert ts.response_time >= lb * (1 - 1e-9)

    def test_simulator_agrees(self, merge_query, overlap):
        ts = tree_schedule(
            merge_query.operator_tree, merge_query.task_tree,
            p=12, comm=COMM, overlap=overlap, f=0.7,
        )
        sim = validate_phased_schedule(ts.phased_schedule)
        assert sim.slowdown == pytest.approx(1.0)

    def test_merges_are_floating(self, merge_query, overlap):
        """Unlike probes, merges have no home constraint; the scheduler is
        free to place them (their inputs are repartitioned, A5)."""
        ts = tree_schedule(
            merge_query.operator_tree, merge_query.task_tree,
            p=12, comm=COMM, overlap=overlap, f=0.7,
        )
        for op in merge_query.operator_tree.operators:
            if op.kind is OperatorKind.MERGE:
                assert op.name in ts.homes  # scheduled like any floating op

    def test_hash_beats_merge_on_identical_plan(self, overlap):
        """Hash plans avoid the sort run I/O; with ample memory (A1) the
        hash method should win on the *same* plan shape — a sanity check
        that the cost model orders the methods sensibly."""

        def convert(node):
            if isinstance(node, BaseRelationNode):
                return node
            return JoinNode(
                node.join_id,
                convert(node.build_side),
                convert(node.probe_side),
                method=JoinMethod.SORT_MERGE,
            )

        hash_q = generate_query(8, np.random.default_rng(99))
        annotate_plan(hash_q.operator_tree, PAPER_PARAMETERS)
        merge_plan = convert(hash_q.plan)
        merge_tree = expand_plan(merge_plan)
        annotate_plan(merge_tree, PAPER_PARAMETERS)
        merge_tasks = build_task_tree(merge_tree)

        t_hash = tree_schedule(
            hash_q.operator_tree, hash_q.task_tree,
            p=12, comm=COMM, overlap=overlap, f=0.7,
        ).response_time
        t_merge = tree_schedule(
            merge_tree, merge_tasks, p=12, comm=COMM, overlap=overlap, f=0.7
        ).response_time
        assert t_hash < t_merge

    def test_merge_fraction_validated(self):
        import numpy as np

        from repro import Catalog, QueryGraph, random_bushy_plan

        catalog = Catalog([Relation("A", 10), Relation("B", 10)])
        graph = QueryGraph(catalog.names, [("A", "B")])
        with pytest.raises(PlanStructureError):
            random_bushy_plan(
                graph, catalog, np.random.default_rng(0), merge_join_fraction=1.5
            )
