"""End-to-end tests of the online scheduler service (numpy required).

These drive :class:`repro.serve.SchedulerService` through full virtual-
time runs with real workload generation and real TREESCHEDULE
placements, so they are listed in ``conftest.collect_ignore`` for the
no-numpy CI job.  The unit-level serve tests live in ``test_serve.py``
and stay numpy-free.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.cli import main
from repro.serve import (
    AdmissionConfig,
    GovernorConfig,
    GovernorPolicy,
    SchedulerService,
    ServeConfig,
    WorkloadSpec,
)

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def _config(**overrides) -> ServeConfig:
    """The bench-calibrated service config, scaled for tests.

    f=0.1 makes total work k*T0(k) grow with the clone degree, which is
    the regime where adaptive degree control pays off; p=20 with a
    co-residency cap of 3 keeps the pool contended at rate 0.15.
    """
    workload = overrides.pop(
        "workload",
        WorkloadSpec(
            duration=300.0,
            rate=0.15,
            seed=42,
            template_pool=6,
            query_sizes=(4, 6, 8),
            diurnal_amplitude=0.3,
        ),
    )
    governor = overrides.pop(
        "governor",
        GovernorConfig(max_degree=8, min_degree=1, pressure_step=4),
    )
    return ServeConfig(
        p=20,
        f=0.1,
        max_coresident=3,
        workload=workload,
        governor=governor,
        **overrides,
    )


class TestDeterminism:
    def test_open_mode_summary_identity(self):
        first = SchedulerService(_config()).run().summary()
        second = SchedulerService(_config()).run().summary()
        assert first == second
        assert first["offered"] > 20
        assert first["outcomes"].get("completed", 0) > 0

    def test_closed_mode_summary_identity(self):
        spec = WorkloadSpec(
            duration=200.0,
            arrival="closed",
            clients=6,
            think_mean=15.0,
            seed=11,
            template_pool=4,
        )
        first = SchedulerService(_config(workload=spec)).run().summary()
        second = SchedulerService(_config(workload=spec)).run().summary()
        assert first == second
        assert first["offered"] > 0
        # Closed loop: every offered job resolves (completed or shed).
        assert sum(first["outcomes"].values()) == first["offered"]


class TestServiceBehavior:
    def test_adaptive_beats_fixed_throughput_at_high_load(self):
        # The acceptance criterion of the degree governor: under heavy
        # load, lowering the clone degree (less per-query work inflation
        # at f=0.1) sustains strictly more throughput than always
        # scheduling at max degree.
        adaptive = SchedulerService(_config()).run().summary()
        fixed = SchedulerService(
            _config(
                governor=GovernorConfig(
                    policy=GovernorPolicy.FIXED, max_degree=8
                )
            )
        ).run().summary()
        assert adaptive["qps"] > fixed["qps"]
        # And the governor really moved: multiple degrees in play.
        assert len(adaptive["degrees"]["histogram"]) > 1
        assert fixed["degrees"]["histogram"] == {
            "8": sum(fixed["degrees"]["histogram"].values())
        }

    @staticmethod
    def _overloaded_config() -> ServeConfig:
        # Double the offered rate and shrink the queue so the admission
        # thresholds actually bite (at rate 0.15 the pool keeps up and
        # every job is placed on arrival).
        return _config(
            workload=WorkloadSpec(
                duration=300.0,
                rate=0.3,
                seed=42,
                template_pool=6,
                query_sizes=(4, 6, 8),
                diurnal_amplitude=0.3,
            ),
            admission=AdmissionConfig(max_queue=6, high_water=3, low_water=1),
        )

    def test_latency_class_waits_less_than_batch(self):
        summary = SchedulerService(self._overloaded_config()).run().summary()
        lat = summary["latency"]["latency_class"]
        bat = summary["latency"]["batch_class"]
        assert lat["completed"] > 0 and bat["completed"] > 0
        # Strict class priority in the queue: latency jobs wait less on
        # average than batch jobs under sustained load.
        assert lat["mean_wait"] < bat["mean_wait"]

    def test_small_queue_sheds_and_defers(self):
        summary = SchedulerService(self._overloaded_config()).run().summary()
        assert summary["outcomes"].get("shed", 0) > 0
        assert summary["deferred_then_run"] > 0
        assert sum(summary["outcomes"].values()) == summary["offered"]

    def test_records_and_counters_consistent(self):
        service = SchedulerService(_config())
        report = service.run()
        summary = report.summary()
        completed = [r for r in report.records if r.outcome == "completed"]
        assert len(completed) == summary["outcomes"]["completed"]
        for record in completed:
            assert record.started is not None and record.finished is not None
            assert record.finished >= record.started >= record.submitted
            # Fluid contention can only slow a query down.
            assert record.latency >= record.base_response - 1e-9
            assert 1 <= record.degree <= 8
            assert 1 <= record.sites <= 20
        counters = report.metrics.counters
        assert counters["queries_offered"] == summary["offered"]
        assert counters["queries_completed"] == len(completed)
        assert summary["mean_slowdown"] >= 1.0
        assert 0.0 < summary["pool"]["site_utilization"] <= 1.0


class TestServeCLI:
    ARGS = [
        "serve",
        "--duration",
        "150",
        "--rate",
        "0.12",
        "--seed",
        "42",
        "--max-coresident",
        "3",
    ]

    def test_cli_runs_and_output_is_worker_invariant(self, capsys):
        # The service is single-loop virtual-time code: --workers must
        # not leak into the summary (nor anything else on stdout).
        assert main([*self.ARGS, "--workers", "1"]) == 0
        first = capsys.readouterr().out
        assert main([*self.ARGS, "--workers", "4"]) == 0
        second = capsys.readouterr().out
        assert first == second
        assert "Online scheduler service" in first
        assert "throughput" in first

    def test_cli_json_payload(self, capsys):
        assert main([*self.ARGS, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["target"] == "serve"
        assert payload["seed"] == 42
        assert payload["governor"] == "adaptive"
        summary = payload["summary"]
        assert summary["offered"] == sum(summary["outcomes"].values())
        assert summary["qps"] > 0


class TestElasticCapacity:
    """Mid-serve capacity deltas: the PR-9 elasticity primitive."""

    def test_elastic_run_is_deterministic(self):
        events = ((50.0, 0, 2.0), (150.0, 1, 0.5))
        first = SchedulerService(
            _config(capacity_events=events)
        ).run().summary()
        second = SchedulerService(
            _config(capacity_events=events)
        ).run().summary()
        assert first == second
        assert first["pool"]["sites_resized"] == 2

    def test_sites_resized_key_only_when_elastic(self):
        # Byte-identity leg: a run that never resizes must not even
        # carry the key, so historical summaries hash unchanged.
        static = SchedulerService(_config()).run().summary()
        assert "sites_resized" not in static["pool"]
        elastic = SchedulerService(
            _config(capacity_events=((50.0, 0, 2.0),))
        ).run().summary()
        assert elastic["pool"]["sites_resized"] == 1

    def test_heterogeneous_pool_from_cluster(self):
        from repro import parse_cluster_spec

        spec = parse_cluster_spec("fast:4:4.0,slow:16:1.0")
        hetero = SchedulerService(_config(cluster=spec)).run().summary()
        uniform = SchedulerService(_config()).run().summary()
        assert hetero != uniform  # capacities really reach the fluid rates
        assert hetero["outcomes"].get("completed", 0) > 0

    def test_scale_up_beats_scale_down(self):
        # Same workload; quadrupling site 0..3 early beats throttling
        # them to a tenth of a unit — capacity changes must reach the
        # fluid rates, not just the counters.
        def run(capacity):
            events = tuple((10.0, j, capacity) for j in range(4))
            return SchedulerService(
                _config(capacity_events=events)
            ).run().summary()

        up, down = run(4.0), run(0.1)
        assert up["pool"]["sites_resized"] == 4
        assert up["mean_slowdown"] <= down["mean_slowdown"]

    def test_cli_resize_and_cluster(self, capsys):
        args = [*TestServeCLI.ARGS, "--cluster", "fast:4:2.0,slow:16:1.0",
                "--resize", "30:0:0.5", "--json"]
        assert main(args) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["p"] == 20
        assert payload["cluster"] == "fast:4:2.0,slow:16:1.0"
        assert payload["summary"]["pool"]["sites_resized"] == 1

    def test_cli_rejects_malformed_resize(self, capsys):
        assert main([*TestServeCLI.ARGS, "--resize", "30:0"]) == 2
        capsys.readouterr()

    def test_cli_uniform_cluster_matches_sites(self, capsys):
        # `--cluster 20` is the same run, cache keys included, as the
        # bare default pool of 20 sites.
        assert main([*TestServeCLI.ARGS]) == 0
        baseline = capsys.readouterr().out
        assert main([*TestServeCLI.ARGS, "--cluster", "20"]) == 0
        uniform = capsys.readouterr().out
        assert uniform == baseline

    def test_cli_cluster_and_sites_are_exclusive(self, capsys):
        assert main(
            [*TestServeCLI.ARGS, "--cluster", "20", "--sites", "20"]
        ) == 2
        capsys.readouterr()
