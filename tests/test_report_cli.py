"""Tests for report rendering and the command-line interface."""

from __future__ import annotations

import pytest

from repro import PAPER_PARAMETERS
from repro.experiments import PAPER_CONFIG
from repro.experiments.cli import build_parser, main
from repro.experiments.figures import FigureData, Series
from repro.experiments.report import (
    improvement_summary,
    render_figure,
    render_parameters,
)


def small_figure():
    return FigureData(
        figure_id="figX",
        title="demo",
        x_label="sites",
        y_label="time (s)",
        series=(
            Series(label="A", xs=(10.0, 20.0), ys=(5.0, 2.5)),
            Series(label="B", xs=(10.0, 20.0), ys=(10.0, 5.0)),
        ),
        notes=("shape note",),
    )


class TestRenderFigure:
    def test_contains_all_cells(self):
        text = render_figure(small_figure())
        assert "figX" in text
        assert "sites" in text
        assert "A" in text and "B" in text
        assert "10" in text and "2.5" in text
        assert "shape note" in text

    def test_mismatched_grids_rejected(self):
        fig = FigureData(
            figure_id="bad",
            title="t",
            x_label="x",
            y_label="y",
            series=(
                Series(label="A", xs=(1.0,), ys=(1.0,)),
                Series(label="B", xs=(2.0,), ys=(1.0,)),
            ),
        )
        with pytest.raises(ValueError):
            render_figure(fig)

    def test_series_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Series(label="A", xs=(1.0,), ys=(1.0, 2.0))


class TestImprovementSummary:
    def test_computation(self):
        text = improvement_summary(small_figure(), better="A", worse="B")
        # A halves B everywhere: 50% everywhere.
        assert "mean=50.0%" in text
        assert "min=50.0%" in text

    def test_different_grids_rejected(self):
        fig = FigureData(
            figure_id="bad",
            title="t",
            x_label="x",
            y_label="y",
            series=(
                Series(label="A", xs=(1.0,), ys=(1.0,)),
                Series(label="B", xs=(2.0,), ys=(1.0,)),
            ),
        )
        with pytest.raises(ValueError):
            improvement_summary(fig, "A", "B")


class TestRenderParameters:
    def test_table2_contents(self):
        text = render_parameters(PAPER_PARAMETERS)
        assert "Table 2" in text
        assert "1 MIPS" in text
        assert "20 msec" in text
        assert "15 msec" in text
        assert "0.6 usec" in text
        assert "128 bytes" in text
        assert "40 tuples" in text
        assert "5000 instr" in text


class TestCli:
    def test_parser_targets(self):
        parser = build_parser()
        args = parser.parse_args(["fig5a", "--quick"])
        assert args.target == "fig5a"
        assert args.quick

    def test_table2_target(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out

    def test_figure_run_quick_tiny(self, capsys):
        rc = main(["fig6b", "--quick", "--queries", "1", "--sites", "4", "8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fig6b" in out
        assert "TreeSchedule" in out
        assert "OptBound" in out

    def test_seed_override(self, capsys):
        rc = main(["fig6b", "--quick", "--queries", "1", "--sites", "4", "--seed", "5"])
        assert rc == 0

    def test_unknown_target_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figZZ"])
