"""Tests for the fault-intensity robustness experiment."""

from __future__ import annotations

import pytest

from repro import ConfigurationError
from repro.engine import MetricsRecorder, ScheduleResult
from repro.engine.metrics import COUNTER_FAULTS_INJECTED, COUNTER_WORK_RERUN
from repro.experiments import prepare_workload, robustness_sweep, schedule_query
from repro.experiments.config import quick_config
from repro.experiments.robustness import (
    RobustnessPoint,
    evaluate_robustness_point,
    simulate_result_under_faults,
)
from repro.sim.faults import FaultSpec
from repro.sim.policies import SharingPolicy

CONFIG = quick_config(n_queries=2)


def small_sweep(workers, metrics=None):
    return robustness_sweep(
        CONFIG,
        n_joins=8,
        p=8,
        intensities=(0.0, 1.0),
        workers=workers,
        metrics=metrics,
    )


class TestDeterminism:
    def test_identical_for_any_worker_count(self):
        serial = small_sweep(1)
        parallel = small_sweep(2)
        # Fault plans are pure functions of (spec, schedule, seed), so
        # the whole report must be bit-identical, not just approximate.
        assert parallel == serial

    def test_point_is_reproducible(self):
        point = RobustnessPoint(
            algorithm="treeschedule",
            n_joins=8,
            n_queries=2,
            seed=CONFIG.seed,
            p=8,
            f=0.7,
            epsilon=0.5,
            intensity=0.75,
            fault_seed=1996,
        )
        assert evaluate_robustness_point(point) == evaluate_robustness_point(point)


class TestShape:
    def test_series_per_algorithm(self):
        fig = small_sweep(1)
        assert fig.figure_id == "robustness"
        assert {s.label for s in fig.series} == {"treeschedule", "synchronous"}
        for s in fig.series:
            assert s.xs == (0.0, 1.0)
            assert len(s.ys) == 2

    def test_zero_intensity_is_benign(self):
        fig = small_sweep(1)
        for s in fig.series:
            # No faults: degradation is just the fair-share penalty,
            # which is small, and faults can only make things worse
            # on average for this workload.
            assert 1.0 - 1e-9 <= s.ys[0] < 1.5
            assert s.ys[1] > s.ys[0]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            robustness_sweep(CONFIG, algorithms=())
        with pytest.raises(ConfigurationError):
            robustness_sweep(CONFIG, intensities=())
        with pytest.raises(ConfigurationError):
            robustness_sweep(CONFIG, intensities=(0.5, 1.7))


class TestCounterFlow:
    def _scheduled_result(self) -> ScheduleResult:
        (query,) = prepare_workload(6, 1, 42, CONFIG.params)
        return schedule_query("treeschedule", query, p=6, f=0.7, epsilon=0.5)

    def test_counters_reach_schedule_result(self):
        result = self._scheduled_result()
        metrics = MetricsRecorder()
        sim = simulate_result_under_faults(
            result, FaultSpec.at_intensity(1.0), seed=7, metrics=metrics
        )
        report = sim.fault_report
        assert report is not None and report.faults_injected > 0
        counters = result.instrumentation.counters
        assert counters[COUNTER_FAULTS_INJECTED] == report.faults_injected
        assert counters[COUNTER_WORK_RERUN] == report.work_rerun
        assert metrics.counters[COUNTER_FAULTS_INJECTED] == report.faults_injected

    def test_zero_fault_counters_are_zero(self):
        result = self._scheduled_result()
        simulate_result_under_faults(result, FaultSpec.none(), seed=7)
        counters = result.instrumentation.counters
        assert counters[COUNTER_FAULTS_INJECTED] == 0
        assert counters[COUNTER_WORK_RERUN] == 0.0

    def test_bound_only_rejected(self):
        bound = ScheduleResult.from_value("optbound", 3.0)
        with pytest.raises(ConfigurationError):
            simulate_result_under_faults(bound, FaultSpec.at_intensity(0.5), seed=1)


class TestPolicies:
    @pytest.mark.parametrize("policy", list(SharingPolicy))
    def test_every_policy_simulates(self, policy):
        point = RobustnessPoint(
            algorithm="treeschedule",
            n_joins=6,
            n_queries=1,
            seed=42,
            p=6,
            f=0.7,
            epsilon=0.5,
            intensity=0.5,
            fault_seed=3,
            policy=policy.value,
        )
        value = evaluate_robustness_point(point)
        assert value >= 1.0 - 1e-9
