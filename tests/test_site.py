"""Tests for sites and the Equation (2) time-sharing model."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro import (
    ConvexCombinationOverlap,
    PlacedClone,
    SchedulingError,
    Site,
    WorkVector,
)


def clone(op, w, t, k=0):
    return PlacedClone(operator=op, clone_index=k, work=WorkVector(w), t_seq=t)


class TestConstruction:
    def test_empty_site(self):
        s = Site(0, 3)
        assert s.is_empty()
        assert s.t_site() == 0.0
        assert len(s) == 0
        assert s.utilization() == (0.0, 0.0, 0.0)

    def test_invalid_index(self):
        with pytest.raises(SchedulingError):
            Site(-1, 3)

    def test_invalid_dimension(self):
        with pytest.raises(SchedulingError):
            Site(0, 0)


class TestPlacement:
    def test_place_and_introspect(self):
        s = Site(2, 2)
        s.place(clone("a", [1.0, 2.0], 2.5))
        assert not s.is_empty()
        assert s.hosts_operator("a")
        assert not s.hosts_operator("b")
        assert s.operators == frozenset({"a"})
        assert s.load_vector() == WorkVector([1.0, 2.0])

    def test_constraint_a_enforced(self):
        s = Site(0, 2)
        s.place(clone("a", [1.0, 0.0], 1.0, k=0))
        with pytest.raises(SchedulingError):
            s.place(clone("a", [1.0, 0.0], 1.0, k=1))

    def test_dimension_mismatch(self):
        s = Site(0, 3)
        with pytest.raises(SchedulingError):
            s.place(clone("a", [1.0, 2.0], 2.0))

    def test_incremental_load(self):
        s = Site(0, 2)
        s.place(clone("a", [1.0, 2.0], 2.5))
        s.place(clone("b", [3.0, 1.0], 3.5))
        assert s.load_vector() == WorkVector([4.0, 3.0])
        assert s.length() == 4.0
        assert s.load_component(1) == 3.0
        assert s.max_t_seq() == 3.5


class TestEquationTwo:
    def test_paper_example_squeeze(self):
        # (22, [10,15]) with (10, [10,5]): total [20,20] fits inside 22.
        s = Site(0, 2)
        s.place(clone("op1", [10.0, 15.0], 22.0))
        s.place(clone("op2", [10.0, 5.0], 10.0))
        assert s.t_site() == 22.0

    def test_paper_example_congestion(self):
        # (22, [10,15]) with (10, [5,10]): resource 2 congests at 25.
        s = Site(0, 2)
        s.place(clone("op1", [10.0, 15.0], 22.0))
        s.place(clone("op3", [5.0, 10.0], 10.0))
        assert s.t_site() == 25.0

    def test_single_clone(self):
        s = Site(0, 2)
        s.place(clone("a", [3.0, 4.0], 5.0))
        assert s.t_site() == 5.0

    def test_utilization_at_horizon(self):
        s = Site(0, 2)
        s.place(clone("a", [10.0, 5.0], 10.0))
        util = s.utilization()
        assert util == (1.0, 0.5)

    @given(
        st.lists(
            st.tuples(
                st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=2, max_size=2),
                st.floats(min_value=0.0, max_value=1.0),
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_t_site_bounds(self, raw):
        """max(T_seq) <= T_site <= sum(T_seq) for any clone set."""
        model = ConvexCombinationOverlap(0.5)
        s = Site(0, 2)
        ts = []
        for i, (comps, _) in enumerate(raw):
            w = WorkVector(comps)
            t = model.t_seq(w)
            ts.append(t)
            s.place(clone(f"op{i}", comps, t))
        assert s.t_site() >= max(ts) - 1e-9
        assert s.t_site() <= sum(ts) + 1e-6


class TestRecompute:
    def test_recompute_with_other_overlap(self):
        s = Site(0, 2)
        w = [10.0, 5.0]
        s.place(clone("a", w, ConvexCombinationOverlap(0.0).t_seq(WorkVector(w))))
        fresh = s.recompute_t_seq(ConvexCombinationOverlap(1.0))
        assert fresh.max_t_seq() == 10.0
        assert fresh.index == s.index
        # Original untouched.
        assert s.max_t_seq() == 15.0

    def test_repr_mentions_metrics(self):
        s = Site(1, 2)
        s.place(clone("a", [1.0, 2.0], 2.0))
        assert "Site(index=1" in repr(s)
