"""Golden-packing determinism: fast kernels vs the naive reference.

PR 2 rebuilt the placement inner loop (lazy site heap, cached vector
stats, incremental site loads) under the contract that packings stay
*byte-identical* to the original rescanning rule.  These tests hold the
optimized kernels to that contract:

* every ``SortKey`` × ``PlacementRule`` combination produces the same
  ``schedule_to_dict`` JSON through :func:`pack_vectors` and
  :func:`pack_vectors_reference` (seeded rng for the random variants);
* the heap-based Figure 3 step of :func:`operator_schedule` matches a
  verbatim reimplementation of the pre-heap linear scan;
* a hypothesis property pins the incremental site statistics (length,
  load vector, total load) to recomputation from the placed clones.
"""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    CloneItem,
    ConvexCombinationOverlap,
    OperatorSpec,
    PlacementRule,
    SiteHeap,
    SortKey,
    WorkVector,
    operator_schedule,
    pack_vectors,
    pack_vectors_reference,
)
from repro.core.granularity import CommunicationModel
from repro.serialization import schedule_to_dict

OVERLAP = ConvexCombinationOverlap(0.5)


def golden_items(n, d=3, seed=0):
    """Mixed-degree clone set: some operators contribute several clones."""
    rng = random.Random(seed)
    items = []
    op = 0
    while len(items) < n:
        degree = rng.choice([1, 1, 1, 2, 3, 5])
        for k in range(min(degree, n - len(items))):
            items.append(
                CloneItem(
                    operator=f"op{op}",
                    clone_index=k,
                    work=WorkVector([rng.uniform(0.0, 10.0) for _ in range(d)]),
                )
            )
        op += 1
    return items


def as_json(schedule) -> str:
    return json.dumps(schedule_to_dict(schedule), sort_keys=True)


@pytest.mark.parametrize("sort", list(SortKey))
@pytest.mark.parametrize("rule", list(PlacementRule))
@pytest.mark.parametrize("seed", [0, 7])
def test_pack_vectors_matches_reference_bytewise(sort, rule, seed):
    items = golden_items(80, seed=seed)
    fast = pack_vectors(
        items, p=9, overlap=OVERLAP, sort=sort, rule=rule, rng=random.Random(seed)
    )
    slow = pack_vectors_reference(
        items, p=9, overlap=OVERLAP, sort=sort, rule=rule, rng=random.Random(seed)
    )
    assert as_json(fast) == as_json(slow)


def test_pack_vectors_matches_reference_with_many_ties():
    """Identical work vectors everywhere — pure tie-break territory."""
    items = [
        CloneItem(operator=f"op{i}", clone_index=k, work=WorkVector([1.0, 1.0, 1.0]))
        for i in range(12)
        for k in range(2)
    ]
    for rule in (PlacementRule.LEAST_LOADED_LENGTH, PlacementRule.MIN_RESULTING_LENGTH):
        fast = pack_vectors(items, p=5, overlap=OVERLAP, rule=rule)
        slow = pack_vectors_reference(items, p=5, overlap=OVERLAP, rule=rule)
        assert as_json(fast) == as_json(slow)


# ----------------------------------------------------------------------
# operator_schedule: heap step 3 vs the pre-heap linear scan
# ----------------------------------------------------------------------
def _linear_scan_schedule(floating, p, comm, overlap, f):
    """Verbatim reimplementation of the pre-PR2 step 3 site choice."""
    from repro.core.cloning import (
        DEFAULT_COORDINATOR_POLICY,
        clone_work_vectors,
        coarse_grain_degree,
    )
    from repro.core.schedule import Schedule
    from repro.core.site import PlacedClone

    policy = DEFAULT_COORDINATOR_POLICY
    d = floating[0].d
    schedule = Schedule(p, d)
    pending = []
    for spec in floating:
        n = coarse_grain_degree(spec, p, f, comm, overlap, policy)
        for k, work in enumerate(clone_work_vectors(spec, n, comm, policy)):
            pending.append((work.length(), spec.name, k, work))
    pending.sort(key=lambda item: (-item[0], item[1], item[2]))
    for _, op_name, k, work in pending:
        best = None
        best_key = None
        for site in schedule.sites:
            if site.hosts_operator(op_name):
                continue
            key = (site.length(), site.total_load())
            if best is None or key < best_key:
                best = site
                best_key = key
        assert best is not None
        schedule.place(
            best.index,
            PlacedClone(
                operator=op_name, clone_index=k, work=work, t_seq=overlap.t_seq(work)
            ),
        )
    return schedule


@pytest.mark.parametrize("seed", [0, 3, 11])
@pytest.mark.parametrize("p", [4, 16])
def test_operator_schedule_heap_matches_linear_scan(seed, p):
    rng = random.Random(seed)
    comm = CommunicationModel(alpha=1.0, beta=0.01)
    floating = [
        OperatorSpec(
            name=f"op{i}",
            work=WorkVector([rng.uniform(1.0, 50.0) for _ in range(3)]),
            data_volume=rng.uniform(10.0, 500.0),
        )
        for i in range(14)
    ]
    result = operator_schedule(floating, p=p, comm=comm, overlap=OVERLAP, f=0.7)
    golden = _linear_scan_schedule(floating, p, comm, OVERLAP, 0.7)
    assert as_json(result.schedule) == as_json(golden)


# ----------------------------------------------------------------------
# Incremental vs recomputed site statistics (hypothesis property)
# ----------------------------------------------------------------------
works_strategy = st.lists(
    st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=3,
        max_size=3,
    ),
    min_size=1,
    max_size=40,
)


@settings(max_examples=60)
@given(works_strategy, st.integers(min_value=1, max_value=8))
def test_incremental_site_stats_match_recomputation(raw, p):
    items = [
        CloneItem(operator=f"op{i}", clone_index=0, work=WorkVector(comps))
        for i, comps in enumerate(raw)
    ]
    schedule = pack_vectors(items, p=p, overlap=OVERLAP)
    for site in schedule.sites:
        acc = [0.0] * site.d
        for clone in site.clones:
            for i, c in enumerate(clone.work.components):
                acc[i] += c
        assert site.load_vector().components == pytest.approx(tuple(acc), abs=1e-12)
        assert site.length() == pytest.approx(max(acc) if acc else 0.0, abs=1e-12)
        assert site.total_load() == pytest.approx(sum(acc), abs=1e-9)
    # Schedule-level incremental totals agree with a site-by-site rescan.
    totals = [0.0] * schedule.d
    for site in schedule.sites:
        for i, c in enumerate(site.load_vector().components):
            totals[i] += c
    assert schedule.total_work().components == pytest.approx(tuple(totals), abs=1e-9)
    assert schedule.clone_count() == len(items)


# ----------------------------------------------------------------------
# SiteHeap unit behaviour
# ----------------------------------------------------------------------
def test_site_heap_pick_skips_unallowable_and_counts_scans():
    from repro.core.site import PlacedClone, Site

    sites = [Site(j, 2) for j in range(3)]
    sites[0].place(
        PlacedClone(operator="a", clone_index=0, work=WorkVector([1.0, 0.0]), t_seq=1.0)
    )
    heap = SiteHeap(sites, key=lambda s: (s.length(), s.index))
    # Site 1 is the least-loaded allowable site once 'a'-hosting site 0 is
    # excluded; site 0 has load but sites 1 and 2 are empty, so site 1
    # wins on the index tie-break.
    chosen = heap.pick(lambda s: not s.hosts_operator("a"))
    assert chosen.index == 1
    assert heap.scans >= 1


def test_site_heap_returns_none_when_nothing_allowable():
    from repro.core.site import Site

    heap = SiteHeap([Site(0, 2), Site(1, 2)], key=lambda s: (s.length(), s.index))
    assert heap.pick(lambda s: False) is None
    # The skipped entries must survive for the next pick.
    assert heap.pick(lambda s: True) is not None


def forced_numpy(monkeypatch):
    """Force the batch kernel on regardless of shelf size (if numpy exists)."""
    from repro.core import batch

    monkeypatch.setattr(batch, "NUMPY_CUTOVER", 0)
    return batch.HAVE_NUMPY


def forced_python(monkeypatch):
    """Force the pure-Python path even above the cutover."""
    from repro.core import batch

    monkeypatch.setattr(batch, "HAVE_NUMPY", False)


@pytest.mark.parametrize("sort", list(SortKey))
@pytest.mark.parametrize("rule", list(PlacementRule))
def test_forced_numpy_path_matches_reference(sort, rule, monkeypatch):
    """Small shelves through the batch kernel stay byte-identical."""
    if not forced_numpy(monkeypatch):
        pytest.skip("numpy unavailable")
    items = golden_items(30, seed=2)
    fast = pack_vectors(
        items, p=7, overlap=OVERLAP, sort=sort, rule=rule, rng=random.Random(2)
    )
    slow = pack_vectors_reference(
        items, p=7, overlap=OVERLAP, sort=sort, rule=rule, rng=random.Random(2)
    )
    assert as_json(fast) == as_json(slow)


@pytest.mark.parametrize("sort", list(SortKey))
@pytest.mark.parametrize("rule", list(PlacementRule))
def test_forced_python_path_matches_reference(sort, rule, monkeypatch):
    """Large shelves through the heap loop (numpy off) stay byte-identical."""
    forced_python(monkeypatch)
    items = golden_items(120, seed=5)
    fast = pack_vectors(
        items, p=9, overlap=OVERLAP, sort=sort, rule=rule, rng=random.Random(5)
    )
    slow = pack_vectors_reference(
        items, p=9, overlap=OVERLAP, sort=sort, rule=rule, rng=random.Random(5)
    )
    assert as_json(fast) == as_json(slow)


def test_numpy_and_python_paths_agree(monkeypatch):
    """The two LEAST_LOADED_LENGTH fast paths agree with each other."""
    from repro.core import batch

    if not batch.HAVE_NUMPY:
        pytest.skip("numpy unavailable")
    items = golden_items(150, seed=8)
    monkeypatch.setattr(batch, "NUMPY_CUTOVER", 0)
    via_kernel = pack_vectors(items, p=11, overlap=OVERLAP)
    monkeypatch.setattr(batch, "HAVE_NUMPY", False)
    via_heap = pack_vectors(items, p=11, overlap=OVERLAP)
    assert as_json(via_kernel) == as_json(via_heap)


def test_first_fit_never_constructs_heap(monkeypatch):
    """Linear rules must pay zero heap overhead (satellite contract)."""
    from repro.core import vector_packing

    class Exploder:
        def __init__(self, *a, **kw):
            raise AssertionError("FIRST_FIT must not build a SiteHeap")

    monkeypatch.setattr(vector_packing, "SiteHeap", Exploder)
    from repro.engine import MetricsRecorder

    metrics = MetricsRecorder()
    items = golden_items(40, seed=1)
    schedule = pack_vectors(
        items, p=6, overlap=OVERLAP, rule=PlacementRule.FIRST_FIT,
        metrics=metrics,
    )
    assert schedule.clone_count() == len(items)
    # Early-exit scans only: far below clones × p, and never zero.
    assert 0 < metrics.counters["placement_scans"] <= len(items) * 6


def test_site_heap_stale_entries_are_discarded():
    from repro.core.site import PlacedClone, Site

    sites = [Site(0, 2), Site(1, 2)]
    heap = SiteHeap(sites, key=lambda s: (s.length(), s.index))
    first = heap.pick(lambda s: True)
    assert first.index == 0
    sites[0].place(
        PlacedClone(operator="x", clone_index=0, work=WorkVector([5.0, 5.0]), t_seq=5.0)
    )
    heap.update(sites[0])
    # Site 0 now has length 5; the minimum must move to the empty site 1.
    assert heap.pick(lambda s: True).index == 1


def test_site_heap_discard_and_rebuild():
    from repro.core.site import PlacedClone, Site

    sites = [Site(j, 2) for j in range(6)]
    heap = SiteHeap(sites, key=lambda s: (s.length(), s.index))
    heap.discard_batch([0, 1, 99])   # unknown indices are ignored
    assert heap.tracked_sites() == frozenset({2, 3, 4, 5})
    assert heap.pick(lambda s: True).index == 2
    # Re-track a discarded site (e.g. restored after a fault).
    heap.add_batch([sites[0]])
    assert heap.tracked_sites() == frozenset({0, 2, 3, 4, 5})
    heap.rebuild()
    assert len(heap._heap) == 5
    sites[2].place(
        PlacedClone(operator="x", clone_index=0, work=WorkVector([9.0, 9.0]), t_seq=9.0)
    )
    heap.update(sites[2])
    assert heap.pick(lambda s: True).index == 0


@settings(max_examples=80)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["place", "discard", "restore", "rebuild"]),
            st.integers(min_value=0, max_value=7),
            st.floats(min_value=0.1, max_value=20.0, allow_nan=False),
        ),
        max_size=30,
    )
)
def test_site_heap_tracks_minimum_through_maintenance(ops):
    """After arbitrary place/discard/restore/rebuild traffic, pick() returns
    the least-loaded live site and lazy-deletion garbage stays bounded."""
    from repro.core.site import PlacedClone, Site

    sites = [Site(j, 2) for j in range(8)]
    heap = SiteHeap(sites, key=lambda s: (s.length(), s.index))
    live = set(range(8))
    counter = 0
    for action, j, weight in ops:
        if action == "place" and j in live:
            counter += 1
            sites[j].place(
                PlacedClone(
                    operator=f"op{counter}", clone_index=0,
                    work=WorkVector([weight, weight / 2]), t_seq=weight,
                )
            )
            heap.update(sites[j])
        elif action == "discard" and j in live:
            live.discard(j)
            heap.discard_batch([j])
        elif action == "restore" and j not in live:
            live.add(j)
            heap.add_batch([sites[j]])
        elif action == "rebuild":
            heap.rebuild()
    assert heap.tracked_sites() == frozenset(live)
    # Garbage bound: update() auto-rebuilds past max(32, 3·live).
    assert len(heap._heap) <= max(32, 3 * len(live)) + 1
    picked = heap.pick(lambda s: True)
    if live:
        best = min(((sites[j].length(), j) for j in live))
        assert (picked.length(), picked.index) == best
    else:
        assert picked is None
