"""Tests for execution-skew evaluation (EA1 relaxation)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro import (
    CommunicationModel,
    ConfigurationError,
    ConvexCombinationOverlap,
    OperatorSpec,
    SchedulingError,
    WorkVector,
    clone_work_vectors,
    skewed_clone_work_vectors,
    skewed_makespan,
    skewed_response_time,
    tree_schedule,
    vector_sum,
    zipf_weights,
)

COMM = CommunicationModel(alpha=0.015, beta=0.6e-6)
OVERLAP = ConvexCombinationOverlap(0.5)


def spec(name="op", cpu=8.0, disk=4.0, data=1e6):
    return OperatorSpec(name=name, work=WorkVector([cpu, disk, 0.0]), data_volume=data)


class TestZipfWeights:
    def test_uniform_at_zero(self):
        assert zipf_weights(4, 0.0) == pytest.approx([0.25] * 4)

    def test_normalized(self):
        for theta in (0.0, 0.5, 1.0, 2.0):
            assert math.fsum(zipf_weights(7, theta)) == pytest.approx(1.0)

    def test_non_increasing(self):
        w = zipf_weights(6, 1.0)
        assert all(a >= b for a, b in zip(w, w[1:]))

    def test_more_theta_more_concentration(self):
        mild = zipf_weights(6, 0.3)
        strong = zipf_weights(6, 1.5)
        assert strong[0] > mild[0]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            zipf_weights(0, 0.5)
        with pytest.raises(ConfigurationError):
            zipf_weights(3, -0.1)

    @given(st.integers(min_value=1, max_value=32), st.floats(min_value=0.0, max_value=3.0))
    def test_always_valid_distribution(self, n, theta):
        w = zipf_weights(n, theta)
        assert len(w) == n
        assert math.fsum(w) == pytest.approx(1.0)
        assert all(x > 0 for x in w)


class TestSkewedClones:
    def test_theta_zero_matches_uniform(self):
        s = spec()
        uniform = clone_work_vectors(s, 4, COMM)
        skewed = skewed_clone_work_vectors(s, 4, COMM, 0.0)
        for a, b in zip(uniform, skewed):
            assert a.isclose(b)

    def test_total_work_invariant_in_theta(self):
        s = spec()
        for theta in (0.0, 0.5, 1.2):
            clones = skewed_clone_work_vectors(s, 5, COMM, theta)
            assert vector_sum(clones).isclose(
                vector_sum(clone_work_vectors(s, 5, COMM)), rel_tol=1e-9
            )

    def test_coordinator_heaviest(self):
        clones = skewed_clone_work_vectors(spec(), 4, COMM, 1.0)
        assert clones[0].length() >= max(c.length() for c in clones[1:])


class TestSkewedEvaluation:
    @pytest.fixture
    def scheduled(self, annotated_query, comm, overlap):
        result = tree_schedule(
            annotated_query.operator_tree, annotated_query.task_tree,
            p=12, comm=comm, overlap=overlap, f=0.7,
        )
        specs = {op.name: op.spec for op in annotated_query.operator_tree.operators}
        return result, specs

    def test_theta_zero_reproduces_planned_response(self, scheduled, comm, overlap):
        result, specs = scheduled
        evaluated = skewed_response_time(
            result.phased_schedule, specs, 0.0, comm, overlap
        )
        assert evaluated == pytest.approx(result.response_time)

    def test_monotone_in_theta(self, scheduled, comm, overlap):
        result, specs = scheduled
        times = [
            skewed_response_time(result.phased_schedule, specs, theta, comm, overlap)
            for theta in (0.0, 0.3, 0.6, 1.0, 1.5)
        ]
        assert all(b >= a - 1e-9 for a, b in zip(times, times[1:]))
        assert times[-1] > times[0]

    def test_per_phase_consistency(self, scheduled, comm, overlap):
        result, specs = scheduled
        total = skewed_response_time(
            result.phased_schedule, specs, 0.7, comm, overlap
        )
        by_phase = sum(
            skewed_makespan(s, specs, 0.7, comm, overlap)
            for s in result.phased_schedule.phases
        )
        assert total == pytest.approx(by_phase)

    def test_missing_spec_rejected(self, scheduled, comm, overlap):
        result, specs = scheduled
        incomplete = dict(list(specs.items())[:-1])
        with pytest.raises(SchedulingError):
            skewed_response_time(
                result.phased_schedule, incomplete, 0.5, comm, overlap
            )
