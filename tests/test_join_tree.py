"""Tests for bushy hash-join plans."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    BaseRelationNode,
    Catalog,
    JoinNode,
    PlanStructureError,
    QueryGraph,
    Relation,
    key_join_cardinality,
    random_bushy_plan,
    random_catalog,
    random_tree_query,
)


def chain_graph(names):
    return QueryGraph(names, list(zip(names, names[1:])))


def catalog(sizes):
    return Catalog([Relation(f"R{i}", s) for i, s in enumerate(sizes)])


class TestKeyJoinCardinality:
    def test_max_rule(self):
        # Simple key joins: |result| = max(|L|, |R|) (Section 6.1).
        assert key_join_cardinality(100, 500) == 500
        assert key_join_cardinality(500, 100) == 500

    def test_negative_rejected(self):
        with pytest.raises(PlanStructureError):
            key_join_cardinality(-1, 5)


class TestPlanNodes:
    def test_leaf(self):
        leaf = BaseRelationNode(Relation("R", 1000))
        assert leaf.output_tuples == 1000
        assert leaf.height == 0
        assert leaf.num_joins == 0
        assert leaf.children == ()
        assert list(leaf.iter_nodes()) == [leaf]
        assert "1000 tuples" in leaf.pretty()

    def test_join_structure(self):
        a = BaseRelationNode(Relation("A", 100))
        b = BaseRelationNode(Relation("B", 300))
        j = JoinNode("J0", a, b)
        assert j.output_tuples == 300
        assert j.height == 1
        assert j.num_joins == 1
        assert j.children == (a, b)
        assert j.leaves() == [a, b]
        assert j.joins() == [j]
        assert "J0" in j.pretty()

    def test_postorder(self):
        a = BaseRelationNode(Relation("A", 100))
        b = BaseRelationNode(Relation("B", 300))
        c = BaseRelationNode(Relation("C", 200))
        j0 = JoinNode("J0", a, b)
        j1 = JoinNode("J1", j0, c)
        order = list(j1.iter_nodes())
        assert order.index(a) < order.index(j0)
        assert order.index(j0) < order.index(j1)
        assert order[-1] is j1

    def test_same_child_twice_rejected(self):
        a = BaseRelationNode(Relation("A", 100))
        with pytest.raises(PlanStructureError):
            JoinNode("J0", a, a)

    def test_empty_join_id_rejected(self):
        a = BaseRelationNode(Relation("A", 100))
        b = BaseRelationNode(Relation("B", 300))
        with pytest.raises(PlanStructureError):
            JoinNode("", a, b)

    def test_cardinality_propagates_up(self):
        # max() cascades: the root's output is the largest base relation.
        a = BaseRelationNode(Relation("A", 100))
        b = BaseRelationNode(Relation("B", 999))
        c = BaseRelationNode(Relation("C", 5))
        root = JoinNode("J1", JoinNode("J0", a, b), c)
        assert root.output_tuples == 999


class TestRandomBushyPlan:
    def test_covers_all_relations_once(self):
        cat = catalog([1000] * 8)
        g = random_tree_query(cat, np.random.default_rng(1))
        plan = random_bushy_plan(g, cat, np.random.default_rng(2))
        assert plan.num_joins == 7
        leaf_names = sorted(leaf.relation.name for leaf in plan.leaves())
        assert leaf_names == sorted(cat.names)

    def test_join_ids_sequential(self):
        cat = catalog([1000] * 5)
        g = chain_graph(cat.names)
        plan = random_bushy_plan(g, cat, np.random.default_rng(0))
        ids = sorted(j.join_id for j in plan.joins())
        assert ids == [f"J{i}" for i in range(4)]

    def test_smaller_side_builds(self):
        cat = catalog([10, 100_000])
        g = chain_graph(cat.names)
        plan = random_bushy_plan(g, cat, np.random.default_rng(0))
        join = plan.joins()[0]
        assert join.build_side.output_tuples <= join.probe_side.output_tuples

    def test_random_orientation_flag(self):
        cat = catalog([10, 100_000])
        g = chain_graph(cat.names)
        orientations = set()
        for seed in range(20):
            plan = random_bushy_plan(
                g, cat, np.random.default_rng(seed), smaller_side_builds=False
            )
            orientations.add(plan.joins()[0].build_side.output_tuples)
        assert len(orientations) == 2  # both sides appear as build

    def test_deterministic(self):
        cat = catalog([1000] * 10)
        g = random_tree_query(cat, np.random.default_rng(5))
        p1 = random_bushy_plan(g, cat, np.random.default_rng(9))
        p2 = random_bushy_plan(g, cat, np.random.default_rng(9))
        assert p1.pretty() == p2.pretty()

    def test_produces_bushy_shapes(self):
        # Over many draws on a chain query the plan heights must vary:
        # contracting middle edges yields bushy (sub-maximal-height) trees.
        cat = catalog([1000] * 7)
        g = chain_graph(cat.names)
        heights = {
            random_bushy_plan(g, cat, np.random.default_rng(s)).height for s in range(30)
        }
        assert len(heights) > 1

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=20), st.integers(min_value=0, max_value=1000))
    def test_joins_respect_query_graph(self, n_joins, seed):
        """Every executed join corresponds to a query-graph edge between
        the two fragments (no cartesian products)."""
        rng = np.random.default_rng(seed)
        cat = random_catalog(n_joins + 1, rng)
        g = random_tree_query(cat, rng)
        plan = random_bushy_plan(g, cat, rng)
        assert plan.num_joins == n_joins

        def leaves_of(node):
            return {leaf.relation.name for leaf in node.leaves()}

        for join in plan.joins():
            left, right = leaves_of(join.build_side), leaves_of(join.probe_side)
            assert any(
                g.has_join(a, b) for a in left for b in right
            ), "join without a connecting predicate"
