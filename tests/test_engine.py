"""Tests for the scheduling engine: registry, ScheduleResult, driver."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ConfigurationError,
    PAPER_PARAMETERS,
    SchedulingError,
    annotate_plan,
    generate_query,
    tree_schedule,
)
from repro.engine import (
    Instrumentation,
    RegisteredScheduler,
    ScheduleRequest,
    ScheduleResult,
    available_algorithms,
    describe_algorithms,
    get_algorithm,
    register,
)
from repro.engine.driver import SHELF_POLICIES, schedule_phases
from repro.engine.registry import _SCHEDULERS
from repro.sim import validate_schedule_result

BUILTINS = ("treeschedule", "synchronous", "hong", "optbound", "onedim", "malleable")


class TestRegistry:
    def test_all_builtins_registered(self):
        names = available_algorithms()
        for name in BUILTINS:
            assert name in names

    def test_builtin_order_canonical(self):
        names = available_algorithms()
        assert names[: len(BUILTINS)] == BUILTINS

    def test_get_algorithm_returns_entry(self):
        entry = get_algorithm("treeschedule")
        assert isinstance(entry, RegisteredScheduler)
        assert entry.name == "treeschedule"
        assert entry.kind == "schedule"
        assert entry.description

    def test_optbound_is_a_bound(self):
        assert get_algorithm("optbound").kind == "bound"

    def test_unknown_name_lists_registered(self):
        with pytest.raises(ConfigurationError) as exc:
            get_algorithm("magic")
        message = str(exc.value)
        assert "magic" in message
        for name in BUILTINS:
            assert name in message

    def test_describe_algorithms_covers_available(self):
        described = describe_algorithms()
        assert tuple(described) == available_algorithms()
        assert all(isinstance(v, RegisteredScheduler) for v in described.values())

    def test_register_rejects_bad_kind(self):
        with pytest.raises(ConfigurationError):
            register("bogus", kind="estimate")

    def test_register_rejects_empty_name(self):
        with pytest.raises(ConfigurationError):
            register("")

    def test_register_and_dispatch_custom(self):
        @register("constant42", description="test stub")
        def _constant(query, request):
            return ScheduleResult.from_value("", 42.0)

        try:
            entry = get_algorithm("constant42")
            result = entry(None, ScheduleRequest(p=4))
            assert result.makespan == 42.0
            # The registry entry stamps its name onto anonymous results.
            assert result.algorithm == "constant42"
            assert "constant42" in available_algorithms()
        finally:
            _SCHEDULERS.pop("constant42", None)


class TestScheduleRequest:
    def test_defaults_filled(self):
        request = ScheduleRequest(p=16)
        assert request.params is PAPER_PARAMETERS
        assert request.policy is not None
        assert request.f == 0.7
        assert request.epsilon == 0.5

    def test_derived_models_cached(self):
        request = ScheduleRequest(p=16, epsilon=0.3)
        assert request.comm is request.comm
        assert request.overlap is request.overlap
        assert request.overlap.epsilon == pytest.approx(0.3)


class TestScheduleResult:
    def test_needs_schedule_or_value(self):
        with pytest.raises(SchedulingError):
            ScheduleResult(algorithm="x")

    def test_from_value_is_bound_only(self):
        result = ScheduleResult.from_value("optbound", 12.5, wall_clock_seconds=0.25)
        assert result.is_bound_only
        assert result.makespan == 12.5
        assert result.num_phases == 0
        assert result.timelines == ()
        assert result.phase_makespans() == []
        assert result.total_work() is None
        assert result.instrumentation.wall_clock_seconds == 0.25
        result.validate()  # no schedule -> nothing to check, never raises
        assert "bound" in repr(result)

    def test_full_result_derivations(self, annotated_query, comm, overlap):
        result = tree_schedule(
            annotated_query.operator_tree, annotated_query.task_tree,
            p=8, comm=comm, overlap=overlap, f=0.7,
        )
        assert isinstance(result, ScheduleResult)
        assert result.algorithm == "treeschedule"
        assert not result.is_bound_only
        assert result.num_phases == result.phased_schedule.num_phases
        assert result.makespan == pytest.approx(
            sum(result.phase_makespans())
        )
        # Every operator has a home and a degree consistent with it.
        for op, home in result.homes.items():
            assert len(home.site_indices) == result.degrees[op]
        inst = result.instrumentation
        assert inst.operators_scheduled == len(result.homes)
        assert inst.clones_created >= inst.operators_scheduled
        assert inst.bins_opened >= 1
        result.validate()

    def test_timelines_match_schedule(self, annotated_query, comm, overlap):
        result = tree_schedule(
            annotated_query.operator_tree, annotated_query.task_tree,
            p=8, comm=comm, overlap=overlap, f=0.7,
        )
        shelves = result.timelines
        assert len(shelves) == result.num_phases
        for shelf, schedule, label in zip(
            shelves, result.phased_schedule.phases, result.phase_labels
        ):
            assert shelf.label == label
            assert shelf.makespan == pytest.approx(schedule.makespan())
            assert len(shelf.sites) == schedule.p
            assert shelf.bins_opened == sum(
                1 for s in schedule.sites if not s.is_empty()
            )

    def test_total_work_sums_phases(self, annotated_query, comm, overlap):
        result = tree_schedule(
            annotated_query.operator_tree, annotated_query.task_tree,
            p=8, comm=comm, overlap=overlap, f=0.7,
        )
        total = result.total_work()
        per_phase = [s.total_work() for s in result.phased_schedule.phases]
        acc = per_phase[0]
        for w in per_phase[1:]:
            acc = acc + w
        assert total.isclose(acc, rel_tol=1e-12)

    def test_instrumentation_defaults(self):
        inst = Instrumentation()
        assert inst.wall_clock_seconds == 0.0
        assert inst.counters == {} and inst.timers == {}


class TestDriver:
    def test_unknown_shelf_policy(self, annotated_query, comm, overlap):
        with pytest.raises(SchedulingError) as exc:
            schedule_phases(
                annotated_query.operator_tree, annotated_query.task_tree,
                p=8, comm=comm, overlap=overlap, shelf="bogus",
            )
        assert "bogus" in str(exc.value)

    def test_shelf_policies_exposed(self):
        assert set(SHELF_POLICIES) == {"min", "eager"}

    def test_metrics_threaded(self, annotated_query, comm, overlap):
        from repro.engine import MetricsRecorder

        metrics = MetricsRecorder()
        result = schedule_phases(
            annotated_query.operator_tree, annotated_query.task_tree,
            p=8, comm=comm, overlap=overlap, metrics=metrics,
        )
        assert metrics.counters["phases"] == result.num_phases
        assert metrics.timers["pack_phase"] >= 0.0
        assert result.instrumentation.counters == metrics.counters
        # PR 2 kernel instrumentation: the default Figure 3 packer reports
        # its placement-scan counters and step-3 timer through the same
        # recorder, so they surface in the ScheduleResult.
        assert result.instrumentation.counters["placement_scans"] > 0
        assert result.instrumentation.counters["clones_placed"] > 0
        assert result.instrumentation.timers["list_schedule"] >= 0.0


class TestEveryAlgorithmViaRegistry:
    @pytest.mark.parametrize("name", BUILTINS)
    def test_registry_output_validates(self, name):
        query = generate_query(6, np.random.default_rng(3))
        annotate_plan(query.operator_tree, PAPER_PARAMETERS)
        result = get_algorithm(name)(query, ScheduleRequest(p=8))
        assert result.algorithm == name
        assert result.makespan > 0.0
        sim = validate_schedule_result(result)
        if name == "optbound":
            assert result.is_bound_only
            assert sim is None
        else:
            assert not result.is_bound_only
            assert sim is not None
