"""Tests for the preemptable-resource usage model (Section 4.1, EA2)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro import (
    PERFECT_OVERLAP,
    ZERO_OVERLAP,
    ConvexCombinationOverlap,
    ModelValidationError,
    ResourceUsage,
    WorkVector,
    validate_sequential_time,
)

vectors3 = st.lists(
    st.floats(min_value=0.0, max_value=1e4, allow_nan=False, allow_infinity=False),
    min_size=3,
    max_size=3,
).map(WorkVector)


class TestValidateSequentialTime:
    def test_in_range_ok(self):
        validate_sequential_time(20.0, WorkVector([10.0, 15.0]))

    def test_below_max_rejected(self):
        with pytest.raises(ModelValidationError):
            validate_sequential_time(14.0, WorkVector([10.0, 15.0]))

    def test_above_sum_rejected(self):
        with pytest.raises(ModelValidationError):
            validate_sequential_time(26.0, WorkVector([10.0, 15.0]))

    def test_boundaries_accepted(self):
        validate_sequential_time(15.0, WorkVector([10.0, 15.0]))
        validate_sequential_time(25.0, WorkVector([10.0, 15.0]))


class TestConvexCombinationOverlap:
    def test_paper_formula(self):
        # T(W) = eps*max + (1-eps)*sum (assumption EA2).
        model = ConvexCombinationOverlap(0.3)
        w = WorkVector([10.0, 15.0, 0.0])
        assert math.isclose(model.t_seq(w), 0.3 * 15.0 + 0.7 * 25.0)

    def test_perfect_overlap_is_max(self):
        w = WorkVector([10.0, 15.0, 5.0])
        assert PERFECT_OVERLAP.t_seq(w) == 15.0

    def test_zero_overlap_is_sum(self):
        w = WorkVector([10.0, 15.0, 5.0])
        assert ZERO_OVERLAP.t_seq(w) == 30.0

    def test_epsilon_out_of_range(self):
        with pytest.raises(ModelValidationError):
            ConvexCombinationOverlap(1.5)
        with pytest.raises(ModelValidationError):
            ConvexCombinationOverlap(-0.1)

    def test_usage_builds_pair(self):
        model = ConvexCombinationOverlap(0.5)
        w = WorkVector([4.0, 2.0])
        usage = model.usage(w)
        assert usage.work is w
        assert usage.t_seq == model.t_seq(w)

    def test_zero_vector(self):
        assert PERFECT_OVERLAP.t_seq(WorkVector.zeros(3)) == 0.0

    @given(vectors3, st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    def test_always_within_fundamental_bounds(self, w, eps):
        t = ConvexCombinationOverlap(eps).t_seq(w)
        assert w.length() - 1e-9 <= t <= w.total() + 1e-9

    @given(vectors3, st.floats(min_value=0.0, max_value=1.0), st.floats(min_value=0.0, max_value=1.0))
    def test_monotone_in_epsilon(self, w, e1, e2):
        # More overlap can only shorten the sequential time.
        lo, hi = sorted([e1, e2])
        t_lo = ConvexCombinationOverlap(lo).t_seq(w)
        t_hi = ConvexCombinationOverlap(hi).t_seq(w)
        assert t_hi <= t_lo + 1e-9

    @given(vectors3, vectors3, st.floats(min_value=0.0, max_value=1.0))
    def test_subadditive_under_merge(self, a, b, eps):
        # Merging two operators' vectors never beats running the merged
        # work: T(a+b) <= T(a) + T(b) (both max and sum are subadditive).
        model = ConvexCombinationOverlap(eps)
        assert model.t_seq(a + b) <= model.t_seq(a) + model.t_seq(b) + 1e-6


class TestResourceUsage:
    def test_valid_pair(self):
        u = ResourceUsage(t_seq=22.0, work=WorkVector([10.0, 15.0]))
        assert u.d == 2

    def test_invalid_pair_rejected(self):
        with pytest.raises(ModelValidationError):
            ResourceUsage(t_seq=5.0, work=WorkVector([10.0, 15.0]))

    def test_utilization(self):
        u = ResourceUsage(t_seq=20.0, work=WorkVector([10.0, 15.0]))
        assert u.utilization(0) == 0.5
        assert u.utilization(1) == 0.75

    def test_rate_vector(self):
        u = ResourceUsage(t_seq=20.0, work=WorkVector([10.0, 15.0]))
        assert u.rate_vector() == (0.5, 0.75)

    def test_zero_time_rates(self):
        u = ResourceUsage(t_seq=0.0, work=WorkVector.zeros(2))
        assert u.rate_vector() == (0.0, 0.0)
        assert u.utilization(0) == 0.0

    @given(vectors3, st.floats(min_value=0.0, max_value=1.0))
    def test_rates_never_exceed_one(self, w, eps):
        model = ConvexCombinationOverlap(eps)
        u = model.usage(w)
        # A3: demand is uniform, so W[i]/T_seq <= 1 because T_seq >= max W.
        assert all(r <= 1.0 + 1e-9 for r in u.rate_vector())


class TestCustomOverlapValidation:
    def test_buggy_subclass_detected(self):
        from repro.core.resource_model import OverlapModel

        class Broken(OverlapModel):
            def _t_seq_unchecked(self, work):
                return 0.5 * work.length()  # below the feasible floor

        with pytest.raises(ModelValidationError):
            Broken().t_seq(WorkVector([10.0, 1.0]))
