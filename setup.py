"""Legacy setup shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so the
package remains installable in offline environments that lack the ``wheel``
package (where PEP 517/660 builds cannot produce editable wheels and pip
falls back to ``setup.py develop``).
"""

from setuptools import setup

setup()
