"""The unified scheduling engine.

This package is the hub the whole vertical stack plugs into:

* :mod:`repro.engine.registry` — a :class:`Scheduler` protocol and a
  decorator-based registry.  Every scheduling algorithm in the library
  (TREESCHEDULE, the baselines, the Section 7 malleable variant)
  registers itself under a short name; the experiment runner, CLI and
  simulator dispatch through the registry instead of string if-chains.
* :mod:`repro.engine.result` — :class:`ScheduleResult`, the rich result
  object all registered algorithms return: makespan, per-site/per-shelf
  timelines, work-vector totals, granularity decisions, and wall-clock +
  counter instrumentation.
* :mod:`repro.engine.driver` — the generic synchronized-phase driver
  (classify floating vs. rooted operators, apply the join-stage
  granularity rule, pack each shelf).  TREESCHEDULE and the
  one-dimensional and malleable tree schedulers are all thin phase
  packers plugged into this driver.
* :mod:`repro.engine.metrics` — lightweight observability: context-manager
  timers, counters, and JSON-line export for benchmarks that need to know
  where schedule-construction time goes.
* :mod:`repro.engine.reschedule` — the incremental-repair entry point:
  apply a :class:`~repro.core.reschedule.ScheduleDelta` to a previously
  produced :class:`ScheduleResult` through a registered repair strategy,
  yielding a new result without a cold re-pack.
"""

from repro.engine.metrics import MetricsRecorder
from repro.engine.registry import (
    RegisteredScheduler,
    ScheduleRequest,
    available_algorithms,
    available_reschedulers,
    describe_algorithms,
    get_algorithm,
    get_rescheduler,
    register,
    register_rescheduler,
)
from repro.engine.reschedule import (
    reschedule,
    reschedule_cached,
    reschedule_store_payload,
)
from repro.engine.result import (
    Instrumentation,
    ScheduleResult,
    ShelfTimeline,
    SiteTimeline,
)

__all__ = [
    "MetricsRecorder",
    "RegisteredScheduler",
    "ScheduleRequest",
    "available_algorithms",
    "describe_algorithms",
    "get_algorithm",
    "register",
    "available_reschedulers",
    "get_rescheduler",
    "register_rescheduler",
    "reschedule",
    "reschedule_cached",
    "reschedule_store_payload",
    "Instrumentation",
    "ScheduleResult",
    "ShelfTimeline",
    "SiteTimeline",
]
