"""Engine-level incremental rescheduling entry point.

:func:`repro.core.reschedule.reschedule_schedule` repairs a bare
:class:`~repro.core.schedule.Schedule` in place; this module lifts that
to the engine's result surface: :func:`reschedule` takes the
:class:`~repro.engine.result.ScheduleResult` a registered algorithm
produced, applies a :class:`~repro.core.reschedule.ScheduleDelta` to one
of its phases, and returns a *new* result with homes, degrees,
timelines and instrumentation re-derived — the same shape every other
dispatch path yields, so downstream consumers (simulator validation,
serialization, figure sweeps) need no special casing.

Repair strategies are pluggable through the rescheduler registry
(:func:`repro.engine.registry.register_rescheduler`); the built-in
``"repair"`` strategy is the core drain-and-re-place pass.

Store integration: a repaired result cached under ``REPRO_CACHE_DIR``
must never alias the cold result it was derived from, nor a repair of
the same base under a different delta.  :func:`reschedule_store_payload`
therefore keys repaired results by ``(strategy, base key, serialized
delta)`` — the delta is part of the content address.
"""

from __future__ import annotations

import time

from repro.exceptions import SchedulingError
from repro.core.reschedule import (
    RescheduleStats,
    ScheduleDelta,
    reschedule_schedule,
)
from repro.core.schedule import PhasedSchedule
from repro.core.vector_packing import PlacementRule, SortKey
from repro.engine.metrics import (
    COUNTER_CLONES_MOVED,
    COUNTER_RESCHEDULES,
    COUNTER_SITES_DRAINED,
    COUNTER_SITES_RESIZED,
    COUNTER_SITES_RESTORED,
    MetricsRecorder,
    TIMER_RESCHEDULE,
)
from repro.engine.registry import get_rescheduler, register_rescheduler
from repro.engine.result import Instrumentation, ScheduleResult

__all__ = [
    "reschedule",
    "reschedule_cached",
    "reschedule_store_payload",
]


@register_rescheduler("repair")
def _repair(schedule, delta, *, overlap, sort, rule, metrics):
    """The built-in strategy: drain, re-sort, re-place via the site heap."""
    return reschedule_schedule(
        schedule, delta, overlap=overlap, sort=sort, rule=rule, metrics=metrics
    )


def reschedule(
    prev_result: ScheduleResult,
    delta: ScheduleDelta,
    *,
    overlap,
    name: str = "repair",
    sort: SortKey = SortKey.MAX_COMPONENT,
    rule: PlacementRule = PlacementRule.LEAST_LOADED_LENGTH,
    mutate: bool = False,
    metrics: MetricsRecorder | None = None,
) -> ScheduleResult:
    """Repair one phase of ``prev_result`` and return the new result.

    By default the affected phase is copied first
    (:meth:`Schedule.copy <repro.core.schedule.Schedule.copy>`), so
    ``prev_result`` stays valid — the fault-recovery flow holds on to
    both the degraded and the repaired schedule.  Pass ``mutate=True``
    to repair the phase in place and skip the copy (the hot path when
    the previous result is disposable).

    The returned result keeps the base result's ``algorithm`` name and
    phase labels; homes and degrees are re-derived from the repaired
    placement, and the repair's counters
    (``reschedules``/``clones_moved``/``sites_drained``/``sites_restored``/
    ``placement_scans``) land in its instrumentation alongside a
    ``reschedule`` wall-clock timer.

    Raises
    ------
    SchedulingError
        For bound-only results, an out-of-range phase index, an unknown
        strategy name, or a delta that does not apply.
    """
    phased = prev_result.phased_schedule
    if phased is None:
        raise SchedulingError(
            f"cannot reschedule the bound-only result of "
            f"{prev_result.algorithm!r}"
        )
    if not 0 <= delta.phase_index < phased.num_phases:
        raise SchedulingError(
            f"delta targets phase {delta.phase_index}; result has "
            f"{phased.num_phases} phases"
        )
    strategy = get_rescheduler(name)
    # A private recorder keeps this result's instrumentation scoped to
    # the repair itself; the caller's recorder (if any) gets the same
    # numbers folded in afterwards.
    recorder = MetricsRecorder()

    target = phased.phases[delta.phase_index]
    if not mutate:
        target = target.copy()
    started = time.perf_counter()
    # Root span of the repair, mirroring the registry's "schedule" root:
    # the core repair nests its "reschedule_repair" span underneath, and
    # the span tree lands in the new result's instrumentation.
    from repro.obs.tracer import current_tracer, span_to_dict

    with current_tracer().span(
        "reschedule",
        strategy=name,
        algorithm=prev_result.algorithm,
        phase=delta.phase_index,
    ) as span:
        stats: RescheduleStats = strategy(
            target, delta, overlap=overlap, sort=sort, rule=rule, metrics=recorder
        )
    wall = time.perf_counter() - started
    if metrics is not None:
        metrics.merge(recorder)

    new_phased = PhasedSchedule()
    for k, (schedule, label) in enumerate(zip(phased.phases, phased.labels)):
        new_phased.append(target if k == delta.phase_index else schedule, label)

    inst = Instrumentation(wall_clock_seconds=wall)
    inst.counters.update(recorder.counters)
    inst.timers.update(recorder.timers)
    # Guarantee the headline repair counters are present even when the
    # strategy did not thread the recorder through.
    inst.counters.setdefault(COUNTER_RESCHEDULES, 1.0)
    inst.counters.setdefault(COUNTER_CLONES_MOVED, float(stats.clones_moved))
    inst.counters.setdefault(COUNTER_SITES_DRAINED, float(stats.sites_drained))
    inst.counters.setdefault(COUNTER_SITES_RESTORED, float(stats.sites_restored))
    # Only when the delta actually resized sites: keeps instrumentation of
    # capacity-free repairs byte-identical to the pre-capacity engine.
    if stats.sites_resized:
        inst.counters.setdefault(COUNTER_SITES_RESIZED, float(stats.sites_resized))
    inst.timers.setdefault(TIMER_RESCHEDULE, wall)

    result = ScheduleResult(
        algorithm=prev_result.algorithm,
        phased_schedule=new_phased,
        phase_labels=list(prev_result.phase_labels),
        instrumentation=inst,
    )
    result.degrees = {op: home.degree for op, home in result.homes.items()}
    if span is not None:
        span.attributes["response_time"] = result.response_time
        result.instrumentation.spans.append(span_to_dict(span))
    return result


def reschedule_store_payload(
    base_key: str, delta: ScheduleDelta, name: str = "repair"
) -> dict:
    """Content-address payload for a repaired result.

    Incorporates the repair strategy, the *base* result's store key and
    the full serialized delta, so a repaired result can never collide
    with its cold base (different payload shape) or with a repair of the
    same base under any other delta.
    """
    from repro.serialization import schedule_delta_to_dict

    return {
        "reschedule": name,
        "base": base_key,
        "delta": schedule_delta_to_dict(delta),
    }


def reschedule_cached(
    prev_result: ScheduleResult,
    delta: ScheduleDelta,
    *,
    overlap,
    base_key: str,
    store,
    name: str = "repair",
    sort: SortKey = SortKey.MAX_COMPONENT,
    rule: PlacementRule = PlacementRule.LEAST_LOADED_LENGTH,
    metrics: MetricsRecorder | None = None,
) -> ScheduleResult:
    """:func:`reschedule` with artifact-store caching.

    ``base_key`` is the store key of ``prev_result`` (the one the runner
    cached the cold result under); the repaired result is cached under
    the delta-qualified :func:`reschedule_store_payload` key.  Hits skip
    the repair entirely.
    """
    from repro.serialization import (
        schedule_result_from_dict,
        schedule_result_to_dict,
    )
    from repro.store import KIND_RESULT

    payload = reschedule_store_payload(base_key, delta, name)
    key = store.key(KIND_RESULT, payload)
    cached = store.get(KIND_RESULT, key)
    if cached is not None:
        return schedule_result_from_dict(cached)
    result = reschedule(
        prev_result,
        delta,
        overlap=overlap,
        name=name,
        sort=sort,
        rule=rule,
        metrics=metrics,
    )
    store.put(KIND_RESULT, key, schedule_result_to_dict(result))
    return result
