"""Lightweight observability hooks for schedule construction.

A :class:`MetricsRecorder` accumulates named counters and wall-clock
timers with near-zero overhead, so benchmarks can ask *where* schedule
construction time goes (phase decomposition vs. degree selection vs.
list packing) without a profiler.  Records export as JSON lines, one
snapshot per line, for downstream aggregation.

The recorder is deliberately dumb: plain dicts, no locks, no global
state.  Callers that do not care pass ``metrics=None`` and every hook
degrades to a no-op.
"""

from __future__ import annotations

import json
import time
from collections.abc import Iterator
from contextlib import contextmanager
from typing import Any

__all__ = [
    "MetricsRecorder",
    "KNOWN_COUNTER_NAMES",
    "KNOWN_TIMER_NAMES",
    "unknown_metric_names",
    "COUNTER_PLACEMENT_SCANS",
    "COUNTER_CLONES_PLACED",
    "COUNTER_CLONES_PACKED",
    "COUNTER_FAULTS_INJECTED",
    "COUNTER_WORK_RERUN",
    "COUNTER_STORE_HITS",
    "COUNTER_STORE_MISSES",
    "COUNTER_POINT_STORE_HITS",
    "COUNTER_POINT_STORE_MISSES",
    "COUNTER_RESCHEDULES",
    "COUNTER_CLONES_MOVED",
    "COUNTER_SITES_DRAINED",
    "COUNTER_SITES_RESTORED",
    "TIMER_LIST_SCHEDULE",
    "TIMER_PACK_VECTORS",
    "TIMER_PACK_PHASE",
    "TIMER_RESCHEDULE",
]

# ----------------------------------------------------------------------
# Kernel instrumentation vocabulary
# ----------------------------------------------------------------------
# The scheduling kernels (repro.core.operator_schedule / vector_packing)
# accept a duck-typed ``metrics`` recorder and use these names.  They are
# plain strings there (core must not import the engine package), but the
# canonical spelling lives here so benchmarks and result consumers do not
# scatter literals.

#: Site/heap entries examined while choosing placements.  For the naive
#: rescanning rule this equals sites-visited (O(n·p)); for the lazy-heap
#: rule it counts heap pops (O(n·log p) amortized) — the headline
#: complexity win is the drop in this counter at equal output.
COUNTER_PLACEMENT_SCANS = "placement_scans"
#: Clones placed by the Figure 3 list-scheduling step (step 3).
COUNTER_CLONES_PLACED = "clones_placed"
#: Clone items packed by the generic ablation kernel ``pack_vectors``.
COUNTER_CLONES_PACKED = "clones_packed"
#: Faults injected by a :mod:`repro.sim.faults` plan during a simulated
#: execution (all kinds: slowdowns + skews + stragglers + failures).
COUNTER_FAULTS_INJECTED = "faults_injected"
#: Stand-alone-seconds of clone progress destroyed by site failures and
#: re-executed after recovery.
COUNTER_WORK_RERUN = "work_rerun"
#: Schedule-result lookups served from the content-addressed artifact
#: store (:mod:`repro.store`) instead of re-running the scheduler.
COUNTER_STORE_HITS = "store_hits"
#: Schedule-result lookups that missed the store (scheduler ran).
COUNTER_STORE_MISSES = "store_misses"
#: Sweep-point values served from the store by the parallel runner —
#: the resume path: a restarted sweep reports its completed prefix here.
COUNTER_POINT_STORE_HITS = "point_store_hits"
#: Sweep-point values the parallel runner actually had to evaluate.
COUNTER_POINT_STORE_MISSES = "point_store_misses"
#: Repair passes applied by :func:`repro.core.reschedule.reschedule_schedule`.
COUNTER_RESCHEDULES = "reschedules"
#: Displaced clones re-placed on surviving sites during repairs.
COUNTER_CLONES_MOVED = "clones_moved"
#: Sites drained and taken out of service by repair deltas.
COUNTER_SITES_DRAINED = "sites_drained"
#: Sites returned to service by repair deltas.
COUNTER_SITES_RESTORED = "sites_restored"
#: Wall-clock spent in the Figure 3 step-3 placement loop.
TIMER_LIST_SCHEDULE = "list_schedule"
#: Wall-clock spent inside ``pack_vectors``.
TIMER_PACK_VECTORS = "pack_vectors"
#: Wall-clock spent in a whole shelf-packing call (driver-level).
TIMER_PACK_PHASE = "pack_phase"
#: Wall-clock spent repairing a schedule after a delta.
TIMER_RESCHEDULE = "reschedule"

#: The complete counter vocabulary.  Kernels in ``repro.core`` record
#: these as duck-typed *strings* (core must not import this package), so
#: a typo there silently creates a new counter nobody reads;
#: :func:`unknown_metric_names` (used by
#: :func:`repro.sim.validate.validate_schedule_result`) checks recorded
#: names against this set to catch exactly that.  Names without a
#: module-level constant are recorded by the driver
#: (``phases``/``floating_operators``/``rooted_operators``) and the
#: parallel runner (``points_evaluated``/``points_retried_inline``).
KNOWN_COUNTER_NAMES = frozenset(
    {
        COUNTER_PLACEMENT_SCANS,
        COUNTER_CLONES_PLACED,
        COUNTER_CLONES_PACKED,
        COUNTER_FAULTS_INJECTED,
        COUNTER_WORK_RERUN,
        COUNTER_STORE_HITS,
        COUNTER_STORE_MISSES,
        COUNTER_POINT_STORE_HITS,
        COUNTER_POINT_STORE_MISSES,
        COUNTER_RESCHEDULES,
        COUNTER_CLONES_MOVED,
        COUNTER_SITES_DRAINED,
        COUNTER_SITES_RESTORED,
        "phases",
        "floating_operators",
        "rooted_operators",
        "points_evaluated",
        "points_retried_inline",
    }
)

#: The complete timer vocabulary (``run`` / ``point_seconds`` are the
#: parallel runner's sweep-level timers).
KNOWN_TIMER_NAMES = frozenset(
    {
        TIMER_LIST_SCHEDULE,
        TIMER_PACK_VECTORS,
        TIMER_PACK_PHASE,
        TIMER_RESCHEDULE,
        "run",
        "point_seconds",
    }
)


def unknown_metric_names(
    counters: "dict[str, float] | Any" = (),
    timers: "dict[str, float] | Any" = (),
) -> set[str]:
    """Recorded metric names outside the known vocabulary.

    Accepts the counter/timer dicts (or any iterable of names) of a
    recorder or a :class:`~repro.engine.result.Instrumentation` and
    returns the names that match neither :data:`KNOWN_COUNTER_NAMES` nor
    :data:`KNOWN_TIMER_NAMES` — typically a typo'd duck-typed counter
    string in ``repro.core``.
    """
    known = KNOWN_COUNTER_NAMES | KNOWN_TIMER_NAMES
    return {name for name in (*counters, *timers) if name not in known}


class MetricsRecorder:
    """Accumulate counters and timers during schedule construction.

    Examples
    --------
    >>> metrics = MetricsRecorder()
    >>> with metrics.timer("pack"):
    ...     metrics.count("clones", 3)
    >>> metrics.counters["clones"]
    3.0
    >>> metrics.timers["pack"] >= 0.0
    True
    """

    __slots__ = ("counters", "timers")

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.timers: dict[str, float] = {}

    def count(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to counter ``name`` (created at zero)."""
        self.counters[name] = self.counters.get(name, 0.0) + amount

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Accumulate the wall-clock time of the ``with`` body into ``name``.

        Timings come from :func:`time.perf_counter` — a *monotonic*
        clock, so a single recorder's timer is guaranteed non-negative
        and unaffected by wall-clock adjustments.  Timers are
        **additive**: nested or repeated ``with`` bodies sum, which is
        the right semantics within one process (total CPU-side residence
        time in a region).
        """
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.timers[name] = self.timers.get(name, 0.0) + elapsed

    def merge(self, other: "MetricsRecorder", *, timer_mode: str = "sum") -> None:
        """Fold another recorder's counters and timers into this one.

        Counters always add.  ``timer_mode`` selects the timer
        semantics, which matter when the recorders come from *different
        processes*:

        ``"sum"`` (default)
            Additive — correct for sequential regions and for
            "total worker-seconds spent" aggregates.  Note that summing
            timers of **concurrently running** workers double-counts
            wall-clock: four workers each busy for 10s merge to 40s of
            ``point_seconds`` even though only ~10s elapsed.  That is a
            feature (it measures compute), but it is *not* elapsed time.
        ``"max"``
            Cross-process wall-clock — keeps the slowest contributor per
            timer, which is the elapsed-time semantics for overlapping
            workers (the sweep is as slow as its slowest worker).  Use
            this when merging per-worker recorders of one parallel
            region into an elapsed-time view.

        Monotonicity guarantee: each source timer is a sum of
        non-negative monotonic-clock intervals, and both modes are
        monotone non-decreasing in their inputs, so a merged timer can
        never decrease below its previous value in this recorder.
        """
        if timer_mode not in ("sum", "max"):
            raise ValueError(
                f"timer_mode must be 'sum' or 'max', got {timer_mode!r}"
            )
        for name, value in other.counters.items():
            self.count(name, value)
        for name, value in other.timers.items():
            if timer_mode == "max":
                self.timers[name] = max(self.timers.get(name, 0.0), value)
            else:
                self.timers[name] = self.timers.get(name, 0.0) + value

    def snapshot(self) -> dict[str, Any]:
        """Return a plain-dict snapshot (counters and timers, copied)."""
        return {"counters": dict(self.counters), "timers": dict(self.timers)}

    def kernel_summary(self) -> dict[str, float]:
        """Derived view of the placement-kernel instrumentation.

        Returns scans, clones, scans-per-clone (the per-placement cost
        the heap refactor collapses from O(p) toward O(log p)), and the
        kernel wall-clock seconds.  Missing entries default to zero so
        the summary is safe to call on any recorder.
        """
        scans = self.counters.get(COUNTER_PLACEMENT_SCANS, 0.0)
        clones = self.counters.get(COUNTER_CLONES_PLACED, 0.0) + self.counters.get(
            COUNTER_CLONES_PACKED, 0.0
        )
        return {
            "placement_scans": scans,
            "clones": clones,
            "scans_per_clone": scans / clones if clones else 0.0,
            "kernel_seconds": self.timers.get(TIMER_LIST_SCHEDULE, 0.0)
            + self.timers.get(TIMER_PACK_VECTORS, 0.0),
        }

    def to_json_line(self, **extra: Any) -> str:
        """Serialize one snapshot as a single JSON line.

        Keyword arguments are merged into the top level (e.g. the
        algorithm name, sweep-point coordinates, a timestamp).
        """
        payload = {**extra, **self.snapshot()}
        return json.dumps(payload, sort_keys=True)

    def write_json_line(self, path: str, **extra: Any) -> None:
        """Append one :meth:`to_json_line` record to ``path``."""
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(self.to_json_line(**extra) + "\n")

    def __repr__(self) -> str:
        return (
            f"MetricsRecorder(counters={len(self.counters)}, "
            f"timers={len(self.timers)})"
        )
