"""Lightweight observability hooks for schedule construction.

A :class:`MetricsRecorder` accumulates named counters and wall-clock
timers with near-zero overhead, so benchmarks can ask *where* schedule
construction time goes (phase decomposition vs. degree selection vs.
list packing) without a profiler.  Records export as JSON lines, one
snapshot per line, for downstream aggregation.

The recorder is deliberately dumb: plain dicts, no locks, no global
state.  Callers that do not care pass ``metrics=None`` and every hook
degrades to a no-op.
"""

from __future__ import annotations

import json
import time
from collections.abc import Iterator
from contextlib import contextmanager
from typing import Any

__all__ = ["MetricsRecorder"]


class MetricsRecorder:
    """Accumulate counters and timers during schedule construction.

    Examples
    --------
    >>> metrics = MetricsRecorder()
    >>> with metrics.timer("pack"):
    ...     metrics.count("clones", 3)
    >>> metrics.counters["clones"]
    3.0
    >>> metrics.timers["pack"] >= 0.0
    True
    """

    __slots__ = ("counters", "timers")

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.timers: dict[str, float] = {}

    def count(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to counter ``name`` (created at zero)."""
        self.counters[name] = self.counters.get(name, 0.0) + amount

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Accumulate the wall-clock time of the ``with`` body into ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.timers[name] = self.timers.get(name, 0.0) + elapsed

    def merge(self, other: "MetricsRecorder") -> None:
        """Fold another recorder's counters and timers into this one."""
        for name, value in other.counters.items():
            self.count(name, value)
        for name, value in other.timers.items():
            self.timers[name] = self.timers.get(name, 0.0) + value

    def snapshot(self) -> dict[str, Any]:
        """Return a plain-dict snapshot (counters and timers, copied)."""
        return {"counters": dict(self.counters), "timers": dict(self.timers)}

    def to_json_line(self, **extra: Any) -> str:
        """Serialize one snapshot as a single JSON line.

        Keyword arguments are merged into the top level (e.g. the
        algorithm name, sweep-point coordinates, a timestamp).
        """
        payload = {**extra, **self.snapshot()}
        return json.dumps(payload, sort_keys=True)

    def write_json_line(self, path: str, **extra: Any) -> None:
        """Append one :meth:`to_json_line` record to ``path``."""
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(self.to_json_line(**extra) + "\n")

    def __repr__(self) -> str:
        return (
            f"MetricsRecorder(counters={len(self.counters)}, "
            f"timers={len(self.timers)})"
        )
