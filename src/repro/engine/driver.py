"""The generic synchronized-phase scheduling driver.

Every tree-level scheduler in this library walks the same skeleton
(Section 5.4): decompose the task tree into synchronized shelves, and per
shelf (1) root probes/rescans at the homes chosen for their anchors in
earlier shelves, (2) size each hash join's build by the combined
build + probe *stage* (the home chosen for the build is the home the
probe inherits; see :mod:`repro.core.tree_schedule` for the modelling
discussion), and (3) pack the shelf's clones onto the ``P`` sites.

Only step (3) differs between algorithms, so :func:`schedule_phases`
factors the skeleton out and takes the packer as a plug-in:

* TREESCHEDULE packs with the multi-dimensional list rule
  (:func:`repro.core.operator_schedule.operator_schedule`);
* the one-dimensional ablation packs with the scalar LPT rule
  (:func:`repro.baselines.one_dimensional.scalar_list_schedule`);
* the malleable variant re-chooses degrees per shelf with the Section 7
  greedy family (:func:`repro.core.malleable.malleable_schedule`).

The driver assembles the :class:`~repro.engine.result.ScheduleResult`
(timelines, totals, instrumentation) so packers stay tiny.
"""

from __future__ import annotations

import time
from collections.abc import Mapping, Sequence
from typing import Callable

from repro.exceptions import SchedulingError
from repro.core.cloning import (
    DEFAULT_COORDINATOR_POLICY,
    CoordinatorPolicy,
    OperatorSpec,
    coarse_grain_degree,
)
from repro.core.granularity import CommunicationModel
from repro.core.operator_schedule import (
    OperatorScheduleResult,
    RootedPlacement,
    operator_schedule,
)
from repro.core.resource_model import OverlapModel
from repro.core.schedule import OperatorHome, PhasedSchedule
from repro.engine.metrics import MetricsRecorder
from repro.engine.result import Instrumentation, ScheduleResult
from repro.obs.tracer import current_tracer
from repro.plans.operator_tree import OperatorTree
from repro.plans.phases import eager_shelf_phases, min_shelf_phases
from repro.plans.physical_ops import OperatorKind, anchor_operator_name
from repro.plans.task_tree import TaskTree

__all__ = ["SHELF_POLICIES", "PhasePacker", "schedule_phases"]

#: Shelf (phase-decomposition) policies accepted by :func:`schedule_phases`.
SHELF_POLICIES = {
    "min": min_shelf_phases,
    "eager": eager_shelf_phases,
}

#: A shelf packer: ``(floating, rooted, forced_degrees, p) -> result``.
PhasePacker = Callable[
    [Sequence[OperatorSpec], Sequence[RootedPlacement], Mapping[str, int], int],
    OperatorScheduleResult,
]


def schedule_phases(
    op_tree: OperatorTree,
    task_tree: TaskTree,
    *,
    p: int,
    comm: CommunicationModel,
    overlap: OverlapModel,
    f: float = 0.7,
    shelf: str = "min",
    policy: CoordinatorPolicy = DEFAULT_COORDINATOR_POLICY,
    pack_phase: PhasePacker | None = None,
    algorithm: str = "",
    metrics: MetricsRecorder | None = None,
    capacities: Sequence[float] | None = None,
) -> ScheduleResult:
    """Schedule a bushy plan shelf by shelf with a pluggable packer.

    Parameters mirror :func:`repro.core.tree_schedule.tree_schedule`;
    ``pack_phase`` receives the shelf's floating specs, rooted
    placements, and the forced join-stage degrees, and returns an
    :class:`~repro.core.operator_schedule.OperatorScheduleResult` over
    ``p`` sites.  The default packer is the Figure 3 list rule.

    ``capacities`` (heterogeneous clusters) is forwarded to the default
    packer; algorithms supplying their own ``pack_phase`` thread it into
    their closure themselves.

    Raises
    ------
    SchedulingError
        On an unknown shelf policy, or if a rooted operator's anchor has
        not been scheduled by the time its phase is reached.
    """
    try:
        shelf_fn = SHELF_POLICIES[shelf]
    except KeyError:
        raise SchedulingError(
            f"unknown shelf policy {shelf!r}; expected one of {sorted(SHELF_POLICIES)}"
        ) from None
    if pack_phase is None:

        def pack_phase(floating, rooted, forced, n_sites):
            # The default Figure 3 packer threads the recorder through so
            # kernel-level counters (placement_scans, clones_placed) and
            # the list_schedule timer land in the ScheduleResult
            # instrumentation alongside the driver's own phase counters.
            return operator_schedule(
                floating,
                rooted,
                p=n_sites,
                comm=comm,
                overlap=overlap,
                f=f,
                degrees=forced,
                policy=policy,
                metrics=metrics,
                capacities=capacities,
            )

    tracer = current_tracer()
    started = time.perf_counter()
    with tracer.span("phase_decomposition", policy=shelf):
        phases = shelf_fn(task_tree)
    phased = PhasedSchedule()
    homes: dict[str, OperatorHome] = {}
    degrees: dict[str, int] = {}
    labels: list[str] = []

    for phase_tasks in phases:
        label = ",".join(task.task_id for task in phase_tasks)
        with tracer.span("shelf", label=label):
            floating: list[OperatorSpec] = []
            rooted: list[RootedPlacement] = []
            forced_degrees: dict[str, int] = {}
            with tracer.span("degree_selection"):
                for task in phase_tasks:
                    for op in task.operators:
                        spec = op.require_spec()
                        if op.kind is OperatorKind.BUILD:
                            # Size the build by the whole join stage: the
                            # probe will be rooted at this home in a later
                            # phase.
                            probe_spec = op_tree.probe_of(
                                op.join_id
                            ).require_spec()
                            stage = OperatorSpec(
                                name=f"stage({op.join_id})",
                                work=spec.work + probe_spec.work,
                                data_volume=spec.data_volume
                                + probe_spec.data_volume,
                            )
                            forced_degrees[spec.name] = coarse_grain_degree(
                                stage, p, f, comm, overlap, policy
                            )
                            floating.append(spec)
                        elif (anchor := anchor_operator_name(op)) is not None:
                            # Probes run at their builds' homes (hash
                            # tables); rescans at their stores' homes
                            # (materialized pages).
                            try:
                                anchor_home = homes[anchor]
                            except KeyError:
                                raise SchedulingError(
                                    f"{op.name!r} scheduled before its anchor "
                                    f"{anchor!r}; task tree is inconsistent"
                                ) from None
                            rooted.append(
                                RootedPlacement(
                                    spec=spec,
                                    site_indices=anchor_home.site_indices,
                                )
                            )
                        else:
                            floating.append(spec)

            with tracer.span(
                "pack", floating=len(floating), rooted=len(rooted)
            ):
                if metrics is not None:
                    metrics.count("phases")
                    metrics.count("floating_operators", len(floating))
                    metrics.count("rooted_operators", len(rooted))
                    with metrics.timer("pack_phase"):
                        result = pack_phase(floating, rooted, forced_degrees, p)
                else:
                    result = pack_phase(floating, rooted, forced_degrees, p)

            phased.append(result.schedule, label)
            labels.append(label)
            homes.update(result.schedule.homes())
            degrees.update(result.degrees)

    instrumentation = Instrumentation(
        wall_clock_seconds=time.perf_counter() - started,
        counters=dict(metrics.counters) if metrics is not None else {},
        timers=dict(metrics.timers) if metrics is not None else {},
    )
    return ScheduleResult(
        algorithm=algorithm,
        phased_schedule=phased,
        homes=homes,
        degrees=degrees,
        phase_labels=labels,
        instrumentation=instrumentation,
    )
