"""Decorator-based scheduling-algorithm registry.

Algorithms self-register at import time::

    @register("treeschedule", description="Section 5.4 TREESCHEDULE")
    def _run(query: GeneratedQuery, request: ScheduleRequest) -> ScheduleResult:
        ...

and every dispatch site (experiment runner, CLI, parallel sweeps,
simulator validation) resolves names through :func:`get_algorithm` —
there is exactly one source of truth for which algorithm names exist.
Unknown names raise :class:`~repro.exceptions.ConfigurationError` listing
the registered names.

A registered scheduler is a callable ``(query, request) -> ScheduleResult``
where ``query`` is a cost-annotated
:class:`~repro.plans.generator.GeneratedQuery` and ``request`` a
:class:`ScheduleRequest` carrying the sweep-point coordinates ``(p, f,
epsilon)``, the Table 2 system parameters, and an optional
:class:`~repro.engine.metrics.MetricsRecorder`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Protocol

from repro.exceptions import ConfigurationError
from repro.engine.metrics import MetricsRecorder
from repro.engine.result import ScheduleResult

if TYPE_CHECKING:  # pragma: no cover - imports for type checkers only
    from repro.core.cloning import CoordinatorPolicy
    from repro.core.cluster import ClusterSpec
    from repro.core.granularity import CommunicationModel
    from repro.core.resource_model import OverlapModel
    from repro.cost.annotate import PlanAnnotation
    from repro.cost.params import SystemParameters
    from repro.plans.generator import GeneratedQuery

__all__ = [
    "ScheduleRequest",
    "Scheduler",
    "RegisteredScheduler",
    "register",
    "get_algorithm",
    "available_algorithms",
    "describe_algorithms",
    "register_rescheduler",
    "get_rescheduler",
    "available_reschedulers",
]


@dataclass
class ScheduleRequest:
    """One sweep point: everything an algorithm needs besides the query.

    Attributes
    ----------
    p:
        Number of system sites.
    f:
        Granularity parameter of the coarse-grain restriction (ignored by
        algorithms that do not respect granularity).
    epsilon:
        Resource-overlap parameter (EA2).
    params:
        Table 2 system parameters; defaults to the paper's values.
    policy:
        Startup-cost charging policy; defaults to EA1.
    metrics:
        Optional metrics recorder threaded into the scheduler.
    annotation:
        Optional immutable :class:`~repro.cost.annotate.PlanAnnotation`
        resolving operator specs for this run.  When set, the registry
        activates it around the scheduler call
        (:func:`repro.plans.physical_ops.use_annotation`), so a shared,
        unattached operator tree can be scheduled under any parameter
        variant without being rewritten.
    cluster:
        Optional :class:`~repro.core.cluster.ClusterSpec` describing a
        heterogeneous cluster.  When set, its site count must equal
        ``p``; its capacity vector reaches the algorithms through
        :attr:`capacities`.  ``None`` (or a uniform spec) keeps every
        algorithm on the byte-identical homogeneous path.
    """

    p: int
    f: float = 0.7
    epsilon: float = 0.5
    params: "SystemParameters | None" = None
    policy: "CoordinatorPolicy | None" = None
    metrics: MetricsRecorder | None = None
    annotation: "PlanAnnotation | None" = None
    cluster: "ClusterSpec | None" = None
    _comm: "CommunicationModel | None" = field(
        default=None, repr=False, compare=False
    )
    _overlap: "OverlapModel | None" = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.params is None:
            from repro.cost.params import PAPER_PARAMETERS

            self.params = PAPER_PARAMETERS
        if self.policy is None:
            from repro.core.cloning import DEFAULT_COORDINATOR_POLICY

            self.policy = DEFAULT_COORDINATOR_POLICY
        if self.cluster is not None and self.cluster.p != self.p:
            raise ConfigurationError(
                f"cluster spec has {self.cluster.p} sites but request has "
                f"p={self.p}"
            )

    @property
    def capacities(self) -> "tuple[float, ...] | None":
        """Per-site capacities, or ``None`` on the homogeneous path.

        Uniform clusters (all capacities 1.0) also return ``None`` so
        algorithms keep the byte-identical homogeneous code path.
        """
        if self.cluster is None:
            return None
        return self.cluster.capacities_or_none()

    @property
    def total_capacity(self) -> "float | None":
        """Total capacity ``C``, or ``None`` on the homogeneous path."""
        caps = self.capacities
        return None if caps is None else float(sum(caps))

    @property
    def comm(self) -> "CommunicationModel":
        """The communication-cost model derived from :attr:`params`."""
        if self._comm is None:
            assert self.params is not None
            self._comm = self.params.communication_model()
        return self._comm

    @property
    def overlap(self) -> "OverlapModel":
        """The overlap model derived from :attr:`epsilon` (EA2)."""
        if self._overlap is None:
            from repro.core.resource_model import ConvexCombinationOverlap

            self._overlap = ConvexCombinationOverlap(self.epsilon)
        return self._overlap


class Scheduler(Protocol):
    """The callable protocol every registered algorithm satisfies."""

    def __call__(
        self, query: "GeneratedQuery", request: ScheduleRequest
    ) -> ScheduleResult: ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class RegisteredScheduler:
    """Registry entry: the scheduler plus its metadata.

    Attributes
    ----------
    name:
        Registry key (``"treeschedule"``, ``"hong"``, ...).
    fn:
        The scheduler callable.
    description:
        One-line human description (shown by the CLI).
    kind:
        ``"schedule"`` for algorithms producing a placement,
        ``"bound"`` for lower bounds with no schedule attached.
    """

    name: str
    fn: Scheduler
    description: str = ""
    kind: str = "schedule"

    def __call__(
        self, query: "GeneratedQuery", request: ScheduleRequest
    ) -> ScheduleResult:
        from repro.obs.tracer import current_tracer, span_to_dict
        from repro.plans.physical_ops import use_annotation

        # Every dispatch funnels through here, so this is the one place
        # the "schedule" root span is opened — kernels and the driver
        # nest their own spans under it via the ambient tracer.  With
        # tracing disabled (the default) span() hands back a shared
        # no-op and the result is untouched.
        with current_tracer().span(
            "schedule",
            algorithm=self.name,
            p=request.p,
            f=request.f,
            epsilon=request.epsilon,
        ) as span:
            with use_annotation(request.annotation):
                result = self.fn(query, request)
        if result.algorithm == "":
            result.algorithm = self.name
        if span is not None:
            span.attributes["response_time"] = result.response_time
            result.instrumentation.spans.append(span_to_dict(span))
        return result


#: The registry.  Listing order is canonicalized by ``_PREFERRED_ORDER``
#: (import side effects would otherwise make it depend on which package
#: ``__init__`` ran first); names outside it follow in registration order.
_SCHEDULERS: dict[str, RegisteredScheduler] = {}

_PREFERRED_ORDER = (
    "treeschedule",
    "synchronous",
    "hong",
    "optbound",
    "onedim",
    "malleable",
)

_BUILTIN_MODULES = (
    "repro.core.tree_schedule",
    "repro.baselines.synchronous",
    "repro.baselines.hong",
    "repro.baselines.opt_bound",
    "repro.baselines.one_dimensional",
    "repro.core.malleable",
)


def register(
    name: str, *, description: str = "", kind: str = "schedule"
) -> Callable[[Scheduler], Scheduler]:
    """Class/function decorator adding a scheduler to the registry.

    Re-registering an existing name replaces the entry (supports module
    reloads); ``kind`` must be ``"schedule"`` or ``"bound"``.
    """
    if not name:
        raise ConfigurationError("scheduler name must be non-empty")
    if kind not in ("schedule", "bound"):
        raise ConfigurationError(
            f"scheduler kind must be 'schedule' or 'bound', got {kind!r}"
        )

    def decorator(fn: Scheduler) -> Scheduler:
        _SCHEDULERS[name] = RegisteredScheduler(
            name=name, fn=fn, description=description, kind=kind
        )
        return fn

    return decorator


def _ensure_builtins_loaded() -> None:
    """Import every module that registers a built-in algorithm.

    Imports are deferred to first lookup so the registry module itself
    stays dependency-free (the algorithm modules import *it*).
    """
    import importlib

    for module in _BUILTIN_MODULES:
        importlib.import_module(module)


def get_algorithm(name: str) -> RegisteredScheduler:
    """Resolve an algorithm name to its registry entry.

    Raises
    ------
    ConfigurationError
        If ``name`` is not registered; the message lists all registered
        names.
    """
    _ensure_builtins_loaded()
    try:
        return _SCHEDULERS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown algorithm {name!r}; expected one of "
            f"{available_algorithms()}"
        ) from None


def available_algorithms() -> tuple[str, ...]:
    """All registered algorithm names, built-ins first in canonical order."""
    _ensure_builtins_loaded()
    builtin = [n for n in _PREFERRED_ORDER if n in _SCHEDULERS]
    extra = [n for n in _SCHEDULERS if n not in _PREFERRED_ORDER]
    return tuple(builtin + extra)


def describe_algorithms() -> dict[str, RegisteredScheduler]:
    """Name → registry entry for every registered algorithm (a copy)."""
    _ensure_builtins_loaded()
    return {name: _SCHEDULERS[name] for name in available_algorithms()}


# ----------------------------------------------------------------------
# Rescheduler registry (incremental repair strategies)
# ----------------------------------------------------------------------
#: Repair strategies for :func:`repro.engine.reschedule.reschedule`.  A
#: rescheduler is a callable ``(schedule, delta, *, overlap, sort, rule,
#: metrics) -> RescheduleStats`` mutating the given phase schedule in
#: place; the engine entry point handles copying, result assembly and
#: store keying around it.
_RESCHEDULERS: dict[str, Callable] = {}

_RESCHEDULER_MODULES = ("repro.engine.reschedule",)


def register_rescheduler(name: str) -> Callable[[Callable], Callable]:
    """Decorator adding a repair strategy to the rescheduler registry."""
    if not name:
        raise ConfigurationError("rescheduler name must be non-empty")

    def decorator(fn: Callable) -> Callable:
        _RESCHEDULERS[name] = fn
        return fn

    return decorator


def _ensure_reschedulers_loaded() -> None:
    import importlib

    for module in _RESCHEDULER_MODULES:
        importlib.import_module(module)


def get_rescheduler(name: str) -> Callable:
    """Resolve a repair-strategy name.

    Raises
    ------
    ConfigurationError
        If ``name`` is not registered; the message lists the registered
        names.
    """
    _ensure_reschedulers_loaded()
    try:
        return _RESCHEDULERS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown rescheduler {name!r}; expected one of "
            f"{available_reschedulers()}"
        ) from None


def available_reschedulers() -> tuple[str, ...]:
    """All registered repair-strategy names, in registration order."""
    _ensure_reschedulers_loaded()
    return tuple(_RESCHEDULERS)
