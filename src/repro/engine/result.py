"""The engine's rich schedule result with provenance.

Every registered scheduling algorithm returns a :class:`ScheduleResult`:
besides the headline response time it carries the full
:class:`~repro.core.schedule.PhasedSchedule` (so the fluid simulator can
validate the analytic model against an execution), per-shelf/per-site
timelines, system-wide work-vector totals, the granularity decisions
(degree of parallelism per operator), and wall-clock + counter
instrumentation (operators scheduled, clones created, packing bins
opened).

Lower-bound "algorithms" (OPTBOUND) produce no schedule; they return a
result with ``phased_schedule=None`` and an explicit ``response_time``.

For backward compatibility :class:`ScheduleResult` exposes exactly the
attribute surface of the historical per-algorithm result classes
(``TreeScheduleResult``, ``SynchronousResult``) — ``phased_schedule``,
``homes``, ``degrees``, ``phase_labels``, ``response_time``,
``num_phases`` — which are now aliases of this class.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import SchedulingError
from repro.core.schedule import OperatorHome, PhasedSchedule
from repro.core.work_vector import WorkVector

__all__ = ["Instrumentation", "SiteTimeline", "ShelfTimeline", "ScheduleResult"]


@dataclass
class Instrumentation:
    """Wall-clock and counter instrumentation of one scheduler run.

    Attributes
    ----------
    wall_clock_seconds:
        Wall-clock time spent constructing the schedule.
    operators_scheduled:
        Number of operators placed (floating and rooted).
    clones_created:
        Total operator clones created, ``sum_i N_i`` over all phases.
    bins_opened:
        Vector-packing bins that received at least one clone — the
        number of (phase, site) pairs with non-empty work.
    counters, timers:
        Free-form extras from a :class:`~repro.engine.metrics.MetricsRecorder`
        (e.g. per-stage timings of the driver).
    spans:
        Optional span-tree summaries of the run, as the plain relative-
        offset dicts of :func:`repro.obs.tracer.span_to_dict` (one entry
        per root span; empty when tracing was disabled).  Attached by
        the registry dispatch when an ambient tracer is enabled, and
        round-tripped by :mod:`repro.serialization`.
    """

    wall_clock_seconds: float = 0.0
    operators_scheduled: int = 0
    clones_created: int = 0
    bins_opened: int = 0
    counters: dict[str, float] = field(default_factory=dict)
    timers: dict[str, float] = field(default_factory=dict)
    spans: list[dict] = field(default_factory=list)


@dataclass(frozen=True)
class SiteTimeline:
    """One site's load within one shelf (synchronized phase).

    Attributes
    ----------
    site_index:
        Site number ``0..P-1``.
    clones:
        Number of operator clones resident during the shelf.
    load:
        The componentwise load vector ``work(s_j)`` of the site.
    t_seq_max:
        The slowest resident clone's stand-alone time.
    t_site:
        The Equation (2) site execution time.
    """

    site_index: int
    clones: int
    load: tuple[float, ...]
    t_seq_max: float
    t_site: float


@dataclass(frozen=True)
class ShelfTimeline:
    """Per-site timelines of one shelf plus its makespan."""

    label: str
    makespan: float
    sites: tuple[SiteTimeline, ...]

    @property
    def bins_opened(self) -> int:
        """Sites that host at least one clone during this shelf."""
        return sum(1 for s in self.sites if s.clones > 0)


def _timelines_of(phased: PhasedSchedule) -> tuple[ShelfTimeline, ...]:
    shelves = []
    for schedule, label in zip(phased.phases, phased.labels):
        sites = tuple(
            SiteTimeline(
                site_index=site.index,
                clones=len(site),
                load=site.load_vector().components,
                t_seq_max=site.max_t_seq(),
                t_site=site.t_site(),
            )
            for site in schedule.sites
        )
        shelves.append(
            ShelfTimeline(label=label, makespan=schedule.makespan(), sites=sites)
        )
    return tuple(shelves)


@dataclass(kw_only=True)
class ScheduleResult:
    """Outcome of one scheduling-algorithm run, with provenance.

    Attributes
    ----------
    algorithm:
        Registry name of the algorithm that produced this result.
    phased_schedule:
        The full clone-to-site mapping per synchronized phase, or ``None``
        for bound-only algorithms (OPTBOUND).
    homes:
        Final home of every operator (derived from the schedule when not
        supplied explicitly).
    degrees:
        The granularity decisions: chosen degree of partitioned
        parallelism per operator.
    phase_labels:
        Task ids scheduled in each phase.
    response_time:
        Total response time (sum of per-phase Equation (3) makespans;
        filled from ``phased_schedule`` when not supplied).
    instrumentation:
        Wall-clock and counter instrumentation of the run.
    """

    algorithm: str = ""
    phased_schedule: PhasedSchedule | None = None
    homes: dict[str, OperatorHome] = field(default_factory=dict)
    degrees: dict[str, int] = field(default_factory=dict)
    phase_labels: list[str] = field(default_factory=list)
    response_time: float | None = None
    instrumentation: Instrumentation = field(default_factory=Instrumentation)

    def __post_init__(self) -> None:
        phased = self.phased_schedule
        if self.response_time is None:
            if phased is None:
                raise SchedulingError(
                    "a ScheduleResult needs a phased schedule or an explicit "
                    "response time"
                )
            self.response_time = phased.response_time()
        if phased is not None:
            if not self.homes:
                self.homes = {
                    op: schedule.home(op)
                    for schedule in phased.phases
                    for op in schedule.operators
                }
            if not self.phase_labels:
                self.phase_labels = list(phased.labels)
            inst = self.instrumentation
            if not inst.operators_scheduled:
                inst.operators_scheduled = sum(
                    len(s.operators) for s in phased.phases
                )
            if not inst.clones_created:
                inst.clones_created = sum(s.clone_count() for s in phased.phases)
            if not inst.bins_opened:
                inst.bins_opened = sum(
                    1
                    for schedule in phased.phases
                    for site in schedule.sites
                    if not site.is_empty()
                )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_value(
        cls,
        algorithm: str,
        response_time: float,
        *,
        wall_clock_seconds: float = 0.0,
    ) -> "ScheduleResult":
        """Wrap a bound-only response time (no schedule attached)."""
        return cls(
            algorithm=algorithm,
            response_time=response_time,
            instrumentation=Instrumentation(wall_clock_seconds=wall_clock_seconds),
        )

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def makespan(self) -> float:
        """Alias of :attr:`response_time` (sum of shelf makespans)."""
        assert self.response_time is not None  # filled by __post_init__
        return self.response_time

    @property
    def num_phases(self) -> int:
        """Number of synchronized phases (0 for bound-only results)."""
        if self.phased_schedule is None:
            return 0
        return self.phased_schedule.num_phases

    @property
    def is_bound_only(self) -> bool:
        """True when the algorithm produced a bound, not a schedule."""
        return self.phased_schedule is None

    @property
    def timelines(self) -> tuple[ShelfTimeline, ...]:
        """Per-shelf, per-site load timelines (empty for bound-only)."""
        if self.phased_schedule is None:
            return ()
        return _timelines_of(self.phased_schedule)

    def phase_makespans(self) -> list[float]:
        """Per-shelf makespans in execution order."""
        if self.phased_schedule is None:
            return []
        return self.phased_schedule.phase_makespans()

    def total_work(self) -> WorkVector | None:
        """System-wide componentwise work totals over all shelves.

        ``None`` for bound-only results (no placed clones to sum).
        """
        if self.phased_schedule is None or not self.phased_schedule.phases:
            return None
        return self.phased_schedule.total_work()

    def validate(self) -> None:
        """Validate the structural constraints of every phase."""
        if self.phased_schedule is not None:
            self.phased_schedule.validate()

    def __repr__(self) -> str:
        kind = "bound" if self.is_bound_only else f"{self.num_phases} phases"
        return (
            f"ScheduleResult({self.algorithm or '?'}, {kind}, "
            f"response_time={self.makespan:.6g})"
        )
