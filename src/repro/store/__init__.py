"""Content-addressed artifact store: cached, resumable experiments.

See :mod:`repro.store.artifact_store` for the model.  The experiment
layer (:mod:`repro.experiments`) consults a store — explicitly passed or
named by the ``REPRO_CACHE_DIR`` environment variable — for annotated
workload cohorts, schedule results, and sweep-point values; a killed
sweep restarted with the same cache directory recomputes only the
missing points.
"""

from repro.store.artifact_store import (
    ENV_CACHE_DIR,
    KIND_ANNOTATION,
    KIND_PLAN,
    KIND_POINT,
    KIND_RESULT,
    NO_STORE,
    STORE_SCHEMA,
    ArtifactStore,
    StoreStats,
    canonical_json,
    content_key,
    default_store,
    point_key_payload,
    resolve_store,
)

__all__ = [
    "STORE_SCHEMA",
    "ENV_CACHE_DIR",
    "KIND_ANNOTATION",
    "KIND_RESULT",
    "KIND_POINT",
    "KIND_PLAN",
    "NO_STORE",
    "ArtifactStore",
    "StoreStats",
    "canonical_json",
    "content_key",
    "default_store",
    "resolve_store",
    "point_key_payload",
]
