"""Content-addressed on-disk artifact store for experiment artifacts.

Every cacheable artifact of the experiment layer — annotated workload
cohorts, :class:`~repro.engine.result.ScheduleResult` payloads, sweep
point values — is a *pure function* of its coordinates: workload
``(n_joins, n_queries, seed)``, the Table 2
:class:`~repro.cost.params.SystemParameters`, the algorithm name and the
``(p, f, epsilon)`` sweep coordinates.  The store addresses artifacts by
the SHA-256 of the canonical JSON of those coordinates (plus a schema
version), so

* equal coordinates always map to the same on-disk entry, in any
  process, on any machine, across interpreter runs;
* changing *any* coordinate — or bumping :data:`STORE_SCHEMA` when the
  meaning of an artifact changes — changes the key, so stale entries are
  never observed, only orphaned.

Robustness contract: the store is a pure cache.  A missing, truncated,
corrupt, or foreign-schema entry behaves exactly like a miss (the value
is recomputed and rewritten); writes are atomic (``tmp`` + ``rename``)
so a killed sweep never leaves a half-written entry that would poison a
resumed run.  Deleting the cache directory is always safe.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import tempfile
from collections.abc import Mapping, Sequence
from pathlib import Path
from typing import Any, Callable

from repro.exceptions import ConfigurationError

__all__ = [
    "STORE_SCHEMA",
    "ENV_CACHE_DIR",
    "KIND_ANNOTATION",
    "KIND_RESULT",
    "KIND_POINT",
    "KIND_PLAN",
    "NO_STORE",
    "StoreStats",
    "ArtifactStore",
    "canonical_json",
    "content_key",
    "default_store",
    "resolve_store",
    "point_key_payload",
]

#: Version tag baked into every content key and every stored envelope.
#: Bump it whenever the *meaning* of an artifact changes (cost model,
#: workload generator, result serialization, ...): old entries become
#: unreachable orphans instead of wrong answers.
#: ``/2``: schedule payloads gained optional site capacities and result
#: keys may carry a cluster spec — pre-capacity entries are orphaned.
STORE_SCHEMA = "repro-store/2"

#: Environment variable naming the default cache directory.  Set by the
#: CLI's ``--cache-dir`` so forked sweep workers inherit the store.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"

#: Artifact kinds (the first path component under the store root).
KIND_ANNOTATION = "annotation"
KIND_RESULT = "result"
KIND_POINT = "point"
KIND_PLAN = "plan"


class _NoStore:
    """Sentinel: caching explicitly disabled (beats the env default)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NO_STORE"


#: Pass as a ``store`` argument to force caching off even when
#: :data:`ENV_CACHE_DIR` is set (the CLI's ``--no-cache``).
NO_STORE = _NoStore()


def _jsonable(value: Any) -> Any:
    """Recursively convert ``value`` into canonical-JSON-ready data.

    Dataclasses become field dicts, mappings become dicts with string
    keys, sequences become lists, enums their values.  Anything else
    that JSON cannot represent raises
    :class:`~repro.exceptions.ConfigurationError` — content keys must
    never silently depend on ``repr`` strings or object identity.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, enum.Enum):
        return _jsonable(value.value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, Mapping):
        out = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise ConfigurationError(
                    f"content-key mapping keys must be strings, got {key!r}"
                )
            out[key] = _jsonable(item)
        return out
    if isinstance(value, (list, tuple)) or (
        isinstance(value, Sequence) and not isinstance(value, (bytes, bytearray))
    ):
        return [_jsonable(item) for item in value]
    raise ConfigurationError(
        f"value of type {type(value).__name__} cannot appear in a content key"
    )


def canonical_json(payload: Any) -> str:
    """The one canonical JSON text of ``payload``.

    Sorted keys, no whitespace, NaN/Infinity rejected: two payloads are
    equal exactly when their canonical JSON bytes are equal, which is
    what makes SHA-256 over this text a sound content address.
    """
    try:
        return json.dumps(
            _jsonable(payload), sort_keys=True, separators=(",", ":"), allow_nan=False
        )
    except ValueError as exc:  # non-finite floats
        raise ConfigurationError(f"payload is not canonical-JSON-safe: {exc}") from None


def content_key(kind: str, payload: Any) -> str:
    """SHA-256 content key of ``payload`` under ``kind``.

    The digest covers :data:`STORE_SCHEMA` and ``kind`` alongside the
    payload, so a schema bump or a kind collision can never alias two
    different artifacts onto one entry.
    """
    envelope = {"schema": STORE_SCHEMA, "kind": kind, "payload": payload}
    return hashlib.sha256(canonical_json(envelope).encode("utf-8")).hexdigest()


@dataclasses.dataclass
class StoreStats:
    """Hit/miss/write accounting of one :class:`ArtifactStore`."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt: int = 0

    def snapshot(self) -> dict[str, int]:
        """Plain-dict view (JSON-friendly)."""
        return dataclasses.asdict(self)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from disk (0.0 when none)."""
        return self.hits / self.lookups if self.lookups else 0.0


class ArtifactStore:
    """Content-addressed JSON artifact store rooted at one directory.

    Layout: ``root/<kind>/<first two hex chars>/<sha256>.json``; each
    file is a canonical-JSON envelope carrying the schema tag, kind, key
    and value, so an entry is self-describing and verifiable.

    The store never raises on a bad entry — :meth:`get` answers ``None``
    for missing *and* corrupt entries alike (counted separately in
    :attr:`stats`), and :meth:`put` overwrites atomically, so concurrent
    writers of the same key are harmless (they write identical bytes).
    """

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self.root = Path(root)
        self.stats = StoreStats()

    def key(self, kind: str, payload: Any) -> str:
        """Content key of ``payload`` under ``kind`` (see :func:`content_key`)."""
        return content_key(kind, payload)

    def path_for(self, kind: str, key: str) -> Path:
        """On-disk location of entry ``key`` of ``kind``."""
        return self.root / kind / key[:2] / f"{key}.json"

    def get(self, kind: str, key: str) -> Any | None:
        """The stored value, or ``None`` on miss/corruption."""
        path = self.path_for(kind, key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            self.stats.misses += 1
            return None
        try:
            envelope = json.loads(text)
            if (
                not isinstance(envelope, dict)
                or envelope.get("schema") != STORE_SCHEMA
                or envelope.get("kind") != kind
                or envelope.get("key") != key
            ):
                raise ValueError("envelope mismatch")
            value = envelope["value"]
        except (ValueError, KeyError):
            self.stats.corrupt += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return value

    def put(self, kind: str, key: str, value: Any) -> Path:
        """Atomically persist ``value`` under ``key``; returns the path.

        The temp file lives in the destination directory so the final
        ``os.replace`` is an atomic same-filesystem rename — a reader (or
        a killed writer) can only ever observe a complete entry.
        """
        path = self.path_for(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        envelope = {"schema": STORE_SCHEMA, "kind": kind, "key": key, "value": value}
        text = canonical_json(envelope)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.writes += 1
        return path

    def get_or_compute(
        self, kind: str, payload: Any, compute: Callable[[], Any]
    ) -> Any:
        """Look ``payload`` up; on miss, compute, persist, and return."""
        key = self.key(kind, payload)
        value = self.get(kind, key)
        if value is not None:
            return value
        value = compute()
        self.put(kind, key, value)
        return value

    def __repr__(self) -> str:
        return f"ArtifactStore({str(self.root)!r})"


def default_store() -> ArtifactStore | None:
    """The store named by :data:`ENV_CACHE_DIR`, or ``None``."""
    root = os.environ.get(ENV_CACHE_DIR)
    return ArtifactStore(root) if root else None


def resolve_store(
    store: ArtifactStore | _NoStore | None,
) -> ArtifactStore | None:
    """Resolve a ``store=`` argument to an actual store (or ``None``).

    ``None`` (the argument default everywhere) falls back to the
    environment default, so a sweep worker process — which inherits the
    parent's environment but not its objects — finds the same cache
    directory; :data:`NO_STORE` disables caching unconditionally.
    """
    if isinstance(store, _NoStore):
        return None
    if store is not None:
        return store
    return default_store()


def point_key_payload(point: Any, evaluator: Callable[..., Any]) -> dict[str, Any] | None:
    """Content-key payload of one sweep point, or ``None`` if uncacheable.

    A point value is determined by the point's coordinates (a frozen
    dataclass — :class:`~repro.experiments.parallel.SweepPoint`,
    :class:`~repro.experiments.robustness.RobustnessPoint`, or any
    user-defined equivalent) *and* by which evaluator interprets them,
    so both go into the key.  Non-dataclass points and coordinates that
    cannot be canonicalized opt out of caching (``None``) rather than
    risking a collision.
    """
    if not dataclasses.is_dataclass(point) or isinstance(point, type):
        return None
    try:
        coords = _jsonable(point)
    except ConfigurationError:
        return None
    return {
        "point_type": f"{type(point).__module__}.{type(point).__qualname__}",
        "evaluator": f"{evaluator.__module__}.{evaluator.__qualname__}",
        "coords": coords,
    }
