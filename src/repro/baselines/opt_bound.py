"""The OPTBOUND lower bound on the optimal CG_f execution (Section 6.2).

The paper's final experiment compares TREESCHEDULE against a hypothetical
algorithm achieving a lower bound on the optimal response time:

    ``OPTBOUND = max{ l(S) / P,  T(CP) }``

where

* ``S`` is the set of work vectors for *all* operators of the plan,
  assuming zero communication costs — no schedule can finish before the
  most loaded resource class has served its aggregate demand across the
  ``P`` sites; and
* ``T(CP)`` is the total response time of the critical (most
  time-consuming) path in the plan, assuming the maximum allowable degree
  of coarse-grain parallelism for each operator — blocking edges force
  the tasks along any root-to-leaf chain of the task tree to run
  sequentially, and within a task (a pipeline) no operator can finish
  before the slowest one, so the best conceivable chain time is the sum
  over the chain's tasks of each task's fastest operator ceiling.

By assumption A4 (parallel times are non-increasing up to the degree cap)
OPTBOUND is indeed a lower bound on the length of the optimal ``CG_f``
execution [GI96].

Two details make the ceiling in ``T(CP)`` delicate:

* the degree rule must be at least as permissive as the scheduler being
  bounded.  TREESCHEDULE sizes a hash join's build (and hence its rooted
  probe) by the combined build+probe *stage* (see
  :mod:`repro.core.tree_schedule`), so the ceiling here uses the same
  stage rule — a per-operator ceiling would overstate the bound at small
  ``f`` and stop being a lower bound;
* with ``respect_granularity=False`` the ceiling ignores the CG_f
  condition entirely (each operator may use any degree up to ``P``),
  yielding a *universal* lower bound valid for schedulers that do not
  respect granularity, such as the SYNCHRONOUS baseline.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

from repro.exceptions import SchedulingError
from repro.core.cloning import (
    DEFAULT_COORDINATOR_POLICY,
    CoordinatorPolicy,
    OperatorSpec,
    parallel_time,
    response_optimal_degree,
)
from repro.core.batch import sum_length
from repro.core.granularity import CommunicationModel
from repro.core.resource_model import OverlapModel
from repro.engine.registry import ScheduleRequest, register
from repro.engine.result import ScheduleResult
from repro.plans.generator import GeneratedQuery
from repro.plans.operator_tree import OperatorTree
from repro.plans.physical_ops import OperatorKind, PhysicalOperator
from repro.plans.task_tree import Task, TaskTree

__all__ = ["opt_bound", "critical_path_time", "congestion_bound"]


def congestion_bound(
    op_tree: OperatorTree, p: int, *, total_capacity: float | None = None
) -> float:
    """Return ``l(S) / C`` for the zero-communication work vectors.

    ``S`` holds every operator's processing work vector; its length is the
    aggregate demand on the busiest resource class, which the cluster can
    serve no faster than ``l(S)/C`` where ``C`` is the total capacity.
    ``C`` defaults to ``P`` (homogeneous, bit-identical to the historical
    ``/ p``); pass the sum of site capacities for a heterogeneous
    cluster.
    """
    if p < 1:
        raise SchedulingError(f"number of sites must be >= 1, got {p}")
    specs = [op.require_spec() for op in op_tree.operators]
    if not specs:
        return 0.0
    denom = float(p) if total_capacity is None else float(total_capacity)
    if not denom > 0.0:
        raise SchedulingError(
            f"total capacity must be positive, got {total_capacity!r}"
        )
    # Batch kernel: numpy column-sum for wide plans, exact sequential sum
    # below the cutover (repro.core.batch.NUMPY_CUTOVER).
    return sum_length([spec.work for spec in specs]) / denom


def _degree_ceiling(
    op: PhysicalOperator,
    op_tree: OperatorTree,
    p: int,
    f: float,
    comm: CommunicationModel,
    overlap: OverlapModel,
    policy: CoordinatorPolicy,
    respect_granularity: bool,
) -> int:
    """Maximum *allowable* degree for one operator (no A4 capping here:
    the optimum may pick any degree up to this ceiling, and the caller
    takes the fastest choice within it)."""
    if not respect_granularity:
        return p
    spec = op.require_spec()
    if op.kind in (OperatorKind.BUILD, OperatorKind.PROBE):
        # Same join-stage rule as TREESCHEDULE: build and probe share the
        # hash table's home, sized by their combined footprint.
        assert op.join_id is not None
        build_spec = op_tree.build_of(op.join_id).require_spec()
        probe_spec = op_tree.probe_of(op.join_id).require_spec()
        stage = OperatorSpec(
            name=f"stage({op.join_id})",
            work=build_spec.work + probe_spec.work,
            data_volume=build_spec.data_volume + probe_spec.data_volume,
        )
        n_max = comm.n_max(f, stage.processing_area, stage.data_volume)
    else:
        n_max = comm.n_max(f, spec.processing_area, spec.data_volume)
    return max(1, min(n_max, p))


def _task_floor(
    task: Task,
    op_tree: OperatorTree,
    p: int,
    f: float,
    comm: CommunicationModel,
    overlap: OverlapModel,
    policy: CoordinatorPolicy,
    respect_granularity: bool,
) -> float:
    """Fastest conceivable completion of one task: its slowest operator at
    the maximum allowable degree."""
    floor = 0.0
    for op in task.operators:
        spec = op.require_spec()
        cap = _degree_ceiling(
            op, op_tree, p, f, comm, overlap, policy, respect_granularity
        )
        # The optimum may run the operator at ANY degree up to the
        # ceiling; its fastest choice is the response-time-optimal degree
        # within that range (the argmin of T_par over 1..cap).
        n_best = response_optimal_degree(spec, cap, comm, overlap, policy)
        floor = max(floor, parallel_time(spec, n_best, comm, overlap, policy))
    return floor


def critical_path_time(
    task_tree: TaskTree,
    op_tree: OperatorTree,
    *,
    p: int,
    f: float,
    comm: CommunicationModel,
    overlap: OverlapModel,
    policy: CoordinatorPolicy = DEFAULT_COORDINATOR_POLICY,
    respect_granularity: bool = True,
) -> float:
    """Return ``T(CP)``: the most time-consuming root-to-leaf task chain.

    Computed bottom-up over the task tree:
    ``T(task) = floor(task) + max(T(child))``, where ``floor(task)`` is
    the task's fastest-possible pipeline time under the degree ceilings
    described in the module docstring.
    """
    memo: dict[Task, float] = {}

    def chain_time(task: Task) -> float:
        if task in memo:
            return memo[task]
        children = task_tree.children(task)
        below = max((chain_time(child) for child in children), default=0.0)
        memo[task] = (
            _task_floor(
                task, op_tree, p, f, comm, overlap, policy, respect_granularity
            )
            + below
        )
        return memo[task]

    return chain_time(task_tree.root)


def opt_bound(
    op_tree: OperatorTree,
    task_tree: TaskTree,
    *,
    p: int,
    f: float,
    comm: CommunicationModel,
    overlap: OverlapModel,
    policy: CoordinatorPolicy = DEFAULT_COORDINATOR_POLICY,
    respect_granularity: bool = True,
    capacities: "Sequence[float] | None" = None,
) -> float:
    """Return ``OPTBOUND = max{ l(S)/C, T(CP) }`` for an annotated plan.

    With ``respect_granularity=True`` (default) this bounds the optimal
    ``CG_f`` execution under the join-stage degree rule — the space
    TREESCHEDULE searches.  With ``False`` it bounds *any* execution with
    per-operator degrees up to ``P`` (valid for SYNCHRONOUS too).

    On a heterogeneous cluster (``capacities``) the congestion side
    divides by the total capacity ``C``, and the critical-path side is
    relaxed by the fastest site class: a chain cannot finish faster than
    its unit-site time divided by ``max_j c_j``.  Both relaxations keep
    OPTBOUND a valid lower bound; with ``capacities=None`` the value is
    bit-identical to the homogeneous bound.
    """
    cp = critical_path_time(
        task_tree,
        op_tree,
        p=p,
        f=f,
        comm=comm,
        overlap=overlap,
        policy=policy,
        respect_granularity=respect_granularity,
    )
    if capacities is None:
        return max(congestion_bound(op_tree, p), cp)
    return max(
        congestion_bound(op_tree, p, total_capacity=float(sum(capacities))),
        cp / max(capacities),
    )


@register(
    "optbound",
    description="Section 6.2 lower bound on the optimal CG_f execution: "
    "max of congestion bound and critical-path time",
    kind="bound",
)
def _optbound(query: GeneratedQuery, request: ScheduleRequest) -> ScheduleResult:
    assert request.policy is not None
    started = time.perf_counter()
    value = opt_bound(
        query.operator_tree,
        query.task_tree,
        p=request.p,
        f=request.f,
        comm=request.comm,
        overlap=request.overlap,
        policy=request.policy,
        capacities=request.capacities,
    )
    return ScheduleResult.from_value(
        "optbound", value, wall_clock_seconds=time.perf_counter() - started
    )
