"""A scalar-work list scheduler (1-D ablation baseline, Section 1's critique).

Previous approaches "hide the multi-dimensionality of query operators
under a scalar cost metric like 'work' or 'time'".  This baseline makes
that critique testable in isolation from the SYNCHRONOUS policy details:
it runs the *same* pipeline as OPERATORSCHEDULE — same degree selection,
same clone vectors, same Equation (3) evaluation — but sorts and packs
clones by their scalar total work onto the site with the least scalar
load, blind to which resources the load sits on.

Any gap between this scheduler and OPERATORSCHEDULE on the same input is
therefore attributable purely to multi-dimensional (per-resource) load
balancing.  :func:`one_dimensional_tree_schedule` lifts the packer to
full bushy plans by plugging it into the engine's synchronized-phase
driver, so the ablation is available at the workload level too
(registered as ``"onedim"``).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.exceptions import InfeasibleScheduleError, SchedulingError
from repro.core.cloning import (
    DEFAULT_COORDINATOR_POLICY,
    CoordinatorPolicy,
    OperatorSpec,
    clone_work_vectors,
    coarse_grain_degree,
)
from repro.core.granularity import CommunicationModel
from repro.core.operator_schedule import OperatorScheduleResult, RootedPlacement
from repro.core.resource_model import OverlapModel
from repro.core.schedule import Schedule
from repro.core.site import PlacedClone
from repro.engine.driver import schedule_phases
from repro.engine.metrics import MetricsRecorder
from repro.engine.registry import ScheduleRequest, register
from repro.engine.result import ScheduleResult
from repro.plans.generator import GeneratedQuery
from repro.plans.operator_tree import OperatorTree
from repro.plans.task_tree import TaskTree

__all__ = ["scalar_list_schedule", "one_dimensional_tree_schedule"]


def scalar_list_schedule(
    floating: Sequence[OperatorSpec],
    rooted: Sequence[RootedPlacement] = (),
    *,
    p: int,
    comm: CommunicationModel,
    overlap: OverlapModel,
    f: float = 0.7,
    degrees: Mapping[str, int] | None = None,
    policy: CoordinatorPolicy = DEFAULT_COORDINATOR_POLICY,
    capacities: Sequence[float] | None = None,
) -> OperatorScheduleResult:
    """Schedule concurrent operators by scalar-work list scheduling.

    Identical inputs and outputs to
    :func:`repro.core.operator_schedule.operator_schedule` — rooted
    operators are placed first at their fixed homes — but floating clones
    are ordered by non-increasing *total* work and each is packed onto
    the allowable site with minimal total scalar load — the classical
    LPT/Graham rule applied to the scalar metric.  On a heterogeneous
    cluster (``capacities``) the rule compares capacity-normalized
    scalar loads; division by 1.0 is bit-exact, so the homogeneous case
    is byte-identical to the historical packer.
    """
    if not floating and not rooted:
        raise SchedulingError("nothing to schedule")
    specs = [*floating, *(r.spec for r in rooted)]
    d = specs[0].d
    for spec in specs:
        if spec.d != d:
            raise SchedulingError(f"operator {spec.name!r} has d={spec.d}; expected {d}")
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        raise SchedulingError("duplicate operator names")

    schedule = Schedule(p, d, capacities)
    chosen: dict[str, int] = {}
    scalar_load = [0.0] * p
    caps = [site.capacity for site in schedule.sites]

    # Rooted operators first: fixed homes, scalar load still accrues so
    # the packer routes floating clones away from them.
    for placement in rooted:
        n = placement.degree
        if n > p:
            raise InfeasibleScheduleError(
                f"rooted operator {placement.spec.name!r} has degree {n} > P={p}"
            )
        clones = clone_work_vectors(placement.spec, n, comm, policy)
        for k, (site_index, work) in enumerate(zip(placement.site_indices, clones)):
            if not 0 <= site_index < p:
                raise InfeasibleScheduleError(
                    f"rooted operator {placement.spec.name!r}: site {site_index} "
                    f"outside 0..{p - 1}"
                )
            schedule.place(
                site_index,
                PlacedClone(
                    operator=placement.spec.name,
                    clone_index=k,
                    work=work,
                    t_seq=overlap.t_seq(work),
                ),
            )
            scalar_load[site_index] += work.total()
        chosen[placement.spec.name] = n

    pending = []
    for spec in floating:
        if degrees is not None and spec.name in degrees:
            n = degrees[spec.name]
            if not 1 <= n <= p:
                raise InfeasibleScheduleError(
                    f"operator {spec.name!r}: degree {n} outside 1..{p}"
                )
        else:
            n = coarse_grain_degree(spec, p, f, comm, overlap, policy)
        chosen[spec.name] = n
        for k, work in enumerate(clone_work_vectors(spec, n, comm, policy)):
            pending.append((work.total(), spec.name, k, work))
    pending.sort(key=lambda item: (-item[0], item[1], item[2]))

    for total, op_name, k, work in pending:
        best = None
        best_load = None
        for site in schedule.sites:
            if site.hosts_operator(op_name):
                continue
            norm_load = scalar_load[site.index] / caps[site.index]
            if best is None or norm_load < best_load:
                best = site
                best_load = norm_load
        if best is None:
            raise InfeasibleScheduleError(
                f"no allowable site left for clone {k} of {op_name!r}"
            )
        schedule.place(
            best.index,
            PlacedClone(
                operator=op_name, clone_index=k, work=work, t_seq=overlap.t_seq(work)
            ),
        )
        scalar_load[best.index] += total

    return OperatorScheduleResult(
        schedule=schedule, degrees=chosen, makespan=schedule.makespan()
    )


def one_dimensional_tree_schedule(
    op_tree: OperatorTree,
    task_tree: TaskTree,
    *,
    p: int,
    comm: CommunicationModel,
    overlap: OverlapModel,
    f: float = 0.7,
    shelf: str = "min",
    policy: CoordinatorPolicy = DEFAULT_COORDINATOR_POLICY,
    metrics: MetricsRecorder | None = None,
    capacities: Sequence[float] | None = None,
) -> ScheduleResult:
    """TREESCHEDULE's phase walk with the scalar packer (1-D ablation).

    Same inputs as :func:`repro.core.tree_schedule.tree_schedule`; only
    the per-shelf packing rule differs, so any response-time gap at the
    plan level is attributable to multi-dimensional load balancing.
    """

    def pack(floating, rooted, forced, n_sites):
        return scalar_list_schedule(
            floating,
            rooted,
            p=n_sites,
            comm=comm,
            overlap=overlap,
            f=f,
            degrees=forced,
            policy=policy,
            capacities=capacities,
        )

    return schedule_phases(
        op_tree,
        task_tree,
        p=p,
        comm=comm,
        overlap=overlap,
        f=f,
        shelf=shelf,
        policy=policy,
        pack_phase=pack,
        algorithm="onedim",
        metrics=metrics,
    )


@register(
    "onedim",
    description="Scalar-work ablation: TREESCHEDULE's phase walk with "
    "one-dimensional LPT packing instead of the vector rule",
)
def _onedim(query: GeneratedQuery, request: ScheduleRequest) -> ScheduleResult:
    assert request.policy is not None
    return one_dimensional_tree_schedule(
        query.operator_tree,
        query.task_tree,
        p=request.p,
        comm=request.comm,
        overlap=request.overlap,
        f=request.f,
        policy=request.policy,
        metrics=request.metrics,
        capacities=request.capacities,
    )
