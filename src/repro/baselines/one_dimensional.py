"""A scalar-work list scheduler (1-D ablation baseline, Section 1's critique).

Previous approaches "hide the multi-dimensionality of query operators
under a scalar cost metric like 'work' or 'time'".  This baseline makes
that critique testable in isolation from the SYNCHRONOUS policy details:
it runs the *same* pipeline as OPERATORSCHEDULE — same degree selection,
same clone vectors, same Equation (3) evaluation — but sorts and packs
clones by their scalar total work onto the site with the least scalar
load, blind to which resources the load sits on.

Any gap between this scheduler and OPERATORSCHEDULE on the same input is
therefore attributable purely to multi-dimensional (per-resource) load
balancing.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.exceptions import InfeasibleScheduleError, SchedulingError
from repro.core.cloning import (
    DEFAULT_COORDINATOR_POLICY,
    CoordinatorPolicy,
    OperatorSpec,
    clone_work_vectors,
    coarse_grain_degree,
)
from repro.core.granularity import CommunicationModel
from repro.core.operator_schedule import OperatorScheduleResult
from repro.core.resource_model import OverlapModel
from repro.core.schedule import Schedule
from repro.core.site import PlacedClone

__all__ = ["scalar_list_schedule"]


def scalar_list_schedule(
    floating: Sequence[OperatorSpec],
    *,
    p: int,
    comm: CommunicationModel,
    overlap: OverlapModel,
    f: float = 0.7,
    degrees: Mapping[str, int] | None = None,
    policy: CoordinatorPolicy = DEFAULT_COORDINATOR_POLICY,
) -> OperatorScheduleResult:
    """Schedule independent operators by scalar-work list scheduling.

    Identical inputs and outputs to
    :func:`repro.core.operator_schedule.operator_schedule` (floating
    operators only), but clones are ordered by non-increasing *total*
    work and each is packed onto the allowable site with minimal total
    scalar load — the classical LPT/Graham rule applied to the scalar
    metric.
    """
    if not floating:
        raise SchedulingError("nothing to schedule")
    d = floating[0].d
    for spec in floating:
        if spec.d != d:
            raise SchedulingError(f"operator {spec.name!r} has d={spec.d}; expected {d}")
    names = [spec.name for spec in floating]
    if len(set(names)) != len(names):
        raise SchedulingError("duplicate operator names")

    schedule = Schedule(p, d)
    chosen: dict[str, int] = {}
    pending = []
    for spec in floating:
        if degrees is not None and spec.name in degrees:
            n = degrees[spec.name]
            if not 1 <= n <= p:
                raise InfeasibleScheduleError(
                    f"operator {spec.name!r}: degree {n} outside 1..{p}"
                )
        else:
            n = coarse_grain_degree(spec, p, f, comm, overlap, policy)
        chosen[spec.name] = n
        for k, work in enumerate(clone_work_vectors(spec, n, comm, policy)):
            pending.append((work.total(), spec.name, k, work))
    pending.sort(key=lambda item: (-item[0], item[1], item[2]))

    scalar_load = [0.0] * p
    for total, op_name, k, work in pending:
        best = None
        best_load = None
        for site in schedule.sites:
            if site.hosts_operator(op_name):
                continue
            if best is None or scalar_load[site.index] < best_load:
                best = site
                best_load = scalar_load[site.index]
        if best is None:
            raise InfeasibleScheduleError(
                f"no allowable site left for clone {k} of {op_name!r}"
            )
        schedule.place(
            best.index,
            PlacedClone(
                operator=op_name, clone_index=k, work=work, t_seq=overlap.t_seq(work)
            ),
        )
        scalar_load[best.index] += total

    return OperatorScheduleResult(
        schedule=schedule, degrees=chosen, makespan=schedule.makespan()
    )
