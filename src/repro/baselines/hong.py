"""A static analog of Hong's XPRS pairing scheduler [Hon92].

Section 2 singles out Hong's method as the one prior approach that
exploits resource sharing: XPRS "combines one I/O-bound and one CPU-bound
operator pipeline through independent parallelism to maximize the system
resource utilizations", relying on *dynamic* adjustment of intra-operator
parallelism to sit at the IO-CPU balance point — which, the paper argues,
does not transfer to shared-nothing systems where repartitioning makes
dynamic rebalancing expensive.

This module implements the natural *static* shared-nothing analog as a
third comparator, sitting between SYNCHRONOUS (no sharing at all) and
TREESCHEDULE (global multi-dimensional sharing):

1. per MinShelf phase, classify each task as I/O-bound or CPU-bound by
   its aggregate work vector (disk vs. CPU component);
2. greedily pair the largest I/O-bound task with the largest CPU-bound
   task (leftover tasks form singletons);
3. partition the sites among pairs by minimax water-filling on scalar
   pair work — pairs run *independently* on disjoint blocks;
4. within a pair's block, schedule the pair's operators with the
   multi-dimensional list rule — resource sharing happens only *inside*
   a pair, the XPRS idea.

The gap TREESCHEDULE keeps over this baseline isolates the value of
*global* (all-operators, all-sites) sharing over pairwise sharing.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.exceptions import SchedulingError
from repro.core.cloning import (
    DEFAULT_COORDINATOR_POLICY,
    CoordinatorPolicy,
    OperatorSpec,
    clone_work_vectors,
    coarse_grain_degree,
)
from repro.core.granularity import CommunicationModel
from repro.core.resource_model import OverlapModel
from repro.core.operator_schedule import operator_schedule
from repro.core.schedule import OperatorHome, PhasedSchedule, Schedule
from repro.core.site import PlacedClone
from repro.core.work_vector import Resource, vector_sum
from repro.engine.registry import ScheduleRequest, register
from repro.engine.result import Instrumentation, ScheduleResult
from repro.plans.generator import GeneratedQuery
from repro.plans.operator_tree import OperatorTree
from repro.plans.phases import min_shelf_phases
from repro.plans.physical_ops import OperatorKind, anchor_operator_name
from repro.plans.task_tree import Task, TaskTree
from repro.baselines.minimax import minimax_allocation

__all__ = ["HongResult", "hong_schedule"]


@dataclass(kw_only=True, repr=False)
class HongResult(ScheduleResult):
    """Outcome of the XPRS-style pairing scheduler.

    Extends the engine-wide :class:`~repro.engine.result.ScheduleResult`
    with the pairing provenance.

    Attributes
    ----------
    pairs:
        Per phase, the task-id groups that shared a block.
    """

    pairs: list[list[tuple[str, ...]]] = field(default_factory=list)


def _task_floating(task: Task) -> list:
    return [op for op in task.operators if anchor_operator_name(op) is None]


def _pair_tasks(tasks_with_work: list[tuple[Task, float, bool]]) -> list[list[Task]]:
    """Greedy complementary pairing: largest IO-bound with largest CPU-bound."""
    io_bound = sorted(
        (t for t in tasks_with_work if t[2]), key=lambda t: -t[1]
    )
    cpu_bound = sorted(
        (t for t in tasks_with_work if not t[2]), key=lambda t: -t[1]
    )
    groups: list[list[Task]] = []
    for io_entry, cpu_entry in zip(io_bound, cpu_bound):
        groups.append([io_entry[0], cpu_entry[0]])
    longer = io_bound if len(io_bound) > len(cpu_bound) else cpu_bound
    for entry in longer[min(len(io_bound), len(cpu_bound)) :]:
        groups.append([entry[0]])
    return groups


def hong_schedule(
    op_tree: OperatorTree,
    task_tree: TaskTree,
    *,
    p: int,
    comm: CommunicationModel,
    overlap: OverlapModel,
    f: float = 0.7,
    policy: CoordinatorPolicy = DEFAULT_COORDINATOR_POLICY,
    capacities: Sequence[float] | None = None,
) -> HongResult:
    """Schedule a bushy plan with pairwise (XPRS-style) resource sharing.

    Inputs mirror :func:`repro.core.tree_schedule.tree_schedule`.  On a
    heterogeneous cluster (``capacities``) the pairing and block
    allocation stay capacity-blind — Hong's 1992 policy assumed identical
    sites, and we preserve that as the baseline's behaviour — but the
    reported makespans account for site speeds.
    """
    if not op_tree.operators:
        raise SchedulingError("cannot schedule an empty operator tree")
    started = time.perf_counter()
    d = op_tree.operators[0].require_spec().d
    phases = min_shelf_phases(task_tree)
    phased = PhasedSchedule()
    homes: dict[str, OperatorHome] = {}
    degrees: dict[str, int] = {}
    all_pairs: list[list[tuple[str, ...]]] = []

    for phase_tasks in phases:
        schedule = Schedule(p, d, capacities)
        # Rooted operators first (probes at builds, rescans at stores).
        for task in phase_tasks:
            for op in task.operators:
                anchor = anchor_operator_name(op)
                if anchor is None:
                    continue
                spec = op.require_spec()
                try:
                    home = homes[anchor]
                except KeyError:
                    raise SchedulingError(
                        f"{op.name!r} scheduled before its anchor {anchor!r}"
                    ) from None
                clones = clone_work_vectors(spec, home.degree, comm, policy)
                for k, (site_index, work) in enumerate(
                    zip(home.site_indices, clones)
                ):
                    schedule.place(
                        site_index,
                        PlacedClone(
                            operator=spec.name,
                            clone_index=k,
                            work=work,
                            t_seq=overlap.t_seq(work),
                        ),
                    )
                degrees[spec.name] = home.degree

        # Classify and pair the tasks that still have floating work.
        tasks_with_work = []
        for task in phase_tasks:
            floating = _task_floating(task)
            if not floating:
                continue
            aggregate = vector_sum(
                [op.require_spec().work for op in floating], d=d
            )
            # Block sizing must count the probe work each build will
            # anchor in a later phase (the probes run at the build's
            # home), exactly as the SYNCHRONOUS baseline does.
            scalar = aggregate.total() + sum(
                comm.transfer_cost(op.require_spec().data_volume)
                for op in floating
            )
            for op in floating:
                if op.kind is OperatorKind.BUILD:
                    probe_spec = op_tree.probe_of(op.join_id).require_spec()
                    scalar += probe_spec.processing_area + comm.transfer_cost(
                        probe_spec.data_volume
                    )
            io_heavy = aggregate[Resource.DISK] >= aggregate[Resource.CPU]
            tasks_with_work.append((task, scalar, io_heavy))
        if not tasks_with_work:
            label = ",".join(task.task_id for task in phase_tasks)
            phased.append(schedule, label)
            homes.update(schedule.homes())
            all_pairs.append([])
            continue

        groups = _pair_tasks(tasks_with_work)
        scalar_by_task = {id(t): s for t, s, _ in tasks_with_work}
        group_works = [
            sum(scalar_by_task[id(t)] for t in group) for group in groups
        ]
        site_pool = list(range(p))
        if len(groups) <= p:
            alloc = minimax_allocation(group_works, p)
        else:
            # More pairs than sites: collapse to one block per site by
            # round-robin (rare; tiny systems only).
            alloc = [1] * len(groups)
        blocks: list[list[int]] = []
        cursor = 0
        for n in alloc:
            blocks.append(
                [site_pool[(cursor + i) % p] for i in range(n)]
            )
            cursor += n

        all_pairs.append([tuple(t.task_id for t in group) for group in groups])

        # Within each pair's block: multi-dimensional list scheduling of
        # the pair's floating operators (sharing inside the pair only).
        for group, block in zip(groups, blocks):
            specs: list[OperatorSpec] = []
            forced: dict[str, int] = {}
            for task in group:
                for op in _task_floating(task):
                    spec = op.require_spec()
                    specs.append(spec)
                    if op.kind is OperatorKind.BUILD:
                        probe_spec = op_tree.probe_of(op.join_id).require_spec()
                        stage = OperatorSpec(
                            name=f"stage({op.join_id})",
                            work=spec.work + probe_spec.work,
                            data_volume=spec.data_volume + probe_spec.data_volume,
                        )
                        forced[spec.name] = coarse_grain_degree(
                            stage, len(block), f, comm, overlap, policy
                        )
            local = operator_schedule(
                specs,
                (),
                p=len(block),
                comm=comm,
                overlap=overlap,
                f=f,
                degrees=forced,
                policy=policy,
            )
            # Re-map the block-local placement onto the global sites.
            for site in local.schedule.sites:
                for clone in site.clones:
                    schedule.place(block[site.index], clone)
            degrees.update(local.degrees)

        label = ",".join(task.task_id for task in phase_tasks)
        phased.append(schedule, label)
        homes.update(schedule.homes())

    return HongResult(
        algorithm="hong",
        phased_schedule=phased,
        homes=homes,
        degrees=degrees,
        pairs=all_pairs,
        instrumentation=Instrumentation(
            wall_clock_seconds=time.perf_counter() - started
        ),
    )


@register(
    "hong",
    description="Static XPRS-style analog [Hon92]: pair IO-bound with "
    "CPU-bound tasks, share resources inside a pair only",
)
def _hong(query: GeneratedQuery, request: ScheduleRequest) -> ScheduleResult:
    assert request.policy is not None
    return hong_schedule(
        query.operator_tree,
        query.task_tree,
        p=request.p,
        comm=request.comm,
        overlap=request.overlap,
        f=request.f,
        policy=request.policy,
        capacities=request.capacities,
    )
