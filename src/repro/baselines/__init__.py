"""Comparators: the SYNCHRONOUS 1-D adversary, OPTBOUND, scalar baselines.

Everything the Section 6 evaluation compares TREESCHEDULE against:

* :func:`synchronous_schedule` — synchronous-execution-time allocation
  [HCY94] + two-phase minimax pipeline splitting [LCRY93], extended with
  shared-nothing redistribution costs;
* :func:`opt_bound` — the lower bound on the optimal ``CG_f`` execution;
* :func:`scalar_list_schedule` — a pure scalar-metric list scheduler
  isolating the value of multi-dimensional packing;
* :func:`minimax_allocation` — the exact integer minimax water-filling
  primitive.
"""

from repro.baselines.hong import HongResult, hong_schedule
from repro.baselines.minimax import minimax_allocation, minimax_time
from repro.baselines.one_dimensional import (
    one_dimensional_tree_schedule,
    scalar_list_schedule,
)
from repro.baselines.opt_bound import congestion_bound, critical_path_time, opt_bound
from repro.baselines.synchronous import SynchronousResult, synchronous_schedule

__all__ = [
    "HongResult",
    "hong_schedule",
    "minimax_allocation",
    "minimax_time",
    "scalar_list_schedule",
    "one_dimensional_tree_schedule",
    "opt_bound",
    "congestion_bound",
    "critical_path_time",
    "SynchronousResult",
    "synchronous_schedule",
]
