"""The SYNCHRONOUS one-dimensional adversary (Section 6.1).

The paper compares TREESCHEDULE against a scheduler that combines

* the *synchronous execution time* processor-allocation method of Hsiao,
  Chen and Yu [HCY94] for independent parallelism — the processors
  allotted to concurrent subtrees are partitioned proportionally to their
  (scalar) work so the subtrees complete at approximately the same time —
  with
* the *two-phase minimax* technique of Lo et al. [LCRY93] for optimally
  distributing processors across the stages of a hash-join pipeline,

"appropriately extended to account for the data redistribution costs in a
shared-nothing environment".  The defining characteristic is its
**one-dimensional** view: each operator is a scalar amount of work, sites
are allocated in *disjoint* groups (no resource sharing between concurrent
operators), and per-stage times are ``work / processors``.

Concretely, per MinShelf phase:

1. rooted operators (probes) are placed at their builds' homes;
2. the phase's sites are partitioned among tasks by integer minimax
   water-filling on scalar task work (processing area plus ``beta * D``
   redistribution time) — the integer realization of "complete at
   approximately the same time" (if a phase has more tasks than sites,
   tasks are LPT-packed onto single-site blocks);
3. within each task, its block is partitioned among the floating
   operators by minimax water-filling on scalar operator work, capped at
   each operator's response-time-optimal degree (the shared-nothing
   extension: startup costs grow with the degree, so uncapped allocation
   would speed the baseline *down*);
4. the resulting placement is evaluated under the *same*
   multi-dimensional Equation (3) model as every other algorithm, which
   is exactly how the paper compares schedule response times.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

from repro.exceptions import SchedulingError
from repro.core.cloning import (
    DEFAULT_COORDINATOR_POLICY,
    CoordinatorPolicy,
    OperatorSpec,
    clone_work_vectors,
    response_optimal_degree,
)
from repro.core.granularity import CommunicationModel
from repro.core.resource_model import OverlapModel
from repro.core.schedule import OperatorHome, PhasedSchedule, Schedule
from repro.core.site import PlacedClone
from repro.engine.registry import ScheduleRequest, register
from repro.engine.result import Instrumentation, ScheduleResult
from repro.plans.generator import GeneratedQuery
from repro.plans.operator_tree import OperatorTree
from repro.plans.phases import min_shelf_phases
from repro.plans.physical_ops import OperatorKind, anchor_operator_name
from repro.plans.task_tree import Task, TaskTree
from repro.baselines.minimax import minimax_allocation

__all__ = ["SynchronousResult", "synchronous_schedule"]

#: Historical alias: SYNCHRONOUS now returns the engine-wide result type.
SynchronousResult = ScheduleResult


def _scalar_work(spec: OperatorSpec, comm: CommunicationModel) -> float:
    """The baseline's 1-D work metric: processing area + redistribution."""
    return spec.processing_area + comm.transfer_cost(spec.data_volume)


def _stage_specs(
    op_spec: OperatorSpec,
    op_kind: OperatorKind,
    join_id: str | None,
    op_tree: OperatorTree,
) -> tuple[OperatorSpec, ...]:
    """Specs of one pipeline *stage* in the Lo et al. sense.

    [LCRY93] allocates processors per hash join: the join's build and
    probe run on the same processor group (the probe probes the table
    built there).  A build stage therefore carries its probe's spec too —
    the processors sized for the build are the ones the probe will be
    rooted at in a later phase.
    """
    if op_kind is OperatorKind.BUILD and join_id is not None:
        probe = op_tree.probe_of(join_id)
        return (op_spec, probe.require_spec())
    return (op_spec,)


def _place_operator(
    schedule: Schedule,
    spec: OperatorSpec,
    sites: list[int],
    comm: CommunicationModel,
    overlap: OverlapModel,
    policy: CoordinatorPolicy,
) -> None:
    """Clone ``spec`` onto exactly the given sites (degree = len(sites))."""
    clones = clone_work_vectors(spec, len(sites), comm, policy)
    for k, (site_index, work) in enumerate(zip(sites, clones)):
        schedule.place(
            site_index,
            PlacedClone(
                operator=spec.name,
                clone_index=k,
                work=work,
                t_seq=overlap.t_seq(work),
            ),
        )


def _allocate_blocks(works: list[float], site_pool: list[int]) -> list[list[int]]:
    """Split ``site_pool`` into contiguous blocks by minimax water-filling."""
    alloc = minimax_allocation(works, len(site_pool))
    blocks: list[list[int]] = []
    cursor = 0
    for n in alloc:
        blocks.append(site_pool[cursor : cursor + n])
        cursor += n
    return blocks


def _lpt_pack(works: list[float], site_pool: list[int]) -> list[list[int]]:
    """Assign each item one site, packing by scalar LPT (items > sites)."""
    loads = {j: 0.0 for j in site_pool}
    order = sorted(range(len(works)), key=lambda i: (-works[i], i))
    assignment: list[list[int]] = [[] for _ in works]
    for i in order:
        j = min(loads, key=lambda site: (loads[site], site))
        assignment[i] = [j]
        loads[j] += works[i]
    return assignment


def _schedule_phase_tasks(
    schedule: Schedule,
    phase_tasks: list[Task],
    homes: dict[str, OperatorHome],
    degrees: dict[str, int],
    op_tree: OperatorTree,
    p: int,
    comm: CommunicationModel,
    overlap: OverlapModel,
    policy: CoordinatorPolicy,
) -> None:
    # Rooted operators first: a probe runs where its hash table lives.
    floating_by_task: list[
        tuple[Task, list[tuple[OperatorSpec, tuple[OperatorSpec, ...]]]]
    ] = []
    for task in phase_tasks:
        floating: list[tuple[OperatorSpec, tuple[OperatorSpec, ...]]] = []
        for op in task.operators:
            spec = op.require_spec()
            anchor = anchor_operator_name(op)
            if anchor is not None:
                try:
                    home = homes[anchor]
                except KeyError:
                    raise SchedulingError(
                        f"{op.name!r} scheduled before its anchor {anchor!r}"
                    ) from None
                _place_operator(
                    schedule, spec, list(home.site_indices), comm, overlap, policy
                )
                degrees[spec.name] = home.degree
            else:
                floating.append(
                    (spec, _stage_specs(spec, op.kind, op.join_id, op_tree))
                )
        if floating:
            floating_by_task.append((task, floating))

    if not floating_by_task:
        return

    site_pool = list(range(p))
    task_works = [
        sum(
            _scalar_work(member, comm)
            for _, stage in floating
            for member in stage
        )
        for _, floating in floating_by_task
    ]
    if len(floating_by_task) <= p:
        task_blocks = _allocate_blocks(task_works, site_pool)
    else:
        task_blocks = _lpt_pack(task_works, site_pool)

    for (task, floating), block in zip(floating_by_task, task_blocks):
        op_works = [
            sum(_scalar_work(member, comm) for member in stage)
            for _, stage in floating
        ]
        specs = [spec for spec, _ in floating]
        if len(floating) <= len(block):
            # A stage may be allotted processors up to the largest
            # response-time-optimal degree among its members (the probe of
            # a build stage typically dominates).
            caps = [
                max(
                    response_optimal_degree(member, len(block), comm, overlap, policy)
                    for member in stage
                )
                for _, stage in floating
            ]
            alloc = minimax_allocation(op_works, len(block), caps)
            cursor = 0
            op_sites: list[list[int]] = []
            for n in alloc:
                op_sites.append(block[cursor : cursor + n])
                cursor += n
        else:
            op_sites = _lpt_pack(op_works, block)
        for spec, sites in zip(specs, op_sites):
            _place_operator(schedule, spec, sites, comm, overlap, policy)
            degrees[spec.name] = len(sites)


def synchronous_schedule(
    op_tree: OperatorTree,
    task_tree: TaskTree,
    *,
    p: int,
    comm: CommunicationModel,
    overlap: OverlapModel,
    policy: CoordinatorPolicy = DEFAULT_COORDINATOR_POLICY,
    capacities: Sequence[float] | None = None,
) -> ScheduleResult:
    """Schedule a bushy plan with the one-dimensional SYNCHRONOUS method.

    Inputs mirror :func:`repro.core.tree_schedule.tree_schedule` except
    that no granularity parameter exists — the baseline "is, of course,
    not affected by different values of f" (Section 6.2).  On a
    heterogeneous cluster (``capacities``) the minimax block allocation
    stays capacity-blind — the 1993/94 baselines assumed identical sites
    and we preserve that behaviour — but the reported makespans account
    for site speeds.

    Returns
    -------
    ScheduleResult
    """
    if not op_tree.operators:
        raise SchedulingError("cannot schedule an empty operator tree")
    started = time.perf_counter()
    d = op_tree.operators[0].require_spec().d
    phases = min_shelf_phases(task_tree)
    phased = PhasedSchedule()
    homes: dict[str, OperatorHome] = {}
    degrees: dict[str, int] = {}
    labels: list[str] = []

    for phase_tasks in phases:
        schedule = Schedule(p, d, capacities)
        _schedule_phase_tasks(
            schedule, phase_tasks, homes, degrees, op_tree, p, comm, overlap, policy
        )
        label = ",".join(task.task_id for task in phase_tasks)
        phased.append(schedule, label)
        labels.append(label)
        homes.update(schedule.homes())

    return ScheduleResult(
        algorithm="synchronous",
        phased_schedule=phased,
        homes=homes,
        degrees=degrees,
        phase_labels=labels,
        instrumentation=Instrumentation(
            wall_clock_seconds=time.perf_counter() - started
        ),
    )


@register(
    "synchronous",
    description="Section 6.1 one-dimensional adversary: synchronous "
    "execution time [HCY94] + two-phase minimax [LCRY93], disjoint blocks",
)
def _synchronous(query: GeneratedQuery, request: ScheduleRequest) -> ScheduleResult:
    assert request.policy is not None
    return synchronous_schedule(
        query.operator_tree,
        query.task_tree,
        p=request.p,
        comm=request.comm,
        overlap=request.overlap,
        policy=request.policy,
        capacities=request.capacities,
    )
