"""Two-phase minimax processor allocation (Lo, Chen, Ravishankar, Yu [LCRY93]).

Lo et al. give optimal schemes for distributing processors across the
stages of a pipeline of hash joins so as to minimize the execution time of
the slowest stage.  Under the one-dimensional cost model in which stage
``i`` with scalar work ``w_i`` on ``n_i`` processors takes time
``w_i / n_i``, the integer minimax allocation

    ``minimize max_i w_i / n_i   subject to  sum_i n_i = N,  n_i >= 1``

is solved exactly by water-filling: start every stage at one processor and
repeatedly hand the next processor to the currently slowest stage.  (The
greedy exchange argument: any allocation that skips the slowest stage can
be improved or matched by redirecting a processor to it.)

``caps`` support the shared-nothing extension used by the SYNCHRONOUS
adversary (Section 6.1): a stage is never allotted processors beyond its
response-time-optimal degree, where startup overhead would cause a
speed-down; capped-out leftovers stay idle.
"""

from __future__ import annotations

import heapq
from collections.abc import Sequence

from repro.exceptions import SchedulingError

__all__ = ["minimax_allocation", "minimax_time"]


def minimax_allocation(
    works: Sequence[float],
    n: int,
    caps: Sequence[int] | None = None,
) -> list[int]:
    """Allocate ``n`` processors among stages, minimizing the max stage time.

    Parameters
    ----------
    works:
        Scalar work of each stage (non-negative).
    n:
        Total processors; must be at least ``len(works)`` (every stage
        needs one processor to run at all).
    caps:
        Optional per-stage maximum allocation (each ``>= 1``).  When all
        stages are capped out, remaining processors are left unassigned.

    Returns
    -------
    list[int]
        Processors per stage; sums to ``n`` unless caps bind.
    """
    m = len(works)
    if m == 0:
        raise SchedulingError("minimax_allocation needs at least one stage")
    if n < m:
        raise SchedulingError(
            f"minimax_allocation needs n >= #stages, got n={n} for {m} stages"
        )
    for i, w in enumerate(works):
        if w < 0:
            raise SchedulingError(f"stage {i} has negative work {w}")
    if caps is not None:
        if len(caps) != m:
            raise SchedulingError("caps must match the number of stages")
        for i, c in enumerate(caps):
            if c < 1:
                raise SchedulingError(f"stage {i} cap must be >= 1, got {c}")

    alloc = [1] * m
    remaining = n - m
    # Max-heap on current stage time; ties broken by stage index so the
    # allocation is deterministic.
    heap = [(-works[i], i) for i in range(m)]
    heapq.heapify(heap)
    while remaining > 0 and heap:
        neg_t, i = heapq.heappop(heap)
        if caps is not None and alloc[i] >= caps[i]:
            continue  # capped out; drop from consideration
        alloc[i] += 1
        remaining -= 1
        heapq.heappush(heap, (-(works[i] / alloc[i]), i))
    return alloc


def minimax_time(works: Sequence[float], alloc: Sequence[int]) -> float:
    """Return ``max_i w_i / n_i`` for an allocation (the pipeline's time)."""
    if len(works) != len(alloc):
        raise SchedulingError("works and alloc must have equal length")
    worst = 0.0
    for i, (w, a) in enumerate(zip(works, alloc)):
        if a < 1:
            raise SchedulingError(f"stage {i} allocated {a} processors")
        worst = max(worst, w / a)
    return worst
