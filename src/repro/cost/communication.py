"""Per-operator interconnect data volumes (``D`` of Section 4.3).

The communication model ``W_c(op, N) = alpha*N + beta*D`` needs, per
operator, the total size ``D`` (bytes) of the operator's input and output
data sets transferred over the interconnect.  Under assumption **A5
(dynamically repartitioned pipelined outputs)** every pipeline edge
crosses the interconnect: the producer's output stream is repartitioned to
serve as the consumer's input, costing network-interface time ``beta`` per
byte at *both* endpoints.  Consequently, for the hash-join operator
vocabulary:

* ``scan(R)`` — sends its output downstream: ``D = bytes(|R|)``;
* ``build(J)`` — receives its inner input stream: ``D = bytes(|inner|)``
  (the hash table itself stays local, A1);
* ``probe(J)`` — receives the outer stream and, unless it is the plan
  root, sends its result stream: ``D = bytes(|outer|) + bytes(|result|)``
  (a root probe delivers results to the client without repartitioning:
  ``D = bytes(|outer|)``).
"""

from __future__ import annotations

from repro.exceptions import PlanStructureError
from repro.plans.operator_tree import OperatorTree
from repro.plans.physical_ops import OperatorKind, PhysicalOperator
from repro.cost.params import SystemParameters

__all__ = ["operator_data_volume"]


def operator_data_volume(
    op: PhysicalOperator, op_tree: OperatorTree, params: SystemParameters
) -> float:
    """Return ``D`` (bytes over the interconnect) for one operator.

    Parameters
    ----------
    op:
        The physical operator.
    op_tree:
        The containing operator tree (determines whether the operator's
        output is pipelined to a consumer or delivered to the client).
    params:
        Supplies the tuple size.
    """
    if op not in op_tree:
        raise PlanStructureError(f"operator {op.name!r} not in the given tree")
    has_pipeline_consumer = op_tree.pipeline_consumer(op) is not None
    if op.kind is OperatorKind.SCAN:
        return float(params.bytes_of(op.output_tuples)) if has_pipeline_consumer else 0.0
    if op.kind is OperatorKind.BUILD:
        return float(params.bytes_of(op.input_tuples))
    if op.kind is OperatorKind.PROBE:
        volume = float(params.bytes_of(op.input_tuples))
        if has_pipeline_consumer:
            volume += float(params.bytes_of(op.output_tuples))
        return volume
    if op.kind is OperatorKind.SORT:
        # Receives its repartitioned input and, after completion, ships
        # the sorted stream to the merge (a blocking consumer, so the
        # pipeline-consumer check does not apply).
        return float(
            params.bytes_of(op.input_tuples) + params.bytes_of(op.output_tuples)
        )
    if op.kind is OperatorKind.MERGE:
        volume = float(params.bytes_of(op.input_tuples))  # both sorted streams
        if has_pipeline_consumer:
            volume += float(params.bytes_of(op.output_tuples))
        return volume
    if op.kind is OperatorKind.STORE:
        # Receives the repartitioned result stream; the pages stay local.
        return float(params.bytes_of(op.input_tuples))
    if op.kind is OperatorKind.RESCAN:
        # Reads locally (rooted at the store); ships to its consumer.
        return (
            float(params.bytes_of(op.output_tuples)) if has_pipeline_consumer else 0.0
        )
    raise PlanStructureError(f"unknown operator kind {op.kind!r}")
