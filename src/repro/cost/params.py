"""System and cost-model parameters — Table 2 of the paper.

All times are seconds internally.  The paper's Table 2:

===============================  ======================
Configuration/Catalog parameter  Value
===============================  ======================
Number of Sites                  10 - 140
CPU Speed                        1 MIPS
Effective Disk Service Time      20 msec per page
Startup Cost per site (alpha)    15 msec
Network Transfer Cost (beta)     0.6 usec per byte
Tuple Size                       128 bytes
Page Size                        40 tuples
Relation Size                    10^3 - 10^5 tuples
===============================  ======================

CPU cost parameters (instructions):

====================  =====
Read Page from Disk   5000
Write Page to Disk    5000
Extract Tuple          300
Hash Tuple             100
Probe Hash Table       200
====================  =====

The CPU speed and disk service rate were chosen by the authors so the
system is relatively balanced (neither heavily CPU- nor IO-bound);
changing them here shifts the resource mix, which is useful for
sensitivity studies.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.exceptions import ConfigurationError
from repro.core.granularity import CommunicationModel

__all__ = ["SystemParameters", "PAPER_PARAMETERS"]


@dataclass(frozen=True)
class SystemParameters:
    """The experimental configuration and catalog parameters of Table 2.

    Attributes
    ----------
    cpu_mips:
        CPU speed in millions of instructions per second.
    disk_seconds_per_page:
        Effective disk service time per page, in seconds.
    alpha_startup_seconds:
        Parallel-execution startup cost per participating site
        (``alpha`` of the communication model), in seconds.
    beta_seconds_per_byte:
        Network transfer cost per byte (``beta``), in seconds.
    tuple_bytes:
        Tuple size in bytes.
    tuples_per_page:
        Page capacity in tuples.
    instr_read_page / instr_write_page:
        CPU instructions to read/write one page from/to disk.
    instr_extract_tuple:
        CPU instructions to extract (copy/construct) one tuple.
    instr_hash_tuple:
        CPU instructions to hash one tuple into a table.
    instr_probe_table:
        CPU instructions to probe a hash table with one tuple.
    """

    cpu_mips: float = 1.0
    disk_seconds_per_page: float = 0.020
    alpha_startup_seconds: float = 0.015
    beta_seconds_per_byte: float = 0.6e-6
    tuple_bytes: int = 128
    tuples_per_page: int = 40
    instr_read_page: int = 5_000
    instr_write_page: int = 5_000
    instr_extract_tuple: int = 300
    instr_hash_tuple: int = 100
    instr_probe_table: int = 200

    def __post_init__(self) -> None:
        positive = {
            "cpu_mips": self.cpu_mips,
            "tuple_bytes": self.tuple_bytes,
            "tuples_per_page": self.tuples_per_page,
        }
        for name, value in positive.items():
            if value <= 0:
                raise ConfigurationError(f"{name} must be > 0, got {value}")
        non_negative = {
            "disk_seconds_per_page": self.disk_seconds_per_page,
            "alpha_startup_seconds": self.alpha_startup_seconds,
            "beta_seconds_per_byte": self.beta_seconds_per_byte,
            "instr_read_page": self.instr_read_page,
            "instr_write_page": self.instr_write_page,
            "instr_extract_tuple": self.instr_extract_tuple,
            "instr_hash_tuple": self.instr_hash_tuple,
            "instr_probe_table": self.instr_probe_table,
        }
        for name, value in non_negative.items():
            if value < 0:
                raise ConfigurationError(f"{name} must be >= 0, got {value}")

    @property
    def seconds_per_instruction(self) -> float:
        """CPU time per instruction (``1 / (MIPS * 10^6)``)."""
        return 1.0 / (self.cpu_mips * 1e6)

    def cpu_seconds(self, instructions: float) -> float:
        """Convert an instruction count to CPU seconds."""
        if instructions < 0:
            raise ConfigurationError(f"instruction count must be >= 0, got {instructions}")
        return instructions * self.seconds_per_instruction

    def pages(self, tuples: int) -> int:
        """Pages occupied by ``tuples`` tuples, rounded up."""
        if tuples < 0:
            raise ConfigurationError(f"tuple count must be >= 0, got {tuples}")
        return -(-tuples // self.tuples_per_page)

    def bytes_of(self, tuples: int) -> int:
        """Size in bytes of ``tuples`` tuples."""
        if tuples < 0:
            raise ConfigurationError(f"tuple count must be >= 0, got {tuples}")
        return tuples * self.tuple_bytes

    def communication_model(self) -> CommunicationModel:
        """The Section 4.3 communication model with these parameters."""
        return CommunicationModel(
            alpha=self.alpha_startup_seconds, beta=self.beta_seconds_per_byte
        )

    def scaled(self, **overrides: float) -> "SystemParameters":
        """Return a copy with some fields replaced (sensitivity studies)."""
        return replace(self, **overrides)


#: The exact Table 2 configuration used throughout the paper's evaluation.
PAPER_PARAMETERS = SystemParameters()
