"""Cost-model substrate: Table 2 parameters, work-vector estimation, D.

Implements Step 2 of the paper's pipeline: turning catalog statistics and
hardware parameters into multi-dimensional work vectors and interconnect
data volumes for every physical operator.
"""

from repro.cost.annotate import (
    AnnotatedQuery,
    PlanAnnotation,
    annotate_operator,
    annotate_plan,
    compute_operator_spec,
    compute_plan_annotation,
)
from repro.cost.communication import operator_data_volume
from repro.cost.cost_model import (
    build_work_vector,
    merge_work_vector,
    probe_work_vector,
    rescan_work_vector,
    scan_work_vector,
    sort_work_vector,
    store_work_vector,
    work_vector_3d,
)
from repro.cost.params import PAPER_PARAMETERS, SystemParameters

__all__ = [
    "SystemParameters",
    "PAPER_PARAMETERS",
    "scan_work_vector",
    "build_work_vector",
    "probe_work_vector",
    "sort_work_vector",
    "merge_work_vector",
    "store_work_vector",
    "rescan_work_vector",
    "work_vector_3d",
    "operator_data_volume",
    "annotate_operator",
    "annotate_plan",
    "compute_operator_spec",
    "compute_plan_annotation",
    "PlanAnnotation",
    "AnnotatedQuery",
]
