"""Per-operator work vectors from catalog statistics ([HCY94]-style model).

The experiments estimate the CPU and disk components of each operator's
work vector with the cost-model equations of Hsiao, Chen and Yu [HCY94],
instantiated with the Table 2 primitives.  With the default 3-resource
layout (CPU, DISK, NETWORK):

* ``scan(R)`` — reads ``pages(R)`` pages and extracts ``|R|`` tuples::

      CPU  = (pages(R) * instr_read_page + |R| * instr_extract_tuple) / MIPS
      DISK = pages(R) * disk_seconds_per_page

* ``build(J)`` — receives its ``|inner|`` input tuples (each must be
  extracted from the repartitioned stream, A5) and hashes them into the
  in-memory table (assumption A1: no spill, hence no disk component)::

      CPU  = |inner| * (instr_extract_tuple + instr_hash_tuple) / MIPS

* ``probe(J)`` — receives and extracts ``|outer|`` tuples, probes the
  table with each, and constructs the ``|result|`` output tuples::

      CPU  = (|outer| * (instr_extract_tuple + instr_probe_table)
              + |result| * instr_extract_tuple) / MIPS

The NETWORK component of the *processing* work vector is zero: all network
time is communication overhead (``beta * D``) accounted for by the
Section 4.3 model via each operator's data volume ``D`` (see
:mod:`repro.cost.communication`).
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError
from repro.core.work_vector import DEFAULT_DIMENSIONALITY, Resource, WorkVector
from repro.cost.params import SystemParameters

__all__ = [
    "scan_work_vector",
    "build_work_vector",
    "probe_work_vector",
    "sort_work_vector",
    "merge_work_vector",
    "store_work_vector",
    "rescan_work_vector",
    "work_vector_3d",
]


def work_vector_3d(cpu_seconds: float, disk_seconds: float) -> WorkVector:
    """Assemble a 3-dimensional processing work vector.

    The network component is always zero for processing work: network
    interface time is communication overhead and handled separately.
    """
    if cpu_seconds < 0 or disk_seconds < 0:
        raise ConfigurationError("work components must be >= 0")
    components = [0.0] * DEFAULT_DIMENSIONALITY
    components[Resource.CPU] = cpu_seconds
    components[Resource.DISK] = disk_seconds
    return WorkVector(components)


def scan_work_vector(tuples: int, params: SystemParameters) -> WorkVector:
    """Work vector of a base-relation scan of ``tuples`` tuples."""
    if tuples < 0:
        raise ConfigurationError(f"tuple count must be >= 0, got {tuples}")
    pages = params.pages(tuples)
    cpu = params.cpu_seconds(
        pages * params.instr_read_page + tuples * params.instr_extract_tuple
    )
    disk = pages * params.disk_seconds_per_page
    return work_vector_3d(cpu, disk)


def build_work_vector(input_tuples: int, params: SystemParameters) -> WorkVector:
    """Work vector of a hash-table build over ``input_tuples`` tuples.

    Each incoming tuple is extracted from the (repartitioned) input
    stream and hashed into the table.
    """
    if input_tuples < 0:
        raise ConfigurationError(f"tuple count must be >= 0, got {input_tuples}")
    cpu = params.cpu_seconds(
        input_tuples * (params.instr_extract_tuple + params.instr_hash_tuple)
    )
    return work_vector_3d(cpu, 0.0)


def probe_work_vector(
    outer_tuples: int, result_tuples: int, params: SystemParameters
) -> WorkVector:
    """Work vector of a probe: ``outer_tuples`` probes, ``result_tuples`` out.

    Each outer tuple is extracted from the repartitioned input stream and
    probes the hash table; each result tuple is constructed (extracted)
    for the output stream.
    """
    if outer_tuples < 0 or result_tuples < 0:
        raise ConfigurationError("tuple counts must be >= 0")
    cpu = params.cpu_seconds(
        outer_tuples * (params.instr_extract_tuple + params.instr_probe_table)
        + result_tuples * params.instr_extract_tuple
    )
    return work_vector_3d(cpu, 0.0)


def sort_work_vector(tuples: int, params: SystemParameters) -> WorkVector:
    """Work vector of a two-pass external sort over ``tuples`` tuples.

    Reconstruction (Table 2 has no comparison primitive): each incoming
    tuple is extracted on ingest and extracted again when the sorted
    runs are merged out (``2 * instr_extract_tuple`` per tuple); sorted
    runs are written to disk and re-read once (``instr_write_page`` +
    ``instr_read_page`` CPU and two disk passes per page).
    """
    if tuples < 0:
        raise ConfigurationError(f"tuple count must be >= 0, got {tuples}")
    pages = params.pages(tuples)
    cpu = params.cpu_seconds(
        pages * (params.instr_write_page + params.instr_read_page)
        + 2 * tuples * params.instr_extract_tuple
    )
    disk = 2 * pages * params.disk_seconds_per_page
    return work_vector_3d(cpu, disk)


def store_work_vector(tuples: int, params: SystemParameters) -> WorkVector:
    """Work vector of materializing ``tuples`` tuples to disk.

    Each incoming (repartitioned) tuple is extracted; full pages are
    written.
    """
    if tuples < 0:
        raise ConfigurationError(f"tuple count must be >= 0, got {tuples}")
    pages = params.pages(tuples)
    cpu = params.cpu_seconds(
        pages * params.instr_write_page + tuples * params.instr_extract_tuple
    )
    return work_vector_3d(cpu, pages * params.disk_seconds_per_page)


def rescan_work_vector(tuples: int, params: SystemParameters) -> WorkVector:
    """Work vector of re-reading a materialized result (same as a scan)."""
    return scan_work_vector(tuples, params)


def merge_work_vector(
    left_tuples: int, right_tuples: int, result_tuples: int, params: SystemParameters
) -> WorkVector:
    """Work vector of the merge phase of a sort-merge join.

    Each input tuple of either sorted stream is extracted and advanced
    through the merge; each result tuple is constructed.  Both inputs
    arrive pre-sorted over the interconnect, so there is no disk work
    (the sorts carried the run I/O).
    """
    if left_tuples < 0 or right_tuples < 0 or result_tuples < 0:
        raise ConfigurationError("tuple counts must be >= 0")
    cpu = params.cpu_seconds(
        (left_tuples + right_tuples + result_tuples) * params.instr_extract_tuple
    )
    return work_vector_3d(cpu, 0.0)
