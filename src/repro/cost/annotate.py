"""Cost annotation: derive an :class:`OperatorSpec` for every operator.

Step 2 of the paper's scheduling pipeline (Section 3.2): "For each
operator, determine its individual resource requirements using hardware
parameters, DBMS statistics, and conventional optimizer cost models."
:func:`annotate_plan` walks a macro-expanded operator tree, derives each
operator's zero-communication work vector (the [HCY94]-style model of
:mod:`repro.cost.cost_model`) and its interconnect data volume ``D``
(:mod:`repro.cost.communication`), and returns the result as an
immutable :class:`PlanAnnotation` — a frozen ``operator name ->
OperatorSpec`` side table.

Immutability contract (see DESIGN.md §2.4): annotation never rewrites an
operator tree.  :func:`annotate_plan` additionally *attaches* each spec
to its node — but exactly once; a second annotation of the same tree
under different parameters raises
:class:`~repro.exceptions.ImmutableAnnotationError` instead of mutating
shared state.  Re-annotation is expressed with
:meth:`PlanAnnotation.with_params`, which computes a fresh detached view
over the same tree; schedulers consume it through
:func:`repro.plans.physical_ops.use_annotation` (threaded automatically
by the engine registry via ``ScheduleRequest.annotation``).  This is
what makes workload cohorts shareable between experiments without the
defensive ``copy.deepcopy`` the experiment runner historically paid per
sweep point.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from dataclasses import dataclass, field
from types import MappingProxyType

from repro.exceptions import PlanStructureError
from repro.core.cloning import OperatorSpec
from repro.plans.generator import GeneratedQuery
from repro.plans.operator_tree import OperatorTree
from repro.plans.physical_ops import OperatorKind, PhysicalOperator, use_annotation
from repro.cost.communication import operator_data_volume
from repro.cost.cost_model import (
    build_work_vector,
    merge_work_vector,
    probe_work_vector,
    rescan_work_vector,
    scan_work_vector,
    sort_work_vector,
    store_work_vector,
)
from repro.cost.params import SystemParameters

__all__ = [
    "PlanAnnotation",
    "AnnotatedQuery",
    "compute_operator_spec",
    "compute_plan_annotation",
    "annotate_operator",
    "annotate_plan",
]


def compute_operator_spec(
    op: PhysicalOperator, op_tree: OperatorTree, params: SystemParameters
) -> OperatorSpec:
    """Derive the :class:`OperatorSpec` for one operator (pure)."""
    if op.kind is OperatorKind.SCAN:
        work = scan_work_vector(op.output_tuples, params)
    elif op.kind is OperatorKind.BUILD:
        work = build_work_vector(op.input_tuples, params)
    elif op.kind is OperatorKind.PROBE:
        work = probe_work_vector(op.input_tuples, op.output_tuples, params)
    elif op.kind is OperatorKind.SORT:
        work = sort_work_vector(op.input_tuples, params)
    elif op.kind is OperatorKind.MERGE:
        # input_tuples records both sorted streams combined; split is
        # immaterial to the cost (both sides cost extract per tuple).
        work = merge_work_vector(op.input_tuples, 0, op.output_tuples, params)
    elif op.kind is OperatorKind.STORE:
        work = store_work_vector(op.input_tuples, params)
    elif op.kind is OperatorKind.RESCAN:
        work = rescan_work_vector(op.output_tuples, params)
    else:
        raise PlanStructureError(f"unknown operator kind {op.kind!r}")
    return OperatorSpec(
        name=op.name,
        work=work,
        data_volume=operator_data_volume(op, op_tree, params),
    )


@dataclass(frozen=True)
class PlanAnnotation(Mapping[str, OperatorSpec]):
    """An immutable ``operator name -> OperatorSpec`` view of one tree.

    A frozen side table: the annotation of ``op_tree`` under ``params``,
    independent of whatever specs are (or are not) attached to the tree's
    nodes.  Being detached and immutable, any number of annotations of
    the same tree — one per parameter variant of a sensitivity sweep —
    can coexist and be cached or shipped to worker processes without
    copying the tree.

    Use :meth:`with_params` to re-annotate under different parameters,
    and :meth:`activate` (or ``ScheduleRequest.annotation``) to make this
    view the one :meth:`~repro.plans.physical_ops.PhysicalOperator.require_spec`
    resolves during scheduling.
    """

    op_tree: OperatorTree = field(repr=False)
    params: SystemParameters
    specs: Mapping[str, OperatorSpec] = field(repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", MappingProxyType(dict(self.specs)))

    # -- Mapping protocol ------------------------------------------------
    def __getitem__(self, name: str) -> OperatorSpec:
        try:
            return self.specs[name]
        except KeyError:
            raise PlanStructureError(
                f"no operator named {name!r} in this annotation"
            ) from None

    def __iter__(self) -> Iterator[str]:
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    # -- derived views ---------------------------------------------------
    def spec_of(self, op: PhysicalOperator) -> OperatorSpec:
        """The spec of one operator node (keyed by its unique name)."""
        return self[op.name]

    def with_params(self, params: SystemParameters | None = None, **overrides: float) -> "PlanAnnotation":
        """Re-annotate the same tree under different parameters.

        Pass a full :class:`SystemParameters`, or keyword field overrides
        applied to this annotation's parameters via
        :meth:`SystemParameters.scaled`.  Returns a *new* detached
        :class:`PlanAnnotation`; neither this view nor the tree is
        modified.
        """
        if params is not None and overrides:
            raise PlanStructureError(
                "pass either a SystemParameters or field overrides, not both"
            )
        new_params = params if params is not None else self.params.scaled(**overrides)
        if new_params == self.params:
            return self
        return compute_plan_annotation(self.op_tree, new_params)

    def activate(self):
        """Context manager making this view the active spec resolution."""
        return use_annotation(self)

    def attach(self) -> "PlanAnnotation":
        """Attach every spec to its operator node (write-once).

        Raises
        ------
        ImmutableAnnotationError
            If any node already carries a *different* spec — attached
            annotations are immutable; keep this view detached instead.
        """
        for op in self.op_tree.operators:
            op.spec = self.specs[op.name]
        return self

    def __repr__(self) -> str:
        return f"PlanAnnotation({len(self.specs)} operators)"


def compute_plan_annotation(
    op_tree: OperatorTree, params: SystemParameters
) -> PlanAnnotation:
    """Annotate ``op_tree`` under ``params`` without touching its nodes."""
    specs = {
        op.name: compute_operator_spec(op, op_tree, params)
        for op in op_tree.operators
    }
    return PlanAnnotation(op_tree=op_tree, params=params, specs=specs)


@dataclass(frozen=True)
class AnnotatedQuery:
    """One generated query bound to one immutable cost annotation.

    The pairing the experiment layer hands around: the *shared*
    structural :class:`~repro.plans.generator.GeneratedQuery` (never
    copied, never mutated) plus the :class:`PlanAnnotation` for one
    :class:`~repro.cost.params.SystemParameters` point.  Delegating
    properties keep the historical ``query.operator_tree`` /
    ``query.task_tree`` call sites working unchanged.
    """

    query: GeneratedQuery
    annotation: PlanAnnotation

    @property
    def operator_tree(self):
        return self.query.operator_tree

    @property
    def task_tree(self):
        return self.query.task_tree

    @property
    def catalog(self):
        return self.query.catalog

    @property
    def graph(self):
        return self.query.graph

    @property
    def plan(self):
        return self.query.plan

    @property
    def num_joins(self) -> int:
        return self.query.num_joins

    def with_params(self, params: SystemParameters | None = None, **overrides: float) -> "AnnotatedQuery":
        """Re-annotate the same underlying query (structure shared)."""
        return AnnotatedQuery(
            query=self.query, annotation=self.annotation.with_params(params, **overrides)
        )

    def __repr__(self) -> str:
        return f"AnnotatedQuery({self.query!r})"


def annotate_operator(
    op: PhysicalOperator, op_tree: OperatorTree, params: SystemParameters
) -> OperatorSpec:
    """Compute and attach (write-once) the spec for one operator.

    Raises
    ------
    ImmutableAnnotationError
        If the operator already carries a different spec.
    """
    spec = compute_operator_spec(op, op_tree, params)
    op.spec = spec
    return spec


def annotate_plan(op_tree: OperatorTree, params: SystemParameters) -> PlanAnnotation:
    """Annotate every operator of ``op_tree``; returns the frozen view.

    The computed specs are additionally attached to the operator nodes —
    exactly once.  Annotating an unannotated tree (or re-annotating with
    identical parameters) succeeds idempotently; re-annotating a tree
    that already carries *different* specs raises
    :class:`~repro.exceptions.ImmutableAnnotationError` — use
    :meth:`PlanAnnotation.with_params` for a detached re-annotation of a
    shared tree.
    """
    return compute_plan_annotation(op_tree, params).attach()
