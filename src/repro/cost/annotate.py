"""Cost annotation: attach an :class:`OperatorSpec` to every operator.

Step 2 of the paper's scheduling pipeline (Section 3.2): "For each
operator, determine its individual resource requirements using hardware
parameters, DBMS statistics, and conventional optimizer cost models."
:func:`annotate_plan` walks a macro-expanded operator tree, derives each
operator's zero-communication work vector (the [HCY94]-style model of
:mod:`repro.cost.cost_model`) and its interconnect data volume ``D``
(:mod:`repro.cost.communication`), and stores the resulting
:class:`~repro.core.cloning.OperatorSpec` on the operator node.
"""

from __future__ import annotations

from repro.exceptions import PlanStructureError
from repro.core.cloning import OperatorSpec
from repro.plans.operator_tree import OperatorTree
from repro.plans.physical_ops import OperatorKind, PhysicalOperator
from repro.cost.communication import operator_data_volume
from repro.cost.cost_model import (
    build_work_vector,
    merge_work_vector,
    probe_work_vector,
    rescan_work_vector,
    scan_work_vector,
    sort_work_vector,
    store_work_vector,
)
from repro.cost.params import SystemParameters

__all__ = ["annotate_operator", "annotate_plan"]


def annotate_operator(
    op: PhysicalOperator, op_tree: OperatorTree, params: SystemParameters
) -> OperatorSpec:
    """Compute (and attach) the :class:`OperatorSpec` for one operator."""
    if op.kind is OperatorKind.SCAN:
        work = scan_work_vector(op.output_tuples, params)
    elif op.kind is OperatorKind.BUILD:
        work = build_work_vector(op.input_tuples, params)
    elif op.kind is OperatorKind.PROBE:
        work = probe_work_vector(op.input_tuples, op.output_tuples, params)
    elif op.kind is OperatorKind.SORT:
        work = sort_work_vector(op.input_tuples, params)
    elif op.kind is OperatorKind.MERGE:
        # input_tuples records both sorted streams combined; split is
        # immaterial to the cost (both sides cost extract per tuple).
        work = merge_work_vector(op.input_tuples, 0, op.output_tuples, params)
    elif op.kind is OperatorKind.STORE:
        work = store_work_vector(op.input_tuples, params)
    elif op.kind is OperatorKind.RESCAN:
        work = rescan_work_vector(op.output_tuples, params)
    else:
        raise PlanStructureError(f"unknown operator kind {op.kind!r}")
    spec = OperatorSpec(
        name=op.name,
        work=work,
        data_volume=operator_data_volume(op, op_tree, params),
    )
    op.spec = spec
    return spec


def annotate_plan(op_tree: OperatorTree, params: SystemParameters) -> OperatorTree:
    """Annotate every operator of ``op_tree`` in place; returns the tree.

    Idempotent: re-annotating with different parameters simply replaces
    the attached specs.
    """
    for op in op_tree.operators:
        annotate_operator(op, op_tree, params)
    return op_tree
