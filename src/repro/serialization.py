"""JSON-friendly serialization of scheduling artifacts.

Schedules, operator specs, and experiment series are plain-data friendly;
this module converts them to and from nested dict/list structures that
round-trip through :mod:`json`.  Intended uses: persisting experiment
outputs, diffing schedules across code versions, and shipping placements
to an external executor.

Everything round-trips exactly (floats are preserved bit-for-bit by the
dict representation; JSON serialization is then up to the caller's
formatting choices).
"""

from __future__ import annotations

from typing import Any

import dataclasses

from repro.exceptions import ConfigurationError
from repro.core.cloning import OperatorSpec
from repro.core.cluster import ClusterSpec, SiteClass
from repro.core.reschedule import ScheduleDelta
from repro.core.schedule import OperatorHome, PhasedSchedule, Schedule
from repro.core.vector_packing import CloneItem
from repro.core.site import PlacedClone
from repro.core.work_vector import WorkVector
from repro.cost.params import SystemParameters
from repro.engine.result import Instrumentation, ScheduleResult
from repro.experiments.figures import FigureData, Series
from repro.sim.faults import FaultReport, FaultSpec

__all__ = [
    "work_vector_to_dict",
    "work_vector_from_dict",
    "operator_spec_to_dict",
    "operator_spec_from_dict",
    "system_parameters_to_dict",
    "system_parameters_from_dict",
    "cluster_spec_to_dict",
    "cluster_spec_from_dict",
    "schedule_to_dict",
    "schedule_from_dict",
    "schedule_delta_to_dict",
    "schedule_delta_from_dict",
    "phased_schedule_to_dict",
    "phased_schedule_from_dict",
    "instrumentation_to_dict",
    "instrumentation_from_dict",
    "schedule_result_to_dict",
    "schedule_result_from_dict",
    "fault_spec_to_dict",
    "fault_spec_from_dict",
    "fault_report_to_dict",
    "fault_report_from_dict",
    "figure_to_dict",
    "figure_from_dict",
]

_SCHEMA = "repro/1"


def _expect(mapping: dict[str, Any], key: str) -> Any:
    try:
        return mapping[key]
    except (KeyError, TypeError):
        raise ConfigurationError(f"malformed payload: missing {key!r}") from None


def _check_schema(payload: dict[str, Any]) -> None:
    """Reject payloads tagged with a foreign schema version.

    Payloads written by this module carry ``"schema": "repro/1"``; a
    different tag means the artifact came from an incompatible writer and
    silently parsing it would produce garbage, so we refuse.  A *missing*
    tag is accepted for compatibility with artifacts written before the
    tag existed (and with hand-built dicts in tests).
    """
    tag = payload.get("schema") if isinstance(payload, dict) else None
    if tag is not None and tag != _SCHEMA:
        raise ConfigurationError(
            f"unsupported payload schema {tag!r} (expected {_SCHEMA!r})"
        )


def work_vector_to_dict(w: WorkVector) -> dict[str, Any]:
    """Serialize a work vector."""
    return {"components": list(w.components)}


def work_vector_from_dict(payload: dict[str, Any]) -> WorkVector:
    """Deserialize a work vector."""
    return WorkVector(_expect(payload, "components"))


def operator_spec_to_dict(spec: OperatorSpec) -> dict[str, Any]:
    """Serialize an operator spec."""
    return {
        "name": spec.name,
        "work": work_vector_to_dict(spec.work),
        "data_volume": spec.data_volume,
    }


def operator_spec_from_dict(payload: dict[str, Any]) -> OperatorSpec:
    """Deserialize an operator spec."""
    return OperatorSpec(
        name=_expect(payload, "name"),
        work=work_vector_from_dict(_expect(payload, "work")),
        data_volume=float(payload.get("data_volume", 0.0)),
    )


def system_parameters_to_dict(params: SystemParameters) -> dict[str, Any]:
    """Serialize Table 2 system parameters field-by-field.

    Field order follows the dataclass definition, so the payload is
    deterministic and — combined with canonical JSON — suitable for
    content addressing in :mod:`repro.store`.
    """
    return {f.name: getattr(params, f.name) for f in dataclasses.fields(params)}


def system_parameters_from_dict(payload: dict[str, Any]) -> SystemParameters:
    """Deserialize system parameters (unknown fields rejected)."""
    known = {f.name for f in dataclasses.fields(SystemParameters)}
    extra = set(payload) - known - {"schema"}
    if extra:
        raise ConfigurationError(
            f"malformed SystemParameters payload: unknown fields {sorted(extra)}"
        )
    kwargs = {k: v for k, v in payload.items() if k in known}
    return SystemParameters(**kwargs)


def cluster_spec_to_dict(spec: ClusterSpec) -> dict[str, Any]:
    """Serialize a cluster spec, class by class in declaration order.

    Deterministic (field order fixed, classes ordered), so canonical JSON
    of this payload is what :func:`repro.experiments.runner` hashes into
    store keys for heterogeneous sweep points.
    """
    return {
        "classes": [
            {"name": cls.name, "count": cls.count, "capacity": cls.capacity}
            for cls in spec.classes
        ]
    }


def cluster_spec_from_dict(payload: dict[str, Any]) -> ClusterSpec:
    """Deserialize a cluster spec (re-validates its invariants)."""
    _check_schema(payload)
    return ClusterSpec(
        tuple(
            SiteClass(
                name=_expect(item, "name"),
                count=int(_expect(item, "count")),
                capacity=float(item.get("capacity", 1.0)),
            )
            for item in _expect(payload, "classes")
        )
    )


def schedule_to_dict(schedule: Schedule) -> dict[str, Any]:
    """Serialize a schedule: dimensions plus every clone placement."""
    placements = []
    for site in schedule.sites:
        for clone in site.clones:
            placements.append(
                {
                    "site": site.index,
                    "operator": clone.operator,
                    "clone_index": clone.clone_index,
                    "work": work_vector_to_dict(clone.work),
                    "t_seq": clone.t_seq,
                }
            )
    payload = {
        "schema": _SCHEMA,
        "p": schedule.p,
        "d": schedule.d,
        "placements": placements,
    }
    # Emitted only when non-empty: payloads of schedules that never saw
    # a repair delta stay byte-identical to pre-rescheduling payloads.
    if schedule.disabled_sites:
        payload["disabled_sites"] = sorted(schedule.disabled_sites)
    # Same conditional rule for capacities: uniform (all 1.0) schedules
    # serialize byte-identically to pre-capacity payloads.
    if not schedule.is_uniform_capacity():
        payload["capacities"] = list(schedule.capacities())
    return payload


def schedule_from_dict(payload: dict[str, Any]) -> Schedule:
    """Deserialize a schedule (re-validates constraint (A) on the way)."""
    _check_schema(payload)
    capacities = payload.get("capacities")
    schedule = Schedule(
        int(_expect(payload, "p")),
        int(_expect(payload, "d")),
        None if capacities is None else [float(c) for c in capacities],
    )
    for item in _expect(payload, "placements"):
        schedule.place(
            int(_expect(item, "site")),
            PlacedClone(
                operator=_expect(item, "operator"),
                clone_index=int(_expect(item, "clone_index")),
                work=work_vector_from_dict(_expect(item, "work")),
                t_seq=float(_expect(item, "t_seq")),
            ),
        )
    for j in payload.get("disabled_sites", []):
        schedule.disable_site(int(j))
    return schedule


def schedule_delta_to_dict(delta: ScheduleDelta) -> dict[str, Any]:
    """Serialize a repair delta (also the store-key payload for repairs)."""
    payload = {
        "schema": _SCHEMA,
        "remove_sites": list(delta.remove_sites),
        "restore_sites": list(delta.restore_sites),
        "remove_operators": list(delta.remove_operators),
        "add_items": [
            {
                "operator": item.operator,
                "clone_index": item.clone_index,
                "work": work_vector_to_dict(item.work),
            }
            for item in delta.add_items
        ],
        "phase_index": delta.phase_index,
    }
    # Conditional emission keeps capacity-free deltas — and therefore
    # their store keys — byte-identical to the pre-capacity codec.
    if delta.set_capacities:
        payload["set_capacities"] = [[j, c] for j, c in delta.set_capacities]
    return payload


def schedule_delta_from_dict(payload: dict[str, Any]) -> ScheduleDelta:
    """Deserialize a repair delta (re-validates its invariants)."""
    _check_schema(payload)
    return ScheduleDelta(
        remove_sites=tuple(int(j) for j in payload.get("remove_sites", [])),
        restore_sites=tuple(int(j) for j in payload.get("restore_sites", [])),
        remove_operators=tuple(payload.get("remove_operators", [])),
        add_items=tuple(
            CloneItem(
                operator=_expect(item, "operator"),
                clone_index=int(_expect(item, "clone_index")),
                work=work_vector_from_dict(_expect(item, "work")),
            )
            for item in payload.get("add_items", [])
        ),
        set_capacities=tuple(
            (int(j), float(c)) for j, c in payload.get("set_capacities", [])
        ),
        phase_index=int(payload.get("phase_index", 0)),
    )


def phased_schedule_to_dict(phased: PhasedSchedule) -> dict[str, Any]:
    """Serialize a phased schedule with its labels."""
    return {
        "schema": _SCHEMA,
        "phases": [schedule_to_dict(s) for s in phased.phases],
        "labels": list(phased.labels),
    }


def phased_schedule_from_dict(payload: dict[str, Any]) -> PhasedSchedule:
    """Deserialize a phased schedule."""
    _check_schema(payload)
    phased = PhasedSchedule()
    labels = list(payload.get("labels", []))
    phases = _expect(payload, "phases")
    for i, item in enumerate(phases):
        label = labels[i] if i < len(labels) else ""
        phased.append(schedule_from_dict(item), label)
    return phased


def instrumentation_to_dict(inst: Instrumentation) -> dict[str, Any]:
    """Serialize scheduler-run instrumentation.

    The ``spans`` key (span-tree summaries recorded under an enabled
    tracer) is emitted only when non-empty, so payloads written with
    tracing disabled are byte-identical to pre-tracing payloads.
    """
    payload = {
        "wall_clock_seconds": inst.wall_clock_seconds,
        "operators_scheduled": inst.operators_scheduled,
        "clones_created": inst.clones_created,
        "bins_opened": inst.bins_opened,
        "counters": dict(inst.counters),
        "timers": dict(inst.timers),
    }
    if inst.spans:
        payload["spans"] = [dict(span) for span in inst.spans]
    return payload


def instrumentation_from_dict(payload: dict[str, Any]) -> Instrumentation:
    """Deserialize scheduler-run instrumentation (all fields optional)."""
    return Instrumentation(
        wall_clock_seconds=float(payload.get("wall_clock_seconds", 0.0)),
        operators_scheduled=int(payload.get("operators_scheduled", 0)),
        clones_created=int(payload.get("clones_created", 0)),
        bins_opened=int(payload.get("bins_opened", 0)),
        counters=dict(payload.get("counters", {})),
        timers=dict(payload.get("timers", {})),
        spans=[dict(span) for span in payload.get("spans", [])],
    )


def schedule_result_to_dict(result: ScheduleResult) -> dict[str, Any]:
    """Serialize a full algorithm result with provenance.

    The attached phased schedule (when present) carries every clone
    placement, so deserialization rebuilds homes, degrees and timelines
    exactly; ``response_time`` is stored explicitly so bound-only
    results round-trip too.
    """
    return {
        "schema": _SCHEMA,
        "algorithm": result.algorithm,
        "response_time": result.response_time,
        "phased_schedule": (
            None
            if result.phased_schedule is None
            else phased_schedule_to_dict(result.phased_schedule)
        ),
        "degrees": dict(result.degrees),
        "phase_labels": list(result.phase_labels),
        "homes": {
            op: list(home.site_indices) for op, home in result.homes.items()
        },
        "instrumentation": instrumentation_to_dict(result.instrumentation),
    }


def schedule_result_from_dict(payload: dict[str, Any]) -> ScheduleResult:
    """Deserialize a full algorithm result.

    Round-trips exactly: the makespan, per-phase schedules (hence
    timelines), homes, degrees and instrumentation all reconstruct to
    equal values.
    """
    _check_schema(payload)
    phased_payload = _expect(payload, "phased_schedule")
    phased = (
        None if phased_payload is None else phased_schedule_from_dict(phased_payload)
    )
    homes = {
        op: OperatorHome(operator=op, site_indices=tuple(sites))
        for op, sites in payload.get("homes", {}).items()
    }
    return ScheduleResult(
        algorithm=str(payload.get("algorithm", "")),
        phased_schedule=phased,
        homes=homes,
        degrees={k: int(v) for k, v in payload.get("degrees", {}).items()},
        phase_labels=[str(x) for x in payload.get("phase_labels", [])],
        response_time=float(_expect(payload, "response_time")),
        instrumentation=instrumentation_from_dict(
            payload.get("instrumentation", {})
        ),
    )


def fault_spec_to_dict(spec: FaultSpec) -> dict[str, Any]:
    """Serialize a fault-injection spec (for experiment provenance)."""
    return {
        "schema": _SCHEMA,
        "slowdown_prob": spec.slowdown_prob,
        "slowdown_range": list(spec.slowdown_range),
        "skew_prob": spec.skew_prob,
        "skew_range": list(spec.skew_range),
        "straggler_prob": spec.straggler_prob,
        "straggler_delay_range": list(spec.straggler_delay_range),
        "failure_prob": spec.failure_prob,
        "failure_at_range": list(spec.failure_at_range),
        "restart_delay_range": list(spec.restart_delay_range),
        "epsilon": spec.epsilon,
    }


def fault_spec_from_dict(payload: dict[str, Any]) -> FaultSpec:
    """Deserialize a fault-injection spec (re-validates on construction)."""
    _check_schema(payload)

    def pair(key: str, default: tuple[float, float]) -> tuple[float, float]:
        low, high = payload.get(key, default)
        return (float(low), float(high))

    defaults = FaultSpec.none()
    return FaultSpec(
        slowdown_prob=float(payload.get("slowdown_prob", 0.0)),
        slowdown_range=pair("slowdown_range", defaults.slowdown_range),
        skew_prob=float(payload.get("skew_prob", 0.0)),
        skew_range=pair("skew_range", defaults.skew_range),
        straggler_prob=float(payload.get("straggler_prob", 0.0)),
        straggler_delay_range=pair(
            "straggler_delay_range", defaults.straggler_delay_range
        ),
        failure_prob=float(payload.get("failure_prob", 0.0)),
        failure_at_range=pair("failure_at_range", defaults.failure_at_range),
        restart_delay_range=pair(
            "restart_delay_range", defaults.restart_delay_range
        ),
        epsilon=float(payload.get("epsilon", defaults.epsilon)),
    )


def fault_report_to_dict(report: FaultReport) -> dict[str, Any]:
    """Serialize a simulated execution's fault attribution."""
    return {
        "schema": _SCHEMA,
        "slowdowns": report.slowdowns,
        "skews": report.skews,
        "stragglers": report.stragglers,
        "failures": report.failures,
        "time_lost_slowdown": report.time_lost_slowdown,
        "time_lost_skew": report.time_lost_skew,
        "time_lost_straggler": report.time_lost_straggler,
        "time_lost_failure": report.time_lost_failure,
        "work_rerun": report.work_rerun,
    }


def fault_report_from_dict(payload: dict[str, Any]) -> FaultReport:
    """Deserialize a fault report (all fields optional, default zero)."""
    _check_schema(payload)
    return FaultReport(
        slowdowns=int(payload.get("slowdowns", 0)),
        skews=int(payload.get("skews", 0)),
        stragglers=int(payload.get("stragglers", 0)),
        failures=int(payload.get("failures", 0)),
        time_lost_slowdown=float(payload.get("time_lost_slowdown", 0.0)),
        time_lost_skew=float(payload.get("time_lost_skew", 0.0)),
        time_lost_straggler=float(payload.get("time_lost_straggler", 0.0)),
        time_lost_failure=float(payload.get("time_lost_failure", 0.0)),
        work_rerun=float(payload.get("work_rerun", 0.0)),
    )


def figure_to_dict(figure: FigureData) -> dict[str, Any]:
    """Serialize a regenerated figure's series."""
    return {
        "schema": _SCHEMA,
        "figure_id": figure.figure_id,
        "title": figure.title,
        "x_label": figure.x_label,
        "y_label": figure.y_label,
        "notes": list(figure.notes),
        "series": [
            {"label": s.label, "xs": list(s.xs), "ys": list(s.ys)}
            for s in figure.series
        ],
    }


def figure_from_dict(payload: dict[str, Any]) -> FigureData:
    """Deserialize a figure."""
    _check_schema(payload)
    return FigureData(
        figure_id=_expect(payload, "figure_id"),
        title=_expect(payload, "title"),
        x_label=_expect(payload, "x_label"),
        y_label=_expect(payload, "y_label"),
        notes=tuple(payload.get("notes", ())),
        series=tuple(
            Series(
                label=_expect(s, "label"),
                xs=tuple(_expect(s, "xs")),
                ys=tuple(_expect(s, "ys")),
            )
            for s in _expect(payload, "series")
        ),
    )
