"""Physical operators of the macro-expanded operator tree (Figure 1(b)).

An execution plan tree is "macro-expanded" into an *operator tree* by
refining each node into physical operators — ``scan``, ``build``, and
``probe`` for the hash-join plans of the Section 6 testbed:

* ``scan(R)`` reads base relation ``R`` from disk and streams its tuples
  (repartitioned over the interconnect, assumption A5) to its consumer;
* ``build(J)`` consumes the inner input stream of join ``J`` and
  constructs the in-memory hash table (assumption A1: the table is
  memory-resident);
* ``probe(J)`` consumes the outer input stream, probes the hash table and
  streams result tuples to its consumer (or to the query's client when
  ``J`` is the plan root).

Edges between operators carry two kinds of timing constraints:
*pipelining* (producer and consumer run concurrently) and *blocking*
(the consumer cannot start before the producer completes — here, the
``build(J) -> probe(J)`` edge, since the hash table must be complete
before probing begins).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.exceptions import PlanStructureError
from repro.core.cloning import OperatorSpec
from repro.plans.relations import Relation

__all__ = [
    "OperatorKind",
    "EdgeKind",
    "PhysicalOperator",
    "scan_op",
    "build_op",
    "probe_op",
    "sort_op",
    "merge_op",
    "store_op",
    "rescan_op",
    "anchor_operator_name",
]


class OperatorKind(Enum):
    """The physical operator vocabulary.

    ``SCAN``/``BUILD``/``PROBE`` are the hash-join testbed of Section 6;
    ``SORT``/``MERGE`` extend the library to sort-merge joins — the paper
    notes TREESCHEDULE "can be applied to *any* bushy plan" (§6.1), and
    sort-merge plans exercise a different blocking structure (two
    blocking producers per join instead of one).  ``STORE``/``RESCAN``
    are materialization points: a join's output is written to disk and
    re-read by the consumer in a later phase — §3.1's example of a rooted
    operator ("scanning the materialized result of a previous task") and
    the serialization device deep plans need [HCY94].
    """

    SCAN = "scan"
    BUILD = "build"
    PROBE = "probe"
    SORT = "sort"
    MERGE = "merge"
    STORE = "store"
    RESCAN = "rescan"


class EdgeKind(Enum):
    """Timing constraint carried by an operator-tree edge (Figure 1(b))."""

    #: Thin edge: producer and consumer execute concurrently.
    PIPELINE = "pipeline"
    #: Thick edge: consumer starts only after producer completes.
    BLOCKING = "blocking"


@dataclass(eq=False)
class PhysicalOperator:
    """One node of the operator tree.

    Identity is by object (two operators with equal fields are still
    distinct nodes); ``name`` is unique within a plan and keys constraint
    (A) during scheduling.

    Attributes
    ----------
    name:
        Unique name, e.g. ``"scan(R3)"`` or ``"probe(J2)"``.
    kind:
        Operator kind (scan / build / probe).
    input_tuples:
        Tuples consumed from the operator's pipelined input stream
        (0 for scans, which read from disk).
    output_tuples:
        Tuples produced on the operator's pipelined output stream
        (0 for builds, whose product — the hash table — stays in memory).
    relation:
        The base relation, for scans.
    join_id:
        The owning join, for builds and probes.
    spec:
        The scheduler-facing :class:`~repro.core.cloning.OperatorSpec`,
        filled in by :func:`repro.cost.annotate.annotate_plan`.
    """

    name: str
    kind: OperatorKind
    input_tuples: int = 0
    output_tuples: int = 0
    relation: Relation | None = None
    join_id: str | None = None
    spec: OperatorSpec | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise PlanStructureError("operator name must be non-empty")
        if self.input_tuples < 0 or self.output_tuples < 0:
            raise PlanStructureError(
                f"operator {self.name!r}: tuple counts must be >= 0"
            )
        if self.kind is OperatorKind.SCAN and self.relation is None:
            raise PlanStructureError(f"scan {self.name!r} needs a relation")
        if (
            self.kind
            in (
                OperatorKind.BUILD,
                OperatorKind.PROBE,
                OperatorKind.MERGE,
                OperatorKind.STORE,
                OperatorKind.RESCAN,
            )
            and not self.join_id
        ):
            raise PlanStructureError(f"{self.kind.value} {self.name!r} needs a join_id")

    @property
    def annotated(self) -> bool:
        """``True`` once the cost model attached an :class:`OperatorSpec`."""
        return self.spec is not None

    def require_spec(self) -> OperatorSpec:
        """Return the attached spec, raising when the plan is unannotated."""
        if self.spec is None:
            raise PlanStructureError(
                f"operator {self.name!r} has no cost annotation; run "
                "repro.cost.annotate.annotate_plan first"
            )
        return self.spec

    def __repr__(self) -> str:
        return f"PhysicalOperator({self.name!r})"

    def __hash__(self) -> int:  # identity hash; names enforce uniqueness separately
        return id(self)


def scan_op(relation: Relation) -> PhysicalOperator:
    """Construct the scan operator for a base relation."""
    return PhysicalOperator(
        name=f"scan({relation.name})",
        kind=OperatorKind.SCAN,
        input_tuples=0,
        output_tuples=relation.tuples,
        relation=relation,
    )


def build_op(join_id: str, input_tuples: int) -> PhysicalOperator:
    """Construct the build operator of join ``join_id``."""
    return PhysicalOperator(
        name=f"build({join_id})",
        kind=OperatorKind.BUILD,
        input_tuples=input_tuples,
        output_tuples=0,
        join_id=join_id,
    )


def probe_op(join_id: str, outer_tuples: int, output_tuples: int) -> PhysicalOperator:
    """Construct the probe operator of join ``join_id``."""
    return PhysicalOperator(
        name=f"probe({join_id})",
        kind=OperatorKind.PROBE,
        input_tuples=outer_tuples,
        output_tuples=output_tuples,
        join_id=join_id,
    )


def sort_op(join_id: str, side: str, input_tuples: int) -> PhysicalOperator:
    """Construct one sort operator of a sort-merge join.

    ``side`` distinguishes the two inputs (``"l"`` / ``"r"``); a sort
    consumes its (repartitioned) input, materializes sorted runs locally,
    and emits the sorted stream to the merge after completion (blocking).
    """
    if side not in ("l", "r"):
        raise PlanStructureError(f"sort side must be 'l' or 'r', got {side!r}")
    return PhysicalOperator(
        name=f"sort{side}({join_id})",
        kind=OperatorKind.SORT,
        input_tuples=input_tuples,
        output_tuples=input_tuples,
        join_id=join_id,
    )


def store_op(join_id: str, tuples: int) -> PhysicalOperator:
    """Construct the store operator materializing join ``join_id``'s output."""
    return PhysicalOperator(
        name=f"store({join_id})",
        kind=OperatorKind.STORE,
        input_tuples=tuples,
        output_tuples=0,
        join_id=join_id,
    )


def rescan_op(join_id: str, tuples: int) -> PhysicalOperator:
    """Construct the rescan of join ``join_id``'s materialized output.

    Rooted at the store's home: the paper's §3.1 example of a rooted
    operator.
    """
    return PhysicalOperator(
        name=f"rescan({join_id})",
        kind=OperatorKind.RESCAN,
        input_tuples=0,
        output_tuples=tuples,
        join_id=join_id,
    )


def anchor_operator_name(op: PhysicalOperator) -> str | None:
    """The name of the operator whose home roots ``op``, if any.

    * a hash join's probe runs at its build's home (the hash table);
    * a rescan runs at its store's home (the materialized partitions).

    Returns ``None`` for floating operator kinds.  Every scheduler uses
    this single rule, so new rooted kinds only need to be added here.
    """
    if op.kind is OperatorKind.PROBE:
        return f"build({op.join_id})"
    if op.kind is OperatorKind.RESCAN:
        return f"store({op.join_id})"
    return None


def merge_op(join_id: str, left_tuples: int, right_tuples: int, output_tuples: int) -> PhysicalOperator:
    """Construct the merge operator of a sort-merge join.

    Consumes both sorted streams (their combined cardinality is recorded
    as ``input_tuples``) and emits the join result.
    """
    return PhysicalOperator(
        name=f"merge({join_id})",
        kind=OperatorKind.MERGE,
        input_tuples=left_tuples + right_tuples,
        output_tuples=output_tuples,
        join_id=join_id,
    )
