"""Physical operators of the macro-expanded operator tree (Figure 1(b)).

An execution plan tree is "macro-expanded" into an *operator tree* by
refining each node into physical operators — ``scan``, ``build``, and
``probe`` for the hash-join plans of the Section 6 testbed:

* ``scan(R)`` reads base relation ``R`` from disk and streams its tuples
  (repartitioned over the interconnect, assumption A5) to its consumer;
* ``build(J)`` consumes the inner input stream of join ``J`` and
  constructs the in-memory hash table (assumption A1: the table is
  memory-resident);
* ``probe(J)`` consumes the outer input stream, probes the hash table and
  streams result tuples to its consumer (or to the query's client when
  ``J`` is the plan root).

Edges between operators carry two kinds of timing constraints:
*pipelining* (producer and consumer run concurrently) and *blocking*
(the consumer cannot start before the producer completes — here, the
``build(J) -> probe(J)`` edge, since the hash table must be complete
before probing begins).
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from enum import Enum

from repro.exceptions import ImmutableAnnotationError, PlanStructureError
from repro.core.cloning import OperatorSpec
from repro.plans.relations import Relation

__all__ = [
    "OperatorKind",
    "EdgeKind",
    "PhysicalOperator",
    "scan_op",
    "build_op",
    "probe_op",
    "sort_op",
    "merge_op",
    "store_op",
    "rescan_op",
    "anchor_operator_name",
    "use_annotation",
    "active_annotation",
]


#: The annotation view consulted by :meth:`PhysicalOperator.require_spec`
#: before falling back to the spec attached to the node.  Scoped with
#: :func:`use_annotation`; a context variable so concurrent schedulers in
#: different threads/tasks cannot observe each other's view.
_ACTIVE_ANNOTATION: ContextVar[Mapping[str, OperatorSpec] | None] = ContextVar(
    "repro_active_annotation", default=None
)


@contextmanager
def use_annotation(annotation: Mapping[str, OperatorSpec] | None) -> Iterator[None]:
    """Make ``annotation`` the active spec view for the ``with`` body.

    While active, :meth:`PhysicalOperator.require_spec` resolves specs
    from this name-keyed mapping (a
    :class:`~repro.cost.annotate.PlanAnnotation`) instead of the specs
    attached to the operator nodes — the mechanism that lets one shared,
    immutable operator tree be scheduled under many different
    :class:`~repro.cost.params.SystemParameters` without ever rewriting
    the tree.  ``None`` is accepted and is a no-op, so callers can pass
    an optional annotation through unconditionally.
    """
    if annotation is None:
        yield
        return
    token = _ACTIVE_ANNOTATION.set(annotation)
    try:
        yield
    finally:
        _ACTIVE_ANNOTATION.reset(token)


def active_annotation() -> Mapping[str, OperatorSpec] | None:
    """The annotation view installed by :func:`use_annotation`, if any."""
    return _ACTIVE_ANNOTATION.get()


class OperatorKind(Enum):
    """The physical operator vocabulary.

    ``SCAN``/``BUILD``/``PROBE`` are the hash-join testbed of Section 6;
    ``SORT``/``MERGE`` extend the library to sort-merge joins — the paper
    notes TREESCHEDULE "can be applied to *any* bushy plan" (§6.1), and
    sort-merge plans exercise a different blocking structure (two
    blocking producers per join instead of one).  ``STORE``/``RESCAN``
    are materialization points: a join's output is written to disk and
    re-read by the consumer in a later phase — §3.1's example of a rooted
    operator ("scanning the materialized result of a previous task") and
    the serialization device deep plans need [HCY94].
    """

    SCAN = "scan"
    BUILD = "build"
    PROBE = "probe"
    SORT = "sort"
    MERGE = "merge"
    STORE = "store"
    RESCAN = "rescan"


class EdgeKind(Enum):
    """Timing constraint carried by an operator-tree edge (Figure 1(b))."""

    #: Thin edge: producer and consumer execute concurrently.
    PIPELINE = "pipeline"
    #: Thick edge: consumer starts only after producer completes.
    BLOCKING = "blocking"


@dataclass(eq=False)
class PhysicalOperator:
    """One node of the operator tree.

    Identity is by object (two operators with equal fields are still
    distinct nodes); ``name`` is unique within a plan and keys constraint
    (A) during scheduling.

    Attributes
    ----------
    name:
        Unique name, e.g. ``"scan(R3)"`` or ``"probe(J2)"``.
    kind:
        Operator kind (scan / build / probe).
    input_tuples:
        Tuples consumed from the operator's pipelined input stream
        (0 for scans, which read from disk).
    output_tuples:
        Tuples produced on the operator's pipelined output stream
        (0 for builds, whose product — the hash table — stays in memory).
    relation:
        The base relation, for scans.
    join_id:
        The owning join, for builds and probes.
    spec:
        The scheduler-facing :class:`~repro.core.cloning.OperatorSpec`,
        filled in by :func:`repro.cost.annotate.annotate_plan`.
        **Write-once**: attaching a spec to an unannotated operator is
        allowed exactly once; re-assigning a *different* spec raises
        :class:`~repro.exceptions.ImmutableAnnotationError` (re-assigning
        an equal spec is an idempotent no-op).  Annotating the same tree
        under different parameters goes through the detached
        :meth:`~repro.cost.annotate.PlanAnnotation.with_params` view.
    """

    name: str
    kind: OperatorKind
    input_tuples: int = 0
    output_tuples: int = 0
    relation: Relation | None = None
    join_id: str | None = None
    spec: OperatorSpec | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise PlanStructureError("operator name must be non-empty")
        if self.input_tuples < 0 or self.output_tuples < 0:
            raise PlanStructureError(
                f"operator {self.name!r}: tuple counts must be >= 0"
            )
        if self.kind is OperatorKind.SCAN and self.relation is None:
            raise PlanStructureError(f"scan {self.name!r} needs a relation")
        if (
            self.kind
            in (
                OperatorKind.BUILD,
                OperatorKind.PROBE,
                OperatorKind.MERGE,
                OperatorKind.STORE,
                OperatorKind.RESCAN,
            )
            and not self.join_id
        ):
            raise PlanStructureError(f"{self.kind.value} {self.name!r} needs a join_id")

    def __setattr__(self, name: str, value: object) -> None:
        # Operator specs are write-once so cached/shared operator trees can
        # never have their cost annotation rewritten underneath another
        # consumer.  Setting an equal spec stays an idempotent no-op.
        if name == "spec" and value is not None:
            current = getattr(self, "spec", None)
            if current is not None and value != current:
                raise ImmutableAnnotationError(
                    f"operator {self.name!r} already carries a cost annotation; "
                    "attached specs are immutable — re-annotate under different "
                    "parameters with PlanAnnotation.with_params(...) instead"
                )
        super().__setattr__(name, value)

    @property
    def annotated(self) -> bool:
        """``True`` once the cost model attached an :class:`OperatorSpec`."""
        return self.spec is not None

    def require_spec(self) -> OperatorSpec:
        """Return this operator's spec, raising when unannotated.

        Resolution order: the annotation view installed by
        :func:`use_annotation` (if any) wins over the spec attached to
        the node, so shared trees can be scheduled under a side-table
        annotation computed for different system parameters.
        """
        annotation = _ACTIVE_ANNOTATION.get()
        if annotation is not None:
            spec = annotation.get(self.name)
            if spec is not None:
                return spec
        if self.spec is None:
            raise PlanStructureError(
                f"operator {self.name!r} has no cost annotation; run "
                "repro.cost.annotate.annotate_plan first"
            )
        return self.spec

    def __repr__(self) -> str:
        return f"PhysicalOperator({self.name!r})"

    def __hash__(self) -> int:  # identity hash; names enforce uniqueness separately
        return id(self)


def scan_op(relation: Relation) -> PhysicalOperator:
    """Construct the scan operator for a base relation."""
    return PhysicalOperator(
        name=f"scan({relation.name})",
        kind=OperatorKind.SCAN,
        input_tuples=0,
        output_tuples=relation.tuples,
        relation=relation,
    )


def build_op(join_id: str, input_tuples: int) -> PhysicalOperator:
    """Construct the build operator of join ``join_id``."""
    return PhysicalOperator(
        name=f"build({join_id})",
        kind=OperatorKind.BUILD,
        input_tuples=input_tuples,
        output_tuples=0,
        join_id=join_id,
    )


def probe_op(join_id: str, outer_tuples: int, output_tuples: int) -> PhysicalOperator:
    """Construct the probe operator of join ``join_id``."""
    return PhysicalOperator(
        name=f"probe({join_id})",
        kind=OperatorKind.PROBE,
        input_tuples=outer_tuples,
        output_tuples=output_tuples,
        join_id=join_id,
    )


def sort_op(join_id: str, side: str, input_tuples: int) -> PhysicalOperator:
    """Construct one sort operator of a sort-merge join.

    ``side`` distinguishes the two inputs (``"l"`` / ``"r"``); a sort
    consumes its (repartitioned) input, materializes sorted runs locally,
    and emits the sorted stream to the merge after completion (blocking).
    """
    if side not in ("l", "r"):
        raise PlanStructureError(f"sort side must be 'l' or 'r', got {side!r}")
    return PhysicalOperator(
        name=f"sort{side}({join_id})",
        kind=OperatorKind.SORT,
        input_tuples=input_tuples,
        output_tuples=input_tuples,
        join_id=join_id,
    )


def store_op(join_id: str, tuples: int) -> PhysicalOperator:
    """Construct the store operator materializing join ``join_id``'s output."""
    return PhysicalOperator(
        name=f"store({join_id})",
        kind=OperatorKind.STORE,
        input_tuples=tuples,
        output_tuples=0,
        join_id=join_id,
    )


def rescan_op(join_id: str, tuples: int) -> PhysicalOperator:
    """Construct the rescan of join ``join_id``'s materialized output.

    Rooted at the store's home: the paper's §3.1 example of a rooted
    operator.
    """
    return PhysicalOperator(
        name=f"rescan({join_id})",
        kind=OperatorKind.RESCAN,
        input_tuples=0,
        output_tuples=tuples,
        join_id=join_id,
    )


def anchor_operator_name(op: PhysicalOperator) -> str | None:
    """The name of the operator whose home roots ``op``, if any.

    * a hash join's probe runs at its build's home (the hash table);
    * a rescan runs at its store's home (the materialized partitions).

    Returns ``None`` for floating operator kinds.  Every scheduler uses
    this single rule, so new rooted kinds only need to be added here.
    """
    if op.kind is OperatorKind.PROBE:
        return f"build({op.join_id})"
    if op.kind is OperatorKind.RESCAN:
        return f"store({op.join_id})"
    return None


def merge_op(join_id: str, left_tuples: int, right_tuples: int, output_tuples: int) -> PhysicalOperator:
    """Construct the merge operator of a sort-merge join.

    Consumes both sorted streams (their combined cardinality is recorded
    as ``input_tuples``) and emits the join result.
    """
    return PhysicalOperator(
        name=f"merge({join_id})",
        kind=OperatorKind.MERGE,
        input_tuples=left_tuples + right_tuples,
        output_tuples=output_tuples,
        join_id=join_id,
    )
