"""Bushy hash-join execution plans (Figure 1(a) and the Section 6.1 workload).

An execution plan tree has base-relation leaves and binary hash-join
internal nodes.  Each join distinguishes its *build* (inner) input — the
side whose tuples populate the hash table — from its *probe* (outer)
input.  The experiments assume simple key joins, so a join's output
cardinality is the larger of its two input cardinalities.

The workload generator selects a random bushy plan for a tree query graph
by repeatedly contracting a uniformly random join edge — every shape from
left-deep chains to balanced bushy trees can arise, matching the paper's
"for each graph a bushy execution plan was randomly selected".
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterator
from enum import Enum

import networkx as nx

try:  # pragma: no cover - exercised by the no-numpy CI job
    import numpy as np  # noqa: F401 - annotations only
except ImportError:  # numpy is optional; rng parameters are duck-typed
    np = None  # type: ignore[assignment]

from repro.exceptions import PlanStructureError
from repro.plans.query_graph import QueryGraph
from repro.plans.relations import Catalog, Relation

__all__ = [
    "JoinMethod",
    "PlanNode",
    "BaseRelationNode",
    "JoinNode",
    "random_bushy_plan",
    "key_join_cardinality",
]


class JoinMethod(Enum):
    """Physical join algorithm of one plan node.

    The Section 6 testbed is pure hash joins; sort-merge joins are this
    library's generality extension (the paper notes TREESCHEDULE applies
    to any bushy plan).  The two differ in macro-expansion: a hash join
    yields build + probe with one blocking edge; a sort-merge join yields
    two sorts + a merge with two blocking edges.
    """

    HASH = "hash"
    SORT_MERGE = "sort_merge"


def key_join_cardinality(left_tuples: int, right_tuples: int) -> int:
    """Result size of a simple key join: ``max(|L|, |R|)`` (Section 6.1)."""
    if left_tuples < 0 or right_tuples < 0:
        raise PlanStructureError("cardinalities must be >= 0")
    return max(left_tuples, right_tuples)


class PlanNode(ABC):
    """A node of a bushy execution plan tree."""

    @property
    @abstractmethod
    def output_tuples(self) -> int:
        """Cardinality of the node's output stream."""

    @abstractmethod
    def iter_nodes(self) -> Iterator["PlanNode"]:
        """Post-order traversal of the subtree rooted here."""

    @property
    def num_joins(self) -> int:
        """Number of join nodes in this subtree."""
        return sum(1 for node in self.iter_nodes() if isinstance(node, JoinNode))

    @property
    def height(self) -> int:
        """Height of the subtree (a leaf has height 0)."""
        children = self.children
        if not children:
            return 0
        return 1 + max(child.height for child in children)

    @property
    @abstractmethod
    def children(self) -> tuple["PlanNode", ...]:
        """The node's children (empty for leaves)."""

    def leaves(self) -> list["BaseRelationNode"]:
        """All base-relation leaves of the subtree, left to right."""
        return [n for n in self.iter_nodes() if isinstance(n, BaseRelationNode)]

    def joins(self) -> list["JoinNode"]:
        """All join nodes of the subtree, in post-order."""
        return [n for n in self.iter_nodes() if isinstance(n, JoinNode)]

    def pretty(self, indent: int = 0) -> str:
        """Render the subtree as an indented ASCII outline."""
        raise NotImplementedError


class BaseRelationNode(PlanNode):
    """A leaf of the plan: a scan of one base relation."""

    def __init__(self, relation: Relation):
        self.relation = relation

    @property
    def output_tuples(self) -> int:
        return self.relation.tuples

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return ()

    def iter_nodes(self) -> Iterator[PlanNode]:
        yield self

    def pretty(self, indent: int = 0) -> str:
        pad = "  " * indent
        return f"{pad}{self.relation.name} [{self.relation.tuples} tuples]"

    def __repr__(self) -> str:
        return f"BaseRelationNode({self.relation.name!r})"


class JoinNode(PlanNode):
    """A binary join.

    Attributes
    ----------
    join_id:
        Identifier unique within the plan (``"J0"``, ``"J1"``, ...).
    build_side:
        The inner (left) input.  For a hash join its tuples are hashed
        into the join's table; for a sort-merge join it is simply the
        left sort input.
    probe_side:
        The outer (right) input; probes the table (hash) or feeds the
        right sort (sort-merge).
    method:
        The physical join algorithm (default: hash, the paper's testbed).
    materialize_output:
        When ``True`` the join's output is stored to disk and re-read by
        its consumer in a later phase (a serialization point — §3.1's
        rooted-rescan example).  Ignored at the plan root, whose output
        goes to the client.
    """

    def __init__(
        self,
        join_id: str,
        build_side: PlanNode,
        probe_side: PlanNode,
        method: JoinMethod = JoinMethod.HASH,
        materialize_output: bool = False,
    ):
        if not join_id:
            raise PlanStructureError("join_id must be non-empty")
        if build_side is probe_side:
            raise PlanStructureError("a join's two inputs must be distinct nodes")
        self.join_id = join_id
        self.build_side = build_side
        self.probe_side = probe_side
        self.method = method
        self.materialize_output = materialize_output

    @property
    def output_tuples(self) -> int:
        return key_join_cardinality(
            self.build_side.output_tuples, self.probe_side.output_tuples
        )

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.build_side, self.probe_side)

    def iter_nodes(self) -> Iterator[PlanNode]:
        yield from self.build_side.iter_nodes()
        yield from self.probe_side.iter_nodes()
        yield self

    def pretty(self, indent: int = 0) -> str:
        def tag(block: str, label: str) -> str:
            first, _, rest = block.partition("\n")
            tagged = f"{first}   ({label})"
            return tagged if not rest else f"{tagged}\n{rest}"

        pad = "  " * indent
        suffix = "" if self.method is JoinMethod.HASH else f" <{self.method.value}>"
        lines = [f"{pad}{self.join_id}{suffix} [{self.output_tuples} tuples]"]
        labels = (
            ("build", "probe")
            if self.method is JoinMethod.HASH
            else ("left", "right")
        )
        lines.append(tag(self.build_side.pretty(indent + 1), labels[0]))
        lines.append(tag(self.probe_side.pretty(indent + 1), labels[1]))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"JoinNode({self.join_id!r}, method={self.method.value}, "
            f"out={self.output_tuples})"
        )


def random_bushy_plan(
    graph: QueryGraph,
    catalog: Catalog,
    rng: np.random.Generator,
    *,
    smaller_side_builds: bool = True,
    merge_join_fraction: float = 0.0,
) -> PlanNode:
    """Select a random bushy hash-join plan for a tree query.

    Repeatedly picks a uniformly random remaining join edge of the
    (contracted) query graph, joins the two incident plan fragments, and
    contracts the edge.  Because the query graph is a tree, every
    contraction step keeps it a tree and exactly ``num_joins`` joins are
    produced.

    Parameters
    ----------
    graph:
        The tree query graph.
    catalog:
        Supplies relation cardinalities.
    rng:
        Seeded NumPy generator.
    smaller_side_builds:
        When ``True`` (default) the smaller fragment becomes the build
        (inner) side — the standard hash-join convention, minimizing hash
        table size.  When ``False`` the orientation is random.
    merge_join_fraction:
        Probability that a join uses the sort-merge method instead of
        hash (default 0.0: the paper's pure hash-join testbed).

    Returns
    -------
    PlanNode
        The root of the selected plan.
    """
    if not 0.0 <= merge_join_fraction <= 1.0:
        raise PlanStructureError(
            f"merge_join_fraction must lie in [0, 1], got {merge_join_fraction}"
        )
    fragments: dict[str, PlanNode] = {
        name: BaseRelationNode(catalog.get(name)) for name in graph.relations
    }
    contracted = graph.to_networkx()
    join_counter = 0
    while contracted.number_of_edges() > 0:
        edges = sorted(tuple(sorted(e)) for e in contracted.edges)
        u, v = edges[int(rng.integers(0, len(edges)))]
        left, right = fragments[u], fragments[v]
        if smaller_side_builds:
            if left.output_tuples <= right.output_tuples:
                build, probe = left, right
            else:
                build, probe = right, left
        else:
            if rng.integers(0, 2) == 0:
                build, probe = left, right
            else:
                build, probe = right, left
        method = (
            JoinMethod.SORT_MERGE
            if merge_join_fraction > 0.0 and rng.random() < merge_join_fraction
            else JoinMethod.HASH
        )
        join = JoinNode(f"J{join_counter}", build, probe, method=method)
        join_counter += 1
        # Contract: merge v into u, re-homing v's other edges onto u.
        contracted = nx.contracted_nodes(contracted, u, v, self_loops=False)
        fragments[u] = join
        del fragments[v]
    roots = list(fragments.values())
    if len(roots) != 1:
        raise PlanStructureError(
            f"plan construction left {len(roots)} fragments; query graph not connected?"
        )
    return roots[0]
