"""Seeded workload generation (the Section 6.1 experimental methodology).

The paper's evaluation draws, for each query size (10, 20, 30, 40, 50
joins), twenty random tree query graphs and one random bushy execution
plan per graph.  :func:`generate_query` reproduces one such draw;
:func:`generate_workload` batches a full query-size cohort.  All
randomness flows through one seeded :class:`numpy.random.Generator`, so
workloads are exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

try:  # pragma: no cover - exercised by the no-numpy CI job
    import numpy as np
except ImportError:  # numpy is an optional extra; workload drawing needs it
    np = None  # type: ignore[assignment]

from repro.exceptions import ConfigurationError
from repro.plans.join_tree import PlanNode, random_bushy_plan
from repro.plans.operator_tree import OperatorTree, expand_plan
from repro.plans.query_graph import QueryGraph, random_tree_query
from repro.plans.relations import Catalog, random_catalog
from repro.plans.task_tree import TaskTree, build_task_tree

__all__ = ["GeneratedQuery", "generate_query", "generate_workload"]


@dataclass
class GeneratedQuery:
    """One randomly drawn query with all derived structures.

    Attributes
    ----------
    catalog:
        The base relations referenced by the query.
    graph:
        The tree query graph.
    plan:
        The selected bushy hash-join execution plan (its root node).
    operator_tree:
        The macro-expanded operator tree (Figure 1(b)); *not yet* cost
        annotated — call :func:`repro.cost.annotate.annotate_plan`.
    task_tree:
        The query task tree (Figure 1(c)).
    """

    catalog: Catalog
    graph: QueryGraph
    plan: PlanNode
    operator_tree: OperatorTree = field(repr=False)
    task_tree: TaskTree = field(repr=False)

    @property
    def num_joins(self) -> int:
        """Number of joins in the query."""
        return self.plan.num_joins

    def __repr__(self) -> str:
        return (
            f"GeneratedQuery(joins={self.num_joins}, "
            f"operators={len(self.operator_tree)}, tasks={len(self.task_tree)})"
        )


def generate_query(
    n_joins: int,
    rng: np.random.Generator,
    *,
    min_tuples: int = 1_000,
    max_tuples: int = 100_000,
    merge_join_fraction: float = 0.0,
) -> GeneratedQuery:
    """Draw one random tree query of ``n_joins`` joins with a bushy plan.

    Parameters
    ----------
    n_joins:
        Number of join predicates; the query references ``n_joins + 1``
        base relations.
    rng:
        Seeded NumPy generator (sole source of randomness).
    min_tuples, max_tuples:
        Relation cardinality range (paper: 10^3 to 10^5 tuples),
        log-uniformly sampled.
    merge_join_fraction:
        Probability that a join uses the sort-merge method (default 0.0:
        the paper's pure hash-join testbed).
    """
    if n_joins < 0:
        raise ConfigurationError(f"n_joins must be >= 0, got {n_joins}")
    catalog = random_catalog(
        n_joins + 1, rng, min_tuples=min_tuples, max_tuples=max_tuples
    )
    graph = random_tree_query(catalog, rng)
    plan = random_bushy_plan(
        graph, catalog, rng, merge_join_fraction=merge_join_fraction
    )
    op_tree = expand_plan(plan)
    task_tree = build_task_tree(op_tree)
    return GeneratedQuery(
        catalog=catalog,
        graph=graph,
        plan=plan,
        operator_tree=op_tree,
        task_tree=task_tree,
    )


def generate_workload(
    n_joins: int,
    n_queries: int,
    seed: int,
    *,
    min_tuples: int = 1_000,
    max_tuples: int = 100_000,
    merge_join_fraction: float = 0.0,
) -> list[GeneratedQuery]:
    """Draw a cohort of ``n_queries`` random queries of one size.

    The paper uses twenty query graphs per size; results are reported as
    averages over the cohort.  A fresh :class:`numpy.random.Generator`
    is created from ``seed``, so equal arguments give identical
    workloads.
    """
    if n_queries < 1:
        raise ConfigurationError(f"n_queries must be >= 1, got {n_queries}")
    if np is None:
        raise ConfigurationError(
            "workload generation needs numpy; install the 'repro[numpy]' extra"
        )
    rng = np.random.default_rng(seed)
    return [
        generate_query(
            n_joins,
            rng,
            min_tuples=min_tuples,
            max_tuples=max_tuples,
            merge_join_fraction=merge_join_fraction,
        )
        for _ in range(n_queries)
    ]
