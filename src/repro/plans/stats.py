"""Workload statistics: describing plans, task trees, and resource mixes.

Summaries used by the examples, the experiment reports, and exploratory
work: how bushy are the generated plans, how wide are the MinShelf
phases, and where does the resource demand sit?  Everything here is a
pure function of already-built structures (no RNG, no scheduling).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import PlanStructureError
from repro.core.work_vector import WorkVector, vector_sum
from repro.plans.generator import GeneratedQuery
from repro.plans.operator_tree import OperatorTree
from repro.plans.phases import min_shelf_phases
from repro.plans.physical_ops import OperatorKind
from repro.plans.task_tree import TaskTree

__all__ = ["PlanStats", "describe_query", "resource_mix"]


@dataclass(frozen=True)
class PlanStats:
    """Structural statistics of one generated query.

    Attributes
    ----------
    num_joins:
        Join count of the plan.
    num_operators:
        Physical operators after macro-expansion (scans + builds + probes).
    num_tasks:
        Query tasks (pipelines).
    plan_height:
        Height of the bushy join tree.
    task_tree_height:
        Height of the task tree (phases = height + 1).
    phase_widths:
        Tasks per MinShelf phase, in execution order.
    max_pipeline_length:
        Operators in the longest pipeline (task).
    total_base_tuples:
        Sum of base-relation cardinalities.
    largest_intermediate_tuples:
        Largest join output in the plan.
    """

    num_joins: int
    num_operators: int
    num_tasks: int
    plan_height: int
    task_tree_height: int
    phase_widths: tuple[int, ...]
    max_pipeline_length: int
    total_base_tuples: int
    largest_intermediate_tuples: int

    @property
    def bushiness(self) -> float:
        """1 - (plan height - 1)/(joins - 1): 1.0 for perfectly balanced
        trees, 0.0 for left-deep chains (single-join plans count as 1)."""
        if self.num_joins <= 1:
            return 1.0
        return 1.0 - (self.plan_height - 1) / (self.num_joins - 1)

    @property
    def mean_phase_width(self) -> float:
        """Average number of concurrent tasks per phase."""
        return sum(self.phase_widths) / len(self.phase_widths)


def describe_query(query: GeneratedQuery) -> PlanStats:
    """Compute :class:`PlanStats` for one generated query."""
    phases = min_shelf_phases(query.task_tree)
    joins = query.plan.joins()
    return PlanStats(
        num_joins=query.num_joins,
        num_operators=len(query.operator_tree),
        num_tasks=len(query.task_tree),
        plan_height=query.plan.height,
        task_tree_height=query.task_tree.height,
        phase_widths=tuple(len(bucket) for bucket in phases),
        max_pipeline_length=max(len(t) for t in query.task_tree.tasks),
        total_base_tuples=query.catalog.total_tuples(),
        largest_intermediate_tuples=max(
            (j.output_tuples for j in joins), default=query.plan.output_tuples
        ),
    )


def resource_mix(op_tree: OperatorTree) -> dict[str, WorkVector]:
    """Aggregate (zero-communication) work vectors by operator kind.

    Requires a cost-annotated tree.  Returns a mapping from operator-kind
    name (``"scan"``, ``"build"``, ``"probe"``) to the kind's total work
    vector, plus ``"total"`` — handy for checking the footnote 4 balance
    property on a specific workload.
    """
    if not op_tree.operators:
        raise PlanStructureError("operator tree is empty")
    d = op_tree.operators[0].require_spec().d
    by_kind: dict[str, list[WorkVector]] = {
        kind.value: [] for kind in OperatorKind
    }
    for op in op_tree.operators:
        by_kind[op.kind.value].append(op.require_spec().work)
    out = {
        kind: vector_sum(vectors, d=d) for kind, vectors in by_kind.items()
    }
    out["total"] = vector_sum(out.values(), d=d)
    return out
