"""Base relations and the catalog (experimental testbed of Section 6.1).

The paper's workload draws relations of 10^3 to 10^5 tuples, with 128-byte
tuples and 40 tuples per page (Table 2).  :class:`Relation` captures one
base table's statistics; :class:`Catalog` is the DBMS-catalog stand-in the
cost model reads (the paper: "determine its individual resource
requirements using hardware parameters, DBMS statistics, and conventional
optimizer cost models").
"""

from __future__ import annotations

import math
from collections.abc import Iterator
from dataclasses import dataclass

try:  # pragma: no cover - exercised by the no-numpy CI job
    import numpy as np  # noqa: F401 - annotations only
except ImportError:  # numpy is optional; rng parameters are duck-typed
    np = None  # type: ignore[assignment]

from repro.exceptions import ConfigurationError, PlanStructureError

__all__ = ["Relation", "Catalog", "random_catalog"]


@dataclass(frozen=True)
class Relation:
    """Statistics of one base relation.

    Attributes
    ----------
    name:
        Relation name, unique within a catalog.
    tuples:
        Cardinality in tuples.
    """

    name: str
    tuples: int

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("relation name must be non-empty")
        if self.tuples < 0:
            raise ConfigurationError(
                f"relation {self.name!r}: cardinality must be >= 0, got {self.tuples}"
            )

    def pages(self, tuples_per_page: int) -> int:
        """Number of pages occupied, rounded up."""
        if tuples_per_page < 1:
            raise ConfigurationError(
                f"tuples_per_page must be >= 1, got {tuples_per_page}"
            )
        return math.ceil(self.tuples / tuples_per_page)

    def size_bytes(self, tuple_bytes: int) -> int:
        """Total size in bytes."""
        if tuple_bytes < 1:
            raise ConfigurationError(f"tuple_bytes must be >= 1, got {tuple_bytes}")
        return self.tuples * tuple_bytes


class Catalog:
    """A named collection of base relations.

    Behaves like a read-mostly mapping from relation name to
    :class:`Relation`; insertion order is preserved (it determines the
    default join-graph vertex order of the workload generator).
    """

    def __init__(self, relations: Iterator[Relation] | list[Relation] = ()):  # noqa: B008
        self._relations: dict[str, Relation] = {}
        for rel in relations:
            self.add(rel)

    def add(self, relation: Relation) -> None:
        """Register ``relation``; duplicate names are rejected."""
        if relation.name in self._relations:
            raise PlanStructureError(f"duplicate relation name {relation.name!r}")
        self._relations[relation.name] = relation

    def get(self, name: str) -> Relation:
        """Return the relation called ``name``."""
        try:
            return self._relations[name]
        except KeyError:
            raise PlanStructureError(f"unknown relation {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __len__(self) -> int:
        return len(self._relations)

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    @property
    def names(self) -> list[str]:
        """Relation names in insertion order."""
        return list(self._relations)

    def total_tuples(self) -> int:
        """Sum of cardinalities over all relations."""
        return sum(rel.tuples for rel in self)

    def __repr__(self) -> str:
        return f"Catalog({len(self)} relations, {self.total_tuples()} tuples)"


def random_catalog(
    n_relations: int,
    rng: np.random.Generator,
    *,
    min_tuples: int = 1_000,
    max_tuples: int = 100_000,
    name_prefix: str = "R",
) -> Catalog:
    """Draw a catalog of ``n_relations`` random base relations.

    Cardinalities are sampled log-uniformly on ``[min_tuples, max_tuples]``
    — matching the paper's "Relation Size: 10^3 - 10^5 tuples" range while
    giving every order of magnitude equal representation (a uniform draw
    would make small relations vanishingly rare).

    Parameters
    ----------
    n_relations:
        Number of relations (a ``k``-join tree query needs ``k + 1``).
    rng:
        Seeded NumPy generator — the only source of randomness.
    """
    if n_relations < 1:
        raise ConfigurationError(f"n_relations must be >= 1, got {n_relations}")
    if not 0 < min_tuples <= max_tuples:
        raise ConfigurationError(
            f"need 0 < min_tuples <= max_tuples, got {min_tuples}, {max_tuples}"
        )
    lo, hi = math.log(min_tuples), math.log(max_tuples)
    catalog = Catalog()
    for i in range(n_relations):
        tuples = int(round(math.exp(rng.uniform(lo, hi))))
        tuples = min(max(tuples, min_tuples), max_tuples)
        catalog.add(Relation(name=f"{name_prefix}{i}", tuples=tuples))
    return catalog
