"""Operator trees: macro-expansion of execution plans (Figure 1(a) → 1(b)).

:func:`expand_plan` refines every node of a bushy hash-join plan into its
physical operators and wires the pipelining/blocking edges:

* a base-relation leaf becomes ``scan(R)``;
* a join ``J`` becomes ``build(J)`` and ``probe(J)`` with

  - a *pipeline* edge from the inner input's producer to ``build(J)``,
  - a *pipeline* edge from the outer input's producer to ``probe(J)``,
  - a *blocking* edge ``build(J) -> probe(J)`` (the hash table must be
    complete before probing can begin);

* the producer of a join's output stream is its probe.

Expanding a hash join yields at most four operator nodes (two scans, one
build, one probe), so the operator tree has ``O(J)`` nodes for a
``J``-join query — the observation behind Proposition 5.2's complexity
bound for TREESCHEDULE.
"""

from __future__ import annotations

from collections.abc import Iterator

import networkx as nx

from repro.exceptions import PlanStructureError
from repro.plans.join_tree import BaseRelationNode, JoinMethod, JoinNode, PlanNode
from repro.plans.physical_ops import (
    EdgeKind,
    OperatorKind,
    PhysicalOperator,
    build_op,
    merge_op,
    probe_op,
    rescan_op,
    scan_op,
    sort_op,
    store_op,
)

__all__ = ["OperatorTree", "expand_plan"]


class OperatorTree:
    """A DAG of physical operators with typed (pipeline/blocking) edges."""

    def __init__(self):
        self._graph = nx.DiGraph()
        self._root: PhysicalOperator | None = None
        self._names: set[str] = set()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_operator(self, op: PhysicalOperator) -> PhysicalOperator:
        """Add ``op`` as a node; names must be unique within the tree."""
        if op.name in self._names:
            raise PlanStructureError(f"duplicate operator name {op.name!r}")
        self._graph.add_node(op)
        self._names.add(op.name)
        return op

    def add_edge(
        self, producer: PhysicalOperator, consumer: PhysicalOperator, kind: EdgeKind
    ) -> None:
        """Add a typed edge from ``producer`` to ``consumer``."""
        for op in (producer, consumer):
            if op not in self._graph:
                raise PlanStructureError(f"operator {op.name!r} not in tree")
        if producer is consumer:
            raise PlanStructureError(f"self-edge on {producer.name!r}")
        if self._graph.has_edge(producer, consumer):
            raise PlanStructureError(
                f"duplicate edge {producer.name!r} -> {consumer.name!r}"
            )
        # The edge closes a cycle iff ``producer`` is already reachable
        # from ``consumer``.  A targeted DFS beats revalidating the whole
        # graph: during bottom-up plan expansion the consumer was just
        # created and has no successors, so the search ends immediately.
        stack = [consumer]
        seen = {consumer}
        while stack:
            node = stack.pop()
            if node is producer:
                raise PlanStructureError(
                    f"edge {producer.name!r} -> {consumer.name!r} creates a cycle"
                )
            for succ in self._graph.successors(node):
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        self._graph.add_edge(producer, consumer, kind=kind)

    def set_root(self, op: PhysicalOperator) -> None:
        """Mark the operator producing the query's final output."""
        if op not in self._graph:
            raise PlanStructureError(f"operator {op.name!r} not in tree")
        self._root = op

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def root(self) -> PhysicalOperator:
        """The operator producing the final output."""
        if self._root is None:
            raise PlanStructureError("operator tree has no root set")
        return self._root

    @property
    def operators(self) -> list[PhysicalOperator]:
        """All operators in topological (producer-before-consumer) order."""
        return list(nx.topological_sort(self._graph))

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    def __contains__(self, op: PhysicalOperator) -> bool:
        return op in self._graph

    def operator_by_name(self, name: str) -> PhysicalOperator:
        """Look an operator up by its unique name."""
        for op in self._graph.nodes:
            if op.name == name:
                return op
        raise PlanStructureError(f"no operator named {name!r}")

    def edges(self, kind: EdgeKind | None = None) -> list[tuple[PhysicalOperator, PhysicalOperator]]:
        """All edges, optionally filtered by kind."""
        return [
            (u, v)
            for u, v, data in self._graph.edges(data=True)
            if kind is None or data["kind"] is kind
        ]

    def pipeline_edges(self) -> list[tuple[PhysicalOperator, PhysicalOperator]]:
        """The thin (pipelining) edges."""
        return self.edges(EdgeKind.PIPELINE)

    def blocking_edges(self) -> list[tuple[PhysicalOperator, PhysicalOperator]]:
        """The thick (blocking) edges."""
        return self.edges(EdgeKind.BLOCKING)

    def producers(
        self, op: PhysicalOperator, kind: EdgeKind | None = None
    ) -> list[PhysicalOperator]:
        """Operators feeding ``op``, optionally filtered by edge kind."""
        return [
            u
            for u, _, data in self._graph.in_edges(op, data=True)
            if kind is None or data["kind"] is kind
        ]

    def consumers(
        self, op: PhysicalOperator, kind: EdgeKind | None = None
    ) -> list[PhysicalOperator]:
        """Operators fed by ``op``, optionally filtered by edge kind."""
        return [
            v
            for _, v, data in self._graph.out_edges(op, data=True)
            if kind is None or data["kind"] is kind
        ]

    def pipeline_consumer(self, op: PhysicalOperator) -> PhysicalOperator | None:
        """The (unique) pipeline consumer of ``op``, or ``None`` at the root."""
        consumers = self.consumers(op, EdgeKind.PIPELINE)
        if len(consumers) > 1:
            raise PlanStructureError(
                f"operator {op.name!r} has {len(consumers)} pipeline consumers"
            )
        return consumers[0] if consumers else None

    def iter_scans(self) -> Iterator[PhysicalOperator]:
        """All scan operators."""
        return (op for op in self._graph.nodes if op.kind is OperatorKind.SCAN)

    def iter_builds(self) -> Iterator[PhysicalOperator]:
        """All build operators."""
        return (op for op in self._graph.nodes if op.kind is OperatorKind.BUILD)

    def iter_probes(self) -> Iterator[PhysicalOperator]:
        """All probe operators."""
        return (op for op in self._graph.nodes if op.kind is OperatorKind.PROBE)

    def probe_of(self, join_id: str) -> PhysicalOperator:
        """The probe operator of join ``join_id``."""
        for op in self.iter_probes():
            if op.join_id == join_id:
                return op
        raise PlanStructureError(f"no probe for join {join_id!r}")

    def build_of(self, join_id: str) -> PhysicalOperator:
        """The build operator of join ``join_id``."""
        for op in self.iter_builds():
            if op.join_id == join_id:
                return op
        raise PlanStructureError(f"no build for join {join_id!r}")

    def to_networkx(self) -> nx.DiGraph:
        """Return a defensive copy of the underlying DAG."""
        return self._graph.copy()

    def validate(self) -> None:
        """Check the structural invariants of a hash-join operator tree.

        * acyclic (enforced on edge insertion, re-checked here);
        * every operator except the root has exactly one consumer;
        * every build has exactly one blocking consumer — its probe;
        * every blocking edge runs from a build to the probe of the same
          join.
        """
        if not nx.is_directed_acyclic_graph(self._graph):
            raise PlanStructureError("operator tree has a cycle")
        root = self.root
        for op in self._graph.nodes:
            out = self.consumers(op)
            if op is root:
                if out:
                    raise PlanStructureError(
                        f"root {op.name!r} must have no consumers"
                    )
                continue
            if len(out) != 1:
                raise PlanStructureError(
                    f"operator {op.name!r} has {len(out)} consumers; expected 1"
                )
        allowed_blocking = {
            (OperatorKind.BUILD, OperatorKind.PROBE),
            (OperatorKind.SORT, OperatorKind.MERGE),
            (OperatorKind.STORE, OperatorKind.RESCAN),
        }
        for u, v in self.blocking_edges():
            if (u.kind, v.kind) not in allowed_blocking:
                raise PlanStructureError(
                    f"blocking edge {u.name!r} -> {v.name!r} is not one of "
                    "build->probe, sort->merge, store->rescan"
                )
            if u.join_id != v.join_id:
                raise PlanStructureError(
                    f"blocking edge crosses joins: {u.name!r} -> {v.name!r}"
                )

    def __repr__(self) -> str:
        return (
            f"OperatorTree({len(self)} operators, "
            f"{len(self.pipeline_edges())} pipeline / "
            f"{len(self.blocking_edges())} blocking edges)"
        )


def expand_plan(plan: PlanNode) -> OperatorTree:
    """Macro-expand a bushy hash-join plan into its operator tree.

    Returns an :class:`OperatorTree` whose root is the final probe (or the
    lone scan, for a single-relation query).
    """
    tree = OperatorTree()

    def maybe_materialize(
        producer: PhysicalOperator, node: JoinNode, is_root: bool
    ) -> PhysicalOperator:
        """Insert a store -> rescan materialization point if requested."""
        if not node.materialize_output or is_root:
            return producer
        store = tree.add_operator(store_op(node.join_id, node.output_tuples))
        rescan = tree.add_operator(rescan_op(node.join_id, node.output_tuples))
        tree.add_edge(producer, store, EdgeKind.PIPELINE)
        tree.add_edge(store, rescan, EdgeKind.BLOCKING)
        return rescan

    def expand(node: PlanNode, is_root: bool = False) -> PhysicalOperator:
        if isinstance(node, BaseRelationNode):
            return tree.add_operator(scan_op(node.relation))
        if isinstance(node, JoinNode):
            inner_producer = expand(node.build_side)
            outer_producer = expand(node.probe_side)
            if node.method is JoinMethod.HASH:
                build = tree.add_operator(
                    build_op(node.join_id, node.build_side.output_tuples)
                )
                probe = tree.add_operator(
                    probe_op(
                        node.join_id,
                        node.probe_side.output_tuples,
                        node.output_tuples,
                    )
                )
                tree.add_edge(inner_producer, build, EdgeKind.PIPELINE)
                tree.add_edge(outer_producer, probe, EdgeKind.PIPELINE)
                tree.add_edge(build, probe, EdgeKind.BLOCKING)
                return maybe_materialize(probe, node, is_root)
            if node.method is JoinMethod.SORT_MERGE:
                sort_l = tree.add_operator(
                    sort_op(node.join_id, "l", node.build_side.output_tuples)
                )
                sort_r = tree.add_operator(
                    sort_op(node.join_id, "r", node.probe_side.output_tuples)
                )
                merge = tree.add_operator(
                    merge_op(
                        node.join_id,
                        node.build_side.output_tuples,
                        node.probe_side.output_tuples,
                        node.output_tuples,
                    )
                )
                tree.add_edge(inner_producer, sort_l, EdgeKind.PIPELINE)
                tree.add_edge(outer_producer, sort_r, EdgeKind.PIPELINE)
                tree.add_edge(sort_l, merge, EdgeKind.BLOCKING)
                tree.add_edge(sort_r, merge, EdgeKind.BLOCKING)
                return maybe_materialize(merge, node, is_root)
            raise PlanStructureError(f"unknown join method {node.method!r}")
        raise PlanStructureError(f"unknown plan node type {type(node).__name__}")

    root = expand(plan, is_root=True)
    tree.set_root(root)
    tree.validate()
    return tree
