"""Query-plan substrate: relations, query graphs, plans, operator/task trees.

This subpackage builds everything between "a SQL-ish join query" and "a
set of operators the scheduler can reason about" (Figure 1 of the paper):
catalogs of base relations, tree query graphs, random bushy hash-join
plans, macro-expanded operator trees with pipeline/blocking edges, query
task trees, and the MinShelf phase decomposition.
"""

from repro.plans.generator import GeneratedQuery, generate_query, generate_workload
from repro.plans.join_tree import (
    BaseRelationNode,
    JoinMethod,
    JoinNode,
    PlanNode,
    key_join_cardinality,
    random_bushy_plan,
)
from repro.plans.operator_tree import OperatorTree, expand_plan
from repro.plans.phases import eager_shelf_phases, min_shelf_phases, validate_phases
from repro.plans.physical_ops import (
    EdgeKind,
    OperatorKind,
    PhysicalOperator,
    anchor_operator_name,
    build_op,
    merge_op,
    probe_op,
    rescan_op,
    scan_op,
    sort_op,
    store_op,
)
from repro.plans.query_graph import QueryGraph, random_tree_query
from repro.plans.relations import Catalog, Relation, random_catalog
from repro.plans.stats import PlanStats, describe_query, resource_mix
from repro.plans.transform import auto_materialize
from repro.plans.task_tree import Task, TaskTree, build_task_tree

__all__ = [
    "Relation",
    "Catalog",
    "random_catalog",
    "QueryGraph",
    "random_tree_query",
    "PlanNode",
    "BaseRelationNode",
    "JoinMethod",
    "JoinNode",
    "key_join_cardinality",
    "random_bushy_plan",
    "OperatorKind",
    "EdgeKind",
    "PhysicalOperator",
    "scan_op",
    "build_op",
    "probe_op",
    "sort_op",
    "merge_op",
    "store_op",
    "rescan_op",
    "anchor_operator_name",
    "OperatorTree",
    "expand_plan",
    "Task",
    "TaskTree",
    "build_task_tree",
    "min_shelf_phases",
    "eager_shelf_phases",
    "validate_phases",
    "GeneratedQuery",
    "generate_query",
    "generate_workload",
    "PlanStats",
    "describe_query",
    "resource_mix",
    "auto_materialize",
]
