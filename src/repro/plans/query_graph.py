"""Tree query graphs (the Section 6.1 workload's query class).

The experiments use *tree queries*: the query graph — one vertex per base
relation, one edge per join predicate — is a tree.  This module wraps a
:mod:`networkx` graph with tree validation and provides a uniform random
tree generator (via random Prüfer sequences, so every labelled tree on the
relation set is equally likely).
"""

from __future__ import annotations

from collections.abc import Iterable

import networkx as nx

try:  # pragma: no cover - exercised by the no-numpy CI job
    import numpy as np  # noqa: F401 - annotations only
except ImportError:  # numpy is optional; rng parameters are duck-typed
    np = None  # type: ignore[assignment]

from repro.exceptions import PlanStructureError
from repro.plans.relations import Catalog

__all__ = ["QueryGraph", "random_tree_query"]


class QueryGraph:
    """An acyclic (tree) query graph over named base relations.

    Parameters
    ----------
    relations:
        The vertex set (relation names).
    joins:
        The edge set: pairs of relation names with a join predicate
        between them.  Must form a tree over ``relations`` when the query
        has more than one relation.
    """

    def __init__(self, relations: Iterable[str], joins: Iterable[tuple[str, str]]):
        graph = nx.Graph()
        graph.add_nodes_from(relations)
        if graph.number_of_nodes() == 0:
            raise PlanStructureError("query graph needs at least one relation")
        for a, b in joins:
            if a not in graph or b not in graph:
                raise PlanStructureError(f"join ({a!r}, {b!r}) references unknown relation")
            if a == b:
                raise PlanStructureError(f"self-join edge on {a!r} is not allowed")
            if graph.has_edge(a, b):
                raise PlanStructureError(f"duplicate join edge ({a!r}, {b!r})")
            graph.add_edge(a, b)
        if not nx.is_connected(graph):
            raise PlanStructureError("query graph must be connected")
        if graph.number_of_edges() != graph.number_of_nodes() - 1:
            raise PlanStructureError(
                "query graph must be a tree "
                f"({graph.number_of_nodes()} vertices, {graph.number_of_edges()} edges)"
            )
        self._graph = graph

    @property
    def relations(self) -> list[str]:
        """The relation names (vertex set)."""
        return list(self._graph.nodes)

    @property
    def joins(self) -> list[tuple[str, str]]:
        """The join edges."""
        return [tuple(sorted(edge)) for edge in self._graph.edges]

    @property
    def num_joins(self) -> int:
        """Number of join predicates (edges)."""
        return self._graph.number_of_edges()

    def neighbors(self, relation: str) -> list[str]:
        """Relations directly joined with ``relation``."""
        if relation not in self._graph:
            raise PlanStructureError(f"unknown relation {relation!r}")
        return list(self._graph.neighbors(relation))

    def has_join(self, a: str, b: str) -> bool:
        """Is there a join predicate between ``a`` and ``b``?"""
        return self._graph.has_edge(a, b)

    def to_networkx(self) -> nx.Graph:
        """Return a defensive copy of the underlying graph."""
        return self._graph.copy()

    def __repr__(self) -> str:
        return f"QueryGraph({len(self.relations)} relations, {self.num_joins} joins)"


def random_tree_query(catalog: Catalog, rng: np.random.Generator) -> QueryGraph:
    """Draw a uniformly random tree query over all relations of ``catalog``.

    Uses a random Prüfer sequence, which is in bijection with labelled
    trees, so each of the ``n^(n-2)`` trees on ``n`` relations is equally
    likely.  A catalog of one relation yields the trivial single-vertex
    graph; two relations yield the single possible edge.
    """
    names = catalog.names
    n = len(names)
    if n == 0:
        raise PlanStructureError("catalog is empty")
    if n == 1:
        return QueryGraph(names, [])
    if n == 2:
        return QueryGraph(names, [(names[0], names[1])])
    prufer = [int(rng.integers(0, n)) for _ in range(n - 2)]
    tree = nx.from_prufer_sequence(prufer)
    edges = [(names[a], names[b]) for a, b in tree.edges]
    return QueryGraph(names, edges)
