"""Query task trees (Figure 1(c), Section 3.1).

A *query task* is a maximal subgraph of the operator tree containing only
pipelining edges — an operator pipeline whose members execute
concurrently.  The *query task tree* represents each task as a single
node; its edges are induced by the blocking edges of the operator tree
(here: ``build(J) -> probe(J)``), so a task must await the completion of
all its child tasks.

For hash-join plans every task has exactly one *sink* operator — either a
build (whose hash table feeds a probe in the parent task) or the plan's
root probe/scan — which is what makes the blocking structure a tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.exceptions import PlanStructureError
from repro.plans.operator_tree import OperatorTree
from repro.plans.physical_ops import EdgeKind, OperatorKind, PhysicalOperator

__all__ = ["Task", "TaskTree", "build_task_tree"]


@dataclass(eq=False)
class Task:
    """One query task: a maximal pipeline of physical operators.

    Attributes
    ----------
    task_id:
        Identifier unique within the task tree (``"T0"``, ``"T1"``, ...).
    operators:
        The pipeline's operators, in topological (producer-first) order.
    """

    task_id: str
    operators: list[PhysicalOperator] = field(default_factory=list)

    @property
    def sink(self) -> PhysicalOperator:
        """The pipeline's terminal operator (a build, or the plan root)."""
        if not self.operators:
            raise PlanStructureError(f"task {self.task_id!r} is empty")
        return self.operators[-1]

    @property
    def operator_names(self) -> list[str]:
        """Names of the member operators, in pipeline order."""
        return [op.name for op in self.operators]

    def __contains__(self, op: PhysicalOperator) -> bool:
        return any(member is op for member in self.operators)

    def __len__(self) -> int:
        return len(self.operators)

    def __repr__(self) -> str:
        return f"Task({self.task_id!r}, {len(self.operators)} operators)"

    def __hash__(self) -> int:
        return id(self)


class TaskTree:
    """The tree of query tasks, with precedence given by blocking edges."""

    def __init__(self, tasks: list[Task], root: Task, parents: dict[Task, Task]):
        self._tasks = tasks
        self._root = root
        self._parents = parents
        self._children: dict[Task, list[Task]] = {t: [] for t in tasks}
        for child, parent in parents.items():
            self._children[parent].append(child)
        self._depths: dict[Task, int] = {}
        self._compute_depths()

    def _compute_depths(self) -> None:
        self._depths[self._root] = 0
        stack = [self._root]
        while stack:
            task = stack.pop()
            for child in self._children[task]:
                self._depths[child] = self._depths[task] + 1
                stack.append(child)
        if len(self._depths) != len(self._tasks):
            raise PlanStructureError("task precedence graph is not a tree")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def tasks(self) -> list[Task]:
        """All tasks (creation order)."""
        return list(self._tasks)

    @property
    def root(self) -> Task:
        """The task containing the plan's root operator (executed last)."""
        return self._root

    def parent(self, task: Task) -> Task | None:
        """The task that must await ``task``'s completion (None at root)."""
        return self._parents.get(task)

    def children(self, task: Task) -> list[Task]:
        """The tasks ``task`` depends on."""
        return list(self._children[task])

    def depth(self, task: Task) -> int:
        """Edges from ``task`` up to the root (root has depth 0)."""
        return self._depths[task]

    @property
    def height(self) -> int:
        """The height of the task tree — also the number of phases minus 1
        is ``height``; a single-task tree has height 0 and one phase."""
        return max(self._depths.values())

    def __len__(self) -> int:
        return len(self._tasks)

    def task_of(self, op: PhysicalOperator) -> Task:
        """The task containing ``op``."""
        for task in self._tasks:
            if op in task:
                return task
        raise PlanStructureError(f"operator {op.name!r} belongs to no task")

    def independent(self, a: Task, b: Task) -> bool:
        """True when there is no precedence path between ``a`` and ``b``.

        Independent tasks can exploit independent parallelism
        (Section 3.1).
        """
        if a is b:
            return False
        return not self._is_ancestor(a, b) and not self._is_ancestor(b, a)

    def _is_ancestor(self, ancestor: Task, descendant: Task) -> bool:
        node: Task | None = descendant
        while node is not None:
            node = self._parents.get(node)
            if node is ancestor:
                return True
        return False

    def __repr__(self) -> str:
        return f"TaskTree({len(self)} tasks, height={self.height})"


def build_task_tree(op_tree: OperatorTree) -> TaskTree:
    """Derive the query task tree from an operator tree (Figure 1(b) → (c)).

    Tasks are the weakly connected components of the pipeline-edge
    subgraph; task precedence follows the blocking edges.  Task ids are
    assigned in topological execution order of the member operators, so
    deterministic inputs give deterministic ids.
    """
    pipeline_graph = nx.DiGraph()
    pipeline_graph.add_nodes_from(op_tree.operators)
    for u, v in op_tree.pipeline_edges():
        pipeline_graph.add_edge(u, v)

    components = list(nx.weakly_connected_components(pipeline_graph))
    # Deterministic task numbering: order components by the position of
    # their first operator in the operator tree's topological order.
    topo_index = {op: i for i, op in enumerate(op_tree.operators)}
    components.sort(key=lambda comp: min(topo_index[op] for op in comp))

    tasks: list[Task] = []
    task_of_op: dict[PhysicalOperator, Task] = {}
    for i, component in enumerate(components):
        ordered = sorted(component, key=lambda op: topo_index[op])
        task = Task(task_id=f"T{i}", operators=ordered)
        tasks.append(task)
        for op in component:
            task_of_op[op] = task

    # Sanity: a task's sink must be a blocking producer (build or sort)
    # or the plan root.
    root_op = op_tree.root
    for task in tasks:
        sink = task.sink
        if sink is not root_op and sink.kind not in (
            OperatorKind.BUILD,
            OperatorKind.SORT,
            OperatorKind.STORE,
        ):
            raise PlanStructureError(
                f"task {task.task_id!r} ends in {sink.name!r}, which is neither "
                "a blocking producer (build/sort) nor the plan root"
            )

    parents: dict[Task, Task] = {}
    for u, v in op_tree.blocking_edges():
        child, parent = task_of_op[u], task_of_op[v]
        if child is parent:
            raise PlanStructureError(
                f"blocking edge {u.name!r} -> {v.name!r} stays inside one task"
            )
        if child in parents and parents[child] is not parent:
            raise PlanStructureError(
                f"task {child.task_id!r} has two parents"
            )
        parents[child] = parent

    root_task = task_of_op[root_op]
    if root_task in parents:
        raise PlanStructureError("the root task must not have a parent")
    return TaskTree(tasks=tasks, root=root_task, parents=parents)
