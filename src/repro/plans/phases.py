"""Synchronized phases: the MinShelf decomposition (Section 5.4, [TL93]).

To satisfy a bushy plan's blocking constraints, the query task tree is
split deterministically into synchronized phases ("shelves"): each phase
contains independent tasks executed concurrently after the completion of
all tasks of the previous phase.  The number of phases equals the height
of the task tree plus one, and each task is scheduled in the phase closest
to the root that does not violate its precedence constraints — i.e. a task
at depth ``k`` runs in the phase immediately before its parent at depth
``k - 1``, which is Tan and Lu's *MinShelf* policy.

In Figure 1 of the paper this yields two phases: {T1, T2, T3, T4} then
{T5}.
"""

from __future__ import annotations

from repro.exceptions import PlanStructureError
from repro.plans.task_tree import Task, TaskTree

__all__ = ["min_shelf_phases", "eager_shelf_phases", "validate_phases"]


def min_shelf_phases(task_tree: TaskTree) -> list[list[Task]]:
    """Split ``task_tree`` into MinShelf phases, in execution order.

    Phase 0 (executed first) holds the deepest tasks; the last phase holds
    exactly the root task.  Within a phase, tasks appear in task-id order
    for determinism.

    Returns
    -------
    list[list[Task]]
        ``phases[i]`` is the set of tasks executed concurrently in phase
        ``i``.
    """
    height = task_tree.height
    phases: list[list[Task]] = [[] for _ in range(height + 1)]
    for task in task_tree.tasks:
        # A task at depth k executes in phase (height - k): the root
        # (depth 0) is last, and each task runs exactly one phase before
        # its parent — the phase closest to the root that respects its
        # precedence constraints.
        phases[height - task_tree.depth(task)].append(task)
    for bucket in phases:
        bucket.sort(key=lambda t: t.task_id)
        if not bucket:
            raise PlanStructureError("MinShelf produced an empty phase")
    return phases


def eager_shelf_phases(task_tree: TaskTree) -> list[list[Task]]:
    """The as-early-as-possible alternative to MinShelf ([TL93] compares
    several shelf policies; the paper adopts MinShelf).

    A task runs in the earliest phase compatible with its precedence
    constraints: leaves in phase 0, every other task one phase after its
    latest child.  The phase *count* equals MinShelf's (height + 1), but
    tasks on shallow branches shift earlier — concentrating work in early
    phases and leaving late phases sparse, which typically hurts: a
    resource-starved early phase and an under-utilized late one.  The
    ``abl-shelf`` benchmark quantifies the difference.
    """
    height = task_tree.height
    phases: list[list[Task]] = [[] for _ in range(height + 1)]
    eager: dict[Task, int] = {}

    def eager_phase(task: Task) -> int:
        if task in eager:
            return eager[task]
        children = task_tree.children(task)
        phase = 0 if not children else 1 + max(eager_phase(c) for c in children)
        eager[task] = phase
        return phase

    for task in task_tree.tasks:
        phases[eager_phase(task)].append(task)
    for bucket in phases:
        bucket.sort(key=lambda t: t.task_id)
        if not bucket:
            raise PlanStructureError("eager shelf produced an empty phase")
    return phases


def validate_phases(task_tree: TaskTree, phases: list[list[Task]]) -> None:
    """Check that a phase decomposition is legal.

    * every task appears in exactly one phase;
    * tasks sharing a phase are pairwise independent (no precedence path);
    * every task's phase strictly precedes its parent's phase.

    Raises
    ------
    PlanStructureError
        On any violation.
    """
    position: dict[Task, int] = {}
    for i, bucket in enumerate(phases):
        for task in bucket:
            if task in position:
                raise PlanStructureError(
                    f"task {task.task_id!r} appears in phases {position[task]} and {i}"
                )
            position[task] = i
    if set(position) != set(task_tree.tasks):
        raise PlanStructureError("phase decomposition does not cover all tasks")
    for i, bucket in enumerate(phases):
        for a in bucket:
            for b in bucket:
                if a is not b and not task_tree.independent(a, b):
                    raise PlanStructureError(
                        f"dependent tasks {a.task_id!r}, {b.task_id!r} share phase {i}"
                    )
    for task in task_tree.tasks:
        parent = task_tree.parent(task)
        if parent is not None and position[task] >= position[parent]:
            raise PlanStructureError(
                f"task {task.task_id!r} (phase {position[task]}) does not precede "
                f"its parent {parent.task_id!r} (phase {position[parent]})"
            )
