"""Plan transformations: serialization of over-deep pipelines.

Hsiao et al. (quoted in §2): "for deep execution plans, there exists a
point beyond which further partitioning is detrimental or even
impossible, and serialization must be employed for better performance."
In a hash-join plan, a pipeline grows along *probe-side* edges — a join
whose outer input is another join joins that join's probe chain, and all
of the chain's hash tables must be memory-resident simultaneously while
it runs (assumption A1 hides this; ``repro.memory`` prices it).

:func:`auto_materialize` inserts store→rescan materialization points so
that no probe chain exceeds ``max_chain`` joins, trading run I/O for

* shorter pipelines (fewer concurrent operators per phase), and
* staggered hash-table residency (fewer tables live at once — the lever
  that matters under per-site memory capacities).

The transformation returns a rebuilt plan; the input is never mutated.
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError
from repro.plans.join_tree import BaseRelationNode, JoinNode, PlanNode

__all__ = ["auto_materialize"]


def auto_materialize(plan: PlanNode, max_chain: int) -> PlanNode:
    """Copy ``plan``, breaking probe chains longer than ``max_chain``.

    A join's *chain length* is the number of consecutive joins connected
    through probe-side (outer) edges ending at it.  Whenever a join's
    outer input is itself a join whose chain length has reached
    ``max_chain``, that input's output is materialized (its
    ``materialize_output`` flag set), resetting the chain.

    Parameters
    ----------
    plan:
        The plan to rebuild (hash and/or sort-merge joins).
    max_chain:
        Maximum number of joins per pipeline (``>= 1``).

    Returns
    -------
    PlanNode
        A structurally identical plan with materialization flags set;
        existing flags on the input are preserved (and also reset
        chains).
    """
    if max_chain < 1:
        raise ConfigurationError(f"max_chain must be >= 1, got {max_chain}")

    def rebuild(node: PlanNode) -> tuple[PlanNode, int]:
        """Return (copy, probe-chain length ending at this node)."""
        if isinstance(node, BaseRelationNode):
            return node, 0
        assert isinstance(node, JoinNode)
        # The build side always terminates its pipeline at this join's
        # build (or left sort), so its chain does not extend ours.
        build_copy, _ = rebuild(node.build_side)
        probe_copy, probe_chain = rebuild(node.probe_side)

        materialize = node.materialize_output
        chain_below = 0 if materialize else probe_chain
        if (
            isinstance(probe_copy, JoinNode)
            and not probe_copy.materialize_output
            and chain_below >= max_chain
        ):
            probe_copy = JoinNode(
                probe_copy.join_id,
                probe_copy.build_side,
                probe_copy.probe_side,
                method=probe_copy.method,
                materialize_output=True,
            )
            chain_below = 0
        copy = JoinNode(
            node.join_id,
            build_copy,
            probe_copy,
            method=node.method,
            materialize_output=materialize,
        )
        return copy, chain_below + 1

    rebuilt, _ = rebuild(plan)
    return rebuilt
