"""Simulator-vs-analytic validation reports.

The OPTIMAL_STRETCH policy is the executable form of the paper's analytic
model; :func:`validate_phased_schedule` asserts the two agree, and
:func:`sharing_policy_report` contrasts all policies on one schedule —
the ``abl-sim`` ablation of DESIGN.md (how much of the analytic response
time depends on the idealized sharing assumptions A2/A3).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.exceptions import ModelValidationError, SimulationError
from repro.core.resource_model import validate_sequential_time
from repro.core.schedule import PhasedSchedule
from repro.engine.result import ScheduleResult
from repro.sim.policies import SharingPolicy
from repro.sim.simulator import SimulationResult, simulate_phased

__all__ = [
    "PolicyComparison",
    "validate_phased_schedule",
    "validate_schedule_result",
    "sharing_policy_report",
]


@dataclass(frozen=True)
class PolicyComparison:
    """Response times of one schedule under every sharing policy.

    Attributes
    ----------
    analytic:
        The Equation (3) response time.
    optimal_stretch:
        Simulated time under ideal stretching (should equal ``analytic``).
    fair_share:
        Simulated time under equal-throttle sharing (``>= analytic``).
    serial:
        Simulated time with no sharing at all (the upper envelope).
    """

    analytic: float
    optimal_stretch: float
    fair_share: float
    serial: float

    @property
    def fair_share_penalty(self) -> float:
        """Relative cost of realistic vs. ideal sharing."""
        if self.analytic <= 0.0:
            return 0.0
        return self.fair_share / self.analytic - 1.0

    @property
    def sharing_benefit(self) -> float:
        """Factor by which ideal sharing beats no sharing."""
        if self.optimal_stretch <= 0.0:
            return 1.0
        return self.serial / self.optimal_stretch


def validate_phased_schedule(
    phased: PhasedSchedule, rel_tolerance: float = 1e-9
) -> SimulationResult:
    """Simulate under OPTIMAL_STRETCH and assert agreement with Equation (3).

    Returns the simulation result for further inspection.

    Raises
    ------
    SimulationError
        If any placed clone's recorded ``T_seq`` violates the fundamental
        Section 4.1 bound ``l(W) <= T_seq <= sum(W)``, or if the simulated
        response time deviates from the analytic model by more than
        ``rel_tolerance`` (relative).
    """
    for schedule in phased.phases:
        for site in schedule.sites:
            for clone in site.clones:
                try:
                    validate_sequential_time(clone.t_seq, clone.work)
                except ModelValidationError as exc:
                    raise SimulationError(
                        f"clone {clone.operator}#{clone.clone_index} at site "
                        f"{site.index}: {exc}"
                    ) from exc
    result = simulate_phased(phased, SharingPolicy.OPTIMAL_STRETCH)
    analytic = result.analytic_response_time
    simulated = result.response_time
    scale = max(1.0, abs(analytic))
    if abs(simulated - analytic) > rel_tolerance * scale:
        raise SimulationError(
            f"OPTIMAL_STRETCH simulation ({simulated}) disagrees with the "
            f"analytic response time ({analytic})"
        )
    return result


def validate_schedule_result(
    result: ScheduleResult, rel_tolerance: float = 1e-9
) -> SimulationResult | None:
    """Validate a registered algorithm's result end to end.

    Checks the structural constraints of every phase (Definition 5.1),
    that the recorded ``response_time`` matches the attached schedule,
    and that the fluid simulator reproduces the analytic response time
    under OPTIMAL_STRETCH.  Bound-only results (``phased_schedule is
    None``) have nothing to simulate and return ``None``.

    Additionally warns (``UserWarning``) when the result's
    instrumentation references counter or timer names outside the
    vocabulary of :mod:`repro.engine.metrics` — the kernels in
    ``repro.core`` record metrics through duck-typed *strings*, so a
    typo there silently creates a counter nobody reads, and this check
    is where it surfaces.

    Raises
    ------
    SchedulingError
        On a structural violation.
    SimulationError
        On analytic/simulated disagreement beyond ``rel_tolerance``.
    """
    from repro.engine.metrics import unknown_metric_names

    unknown = unknown_metric_names(
        result.instrumentation.counters, result.instrumentation.timers
    )
    if unknown:
        warnings.warn(
            f"{result.algorithm or 'schedule'}: instrumentation references "
            f"metric names outside the known vocabulary: {sorted(unknown)} "
            "(typo'd counter string in a kernel?)",
            stacklevel=2,
        )
    if result.instrumentation.spans:
        from repro.obs.export import unknown_span_names

        unknown_spans = unknown_span_names(result.instrumentation.spans)
        if unknown_spans:
            warnings.warn(
                f"{result.algorithm or 'schedule'}: recorded spans reference "
                f"names outside the known vocabulary: {sorted(unknown_spans)}",
                stacklevel=2,
            )
    if result.phased_schedule is None:
        return None
    result.validate()
    recorded = result.makespan
    analytic = result.phased_schedule.response_time()
    scale = max(1.0, abs(analytic))
    if abs(recorded - analytic) > rel_tolerance * scale:
        raise SimulationError(
            f"{result.algorithm or 'schedule'}: recorded response time "
            f"({recorded}) disagrees with its own schedule ({analytic})"
        )
    return validate_phased_schedule(result.phased_schedule, rel_tolerance)


def sharing_policy_report(phased: PhasedSchedule) -> PolicyComparison:
    """Simulate one schedule under all three policies and summarize."""
    stretch = simulate_phased(phased, SharingPolicy.OPTIMAL_STRETCH)
    fair = simulate_phased(phased, SharingPolicy.FAIR_SHARE)
    serial = simulate_phased(phased, SharingPolicy.SERIAL)
    return PolicyComparison(
        analytic=phased.response_time(),
        optimal_stretch=stretch.response_time,
        fair_share=fair.response_time,
        serial=serial.response_time,
    )
