"""Partial preemptability: when time-slicing costs bandwidth (Section 8).

The paper's conclusions flag assumption A2 (zero time-sharing overhead)
as inaccurate for some resources: *"disks do not time share as gracefully
as processors or network interfaces; slicing a disk among many tasks can
reduce the disk's effective bandwidth.  Extending our model and
algorithms to consider different degrees of 'preemptability' for system
resources is a challenging issue."*

This module quantifies that concern in the execution simulator.  Each
resource ``i`` gets a *preemptability* ``sigma_i`` in ``[0, 1]``:

* ``sigma = 1`` — perfectly preemptable (A2 exactly): capacity 1
  regardless of how many clones share the resource;
* ``sigma = 0`` — completely non-preemptable sharing: with ``k``
  concurrent users the effective capacity collapses to ``1 / k``
  (e.g. random seeks destroying a disk's sequential bandwidth);
* in between, ``k`` concurrent users see effective capacity

      ``c_i(k) = 1 / (1 + (k - 1) * (1 - sigma_i))``

  — each additional concurrent user costs a ``(1 - sigma_i)`` fraction
  of one user's bandwidth in switching overhead.

The degraded simulation is an equal-throttle (fair-share) fluid loop with
this capacity model; ``sigma = (1, ..., 1)`` reproduces the plain
FAIR_SHARE policy exactly (tested).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import ConfigurationError, SimulationError
from repro.core.schedule import PhasedSchedule
from repro.core.site import Site
from repro.sim.events import CloneTrace, RateInterval
from repro.sim.simulator import (
    PhaseSimulation,
    SimulationResult,
    SiteSimulation,
    _clone_states,
)
from repro.sim.policies import SharingPolicy

__all__ = ["PreemptabilityModel", "simulate_site_degraded", "simulate_phased_degraded"]

_EPS = 1e-9


@dataclass(frozen=True)
class PreemptabilityModel:
    """Per-resource degrees of preemptability.

    Attributes
    ----------
    sigmas:
        One value in ``[0, 1]`` per resource dimension;
        1 = perfectly preemptable, 0 = fully serialized sharing.
    """

    sigmas: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.sigmas:
            raise ConfigurationError("need at least one preemptability value")
        for i, s in enumerate(self.sigmas):
            if not 0.0 <= s <= 1.0:
                raise ConfigurationError(
                    f"preemptability sigma[{i}] must lie in [0, 1], got {s}"
                )

    @property
    def d(self) -> int:
        """Number of resource dimensions covered."""
        return len(self.sigmas)

    def effective_capacity(self, resource: int, concurrent_users: int) -> float:
        """Capacity of ``resource`` with ``concurrent_users`` active users."""
        if concurrent_users < 0:
            raise ConfigurationError("concurrent user count must be >= 0")
        if concurrent_users <= 1:
            return 1.0
        sigma = self.sigmas[resource]
        return 1.0 / (1.0 + (concurrent_users - 1) * (1.0 - sigma))

    @classmethod
    def perfect(cls, d: int) -> "PreemptabilityModel":
        """Assumption A2: every resource perfectly preemptable."""
        return cls((1.0,) * d)

    @classmethod
    def sticky_disk(cls, d: int, disk_axis: int = 1, sigma_disk: float = 0.5) -> "PreemptabilityModel":
        """CPU/network preemptable, disk degraded — the paper's example."""
        sigmas = [1.0] * d
        sigmas[disk_axis] = sigma_disk
        return cls(tuple(sigmas))


def simulate_site_degraded(site: Site, model: PreemptabilityModel) -> SiteSimulation:
    """Fair-share fluid simulation with per-resource capacity degradation.

    Identical to the FAIR_SHARE policy except each resource's capacity is
    ``effective_capacity(resource, k)`` for ``k`` active clones with a
    non-zero demand rate on it.
    """
    if model.d != site.d:
        raise SimulationError(
            f"preemptability model covers {model.d} resources; site has {site.d}"
        )
    analytic = site.t_site()
    states = _clone_states(site)
    active = [s for s in states if s["t_seq"] > 0]
    traces = [
        CloneTrace(
            operator=s["operator"],
            clone_index=s["clone_index"],
            start=0.0,
            finish=0.0,
            nominal_t_seq=0.0,
        )
        for s in states
        if s["t_seq"] <= 0
    ]
    intervals: list[RateInterval] = []
    now = 0.0
    guard = 0
    while active:
        guard += 1
        if guard > 10_000 + 10 * len(states):
            raise SimulationError(
                f"site {site.index}: degraded simulation failed to converge"
            )
        congestion = [0.0] * site.d
        users = [0] * site.d
        for s in active:
            for i, r in enumerate(s["rates"]):
                if r > 0.0:
                    congestion[i] += r
                    users[i] += 1
        throttle = 1.0
        for i in range(site.d):
            if congestion[i] <= 0.0:
                continue
            capacity = model.effective_capacity(i, users[i])
            throttle = min(throttle, capacity / congestion[i])
        throttle = min(throttle, 1.0)
        if throttle <= 0.0:
            raise SimulationError(f"site {site.index}: zero progress rate")
        dt = min(s["remaining"] / throttle for s in active)
        end = now + dt
        intervals.append(
            RateInterval(
                start=now,
                end=end,
                active=tuple(s["label"] for s in active),
                throttle=throttle,
                resource_rates=tuple(c * throttle for c in congestion),
            )
        )
        still_active = []
        for s in active:
            s["remaining"] -= throttle * dt
            if s["remaining"] <= _EPS * max(1.0, s["t_seq"]):
                traces.append(
                    CloneTrace(
                        operator=s["operator"],
                        clone_index=s["clone_index"],
                        start=0.0,
                        finish=end,
                        nominal_t_seq=s["t_seq"],
                    )
                )
            else:
                still_active.append(s)
        active = still_active
        now = end
    return SiteSimulation(
        site_index=site.index,
        completion_time=now,
        analytic_time=analytic,
        traces=traces,
        intervals=intervals,
    )


def simulate_phased_degraded(
    phased: PhasedSchedule, model: PreemptabilityModel
) -> SimulationResult:
    """Simulate a phased schedule under partial preemptability.

    Phase barriers are global, as in TREESCHEDULE; the result's
    ``analytic_response_time`` remains the A2-idealized Equation (3)
    value, so ``slowdown`` directly measures the cost of imperfect
    preemptability.
    """
    phases = []
    for schedule in phased.phases:
        sites = [simulate_site_degraded(site, model) for site in schedule.sites]
        makespan = max((s.completion_time for s in sites), default=0.0)
        phases.append(
            PhaseSimulation(
                sites=sites,
                makespan=makespan,
                analytic_makespan=schedule.makespan(),
            )
        )
    response = math.fsum(p.makespan for p in phases)
    return SimulationResult(
        policy=SharingPolicy.FAIR_SHARE,
        phases=phases,
        response_time=response,
        analytic_response_time=phased.response_time(),
    )
