"""Event records produced by the fluid execution simulator.

The simulator is event-driven: site state (the set of active clones and
their progress rates) is piecewise constant, changing only at clone
completions.  These dataclasses capture the resulting execution history so
tests and reports can audit rate feasibility and work conservation.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CloneTrace", "RateInterval"]


@dataclass(frozen=True)
class CloneTrace:
    """Execution record of one clone at one site.

    Attributes
    ----------
    operator:
        Owning operator's name.
    clone_index:
        Clone index within the operator.
    start:
        Simulation time at which the clone began executing.
    finish:
        Simulation time at which it completed.
    nominal_t_seq:
        The clone's stand-alone sequential time ``T_seq`` (its execution
        is stretched/throttled relative to this).
    """

    operator: str
    clone_index: int
    start: float
    finish: float
    nominal_t_seq: float

    @property
    def stretch(self) -> float:
        """Observed slowdown relative to running alone (``>= 1`` up to
        floating point, except for zero-work clones)."""
        if self.nominal_t_seq <= 0.0:
            return 1.0
        return (self.finish - self.start) / self.nominal_t_seq


@dataclass(frozen=True)
class RateInterval:
    """One piecewise-constant interval of a site's execution.

    Attributes
    ----------
    start, end:
        Interval bounds in simulation time.
    active:
        Names of the clones executing during the interval (as
        ``operator#clone`` strings).
    throttle:
        Common progress-rate factor applied during the interval
        (1.0 means every active clone runs at full nominal speed).
    resource_rates:
        Aggregate per-resource consumption rate during the interval;
        feasibility requires every entry ``<= 1`` (+ rounding).
    """

    start: float
    end: float
    active: tuple[str, ...]
    throttle: float
    resource_rates: tuple[float, ...]

    @property
    def duration(self) -> float:
        """Length of the interval."""
        return self.end - self.start

    def is_feasible(self, tolerance: float = 1e-9) -> bool:
        """No resource consumed above unit capacity during the interval."""
        return all(r <= 1.0 + tolerance for r in self.resource_rates)
