"""Fluid discrete-event simulation of phased schedules.

This substrate executes a schedule instead of just evaluating Equation (3)
on it: every site runs its resident clones under a
:class:`~repro.sim.policies.SharingPolicy`, producing per-clone traces and
piecewise-constant rate intervals whose feasibility (no resource above
unit capacity) and work conservation are checked as the simulation
advances.  Phases are synchronized globally, as in TREESCHEDULE: phase
``k+1`` starts when the slowest site of phase ``k`` finishes.

Under :attr:`SharingPolicy.OPTIMAL_STRETCH` the simulated response time
reproduces the analytic model *exactly* (this is asserted by the
validation tests); under :attr:`FAIR_SHARE` and :attr:`SERIAL` it bounds
the model from above, quantifying the optimism of assumptions A2/A3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.exceptions import SimulationError
from repro.core.schedule import PhasedSchedule, Schedule
from repro.core.site import Site
from repro.sim.events import CloneTrace, RateInterval
from repro.sim.policies import SharingPolicy

__all__ = [
    "SiteSimulation",
    "PhaseSimulation",
    "SimulationResult",
    "simulate_site",
    "simulate_schedule",
    "simulate_phased",
]

_EPS = 1e-9


@dataclass
class SiteSimulation:
    """Simulation outcome for one site within one phase.

    Attributes
    ----------
    site_index:
        The simulated site.
    completion_time:
        Time (relative to phase start) at which the last clone finished.
    analytic_time:
        The Equation (2) site time, for comparison.
    traces:
        Per-clone execution records.
    intervals:
        Piecewise-constant rate intervals (empty for idle sites).
    """

    site_index: int
    completion_time: float
    analytic_time: float
    traces: list[CloneTrace] = field(default_factory=list)
    intervals: list[RateInterval] = field(default_factory=list)

    @property
    def deviation(self) -> float:
        """Relative excess of simulated over analytic time (0 when idle)."""
        if self.analytic_time <= 0.0:
            return 0.0
        return (self.completion_time - self.analytic_time) / self.analytic_time


@dataclass
class PhaseSimulation:
    """Simulation outcome for one synchronized phase."""

    sites: list[SiteSimulation]
    makespan: float
    analytic_makespan: float


@dataclass
class SimulationResult:
    """Simulation outcome for a full phased schedule.

    Attributes
    ----------
    policy:
        The sharing policy that was simulated.
    phases:
        Per-phase outcomes, in execution order.
    response_time:
        Total simulated response time (sum of phase makespans, since
        phases are globally synchronized).
    analytic_response_time:
        The Equation (3) response time of the same schedule.
    """

    policy: SharingPolicy
    phases: list[PhaseSimulation]
    response_time: float
    analytic_response_time: float

    @property
    def slowdown(self) -> float:
        """``simulated / analytic`` response-time ratio (1.0 when equal)."""
        if self.analytic_response_time <= 0.0:
            return 1.0
        return self.response_time / self.analytic_response_time


def _clone_states(site: Site) -> list[dict]:
    states = []
    for clone in site.clones:
        t = clone.t_seq
        rates = tuple((c / t if t > 0 else 0.0) for c in clone.work.components)
        states.append(
            {
                "label": f"{clone.operator}#{clone.clone_index}",
                "operator": clone.operator,
                "clone_index": clone.clone_index,
                "t_seq": t,
                "rates": rates,
                "remaining": t,
            }
        )
    return states


def _check_feasible(resource_rates: tuple[float, ...], site_index: int) -> None:
    for i, r in enumerate(resource_rates):
        if r > 1.0 + 1e-6:
            raise SimulationError(
                f"site {site_index}: resource {i} driven at rate {r:.6f} > 1"
            )


def _simulate_stretch(site: Site) -> SiteSimulation:
    """OPTIMAL_STRETCH: every clone finishes exactly at T* (Equation 2)."""
    analytic = site.t_site()
    states = _clone_states(site)
    t_star = analytic
    traces = []
    agg = [0.0] * site.d
    for s in states:
        # Stretch factor T_c / T*; a zero-work clone completes immediately.
        factor = (s["t_seq"] / t_star) if t_star > 0 else 0.0
        for i, r in enumerate(s["rates"]):
            agg[i] += r * factor
        traces.append(
            CloneTrace(
                operator=s["operator"],
                clone_index=s["clone_index"],
                start=0.0,
                finish=t_star if s["t_seq"] > 0 else 0.0,
                nominal_t_seq=s["t_seq"],
            )
        )
    rates = tuple(agg)
    _check_feasible(rates, site.index)
    intervals = []
    if states and t_star > 0:
        intervals.append(
            RateInterval(
                start=0.0,
                end=t_star,
                active=tuple(s["label"] for s in states),
                throttle=min(
                    (s["t_seq"] / t_star for s in states if s["t_seq"] > 0),
                    default=1.0,
                ),
                resource_rates=rates,
            )
        )
    return SiteSimulation(
        site_index=site.index,
        completion_time=t_star if states else 0.0,
        analytic_time=analytic,
        traces=traces,
        intervals=intervals,
    )


def _simulate_fair_share(site: Site) -> SiteSimulation:
    """FAIR_SHARE: equal throttle for all active clones, event-driven."""
    analytic = site.t_site()
    states = _clone_states(site)
    active = [s for s in states if s["t_seq"] > 0]
    traces = [
        CloneTrace(
            operator=s["operator"],
            clone_index=s["clone_index"],
            start=0.0,
            finish=0.0,
            nominal_t_seq=0.0,
        )
        for s in states
        if s["t_seq"] <= 0
    ]
    intervals: list[RateInterval] = []
    now = 0.0
    guard = 0
    while active:
        guard += 1
        if guard > 10_000 + 10 * len(states):
            raise SimulationError(
                f"site {site.index}: fair-share simulation failed to converge"
            )
        congestion = [0.0] * site.d
        for s in active:
            for i, r in enumerate(s["rates"]):
                congestion[i] += r
        peak = max(congestion, default=0.0)
        throttle = 1.0 if peak <= 1.0 else 1.0 / peak
        # Next completion under the common throttle.
        dt = min(s["remaining"] / throttle for s in active)
        end = now + dt
        rates = tuple(c * throttle for c in congestion)
        _check_feasible(rates, site.index)
        intervals.append(
            RateInterval(
                start=now,
                end=end,
                active=tuple(s["label"] for s in active),
                throttle=throttle,
                resource_rates=rates,
            )
        )
        still_active = []
        for s in active:
            s["remaining"] -= throttle * dt
            if s["remaining"] <= _EPS * max(1.0, s["t_seq"]):
                traces.append(
                    CloneTrace(
                        operator=s["operator"],
                        clone_index=s["clone_index"],
                        start=0.0,
                        finish=end,
                        nominal_t_seq=s["t_seq"],
                    )
                )
            else:
                still_active.append(s)
        active = still_active
        now = end
    return SiteSimulation(
        site_index=site.index,
        completion_time=now,
        analytic_time=analytic,
        traces=traces,
        intervals=intervals,
    )


def _simulate_serial(site: Site) -> SiteSimulation:
    """SERIAL: clones run one after another, longest first."""
    analytic = site.t_site()
    states = sorted(
        _clone_states(site), key=lambda s: (-s["t_seq"], s["label"])
    )
    traces = []
    intervals = []
    now = 0.0
    for s in states:
        end = now + s["t_seq"]
        traces.append(
            CloneTrace(
                operator=s["operator"],
                clone_index=s["clone_index"],
                start=now,
                finish=end,
                nominal_t_seq=s["t_seq"],
            )
        )
        if s["t_seq"] > 0:
            intervals.append(
                RateInterval(
                    start=now,
                    end=end,
                    active=(s["label"],),
                    throttle=1.0,
                    resource_rates=s["rates"],
                )
            )
        now = end
    return SiteSimulation(
        site_index=site.index,
        completion_time=now,
        analytic_time=analytic,
        traces=traces,
        intervals=intervals,
    )


_POLICY_DISPATCH = {
    SharingPolicy.OPTIMAL_STRETCH: _simulate_stretch,
    SharingPolicy.FAIR_SHARE: _simulate_fair_share,
    SharingPolicy.SERIAL: _simulate_serial,
}


def simulate_site(site: Site, policy: SharingPolicy) -> SiteSimulation:
    """Simulate one site's clones under ``policy``.

    Checks rate feasibility throughout and work conservation at the end
    (every clone's trace spans enough stretched time to complete its
    nominal work).
    """
    result = _POLICY_DISPATCH[policy](site)
    # Work conservation: each finished clone ran for >= its nominal time
    # scaled by the throttles it received — guaranteed by construction for
    # these policies; assert the cheap invariant finish >= 0 and
    # completion >= analytic floor for non-ideal policies.
    if result.completion_time < -_EPS:
        raise SimulationError(f"site {site.index}: negative completion time")
    if result.completion_time < result.analytic_time - 1e-6 * max(
        1.0, result.analytic_time
    ):
        raise SimulationError(
            f"site {site.index}: simulated time {result.completion_time} "
            f"below the Equation (2) floor {result.analytic_time}"
        )
    return result


def simulate_schedule(schedule: Schedule, policy: SharingPolicy) -> PhaseSimulation:
    """Simulate one phase (all sites run concurrently from time zero)."""
    sites = [simulate_site(site, policy) for site in schedule.sites]
    makespan = max((s.completion_time for s in sites), default=0.0)
    return PhaseSimulation(
        sites=sites, makespan=makespan, analytic_makespan=schedule.makespan()
    )


def simulate_phased(
    phased: PhasedSchedule, policy: SharingPolicy = SharingPolicy.OPTIMAL_STRETCH
) -> SimulationResult:
    """Simulate a full phased schedule with a global barrier per phase."""
    phases = [simulate_schedule(schedule, policy) for schedule in phased.phases]
    response = math.fsum(p.makespan for p in phases)
    return SimulationResult(
        policy=policy,
        phases=phases,
        response_time=response,
        analytic_response_time=phased.response_time(),
    )
